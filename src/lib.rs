//! # casper — workload-driven optimal column layouts for hybrid workloads
//!
//! Facade crate re-exporting the full public API of the Casper
//! reproduction (Athanassoulis, Bøgh, Idreos: *Optimal Column Layout for
//! Hybrid Workloads*, VLDB 2019).
//!
//! See the [`prelude`] for the types most applications need, and the
//! `examples/` directory for runnable end-to-end scenarios.

pub use casper_core as core;
pub use casper_engine as engine;
pub use casper_persist as persist;
pub use casper_storage as storage;
pub use casper_workload as workload;

/// The types most applications need, in one import.
pub mod prelude {
    pub use casper_persist::{DurableOptions, DurableTable};
    pub use casper_storage::{
        BlockLayout, ChunkConfig, OpCost, PartitionSpec, PartitionedChunk, UpdatePolicy,
    };
}
