//! Minimal `--key=value` argument parsing for the experiment binaries (no
//! external CLI dependency, per the offline-crate policy).

use std::collections::HashMap;

/// Parsed command-line arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
    /// Whether `--help` was requested.
    pub help: bool,
}

impl Args {
    /// Parse from the process arguments.
    pub fn parse() -> Self {
        Self::from_iter(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (tests).
    #[allow(clippy::should_implement_trait)] // not a FromIterator: parses, doesn't collect
    pub fn from_iter(args: impl IntoIterator<Item = String>) -> Self {
        let mut values = HashMap::new();
        let mut help = false;
        for a in args {
            if a == "--help" || a == "-h" {
                help = true;
                continue;
            }
            if let Some(rest) = a.strip_prefix("--") {
                if let Some((k, v)) = rest.split_once('=') {
                    values.insert(k.to_string(), v.to_string());
                } else {
                    values.insert(rest.to_string(), "true".to_string());
                }
            }
        }
        Self { values, help }
    }

    /// Raw string lookup.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Integer with default.
    pub fn usize_or(&self, key: &str, default: usize) -> usize {
        self.get(key)
            .map(|v| {
                v.replace('_', "")
                    .parse()
                    .unwrap_or_else(|_| panic!("--{key} expects an integer, got {v}"))
            })
            .unwrap_or(default)
    }

    /// `u64` with default.
    pub fn u64_or(&self, key: &str, default: u64) -> u64 {
        self.usize_or(key, default as usize) as u64
    }

    /// Float with default.
    pub fn f64_or(&self, key: &str, default: f64) -> f64 {
        self.get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects a number, got {v}"))
            })
            .unwrap_or(default)
    }

    /// Boolean flag.
    pub fn flag(&self, key: &str) -> bool {
        matches!(self.get(key), Some("true") | Some("1") | Some("yes"))
    }

    /// Print a standard usage block and exit if `--help` was passed.
    pub fn usage(&self, name: &str, description: &str, options: &[(&str, &str)]) {
        if !self.help {
            return;
        }
        println!("{name} — {description}\n");
        println!("options:");
        for (opt, desc) in options {
            println!("  --{opt:<24} {desc}");
        }
        std::process::exit(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Args {
        Args::from_iter(list.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_key_value_pairs() {
        let a = args(&["--rows=1000", "--seed=42", "--verbose"]);
        assert_eq!(a.usize_or("rows", 0), 1000);
        assert_eq!(a.u64_or("seed", 0), 42);
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
    }

    #[test]
    fn defaults_apply() {
        let a = args(&[]);
        assert_eq!(a.usize_or("rows", 77), 77);
        assert_eq!(a.f64_or("frac", 0.5), 0.5);
    }

    #[test]
    fn underscores_in_numbers() {
        let a = args(&["--rows=1_000_000"]);
        assert_eq!(a.usize_or("rows", 0), 1_000_000);
    }

    #[test]
    fn help_flag_detected() {
        assert!(args(&["--help"]).help);
        assert!(args(&["-h"]).help);
        assert!(!args(&["--rows=1"]).help);
    }
}
