//! Machine-readable per-PR performance trajectory.
//!
//! The `scan_ops` bench emits `BENCH_scan.json` at the workspace root
//! after its criterion groups run — the single source of truth for kernel
//! perf: one entry per kernel × lane width (plain u64 *and* the packed
//! compressed lanes) with the dispatched-SIMD and forced-scalar
//! ns/element, effective GB/s, and the speedup — so per-PR perf can be
//! tracked without parsing bench stdout.
//!
//! Measurements are best-of-N wall-clock over a closure returning a `u64`
//! checksum (black-boxed so the work cannot be elided). In `--test` smoke
//! mode every measurement runs a single reduced-size iteration: CI uses
//! that to check both dispatch paths build, run, and agree — the JSON is
//! still written, flagged `"smoke": true` so trend tooling can skip it.

use casper_storage::compress::dictionary::PackedCodes;
use casper_storage::compress::for_delta::PackedOffsets;
use casper_storage::compress::{Dictionary, ForBlock, Rle};
use casper_storage::kernels::{self, compressed};
use casper_storage::simd::portable;
use casper_storage::ColumnValue;
use std::fmt::Write as _;
use std::time::Instant;

/// One measured kernel data point.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Kernel name (e.g. `select_range_bitmap`, `for_count_range`).
    pub kernel: String,
    /// Lane element width in bits (64 for plain u64 lanes, 8/16/32 for
    /// packed compressed lanes).
    pub width_bits: u32,
    /// Lane length in values (or *runs*, for per-run kernels — see
    /// [`Entry::unit`]).
    pub rows: usize,
    /// Dispatched-path nanoseconds per element (or per run).
    pub ns_per_elem: f64,
    /// What one "element" is: `"elem"` for kernels scanning a decoded or
    /// packed lane, `"run"` for kernels whose cost is per *run* (RLE
    /// arithmetic never touches the decoded lane).
    pub unit: &'static str,
    /// Effective scan bandwidth of the dispatched path in GB/s
    /// (`rows * width_bits / 8` bytes over the measured time). `None` for
    /// per-run kernels: they read run metadata, not the lane, so a
    /// lane-bytes-over-time "bandwidth" is meaningless (the old report
    /// claimed ~10^5 GB/s here).
    pub gbps: Option<f64>,
    /// Baseline nanoseconds per element: the portable fallback of *this*
    /// binary — i.e. the same loops the shipped artifact runs under
    /// `CASPER_FORCE_SCALAR=1`, compiler-auto-vectorized at the baseline
    /// ISA (SSE2 on x86-64). This is what the binary would do without the
    /// dispatch layer; it is NOT the historical `target-cpu=native`
    /// auto-vectorized build (reproduce that with `cargo native-bench` —
    /// on an AVX-512 host the native-autovec u64 loops land close to the
    /// dispatched kernels, while the packed u8/u16 compressed-lane wins
    /// remain).
    pub scalar_ns_per_elem: f64,
    /// `scalar_ns_per_elem / ns_per_elem`.
    pub speedup: f64,
}

impl Entry {
    /// Build an entry from the two measured per-element times.
    pub fn new(
        kernel: impl Into<String>,
        width_bits: u32,
        rows: usize,
        ns_per_elem: f64,
        scalar_ns_per_elem: f64,
    ) -> Self {
        let bytes = rows as f64 * f64::from(width_bits) / 8.0;
        let total_ns = ns_per_elem * rows as f64;
        Self {
            kernel: kernel.into(),
            width_bits,
            rows,
            ns_per_elem,
            unit: "elem",
            gbps: (total_ns > 0.0).then_some(bytes / total_ns),
            scalar_ns_per_elem,
            speedup: if ns_per_elem > 0.0 {
                scalar_ns_per_elem / ns_per_elem
            } else {
                0.0
            },
        }
    }

    /// An entry for a kernel whose work is proportional to *runs*, not
    /// elements (RLE run arithmetic): reports ns per run and omits the
    /// bandwidth figure entirely.
    pub fn per_run(kernel: impl Into<String>, runs: usize, ns_per_run: f64) -> Self {
        Self {
            kernel: kernel.into(),
            width_bits: 64,
            rows: runs,
            ns_per_elem: ns_per_run,
            unit: "run",
            gbps: None,
            scalar_ns_per_elem: ns_per_run,
            speedup: 1.0,
        }
    }
}

/// Whether this bench invocation is a `--test` smoke run.
pub fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Time `f` (which returns a checksum, black-boxed) and report nanoseconds
/// per element: best of `reps` timed runs after one warm-up call.
pub fn time_per_elem(rows: usize, reps: usize, mut f: impl FnMut() -> u64) -> f64 {
    std::hint::black_box(f());
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        std::hint::black_box(f());
        let ns = t.elapsed().as_nanos() as f64;
        best = best.min(ns);
    }
    best / rows.max(1) as f64
}

/// Measure the plain-lane kernels (u64 keys, the HAP key-column shape) at
/// ~1.5% selectivity: dispatched SIMD vs the portable fallback, asserted
/// bit-identical before timing.
pub fn plain_entries(rows: usize, reps: usize) -> Vec<Entry> {
    let keys: Vec<u64> = (0..rows as u64).map(|v| v * 2).collect();
    let payload: Vec<u32> = (0..rows as u32).map(|k| k % 997).collect();
    let lo = rows as u64 / 2;
    let hi = lo + (rows as u64 * 2) / 64; // ~1.5% of the domain
    let span = hi - lo;
    let target = keys[rows / 3];
    let bits = u64::lane_bits(&keys);

    // Agreement tripwires (run on every invocation, including smoke).
    assert_eq!(
        kernels::count_range(&keys, lo, hi),
        portable::count_window(bits, lo, span),
        "count_range dispatch vs portable"
    );
    let (mut mask_d, mut mask_p) = (Vec::new(), Vec::new());
    kernels::select_range_bitmap(&keys, lo, hi, &mut mask_d);
    portable::bitmap_window(bits, lo, span, &mut mask_p);
    assert_eq!(mask_d, mask_p, "select_range_bitmap dispatch vs portable");
    assert_eq!(
        kernels::sum_payload_range(&keys, &payload, lo, hi),
        portable::sum_window(bits, &payload, lo, span)
    );
    assert_eq!(
        kernels::count_eq(&keys, target),
        portable::count_eq(bits, target)
    );
    assert_eq!(
        kernels::min_max(&keys),
        Some(portable::min_max_flipped(bits, 0))
    );

    let mut out = Vec::new();
    out.push(Entry::new(
        "count_range",
        64,
        rows,
        time_per_elem(rows, reps, || kernels::count_range(&keys, lo, hi)),
        time_per_elem(rows, reps, || portable::count_window(bits, lo, span)),
    ));
    let mut mask = Vec::with_capacity(rows / 64 + 1);
    out.push(Entry::new(
        "select_range_bitmap",
        64,
        rows,
        time_per_elem(rows, reps, || {
            mask.clear();
            kernels::select_range_bitmap(&keys, lo, hi, &mut mask)
        }),
        time_per_elem(rows, reps, || {
            mask.clear();
            portable::bitmap_window(bits, lo, span, &mut mask)
        }),
    ));
    out.push(Entry::new(
        "sum_payload_range",
        64,
        rows,
        time_per_elem(rows, reps, || {
            kernels::sum_payload_range(&keys, &payload, lo, hi).1
        }),
        time_per_elem(rows, reps, || {
            portable::sum_window(bits, &payload, lo, span).1
        }),
    ));
    out.push(Entry::new(
        "count_eq",
        64,
        rows,
        time_per_elem(rows, reps, || kernels::count_eq(&keys, target)),
        time_per_elem(rows, reps, || portable::count_eq(bits, target)),
    ));
    out.push(Entry::new(
        "min_max",
        64,
        rows,
        time_per_elem(rows, reps, || {
            kernels::min_max(&keys).map_or(0, |(a, b)| a ^ b)
        }),
        time_per_elem(rows, reps, || {
            let (a, b) = portable::min_max_flipped(bits, 0);
            a ^ b
        }),
    ));
    out
}

/// Measure the compressed kernels over FoR lanes at every packed width,
/// dictionary lanes at u8/u16 code widths, and the (deliberately scalar)
/// RLE run arithmetic. Baseline is the portable fallback over the same
/// packed lane with the same rebased window.
pub fn compressed_entries(rows: usize, reps: usize) -> Vec<Entry> {
    let mut out = Vec::new();

    // FoR: the data span selects the offset width (§6.2 partitioning
    // synergy — narrow partitions → narrow offsets).
    for (label, bits, domain) in [
        ("for_u8", 8u32, 200u64),
        ("for_u16", 16, 60_000),
        ("for_u32", 32, 3_000_000_000),
    ] {
        let base = 5_000_000u64;
        let data: Vec<u64> = (0..rows as u64)
            .map(|i| base + i.wrapping_mul(2_654_435_761) % domain)
            .collect();
        let frag = ForBlock::encode(&data);
        assert_eq!(frag.width().bytes() as u32 * 8, bits, "{label} width");
        let lo = base + domain / 4;
        let hi = lo + domain / 32; // ~3% of the domain
        let lo_off = lo - base;
        let span = hi - lo;
        let want = data.iter().filter(|&&x| lo <= x && x < hi).count() as u64;
        assert_eq!(compressed::for_count_range(&frag, lo, hi), want, "{label}");

        macro_rules! lane_entries {
            ($lane:expr, $t:ty) => {{
                let lane: &[$t] = $lane;
                let (l, s) = (lo_off as $t, span as $t);
                assert_eq!(portable::count_window(lane, l, s), want, "{label} portable");
                out.push(Entry::new(
                    format!("{label}_count_range"),
                    bits,
                    rows,
                    time_per_elem(rows, reps, || compressed::for_count_range(&frag, lo, hi)),
                    time_per_elem(rows, reps, || portable::count_window(lane, l, s)),
                ));
                let mut mask = Vec::with_capacity(rows / 64 + 1);
                out.push(Entry::new(
                    format!("{label}_select_range_bitmap"),
                    bits,
                    rows,
                    time_per_elem(rows, reps, || {
                        mask.clear();
                        compressed::for_select_range_bitmap(&frag, lo, hi, &mut mask)
                    }),
                    time_per_elem(rows, reps, || {
                        mask.clear();
                        portable::bitmap_window(lane, l, s, &mut mask)
                    }),
                ));
            }};
        }
        match frag.offsets() {
            PackedOffsets::U8(v) => lane_entries!(v, u8),
            PackedOffsets::U16(v) => lane_entries!(v, u16),
            PackedOffsets::U32(v) => lane_entries!(v, u32),
            PackedOffsets::U64(v) => lane_entries!(v, u64),
        }
    }

    // Dictionary: cardinality selects the code width.
    for (label, bits, cardinality) in [("dict_u8", 8u32, 200u64), ("dict_u16", 16, 50_000)] {
        let data: Vec<u64> = (0..rows as u64)
            .map(|i| i.wrapping_mul(2_654_435_761) % cardinality * 300)
            .collect();
        let frag = Dictionary::encode(&data);
        let lo = cardinality * 300 / 4;
        let hi = lo + cardinality * 300 / 32;
        let want = data.iter().filter(|&&x| lo <= x && x < hi).count() as u64;
        assert_eq!(compressed::dict_count_range(&frag, lo, hi), want, "{label}");
        let lo_c = u64::from(frag.lower_bound_code(lo));
        let span_c = u64::from(frag.lower_bound_code(hi)) - lo_c;

        macro_rules! lane_entry {
            ($lane:expr, $t:ty) => {{
                let lane: &[$t] = $lane;
                let (l, s) = (lo_c as $t, span_c as $t);
                out.push(Entry::new(
                    format!("{label}_count_range"),
                    bits,
                    rows,
                    time_per_elem(rows, reps, || compressed::dict_count_range(&frag, lo, hi)),
                    time_per_elem(rows, reps, || portable::count_window(lane, l, s)),
                ));
            }};
        }
        match frag.codes() {
            PackedCodes::U8(v) => lane_entry!(v, u8),
            PackedCodes::U16(v) => lane_entry!(v, u16),
            PackedCodes::U32(v) => lane_entry!(v, u32),
        }
    }

    // RLE stays scalar (two binary searches + prefix-sum subtraction, no
    // per-value work to vectorize) but is benchmarked so regressions show.
    // Its cost is per *run*, and it never touches the decoded lane — so
    // the honest figures are ns/run with no bandwidth (the old per-element
    // accounting divided a handful of binary-search probes by a million
    // rows and reported ~10^5 GB/s).
    {
        let mut data: Vec<u64> = (0..rows as u64).map(|i| i % 4096 * 300).collect();
        data.sort_unstable();
        let frag = Rle::encode(&data);
        let runs = frag.runs().len();
        let ns_per_run = time_per_elem(runs, reps, || {
            compressed::rle_count_range(&frag, 30_000, 600_000)
        });
        out.push(Entry::per_run("rle_count_range", runs, ns_per_run));
    }

    out
}

/// Version of the shared `BENCH_*.json` shape: every trajectory file
/// (`BENCH_scan`, `BENCH_persist`, `BENCH_concurrent`, `BENCH_robust`,
/// `BENCH_obs`) opens with the same header — `bench`,
/// `bench_schema_version`, `smoke` — emitted by one helper, so trend
/// tooling can dispatch on one field instead of sniffing each file's
/// shape. Bump when the common header or a per-file schema changes
/// incompatibly.
pub const BENCH_SCHEMA_VERSION: u32 = 2;

/// Open a trajectory JSON object with the shared header fields.
fn emit_header(out: &mut String, bench: &str, smoke: bool) {
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"{bench}\",");
    let _ = writeln!(out, "  \"bench_schema_version\": {BENCH_SCHEMA_VERSION},");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
}

/// Write a finished trajectory document to `<workspace root>/<file>`.
fn emit_file(file: &str, out: &str) {
    let path = workspace_rooted(file);
    match std::fs::write(&path, out) {
        Ok(()) => eprintln!("[trajectory] wrote {}", path.display()),
        Err(e) => eprintln!("[trajectory] could not write {}: {e}", path.display()),
    }
}

/// Resolve `file` against the workspace root: cargo runs bench binaries
/// with the *package* directory as cwd, so climb until `Cargo.lock` is
/// found (falls back to cwd-relative if it never is).
fn workspace_rooted(file: &str) -> std::path::PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| std::path::PathBuf::from("."));
    for _ in 0..4 {
        if dir.join("Cargo.lock").exists() {
            return dir.join(file);
        }
        if !dir.pop() {
            break;
        }
    }
    std::path::PathBuf::from(file)
}

/// Serialize entries to `<workspace root>/<file>`. Handwritten JSON — the
/// workspace is offline, no serde.
pub fn write_json(file: &str, bench: &str, smoke: bool, entries: &[Entry]) {
    let mut out = String::new();
    emit_header(&mut out, bench, smoke);
    let _ = writeln!(
        out,
        "  \"simd_level\": \"{}\",",
        casper_storage::simd::level().label()
    );
    let _ = writeln!(
        out,
        "  \"scalar_baseline\": \"portable fallback of this binary \
         (CASPER_FORCE_SCALAR=1, baseline-ISA autovec)\","
    );
    let _ = writeln!(out, "  \"entries\": [");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        let gbps = e
            .gbps
            .map_or(String::new(), |g| format!("\"gbps\": {g:.3}, "));
        let _ = writeln!(
            out,
            "    {{\"kernel\": \"{}\", \"width_bits\": {}, \"rows\": {}, \"unit\": \"{}\", \
             \"ns_per_{}\": {:.4}, {}\
             \"scalar_ns_per_{}\": {:.4}, \"speedup\": {:.2}}}{comma}",
            e.kernel,
            e.width_bits,
            e.rows,
            e.unit,
            e.unit,
            e.ns_per_elem,
            gbps,
            e.unit,
            e.scalar_ns_per_elem,
            e.speedup
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    emit_file(file, &out);
}

/// One named scalar metric for the durability trajectory
/// (`BENCH_persist.json`).
#[derive(Debug, Clone)]
pub struct Metric {
    /// Metric name (e.g. `incremental_checkpoint_ms`).
    pub name: String,
    /// Measured value.
    pub value: f64,
    /// Unit label (`ms`, `us`, `ratio`, …).
    pub unit: &'static str,
}

impl Metric {
    /// Build a metric row.
    pub fn new(name: impl Into<String>, value: f64, unit: &'static str) -> Self {
        Self {
            name: name.into(),
            value,
            unit,
        }
    }
}

/// Serialize named metrics to `<workspace root>/<file>` — the durability
/// counterpart of [`write_json`], emitted by the `recovery_time` bench so
/// the perf trajectory covers checkpoints and restore, not just scans.
pub fn write_metrics_json(
    file: &str,
    bench: &str,
    smoke: bool,
    context: &[(&str, u64)],
    metrics: &[Metric],
) {
    let mut out = String::new();
    emit_header(&mut out, bench, smoke);
    for (k, v) in context {
        let _ = writeln!(out, "  \"{k}\": {v},");
    }
    let _ = writeln!(out, "  \"metrics\": [");
    for (i, m) in metrics.iter().enumerate() {
        let comma = if i + 1 < metrics.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"value\": {:.4}, \"unit\": \"{}\"}}{comma}",
            m.name, m.value, m.unit
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    emit_file(file, &out);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_derives_bandwidth_and_speedup() {
        // 1M u64 values at 1 ns/elem = 8 bytes/ns = 8 GB/s.
        let e = Entry::new("count_range", 64, 1 << 20, 1.0, 3.5);
        assert!((e.gbps.expect("lane kernels report bandwidth") - 8.0).abs() < 1e-9);
        assert!((e.speedup - 3.5).abs() < 1e-9);
        // Per-run kernels report no bandwidth at all.
        let r = Entry::per_run("rle_count_range", 4096, 2.0);
        assert_eq!(r.gbps, None);
        assert_eq!(r.unit, "run");
        assert_eq!(r.rows, 4096);
    }

    #[test]
    fn json_shape_is_parsable_ish() {
        let e = Entry::new("k", 8, 100, 0.5, 1.0);
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"kernel\": \"{}\", \"speedup\": {:.2}}}",
            e.kernel, e.speedup
        );
        assert!(s.contains("\"speedup\": 2.00"));
    }

    #[test]
    fn shared_header_carries_schema_version() {
        let mut out = String::new();
        emit_header(&mut out, "scan_ops", true);
        assert!(out.contains("\"bench\": \"scan_ops\""));
        assert!(out.contains(&format!("\"bench_schema_version\": {BENCH_SCHEMA_VERSION}")));
        assert!(out.contains("\"smoke\": true"));
    }

    #[test]
    fn timing_returns_finite_positive() {
        let v: Vec<u64> = (0..1000).collect();
        let ns = time_per_elem(v.len(), 2, || v.iter().sum());
        assert!(ns.is_finite() && ns >= 0.0);
    }
}
