//! # casper-bench
//!
//! Experiment harness reproducing every table and figure of the paper's
//! evaluation (see DESIGN.md §4 for the experiment index). Each
//! `src/bin/figNN_*.rs` binary regenerates one figure:
//!
//! ```text
//! cargo run --release -p casper-bench --bin fig12_throughput
//! ```
//!
//! All binaries accept `--rows=N --ops=N --seed=N` style arguments (and
//! `--help`). Absolute numbers differ from the paper's EC2 testbed; the
//! binaries print the paper's reported values next to the measured ones so
//! the *shapes* can be compared directly (EXPERIMENTS.md records both).

pub mod cli;
pub mod report;
pub mod runner;
pub mod trajectory;

pub use cli::Args;
pub use report::TableReport;
pub use runner::{run_queries, run_queries_batched, RunConfig, RunOutcome};
