//! Aligned text tables + CSV output for experiment results.
//!
//! Every experiment binary prints a human-readable table and, when
//! `--csv=PATH` (or the default under `target/experiments/`) is writable,
//! a machine-readable CSV used to assemble EXPERIMENTS.md.

use std::fmt::Write as _;
use std::io::Write as _;

/// A simple column-aligned report table.
#[derive(Debug, Clone)]
pub struct TableReport {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TableReport {
    /// Start a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (stringified cells).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Convenience: append a row of displayable values.
    pub fn rowd<D: std::fmt::Display>(&mut self, cells: &[D]) {
        self.row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    }

    /// Render the aligned table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            let mut s = String::new();
            for (w, cell) in widths.iter().zip(cells) {
                let _ = write!(s, "{cell:>w$}  ", w = w);
            }
            let _ = writeln!(out, "{}", s.trim_end());
        };
        line(&mut out, &self.header);
        let total: usize = widths.iter().map(|w| w + 2).sum();
        let _ = writeln!(out, "{}", "-".repeat(total.saturating_sub(2)));
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Write a CSV copy under `target/experiments/<name>.csv`, best-effort.
    pub fn write_csv(&self, name: &str) {
        let dir = std::path::Path::new("target/experiments");
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let path = dir.join(format!("{name}.csv"));
        let Ok(mut f) = std::fs::File::create(&path) else {
            return;
        };
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ = writeln!(
            f,
            "{}",
            self.header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                f,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        eprintln!("[csv] wrote {}", path.display());
    }
}

/// Format nanoseconds as microseconds with sensible precision.
pub fn us(nanos: f64) -> String {
    let v = nanos / 1000.0;
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Format an ops/second throughput.
pub fn kops(ops_per_sec: f64) -> String {
    format!("{:.1}", ops_per_sec / 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = TableReport::new("demo", &["name", "value"]);
        t.rowd(&["a", "1"]);
        t.rowd(&["longer-name", "22"]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("longer-name"));
        // Leading blank, title, header, separator, two rows.
        assert_eq!(s.lines().count(), 6);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = TableReport::new("demo", &["a", "b"]);
        t.rowd(&["only-one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(us(1500.0), "1.5");
        assert_eq!(us(150.0), "0.150");
        assert_eq!(us(250_000.0), "250");
        assert_eq!(kops(12_340.0), "12.3");
    }
}
