//! Figure 1 (the headline): point-query / range-query (TPC-H Q6 shape) /
//! insert latency plus workload throughput for three designs — vanilla
//! column store, state-of-the-art sorted+delta, and the Casper optimal
//! layout.
//!
//! Paper shape: the delta-store design beats the vanilla column store by
//! ~1.9× on workload throughput; Casper's tailored layout (fine-grained
//! partitioning + ~1% buffered slack) adds another ~4×.

use casper_bench::report::{kops, us};
use casper_bench::{Args, RunConfig, TableReport};
use casper_engine::{LayoutMode, Table};
use casper_workload::{HapQuery, HapSchema, Mix, MixKind};
use std::time::Instant;

/// The TPC-H Q6 analog (§6.4): key-range filter + payload predicate +
/// arithmetic aggregate over two further columns.
fn q6_like(table: &mut Table, domain: u64, at: u64) -> u64 {
    let span = domain / 50; // ~2% selectivity, Q6's shipdate year
    let lo = at.min(domain - span);
    let out = table
        .multi_column_sum(lo, lo + span, &[1, 2], 3, 0, 40_000)
        .expect("in-memory benchmark table cannot surface corrupt chunks");
    out.result.scalar()
}

fn main() {
    let args = Args::parse();
    args.usage(
        "fig01_headline",
        "Fig. 1: vanilla vs delta-store vs Casper on a hybrid workload",
        &[
            ("rows=N", "initial table rows (default 1M)"),
            ("ops=N", "measured mixed operations (default 5000)"),
            ("seed=N", "workload seed"),
        ],
    );
    let rc = RunConfig::from_args(&args);
    let modes = [
        (LayoutMode::NoOrder, "vanilla column-store"),
        (LayoutMode::StateOfArt, "col-store with delta"),
        (LayoutMode::Casper, "optimal layout (Casper)"),
    ];
    let mix = Mix::new(MixKind::HybridPointSkewed, HapSchema::narrow(), rc.rows);
    let domain = mix.generator().domain();
    let queries = mix.generate(rc.ops, rc.seed);

    let mut report = TableReport::new(
        format!(
            "Fig. 1 — headline comparison (rows={}, ops={})",
            rc.rows, rc.ops
        ),
        &[
            "design",
            "point q us",
            "range q (Q6) us",
            "insert us",
            "kops",
        ],
    );
    let mut throughputs = Vec::new();
    for (mode, label) in modes {
        eprintln!("[fig01] building {label}");
        let mut table = casper_bench::runner::build_table(&mix, mode, &rc);
        // Dedicated latency probes (paper reports per-op latency bars).
        let probe = |table: &mut Table, n: u64, f: &dyn Fn(&mut Table, u64) -> u64| {
            let t = Instant::now();
            let mut acc = 0u64;
            for i in 0..n {
                acc = acc.wrapping_add(f(table, (i * 7919) % domain));
            }
            std::hint::black_box(acc);
            t.elapsed().as_nanos() as f64 / n as f64
        };
        let pq_ns = probe(&mut table, 200, &|t, v| {
            t.execute(&HapQuery::Q1 { v: v & !1, k: 4 })
                .expect("q1")
                .result
                .scalar()
        });
        let rq_ns = probe(&mut table, 50, &|t, v| q6_like(t, domain, v));
        let ins_ns = probe(&mut table, 200, &|t, v| {
            let key = v | 1;
            t.execute(&HapQuery::Q4 {
                key,
                payload: HapSchema::narrow().payload_row(key),
            })
            .expect("q4")
            .result
            .scalar()
        });
        // Mixed-workload throughput.
        let out = casper_bench::runner::run_queries(&mut table, &queries);
        throughputs.push(out.throughput);
        report.row(&[
            label.to_string(),
            us(pq_ns),
            us(rq_ns),
            us(ins_ns),
            kops(out.throughput),
        ]);
    }
    report.print();
    report.write_csv("fig01_headline");
    println!(
        "\nSpeedups vs vanilla: delta-store {:.2}x (paper ~1.9x), Casper {:.2}x (paper ~8x).",
        throughputs[1] / throughputs[0].max(1e-9),
        throughputs[2] / throughputs[0].max(1e-9),
    );
}
