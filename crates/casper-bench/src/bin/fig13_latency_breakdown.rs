//! Figure 13: per-operation latency and overall throughput for three
//! workloads × six layouts:
//!
//! * (a) hybrid, skewed — Q1 49% / Q4 50% / Q6 1%;
//! * (b) read-only, skewed — Q1 94% / Q2 5% / Q6 1%;
//! * (c) update-only, uniform — Q4 80% / Q5 19% / Q6 1%.
//!
//! Paper shape: (a) Casper's inserts are orders of magnitude faster than
//! every other layout without hurting Q1; (b) Casper matches the
//! state-of-the-art; (c) Casper ≥ 2× everyone.

use casper_bench::report::{kops, us};
use casper_bench::{Args, RunConfig, TableReport};
use casper_engine::LayoutMode;
use casper_workload::MixKind;

fn main() {
    let args = Args::parse();
    args.usage(
        "fig13_latency_breakdown",
        "Fig. 13: per-op latency + throughput for 3 workloads x 6 layouts",
        &[
            ("rows=N", "initial table rows (default 1M)"),
            ("ops=N", "measured operations (default 5000)"),
            ("seed=N", "workload seed"),
        ],
    );
    let rc = RunConfig::from_args(&args);
    let panels: [(&str, MixKind, [usize; 3]); 3] = [
        ("(a) hybrid skewed", MixKind::HybridPointSkewed, [0, 3, 5]),
        ("(b) read-only skewed", MixKind::ReadOnlySkewed, [0, 1, 5]),
        (
            "(c) update-only uniform",
            MixKind::UpdateOnlyUniform,
            [3, 4, 5],
        ),
    ];
    let class_names = ["Q1", "Q2", "Q3", "Q4", "Q5", "Q6"];
    let modes = [
        LayoutMode::Casper,
        LayoutMode::EquiGV,
        LayoutMode::Equi,
        LayoutMode::StateOfArt,
        LayoutMode::Sorted,
        LayoutMode::NoOrder,
    ];

    for (panel, kind, classes) in panels {
        let header: Vec<String> = std::iter::once("layout".to_string())
            .chain(classes.iter().map(|&c| format!("{} us", class_names[c])))
            .chain(["kops".to_string()])
            .collect();
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut report =
            TableReport::new(format!("Fig. 13 {panel} — {}", kind.label()), &header_refs);
        for mode in modes {
            eprintln!("[fig13] {panel}: {}", mode.label());
            let out = casper_bench::runner::run_mix(kind, mode, &rc);
            let mut cells = vec![mode.label().to_string()];
            for &c in &classes {
                cells.push(
                    out.latencies
                        .summary(c)
                        .map(|s| us(s.mean_ns))
                        .unwrap_or_else(|| "-".into()),
                );
            }
            cells.push(kops(out.throughput));
            report.row(&cells);
        }
        report.print();
        report.write_csv(&format!("fig13_{}", panel.chars().nth(1).unwrap_or('x')));
    }
}
