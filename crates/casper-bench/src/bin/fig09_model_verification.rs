//! Figure 9: cost-model verification (§4.5).
//!
//! * (a) inserts — a chunk with equal partitions; measured insert latency
//!   per target partition vs the model's `(RR+RW)·(1 + trail_parts)`.
//!   The paper uses a 10M-value chunk with 100 partitions.
//! * (b) point queries — 15 partitions of exponentially increasing size
//!   (2^9 … 2^22 values); measured latency vs `RR + SR·(blocks−1)`.
//!
//! Constants come from the host micro-benchmark (§4.5), so the ratio
//! column should hover near 1.0 — that is the reproduction target, not the
//! absolute numbers.

use casper_bench::{Args, TableReport};
use casper_core::cost::{
    predicted_insert_nanos, predicted_point_access, predicted_point_query_nanos,
    predicted_range_access, RangePartKind,
};
use casper_engine::calibrate::{calibrate, CalibrationConfig};
use casper_storage::ghost::GhostPlan;
use casper_storage::kernels::{self, Fragment};
use casper_storage::{BlockLayout, ChunkConfig, PartitionSpec, PartitionedChunk, StorageMode};
use std::time::Instant;

/// Least-squares fit of `measured ≈ a + b·x` (the §4.5 "fitted constants"
/// step: the model's free parameters are fitted to the operation
/// micro-benchmark, then the linear relation is verified).
fn fit_linear(points: &[(f64, f64)]) -> (f64, f64) {
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let b = (n * sxy - sx * sy) / (n * sxx - sx * sx).max(1e-12);
    let a = (sy - b * sx) / n;
    (a, b)
}

fn panel_a(values: usize, partitions: usize) {
    let layout = BlockLayout::new::<u64>(16 * 1024);
    let n_blocks = layout.num_blocks(values);
    let spec = PartitionSpec::equi_width(n_blocks, partitions);
    let k = spec.partition_count();
    let mut chunk = PartitionedChunk::build(
        (0..values as u64).map(|v| v * 2).collect(),
        &spec,
        layout,
        &GhostPlan::none(k),
        ChunkConfig {
            capacity_slack: 0.2,
            ..ChunkConfig::dense()
        },
    )
    .expect("build");
    let per_part = 2 * values as u64 / k as u64;
    let samples = 40usize;
    let step = (k / 25).max(1);
    // Warm pass: touch every sampled partition once so first-touch page
    // faults do not pollute the first measurement.
    for m in (0..k).step_by(step) {
        let base = m as u64 * per_part;
        for i in 0..4u64 {
            let v = (base + (i * 7121) % per_part) | 1;
            chunk.insert(v, &[]).expect("warm insert");
        }
    }
    // Measure, then fit the model's (RR+RW) constant to the measurements,
    // as §4.5 does.
    let mut measured_us: Vec<(usize, f64)> = Vec::new();
    for m in (0..k).step_by(step) {
        // Values that land inside partition m (odd keys → always fresh).
        let base = m as u64 * per_part;
        let t = Instant::now();
        for i in 0..samples as u64 {
            let v = (base + (i * 2909) % per_part) | 1;
            chunk.insert(v, &[]).expect("insert");
        }
        measured_us.push((m, t.elapsed().as_nanos() as f64 / samples as f64 / 1000.0));
    }
    // measured ≈ (RR+RW)·(1 + (k − m)): fit against trail = k − m.
    let pts: Vec<(f64, f64)> = measured_us
        .iter()
        .map(|&(m, us)| ((1 + k - m) as f64, us * 1000.0))
        .collect();
    let (_, slope) = fit_linear(&pts);
    let fitted =
        casper_core::CostConstants::new((slope / 2.0).max(0.1), (slope / 2.0).max(0.1), 1.0, 1.0);
    println!(
        "fitted (RR+RW) from insert measurements: {:.1} ns per partition step",
        slope
    );
    let mut report = TableReport::new(
        format!("Fig. 9a — insert cost vs partition id ({values} values, {k} partitions)"),
        &["partition", "measured us", "model us", "ratio"],
    );
    for &(m, us) in &measured_us {
        let model = predicted_insert_nanos(&fitted, k, m);
        report.row(&[
            m.to_string(),
            format!("{:.2}", us),
            format!("{:.2}", model / 1000.0),
            format!("{:.2}", us * 1000.0 / model),
        ]);
    }
    report.print();
    report.write_csv("fig09a_inserts");
}

fn panel_b() {
    // 15 partitions of exponentially increasing size: 2^9 .. 2^22 values
    // (scaled down by --scale for quick runs).
    let layout = BlockLayout::new::<u64>(4096); // 512 values/block
    let sizes_values: Vec<usize> = (9..=22).map(|e| 1usize << e).collect();
    let total: usize = sizes_values.iter().sum();
    let vpb = layout.values_per_block();
    let sizes_blocks: Vec<usize> = sizes_values
        .iter()
        .map(|&s| s.div_ceil(vpb).max(1))
        .collect();
    let spec = PartitionSpec::from_block_sizes(&sizes_blocks);
    let values_total = spec.n_blocks() * vpb;
    let _ = total;
    let chunk = PartitionedChunk::build(
        (0..values_total as u64).map(|v| v * 2).collect(),
        &spec,
        layout,
        &GhostPlan::none(spec.partition_count()),
        ChunkConfig::default(),
    )
    .expect("build");
    // Measure per-partition point queries, then fit RR (intercept) and SR
    // (slope per block) to the measurements, as §4.5 does.
    let parts = chunk.partitions().to_vec();
    let mut measured_ns: Vec<(usize, usize, f64)> = Vec::new(); // (partition, blocks, ns)
    for (p, meta) in parts.iter().enumerate() {
        let samples = 30u64;
        let lo = meta.min;
        let hi = meta.max;
        let t = Instant::now();
        let mut acc = 0usize;
        for i in 0..samples {
            let v = (lo + ((i * 6271) % (hi - lo + 1))) & !1;
            acc += chunk.point_query(v).positions.len();
        }
        std::hint::black_box(acc);
        let blocks = meta.len.div_ceil(vpb).max(1);
        measured_ns.push((p, blocks, t.elapsed().as_nanos() as f64 / samples as f64));
    }
    let pts: Vec<(f64, f64)> = measured_ns
        .iter()
        .map(|&(_, blocks, ns)| ((blocks - 1) as f64, ns))
        .collect();
    let (intercept, slope) = fit_linear(&pts);
    // A near-zero (or negative) fitted intercept degenerates the 1-block
    // prediction; fall back to the smallest measured partition's latency.
    let intercept = if intercept > 1.0 {
        intercept
    } else {
        measured_ns[0].2
    };
    let fitted =
        casper_core::CostConstants::new(intercept, intercept, slope.max(0.1), slope.max(0.1));
    println!(
        "fitted from point-query measurements: RR = {:.0} ns, SR = {:.0} ns per 4KB block",
        intercept.max(1.0),
        slope
    );
    let mut report = TableReport::new(
        format!(
            "Fig. 9b — point query cost vs partition size ({} partitions, {} values)",
            spec.partition_count(),
            values_total
        ),
        &[
            "partition",
            "part values",
            "measured us",
            "model us",
            "ratio",
        ],
    );
    for &(p, blocks, ns) in &measured_ns {
        let model = predicted_point_query_nanos(&fitted, blocks);
        report.row(&[
            p.to_string(),
            parts[p].len.to_string(),
            format!("{:.2}", ns / 1000.0),
            format!("{:.2}", model / 1000.0),
            format!("{:.2}", ns / model),
        ]);
    }
    report.print();
    report.write_csv("fig09b_point_queries");
}

fn panel_c(values: usize) {
    // Compressed-scan verification: the §6.2 claim that scans over encoded
    // fragments beat decode-then-scan (target ≥ 1.5x) and track the byte
    // reduction the cost model now charges (`charge_compressed_scan`).
    let data: Vec<u64> = (0..values as u64)
        .map(|i| 5_000_000 + i.wrapping_mul(2_654_435_761) % 60_000)
        .collect();
    let (lo, hi) = (5_010_000u64, 5_040_000u64);
    let reps = 30u32;
    let expect = kernels::count_range(&data, lo, hi);
    let mut report = TableReport::new(
        format!("Fig. 9c — compressed count_range vs decode-then-scan ({values} values)"),
        &[
            "codec",
            "kernel us",
            "decode+scan us",
            "speedup",
            "bytes ratio",
        ],
    );
    for mode in [StorageMode::For, StorageMode::Dict, StorageMode::Rle] {
        let frag = Fragment::encode(mode, &data).expect("compressed mode");
        assert_eq!(frag.count_range(lo, hi), expect, "{mode:?} bit-exactness");
        let t = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(frag.count_range(lo, hi));
        }
        let kernel_us = t.elapsed().as_nanos() as f64 / f64::from(reps) / 1000.0;
        let t = Instant::now();
        for _ in 0..reps {
            let decoded = frag.decode();
            std::hint::black_box(kernels::count_range(&decoded, lo, hi));
        }
        let decode_us = t.elapsed().as_nanos() as f64 / f64::from(reps) / 1000.0;
        report.row(&[
            mode.label().to_string(),
            format!("{kernel_us:.1}"),
            format!("{decode_us:.1}"),
            format!("{:.1}x", decode_us / kernel_us.max(1e-9)),
            format!("{:.2}", (values * 8) as f64 / frag.encoded_bytes() as f64),
        ]);
    }
    report.print();
    report.write_csv("fig09c_compressed_scans");
}

fn panel_d(values: usize) {
    // Kernel-aware access-model verification: the zone-map fast paths
    // (pruned misses, blind first/last partitions) are *asserted equal* to
    // the measured OpCost block counts — not just "ratio near 1". Keys are
    // even so every partition's zone has in-between gap values to probe.
    let layout = BlockLayout::new::<u64>(4096);
    let vpb = layout.values_per_block();
    let k = 16usize;
    let blocks_per_part = values.div_ceil(vpb * k).max(1);
    let spec = PartitionSpec::from_block_sizes(&vec![blocks_per_part; k]);
    let total_values = spec.n_blocks() * vpb;
    let chunk = PartitionedChunk::build(
        (0..total_values as u64).map(|v| v * 2).collect(),
        &spec,
        layout,
        &GhostPlan::none(k),
        ChunkConfig::default(),
    )
    .expect("build");
    let parts = chunk.partitions().to_vec();
    let zones = chunk.zones().to_vec();
    let live_blocks =
        |p: usize| -> u64 { ((parts[p].live_end() - 1) / vpb - parts[p].start / vpb + 1) as u64 };

    let mut report = TableReport::new(
        format!("Fig. 9d — kernel-aware access model, exact equality ({total_values} values, {k} partitions)"),
        &["scan", "measured RR/SR", "model RR/SR", "exact"],
    );
    let mut check =
        |label: String, cost: casper_storage::OpCost, pred: casper_core::cost::ScanAccess| {
            let exact = pred.matches(&cost);
            report.row(&[
                label.clone(),
                format!("{}/{}", cost.random_reads, cost.seq_reads),
                format!("{}/{}", pred.random_reads, pred.seq_reads),
                if exact { "yes".into() } else { "NO".into() },
            ]);
            assert!(exact, "{label}: model diverged from measurement");
        };

    // Pruned point miss: the odd key just past partition 3's zone routes
    // into partition 4's covering range but misses its (all-even) zone.
    let miss = zones[3].max + 1;
    let r = chunk.point_query(miss);
    assert!(r.positions.is_empty());
    check(
        "point, zone-pruned miss".into(),
        r.cost,
        predicted_point_access(false, live_blocks(4)),
    );
    // In-zone point hit pays the full partition scan.
    let r = chunk.point_query(zones[5].min);
    check(
        "point, in-zone hit".into(),
        r.cost,
        predicted_point_access(true, live_blocks(5)),
    );
    // Full-cover range: every partition blind, first/last included.
    let (_, cost) = chunk.range_count(0, u64::MAX);
    let all_blind: Vec<RangePartKind> = (0..k)
        .map(|p| RangePartKind::Blind {
            blocks: live_blocks(p),
        })
        .collect();
    check(
        "range, all partitions blind".into(),
        cost,
        predicted_range_access(&all_blind),
    );
    // Clipped range: filtered first and last, blind middles.
    let (_, cost) = chunk.range_count(zones[2].min + 2, zones[6].min + 2);
    let clipped: Vec<RangePartKind> = (2..=6)
        .map(|p| {
            if p == 2 || p == 6 {
                RangePartKind::Filtered {
                    blocks: live_blocks(p),
                }
            } else {
                RangePartKind::Blind {
                    blocks: live_blocks(p),
                }
            }
        })
        .collect();
    check(
        "range, clipped first/last".into(),
        cost,
        predicted_range_access(&clipped),
    );
    // Gap range: between partition 4's zone and partition 5's — inside the
    // covering ranges but outside every zone, so the whole scan prunes to
    // zero blocks.
    let (n, cost) = chunk.range_count(zones[4].max + 1, zones[4].max + 2);
    assert_eq!(n, 0);
    check(
        "range, fully zone-pruned".into(),
        cost,
        predicted_range_access(&[RangePartKind::Pruned]),
    );
    report.print();
    report.write_csv("fig09d_kernel_access");
}

fn main() {
    let args = Args::parse();
    args.usage(
        "fig09_model_verification",
        "Fig. 9: measured vs modeled insert and point-query cost",
        &[
            ("values=N", "chunk values for panel (a) (default 10M)"),
            ("partitions=N", "partitions for panel (a) (default 100)"),
            ("quick", "use a small calibration buffer"),
        ],
    );
    let cal = if args.flag("quick") {
        CalibrationConfig::quick()
    } else {
        CalibrationConfig::default()
    };
    eprintln!("[fig09] calibrating generic memory constants (§4.5)…");
    let constants = calibrate(&cal);
    println!(
        "memory micro-benchmark: RR={:.1}ns RW={:.1}ns SR={:.1}ns/blk SW={:.1}ns/blk",
        constants.rr, constants.rw, constants.sr, constants.sw,
    );
    println!("(the model constants below are then FITTED to the measured operations, per §4.5)");
    panel_a(
        args.usize_or("values", 10_000_000),
        args.usize_or("partitions", 100),
    );
    panel_b();
    panel_c(args.usize_or("scan_values", 1 << 20));
    panel_d(args.usize_or("scan_values", 1 << 20));
    println!(
        "\nShape check: panel (a) latency decreases linearly with the partition id\n\
         (fewer trailing partitions), panel (b) increases linearly with the\n\
         partition size; ratios should be O(1) across two decades; panel (c)\n\
         compressed kernels should beat decode-then-scan by ≥ 1.5x; panel (d)\n\
         asserts the kernel-aware access model EQUALS the measured block\n\
         counts on pruned/blind/filtered scans."
    );
}
