//! Telemetry overhead gate: enabled-vs-disabled cost of `casper-obs` on
//! the two hot paths the instrumentation touches most, recorded in
//! `BENCH_obs.json`.
//!
//! Two workloads, A/B-measured in interleaved rounds (so clock drift and
//! frequency scaling hit both arms equally), gated on the median of the
//! per-round paired overheads:
//!
//! 1. **Scan** — full-table Q2 range count + Q3 range sum over a 1M-row
//!    table (the `scan_ops` shape). Exercises the per-query timer, the
//!    routed/pruned chunk counters, and the drift-observed accounting.
//! 2. **Concurrent reads** — 4 `TableReader` threads running a fixed
//!    number of point/range queries each over pinned snapshots
//!    (the `concurrent_load` shape). Exercises the sharded counters under
//!    contention.
//!
//! The gate: telemetry **enabled** may cost at most 2% over **disabled**
//! on both workloads (the disabled arm still runs the instrumented
//! binary — one relaxed atomic load per site). Smoke mode shrinks sizes
//! and loosens the gate to 50%: a CI container's noisy neighbours make a
//! 2% timing assertion meaningless at smoke scale, but an accidental
//! always-on lock or allocation in the disabled path still trips it.
//!
//! ```text
//! cargo run --release --bin obs_overhead             # full gate (≤2%)
//! cargo run --release --bin obs_overhead -- --smoke  # CI-sized (≤50%)
//! ```

use casper_bench::trajectory::{self, Metric};
use casper_bench::{Args, TableReport};
use casper_engine::{EngineConfig, LayoutMode, Table, TableReader};
use casper_workload::{HapQuery, HapSchema};
use std::time::Instant;

fn build_table(rows: u64) -> Table {
    let schema = HapSchema::narrow();
    let keys: Vec<u64> = (0..rows).map(|i| i * 2).collect();
    let payload_cols: Vec<Vec<u32>> = (0..schema.payload_cols)
        .map(|c| {
            keys.iter()
                .map(|&k| (k as u32).wrapping_mul(c as u32 + 1))
                .collect()
        })
        .collect();
    let mut config = EngineConfig::for_mode(LayoutMode::Casper);
    config.chunk_values = (rows as usize / 32).clamp(1024, 1 << 20);
    Table::load(schema, keys, payload_cols, config)
}

/// One timed pass of the scan workload; returns total nanoseconds.
fn scan_pass(table: &mut Table, domain: u64, iters: usize) -> f64 {
    let q2 = HapQuery::Q2 { vs: 0, ve: domain };
    let q3 = HapQuery::Q3 {
        vs: domain / 4,
        ve: domain / 4 + domain / 2,
        k: 2,
    };
    let t = Instant::now();
    for _ in 0..iters {
        let a = table.execute(&q2).expect("scan q2");
        let b = table.execute(&q3).expect("scan q3");
        std::hint::black_box(a.result.scalar() ^ b.result.scalar());
    }
    t.elapsed().as_nanos() as f64
}

/// One timed pass of the concurrent-read workload: `readers` threads each
/// run `iters` queries against pinned snapshots; returns total nanoseconds
/// (wall clock across all threads).
fn concurrent_pass(handle: &TableReader, domain: u64, readers: usize, iters: usize) -> f64 {
    let span = (domain / 100).max(2);
    let t = Instant::now();
    std::thread::scope(|scope| {
        for r in 0..readers {
            let handle = handle.clone();
            scope.spawn(move || {
                // Cheap deterministic sequence; per-thread offset keeps the
                // reader queries from striding in lockstep.
                let mut x = 0x9E37_79B9u64.wrapping_mul(r as u64 + 1) | 1;
                let mut acc = 0u64;
                for i in 0..iters {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let at = x % domain.saturating_sub(span);
                    let q = if i % 2 == 0 {
                        HapQuery::Q1 { v: at & !1, k: 4 }
                    } else {
                        HapQuery::Q2 {
                            vs: at,
                            ve: at + span,
                        }
                    };
                    let o = handle.execute(&q).expect("snapshot read");
                    acc ^= o.result.scalar();
                }
                std::hint::black_box(acc);
            });
        }
    });
    t.elapsed().as_nanos() as f64
}

/// One A/B comparison: per-arm nanoseconds plus the gated overhead figure.
struct AbResult {
    /// Fastest disabled-arm pass (reporting only).
    best_off: f64,
    /// Fastest enabled-arm pass (reporting only).
    best_on: f64,
    /// Median of the per-round paired overheads — the gated statistic.
    median_pct: f64,
}

/// Interleaved A/B: each round runs `pass` once per arm back to back and
/// yields one paired overhead percentage; the gate uses the **median**
/// across rounds.
///
/// Two deliberate choices for a noisy shared machine: the arm order flips
/// every round (off/on, on/off, …) because boost-clock decay makes
/// whichever arm runs second in a pair slightly slower, and a fixed order
/// turns that into systematic bias; and the median of paired rounds —
/// unlike a ratio of per-arm minima — stays honest when a noisy neighbour
/// inflates a minority of rounds for seconds at a time.
fn ab_measure(rounds: usize, mut pass: impl FnMut() -> f64) -> AbResult {
    // Warm both arms once (hydration, page faults, branch predictors).
    casper_obs::disable();
    pass();
    casper_obs::enable();
    pass();
    let (mut best_off, mut best_on) = (f64::INFINITY, f64::INFINITY);
    let mut pcts = Vec::with_capacity(rounds);
    for r in 0..rounds.max(1) {
        let mut arm = |on: bool| -> f64 {
            if on {
                casper_obs::enable();
            } else {
                casper_obs::disable();
            }
            pass()
        };
        let (off, on) = if r % 2 == 0 {
            let off = arm(false);
            (off, arm(true))
        } else {
            let on = arm(true);
            (arm(false), on)
        };
        best_off = best_off.min(off);
        best_on = best_on.min(on);
        pcts.push(overhead_pct(off, on));
    }
    casper_obs::disable();
    pcts.sort_by(f64::total_cmp);
    AbResult {
        best_off,
        best_on,
        median_pct: pcts[pcts.len() / 2],
    }
}

fn overhead_pct(off: f64, on: f64) -> f64 {
    (on - off) / off.max(1.0) * 100.0
}

/// [`ab_measure`] with one retry if the first attempt lands over the gate:
/// a sustained noise burst can poison even the median, but a genuine
/// always-on cost in the disabled path fails both attempts.
fn ab_measure_gated(rounds: usize, gate_pct: f64, mut pass: impl FnMut() -> f64) -> AbResult {
    let first = ab_measure(rounds, &mut pass);
    if first.median_pct <= gate_pct {
        return first;
    }
    eprintln!(
        "obs_overhead: first attempt {:+.2}% over gate, retrying once",
        first.median_pct
    );
    ab_measure(rounds, &mut pass)
}

fn main() {
    let args = Args::parse();
    args.usage(
        "obs_overhead",
        "Telemetry overhead gate: enabled-vs-disabled cost on scan and concurrent reads",
        &[
            ("rows=N", "table rows (default 1M)"),
            ("rounds=N", "interleaved A/B rounds, median-of (default 7)"),
            ("readers=N", "concurrent reader threads (default 4)"),
            (
                "smoke",
                "CI smoke mode: tiny sizes, 50% sanity gate instead of 2%",
            ),
        ],
    );
    let smoke = args.flag("smoke");
    let rows = args.u64_or("rows", if smoke { 50_000 } else { 1_000_000 });
    let rounds = args.u64_or("rounds", if smoke { 3 } else { 7 }) as usize;
    let readers = args.u64_or("readers", 4).max(1) as usize;
    // Pass lengths sized so one timed pass runs tens of milliseconds: short
    // passes (a few ms) put scheduler jitter at the same magnitude as the
    // 2% gate and make the comparison meaningless.
    let scan_iters = if smoke { 4 } else { 100 };
    let read_iters = if smoke { 2_000 } else { 50_000 };
    let gate_pct = if smoke { 50.0 } else { 2.0 };

    // Engage once up front so the registry exists; the A/B loop then
    // toggles only the engagement flag — exactly the path production pays.
    casper_obs::enable();
    casper_obs::disable();

    let mut table = build_table(rows);
    let domain = 2 * rows;

    let scan = ab_measure_gated(rounds, gate_pct, || {
        scan_pass(&mut table, domain, scan_iters)
    });
    let (scan_off, scan_on, scan_pct) = (scan.best_off, scan.best_on, scan.median_pct);

    let handle = table.reader();
    let conc = ab_measure_gated(rounds, gate_pct, || {
        concurrent_pass(&handle, domain, readers, read_iters)
    });
    let (conc_off, conc_on, conc_pct) = (conc.best_off, conc.best_on, conc.median_pct);

    let scan_queries = (scan_iters * 2) as f64;
    let conc_queries = (readers * read_iters) as f64;
    let mut report = TableReport::new(
        format!("Telemetry overhead — {rows} rows, median of {rounds} interleaved rounds"),
        &["workload", "disabled ns/q", "enabled ns/q", "overhead"],
    );
    report.row(&[
        "scan".into(),
        format!("{:.0}", scan_off / scan_queries),
        format!("{:.0}", scan_on / scan_queries),
        format!("{scan_pct:+.2}%"),
    ]);
    report.row(&[
        format!("concurrent x{readers}"),
        format!("{:.0}", conc_off / conc_queries),
        format!("{:.0}", conc_on / conc_queries),
        format!("{conc_pct:+.2}%"),
    ]);
    report.print();

    trajectory::write_metrics_json(
        "BENCH_obs.json",
        "obs_overhead",
        smoke,
        &[
            ("rows", rows),
            ("rounds", rounds as u64),
            ("readers", readers as u64),
        ],
        &[
            Metric::new("scan_disabled_ns_per_query", scan_off / scan_queries, "ns"),
            Metric::new("scan_enabled_ns_per_query", scan_on / scan_queries, "ns"),
            Metric::new("scan_overhead_pct", scan_pct, "pct"),
            Metric::new(
                "concurrent_disabled_ns_per_query",
                conc_off / conc_queries,
                "ns",
            ),
            Metric::new(
                "concurrent_enabled_ns_per_query",
                conc_on / conc_queries,
                "ns",
            ),
            Metric::new("concurrent_overhead_pct", conc_pct, "pct"),
            Metric::new("gate_pct", gate_pct, "pct"),
        ],
    );

    assert!(
        scan_pct <= gate_pct,
        "telemetry overhead gate: scan path {scan_pct:+.2}% > {gate_pct}%"
    );
    assert!(
        conc_pct <= gate_pct,
        "telemetry overhead gate: concurrent read path {conc_pct:+.2}% > {gate_pct}%"
    );
    println!(
        "\nOverhead gate OK: scan {scan_pct:+.2}%, concurrent {conc_pct:+.2}% \
         (limit {gate_pct}%)"
    );
}
