//! Table 1: the column-layout design space — data organization
//! {insertion order, sorted, partitioned} × update policy {in-place,
//! out-of-place, hybrid} × buffering {none, global, per-partition}.
//!
//! Each engine mode instantiates one cell combination; this binary prints
//! the mapping and exercises every mode on the same small hybrid workload
//! to show all nine design-space dimensions are live code paths.

use casper_bench::report::kops;
use casper_bench::{Args, RunConfig, TableReport};
use casper_engine::LayoutMode;
use casper_workload::MixKind;

fn main() {
    let args = Args::parse();
    args.usage(
        "table01_design_space",
        "Table 1: design space coverage across the six engine modes",
        &[
            ("rows=N", "initial table rows (default 1M)"),
            ("ops=N", "operations per mode (default 5000)"),
        ],
    );
    let rc = RunConfig::from_args(&args);
    let rows: [(&str, LayoutMode, &str, &str, &str); 6] = [
        (
            "No Order",
            LayoutMode::NoOrder,
            "insertion order",
            "in-place",
            "none",
        ),
        ("Sorted", LayoutMode::Sorted, "sorted", "in-place", "none"),
        (
            "State-of-art",
            LayoutMode::StateOfArt,
            "sorted",
            "out-of-place",
            "global (delta)",
        ),
        ("Equi", LayoutMode::Equi, "partitioned", "in-place", "none"),
        (
            "Equi-GV",
            LayoutMode::EquiGV,
            "partitioned",
            "hybrid",
            "per-partition",
        ),
        (
            "Casper",
            LayoutMode::Casper,
            "partitioned (optimal)",
            "hybrid",
            "per-partition (Eq. 18)",
        ),
    ];
    let mut report = TableReport::new(
        "Table 1 — design space of column layouts, instantiated",
        &[
            "mode",
            "data organization",
            "update policy",
            "buffering",
            "kops (hybrid)",
        ],
    );
    for (label, mode, org, policy, buffering) in rows {
        eprintln!("[table01] {label}");
        let out = casper_bench::runner::run_mix(MixKind::HybridPointSkewed, mode, &rc);
        report.row(&[
            label.to_string(),
            org.to_string(),
            policy.to_string(),
            buffering.to_string(),
            kops(out.throughput),
        ]);
    }
    report.print();
    report.write_csv("table01_design_space");
}
