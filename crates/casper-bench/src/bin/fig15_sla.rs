//! Figure 15: meeting insert-latency SLAs on a hybrid workload
//! (Q1 89% / Q4 10% / Q6 1%).
//!
//! The SLA translates to a cap on partitions via Eq. 21
//! (`Σp ≤ SLA/(RR+RW) − 1`). The paper sweeps insert SLAs from None down
//! to 1.5 µs and observes: insert latency tracks the SLA, overall
//! throughput barely moves (< 3%), and update (Q6) latency *rises* as the
//! SLA tightens (fewer partitions → costlier point probes inside Q6).

use casper_bench::report::{kops, us};
use casper_bench::{Args, RunConfig, TableReport};
use casper_core::solver::sla;
use casper_core::{CostConstants, SolverConstraints};
use casper_engine::LayoutMode;
use casper_workload::MixKind;

fn main() {
    let args = Args::parse();
    args.usage(
        "fig15_sla",
        "Fig. 15: insert-SLA sweep on the hybrid Q1/Q4/Q6 workload",
        &[
            ("rows=N", "initial table rows (default 1M)"),
            ("ops=N", "measured operations (default 5000)"),
            ("seed=N", "workload seed"),
        ],
    );
    let mut rc = RunConfig::from_args(&args);
    let constants = CostConstants::paper();
    // The paper's x-axis, in µs (None = unconstrained).
    let slas_us: [Option<f64>; 9] = [
        None,
        Some(12.5),
        Some(10.0),
        Some(7.5),
        Some(6.25),
        Some(3.75),
        Some(2.5),
        Some(2.0),
        Some(1.5),
    ];
    let mut report = TableReport::new(
        "Fig. 15 — insert SLA sweep (Q1 89% / Q4 10% / Q6 1%)",
        &[
            "insert SLA us",
            "max parts",
            "Q1 us",
            "Q4 us",
            "Q4 p99.9 us",
            "Q6 us",
            "kops",
        ],
    );
    for sla_us in slas_us {
        let (label, max_parts) = match sla_us {
            None => ("None".to_string(), None),
            Some(v) => (
                format!("{v}"),
                Some(sla::max_partitions_for_update_sla(&constants, v * 1000.0)),
            ),
        };
        rc.constraints = SolverConstraints {
            max_partitions: max_parts,
            max_partition_blocks: None,
        };
        eprintln!("[fig15] SLA {label} -> max partitions {max_parts:?}");
        let out = casper_bench::runner::run_mix(MixKind::SlaHybrid, LayoutMode::Casper, &rc);
        let cell = |c: usize| {
            out.latencies
                .summary(c)
                .map(|s| us(s.mean_ns))
                .unwrap_or_else(|| "-".into())
        };
        let p999 = out
            .latencies
            .summary(3)
            .map(|s| us(s.p999_ns as f64))
            .unwrap_or_else(|| "-".into());
        report.row(&[
            label,
            max_parts.map_or("-".into(), |k| k.to_string()),
            cell(0),
            cell(3),
            p999,
            cell(5),
            kops(out.throughput),
        ]);
    }
    report.print();
    report.write_csv("fig15_sla");
    println!(
        "\nShape check: Q4 falls as the SLA tightens; Q6 rises at the\n\
         tightest SLAs; throughput stays within a few percent."
    );
}
