//! Figure 11: partitioning-decision latency vs data size, single job vs
//! chunked (100 / 1 000 / 10 000 / 100 000 chunks), chunks solved in
//! parallel (§6.3).
//!
//! The paper's Mosek pipeline is cubic per (sub)problem; our exact DP is
//! quadratic, so the same curves appear shifted down — chunking still
//! yields the orders-of-magnitude wins because per-chunk problems shrink
//! quadratically while parallelism divides the chunk count. Single-job
//! points that would exceed `--budget-ms` are extrapolated from the fitted
//! quadratic and marked `est.` — the paper does the same for its largest
//! single-job point ("the estimated time without chunking and parallelism
//! is 10^15 seconds").

use casper_bench::{Args, TableReport};
use casper_core::cost::{BlockTerms, CostConstants};
use casper_core::solver::{dp, SolverConstraints};
use casper_core::FrequencyModel;
use casper_engine::exec::parallel_map;
use std::time::Instant;

/// Deterministic synthetic FM over `n` blocks (mixed read/write skew).
fn synthetic_fm(n: usize, salt: u64) -> FrequencyModel {
    let mut fm = FrequencyModel::new(n);
    let mut state = salt.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % 1000) as f64 / 100.0
    };
    for i in 0..n {
        fm.pq[i] = next();
        fm.ins[i] = next() * 0.5;
        fm.de[i] = next() * 0.2;
    }
    fm
}

fn solve_one(n_blocks: usize) -> f64 {
    let fm = synthetic_fm(n_blocks, n_blocks as u64);
    let terms = BlockTerms::from_fm(&fm, &CostConstants::paper());
    let t = Instant::now();
    let sol = dp::solve(&terms, &SolverConstraints::none());
    std::hint::black_box(sol.cost);
    t.elapsed().as_secs_f64() * 1000.0
}

fn main() {
    let args = Args::parse();
    args.usage(
        "fig11_scalability",
        "Fig. 11: partitioning-decision latency vs data size",
        &[
            ("block-values=N", "values per block (default 512 = 4KB/8B)"),
            (
                "budget-ms=N",
                "skip+extrapolate single jobs beyond this (default 30000)",
            ),
            ("threads=N", "parallelism for chunked variants"),
            ("max-size=N", "largest data size (default 1e9)"),
        ],
    );
    let block_values = args.usize_or("block-values", 512);
    let budget_ms = args.usize_or("budget-ms", 30_000) as f64;
    let threads = args.usize_or(
        "threads",
        std::thread::available_parallelism().map_or(4, |n| n.get()),
    );
    let max_size = args.usize_or("max-size", 1_000_000_000);
    let sizes: Vec<usize> = [
        10_000usize,
        100_000,
        1_000_000,
        10_000_000,
        100_000_000,
        1_000_000_000,
    ]
    .into_iter()
    .filter(|&s| s <= max_size)
    .collect();
    let chunk_counts = [100usize, 1000, 10_000, 100_000];

    // Fit a quadratic (ms = a·N²) from moderate single-job sizes for
    // extrapolation.
    let fit_n = 4096usize;
    let fit_ms = solve_one(fit_n);
    let quad_coeff = fit_ms / (fit_n as f64 * fit_n as f64);

    let mut report = TableReport::new(
        format!("Fig. 11 — partitioning decision latency (ms), {threads} threads"),
        &[
            "data size",
            "single job",
            "chunked-100",
            "chunked-1000",
            "chunked-10000",
            "chunked-100000",
        ],
    );
    for &size in &sizes {
        eprintln!("[fig11] data size {size}");
        let n_blocks = (size / block_values).max(1);
        let single = {
            let predicted = quad_coeff * n_blocks as f64 * n_blocks as f64;
            if predicted > budget_ms {
                format!("{predicted:.0} est.")
            } else {
                format!("{:.1}", solve_one(n_blocks))
            }
        };
        let mut cells = vec![format!("{size:.0e}").replace("e", "e+"), single];
        for &c in &chunk_counts {
            if c > n_blocks {
                cells.push("-".to_string());
                continue;
            }
            let per_chunk_blocks = (n_blocks / c).max(1);
            // All chunks share the block count; solving is embarrassingly
            // parallel.
            let chunk_ids: Vec<usize> = (0..c).collect();
            let t = Instant::now();
            let costs = parallel_map(&chunk_ids, threads, |_, &id| {
                let fm = synthetic_fm(per_chunk_blocks, id as u64 + 1);
                let terms = BlockTerms::from_fm(&fm, &CostConstants::paper());
                dp::solve(&terms, &SolverConstraints::none()).cost
            });
            std::hint::black_box(costs.len());
            cells.push(format!("{:.1}", t.elapsed().as_secs_f64() * 1000.0));
        }
        report.row(&cells);
    }
    report.print();
    report.write_csv("fig11_scalability");
    println!(
        "\nShape check: single-job latency grows quadratically with data size;\n\
         chunked variants stay flat-ish and reach 1e9 values in seconds\n\
         (paper: ~10s at 1e9 with 64 cores, 1e15s estimated unchunked)."
    );
}
