//! Robustness trajectory: what the fault-hardened storage layer costs and
//! guarantees, recorded in `BENCH_robust.json`.
//!
//! Three experiments:
//!
//! 1. **Scrub time-to-detect** — flip one byte in a cold checkpoint
//!    record, then measure how long a full scrub pass takes to find it
//!    (the window in which latent corruption exists undetected is one
//!    scrub interval plus this pass time).
//! 2. **Commit p99 under checkpoint retries** — stream single-row commits
//!    with watermark checkpoints while a seeded schedule fails the first
//!    fsync of every other checkpoint segment (each failure is absorbed by
//!    the bounded-backoff retry); compare the p99 against the same stream
//!    with a clean schedule.
//! 3. **Recovery after mid-compaction ENOSPC** — fail a compaction with a
//!    full device, power-cut, then measure reopen-to-first-query and
//!    verify the recovered table matches the pre-fault fingerprint.
//!
//! ```text
//! cargo run --release --bin robust_storage -- --values=200000
//! cargo run --release --bin robust_storage -- --smoke     # CI-sized
//! ```

use casper_bench::trajectory::{self, Metric};
use casper_bench::{Args, TableReport};
use casper_engine::{EngineConfig, LayoutMode, Table};
use casper_persist::{
    DurableOptions, DurableTable, FaultErr, FaultRule, FaultVfs, VfsHandle, VfsOp,
};
use casper_workload::{HapQuery, HapSchema, KeyDist, WorkloadGenerator};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

fn p99_us(mut lat: Vec<f64>) -> f64 {
    lat.sort_by(f64::total_cmp);
    lat[(lat.len() * 99 / 100).min(lat.len() - 1)]
}

fn build_table(values: u64, config: EngineConfig) -> Table {
    let gen = WorkloadGenerator::new(HapSchema::narrow(), values, KeyDist::Uniform);
    Table::load_from_generator(&gen, config)
}

fn fresh_dir(base: &Path, name: &str) -> PathBuf {
    let dir = base.join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fault_handle() -> (Arc<FaultVfs>, VfsHandle) {
    let vfs = Arc::new(FaultVfs::new());
    let handle = VfsHandle::fault(Arc::clone(&vfs));
    (vfs, handle)
}

fn fingerprint(durable: &mut DurableTable, values: u64) -> Vec<u64> {
    (0..10u64)
        .map(|i| HapQuery::Q2 {
            vs: i * values / 5,
            ve: i * values / 5 + values / 7,
        })
        .map(|q| durable.execute(&q).expect("probe").result.scalar())
        .collect()
}

/// Flip one byte near the end of the newest segment file.
fn damage_newest_segment(dir: &Path) {
    let seg = std::fs::read_dir(dir)
        .expect("dir")
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .is_some_and(|n| n.to_string_lossy().starts_with("seg-"))
        })
        .max()
        .expect("a segment exists");
    let mut bytes = std::fs::read(&seg).expect("segment");
    let off = bytes.len() - 16;
    bytes[off] ^= 0x40;
    std::fs::write(&seg, &bytes).expect("damage");
}

fn commit_stream(durable: &mut DurableTable, schema: HapSchema, base: u64, n: usize) -> Vec<f64> {
    let mut lat = Vec::with_capacity(n);
    for i in 0..n as u64 {
        let key = base + 2 * i + 1;
        let q = HapQuery::Q4 {
            key,
            payload: schema.payload_row(key),
        };
        let t = Instant::now();
        durable.execute(&q).expect("commit");
        lat.push(t.elapsed().as_secs_f64() * 1e6);
    }
    lat
}

fn main() {
    let args = Args::parse();
    args.usage(
        "robust_storage",
        "Fault-injection trajectory: scrub detection, retry tail cost, ENOSPC recovery",
        &[
            ("values=N", "table rows (default 200k)"),
            ("writes=N", "commits per latency stream (default 5000)"),
            ("dir=PATH", "scratch directory (default target/robust_demo)"),
            ("smoke", "CI smoke mode: tiny sizes, no ratio assertions"),
        ],
    );
    let smoke = args.flag("smoke");
    let values = args.u64_or("values", if smoke { 40_000 } else { 200_000 });
    let writes_n = args.usize_or("writes", if smoke { 400 } else { 5_000 });
    let base = PathBuf::from(args.get("dir").unwrap_or("target/robust_demo").to_string());
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).expect("scratch dir");

    let mut config = EngineConfig::for_mode(LayoutMode::Casper);
    config.chunk_values = (values as usize / 32).clamp(1024, 1 << 20);
    let schema = HapSchema::narrow();
    let sync_opts = DurableOptions {
        background_checkpointer: false,
        ..DurableOptions::default()
    };

    let mut report = TableReport::new(
        format!("Robust storage — {values} rows"),
        &["experiment", "value", "note"],
    );
    let mut metrics: Vec<Metric> = Vec::new();

    // --- 1. Scrub time-to-detect. ----------------------------------------
    let dir_scrub = fresh_dir(&base, "scrub");
    let mut d = DurableTable::create_from_table(&dir_scrub, build_table(values, config), sync_opts)
        .expect("create");
    damage_newest_segment(&dir_scrub);
    let t = Instant::now();
    let scrub = d.scrub_now().expect("scrub pass");
    let detect_ms = ms(t);
    assert_eq!(scrub.findings.len(), 1, "the flipped byte must be found");
    assert!(
        d.stats().dirty_chunks >= 1,
        "resident chunk re-marked dirty"
    );
    // The heal: one checkpoint later a second pass comes back clean.
    d.checkpoint().expect("healing checkpoint");
    let verify = d.scrub_now().expect("verify pass");
    assert!(verify.findings.is_empty(), "damage must be healed");
    drop(d);
    report.row(&[
        format!("scrub pass over {} records", scrub.records_checked),
        format!("{detect_ms:.1} ms"),
        "time to detect 1 flipped byte, cold records".into(),
    ]);
    metrics.push(Metric::new("scrub_detect_ms", detect_ms, "ms"));
    metrics.push(Metric::new(
        "scrub_records_checked",
        scrub.records_checked as f64,
        "count",
    ));

    // --- 2. Commit p99 with checkpoint retries absorbing faults. ---------
    let watermark = if smoke { 16 * 1024 } else { 128 * 1024 };
    let stream_opts = DurableOptions {
        wal_checkpoint_bytes: watermark,
        background_checkpointer: true,
        checkpoint_retries: 3,
        ..DurableOptions::default()
    };
    let run_stream = |name: &str, faulted: bool| -> (f64, u64, u64) {
        let dir = fresh_dir(&base, name);
        let (vfs, handle) = fault_handle();
        let mut d = DurableTable::create_from_table_with_vfs(
            handle,
            &dir,
            build_table(values, config),
            stream_opts,
        )
        .expect("create");
        if faulted {
            // Fail the first segment fsync of every other checkpoint: one
            // fsync per checkpoint job, so rules at the 1st, 3rd, 5th…
            // matching call each force one retry round.
            for k in 0..16u64 {
                vfs.inject(FaultRule::nth_fsync("seg-", 2 * k + 1, FaultErr::Eio));
            }
        }
        let before_gen = d.stats().generation;
        let lat = commit_stream(&mut d, schema, 2 * values + 1_000_000, writes_n);
        // A final synchronous checkpoint folds the in-flight job's
        // completion in, so the retry counters below are settled.
        let last_gen = d.checkpoint().expect("final checkpoint");
        let checkpoints = last_gen - before_gen;
        assert!(!d.is_degraded(), "transient faults must be absorbed");
        let retries = d.checkpoint_stats().total_retries;
        if faulted {
            assert!(
                vfs.counters().injected >= 1,
                "the fault schedule never fired"
            );
        }
        drop(d);
        (p99_us(lat), checkpoints, retries)
    };
    let (p99_clean, ck_clean, _) = run_stream("p99_clean", false);
    let (p99_retry, ck_retry, retries) = run_stream("p99_retry", true);
    let ratio = p99_retry / p99_clean.max(1e-9);
    report.row(&[
        "commit p99, clean schedule".into(),
        format!("{p99_clean:.1} us"),
        format!("{ck_clean} checkpoints"),
    ]);
    report.row(&[
        "commit p99, fsync faults + retries".into(),
        format!("{p99_retry:.1} us"),
        format!("{ck_retry} checkpoints, {retries} retries absorbed"),
    ]);
    metrics.push(Metric::new("commit_p99_us_clean", p99_clean, "us"));
    metrics.push(Metric::new("commit_p99_us_retries", p99_retry, "us"));
    metrics.push(Metric::new("commit_p99_retry_vs_clean", ratio, "ratio"));
    metrics.push(Metric::new("checkpoint_retries", retries as f64, "count"));

    // --- 3. Recovery after mid-compaction ENOSPC. ------------------------
    let dir_rec = fresh_dir(&base, "enospc");
    let (vfs, handle) = fault_handle();
    let mut d = DurableTable::create_from_table_with_vfs(
        handle.clone(),
        &dir_rec,
        build_table(values, config),
        sync_opts,
    )
    .expect("create");
    // A couple of incremental checkpoints build a multi-segment chain.
    for round in 0..3u64 {
        for i in 0..8u64 {
            let key = 2 * values + 200 * round + 2 * i + 1;
            d.execute(&HapQuery::Q4 {
                key,
                payload: schema.payload_row(key),
            })
            .expect("write");
        }
        d.checkpoint().expect("checkpoint");
    }
    let want = fingerprint(&mut d, values);
    let segments_before = d.stats().segments;
    vfs.inject(FaultRule::on_path(VfsOp::Write, "seg-", FaultErr::Enospc));
    let err = d.compact().expect_err("compaction must fail under ENOSPC");
    assert!(!d.is_degraded(), "one failure must not degrade");
    drop(d);
    vfs.clear_faults();
    vfs.simulate_crash().expect("crash");
    let t = Instant::now();
    let mut d =
        DurableTable::open_with_vfs(handle, &dir_rec, DurableOptions::default()).expect("reopen");
    let first = fingerprint(&mut d, values);
    let recover_ms = ms(t);
    assert_eq!(first, want, "recovery diverged from the committed prefix");
    d.compact().expect("compaction after space cleared");
    assert_eq!(d.stats().segments, 1);
    drop(d);
    report.row(&[
        format!("recovery after mid-compaction ENOSPC ({segments_before} segments)"),
        format!("{recover_ms:.1} ms"),
        format!("failed with: {err}"),
    ]);
    metrics.push(Metric::new("enospc_recovery_ms", recover_ms, "ms"));
    metrics.push(Metric::new(
        "enospc_segments_before",
        segments_before as f64,
        "count",
    ));

    report.print();
    report.write_csv("robust_storage");
    trajectory::write_metrics_json(
        "BENCH_robust.json",
        "robust_storage",
        smoke,
        &[("rows", values), ("stream_writes", writes_n as u64)],
        &metrics,
    );

    // Acceptance gate (full-size runs only): a retrying checkpoint keeps
    // its job in flight across the backoff window, so the next watermark
    // seal can wait on it — the commit tail may grow, but it must stay
    // bounded (microseconds, not the 10ms backoff leaking into p99
    // wholesale).
    if !smoke {
        assert!(
            ratio <= 2.5,
            "commit p99 with retries absorbing faults must stay within 2.5x \
             of the clean schedule, measured {ratio:.2}x"
        );
    }
    println!(
        "\nscrub detected 1 flipped byte in {detect_ms:.1} ms; commit p99 \
         {ratio:.2}x clean with {retries} retries absorbed; ENOSPC \
         recovery to first query {recover_ms:.1} ms"
    );
}
