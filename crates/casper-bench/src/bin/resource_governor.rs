//! Resource-governor trajectory: what memory budgeting, admission control
//! and governed execution cost and guarantee, recorded in
//! `BENCH_governor.json`.
//!
//! Three experiments:
//!
//! 1. **Budgeted sweep** — open a durable table under a memory budget at
//!    50% of its hydrated working set and sweep point reads across the
//!    whole key space: the resident ceiling must hold after every pass,
//!    and the sequential thrash phase measures the eviction→rehydrate
//!    round-trip latency (every read past warm-up lands on an evicted
//!    chunk).
//! 2. **Clean-path overhead** — the same read stream with the governor
//!    fully engaged (slots, deadline plumbing, budget accounting) but
//!    never binding, against a governor-free table: the p99 ratio is the
//!    price of carrying governance on the hot path.
//! 3. **Overload storm, shed on/off** — reader threads hammer range
//!    counts through a 2-slot gate with a short admit wait, versus the
//!    same storm ungated: sheds convert queueing into typed errors and
//!    bound the p99 of the queries that do run.
//!
//! ```text
//! cargo run --release --bin resource_governor -- --values=200000
//! cargo run --release --bin resource_governor -- --smoke   # CI-sized
//! ```

use casper_bench::trajectory::{self, Metric};
use casper_bench::{Args, TableReport};
use casper_engine::{
    EngineConfig, Governor, GovernorConfig, LayoutMode, QueryCtx, QueryError, Table,
};
use casper_persist::{DurableOptions, DurableTable};
use casper_workload::{HapQuery, HapSchema, KeyDist, WorkloadGenerator};
use rand::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

fn pct_us(mut lat: Vec<f64>, p: usize) -> f64 {
    lat.sort_by(f64::total_cmp);
    lat[(lat.len() * p / 100).min(lat.len() - 1)]
}

fn build_table(values: u64, config: EngineConfig) -> Table {
    let gen = WorkloadGenerator::new(HapSchema::narrow(), values, KeyDist::Uniform);
    Table::load_from_generator(&gen, config)
}

fn fresh_dir(base: &Path, name: &str) -> PathBuf {
    let dir = base.join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Create-at-`dir`, then reopen with `opts`: reads start from the lazy
/// mmap-restored state both governed and ungoverned runs share.
fn reopen(
    base: &Path,
    name: &str,
    values: u64,
    config: EngineConfig,
    opts: DurableOptions,
) -> DurableTable {
    let dir = fresh_dir(base, name);
    drop(
        DurableTable::create_from_table(
            &dir,
            build_table(values, config),
            DurableOptions::default(),
        )
        .expect("create"),
    );
    DurableTable::open(&dir, opts).expect("reopen")
}

fn main() {
    let args = Args::parse();
    args.usage(
        "resource_governor",
        "Governor trajectory: budgeted eviction, clean-path overhead, load shedding",
        &[
            ("values=N", "table rows (default 200k)"),
            ("queries=N", "point reads per stream (default 5000)"),
            (
                "dir=PATH",
                "scratch directory (default target/governor_demo)",
            ),
            ("smoke", "CI smoke mode: tiny sizes, no ratio assertions"),
        ],
    );
    let smoke = args.flag("smoke");
    let values = args.u64_or("values", if smoke { 40_000 } else { 200_000 });
    let queries = args.usize_or("queries", if smoke { 500 } else { 5_000 });
    let base = PathBuf::from(
        args.get("dir")
            .unwrap_or("target/governor_demo")
            .to_string(),
    );
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).expect("scratch dir");

    let mut config = EngineConfig::for_mode(LayoutMode::Casper);
    config.chunk_values = (values as usize / 32).clamp(1024, 1 << 20);
    let ctx = QueryCtx::unbounded();

    let mut report = TableReport::new(
        format!("Resource governor — {values} rows"),
        &["experiment", "value", "note"],
    );
    let mut metrics: Vec<Metric> = Vec::new();

    // --- 0. Working-set baseline. ----------------------------------------
    let mut probe = reopen(&base, "probe", values, config, DurableOptions::default());
    probe.hydrate_all().expect("hydrate");
    let working_set = probe.resident_bytes();
    let chunks = probe.table().column().chunk_count() as u64;
    drop(probe);

    // --- 1. Budgeted sweep: ceiling + eviction→rehydrate latency. --------
    let budget = working_set / 2;
    let gov_cfg = GovernorConfig {
        memory_budget_bytes: budget,
        check_interval: 1, // enforce after every query: the ceiling is the experiment
        ..GovernorConfig::default()
    };
    let mut d = reopen(
        &base,
        "budget",
        values,
        config,
        DurableOptions {
            governor: Some(gov_cfg),
            ..DurableOptions::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(7);
    let mut max_resident = 0usize;
    let mut sweep_lat = Vec::with_capacity(queries);
    for _ in 0..queries {
        let key = rng.gen_range(0..values) * 2;
        let q = HapQuery::Q1 { v: key, k: 1 };
        let t = Instant::now();
        d.execute_governed(&q, &ctx).expect("governed point read");
        sweep_lat.push(t.elapsed().as_secs_f64() * 1e6);
        max_resident = max_resident.max(d.resident_bytes());
    }
    // Thrash phase: a sequential chunk-order sweep under a 50% budget
    // makes (with LRU victims) every read past warm-up hit an evicted
    // chunk — its median is the eviction→rehydrate round trip.
    let span = (2 * values) / chunks.max(1);
    let mut thrash_lat = Vec::new();
    for round in 0..3u64 {
        for c in 0..chunks {
            let key = ((c * span + (round + 1) * 16) / 2) * 2 % (2 * values);
            let q = HapQuery::Q1 { v: key, k: 1 };
            let t = Instant::now();
            d.execute_governed(&q, &ctx).expect("thrash read");
            thrash_lat.push(t.elapsed().as_secs_f64() * 1e6);
            max_resident = max_resident.max(d.resident_bytes());
        }
    }
    let stats = d.governor_stats().expect("governor configured");
    assert!(
        max_resident <= budget,
        "resident ceiling violated: {max_resident} > budget {budget}"
    );
    assert!(stats.evictions > 0, "a 50% budget must evict");
    assert!(stats.rehydrations > 0, "the sweep must rehydrate");
    drop(d);
    let ceiling_ratio = max_resident as f64 / budget as f64;
    let rehydrate_p50 = pct_us(thrash_lat, 50);
    report.row(&[
        format!("budget {budget} B (50% of {working_set} B, {chunks} chunks)"),
        format!("peak {max_resident} B ({:.2}x)", ceiling_ratio),
        format!(
            "{} evictions, {} rehydrations",
            stats.evictions, stats.rehydrations
        ),
    ]);
    report.row(&[
        "eviction→rehydrate round trip (thrash p50)".into(),
        format!("{rehydrate_p50:.1} us"),
        "sequential sweep, every read on an evicted chunk".into(),
    ]);
    metrics.push(Metric::new("resident_budget_bytes", budget as f64, "bytes"));
    metrics.push(Metric::new(
        "resident_max_bytes",
        max_resident as f64,
        "bytes",
    ));
    metrics.push(Metric::new(
        "resident_ceiling_ratio",
        ceiling_ratio,
        "ratio",
    ));
    metrics.push(Metric::new("evictions", stats.evictions as f64, "count"));
    metrics.push(Metric::new(
        "rehydrations",
        stats.rehydrations as f64,
        "count",
    ));
    metrics.push(Metric::new("rehydrate_thrash_p50_us", rehydrate_p50, "us"));
    metrics.push(Metric::new(
        "budget_sweep_p99_us",
        pct_us(sweep_lat, 99),
        "us",
    ));

    // --- 2. Clean-path overhead: governor engaged but never binding. -----
    let run_stream = |d: &mut DurableTable, governed: bool| -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(11);
        let mut lat = Vec::with_capacity(queries);
        for _ in 0..queries {
            let key = rng.gen_range(0..values) * 2;
            let q = HapQuery::Q1 { v: key, k: 1 };
            let t = Instant::now();
            if governed {
                d.execute_governed(&q, &ctx).expect("governed read");
            } else {
                d.execute(&q).expect("read");
            }
            lat.push(t.elapsed().as_secs_f64() * 1e6);
        }
        lat
    };
    let mut plain = reopen(
        &base,
        "clean_off",
        values,
        config,
        DurableOptions::default(),
    );
    plain.hydrate_all().expect("hydrate");
    let lat_off = run_stream(&mut plain, false);
    drop(plain);
    let roomy = GovernorConfig {
        memory_budget_bytes: working_set * 2, // accounted, never binding
        query_slots: 64,
        check_interval: 8,
        ..GovernorConfig::default()
    };
    let mut governed = reopen(
        &base,
        "clean_on",
        values,
        config,
        DurableOptions {
            governor: Some(roomy),
            ..DurableOptions::default()
        },
    );
    governed.hydrate_all().expect("hydrate");
    let lat_on = run_stream(&mut governed, true);
    let shed_free = governed.governor_stats().expect("governor").shed;
    assert_eq!(shed_free, 0, "a roomy gate must never shed");
    drop(governed);
    let (p99_off, p99_on) = (pct_us(lat_off, 99), pct_us(lat_on, 99));
    let clean_ratio = p99_on / p99_off.max(1e-9);
    report.row(&[
        "point p99, governor off / on (never binding)".into(),
        format!("{p99_off:.1} / {p99_on:.1} us"),
        format!("{clean_ratio:.3}x clean-path overhead"),
    ]);
    metrics.push(Metric::new("point_p99_us_governor_off", p99_off, "us"));
    metrics.push(Metric::new("point_p99_us_governor_on", p99_on, "us"));
    metrics.push(Metric::new(
        "governor_clean_path_ratio",
        clean_ratio,
        "ratio",
    ));

    // --- 3. Overload storm: shed on vs off. ------------------------------
    // Natural slot contention needs more runnable threads than cores with
    // queries longer than a scheduling quantum — neither holds on a small
    // CI box. The overload is made explicit instead: two "hog" permits
    // pin the whole 2-slot gate while the storm runs (phase 1, every
    // attempt must come back as a typed shed, immediately), then the hogs
    // release and the same threads measure admitted-query latency
    // (phase 2). The ungated storm gives the shed-off baseline.
    let threads = 8usize;
    let per_thread = (queries / 8).max(8);
    let table = build_table(values, config);
    table.hydrate_all().expect("hydrate");
    let storm_q = |rng: &mut StdRng| HapQuery::Q3 {
        // A full-range sum actually scans the payload; a count would be
        // answered from fence metadata.
        vs: rng.gen_range(0..16),
        ve: 2 * values,
        k: 1,
    };
    let ungated = table.reader();
    let mut lat_ungated = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let handle = ungated.clone();
                let storm_q = &storm_q;
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(100 + t as u64);
                    let mut ok = Vec::with_capacity(per_thread);
                    for _ in 0..per_thread {
                        let q = storm_q(&mut rng);
                        let started = Instant::now();
                        handle.execute(&q).expect("ungated sum");
                        ok.push(started.elapsed().as_secs_f64() * 1e6);
                    }
                    ok
                })
            })
            .collect();
        for h in handles {
            lat_ungated.extend(h.join().expect("storm thread"));
        }
    });

    let gate = Arc::new(Governor::new(GovernorConfig {
        query_slots: 2,
        admit_wait_ms: 0, // shed immediately when both slots are busy
        ..GovernorConfig::default()
    }));
    let reader = table.reader().with_governor(Arc::clone(&gate));
    let hog_a = gate.admit(false).expect("hog slot a");
    let hog_b = gate.admit(false).expect("hog slot b");
    let barrier = std::sync::Barrier::new(threads + 1);
    let mut lat_gated = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let handle = reader.clone();
                let barrier = &barrier;
                let storm_q = &storm_q;
                scope.spawn(move || {
                    let ctx = QueryCtx::unbounded();
                    let mut rng = StdRng::seed_from_u64(100 + t as u64);
                    barrier.wait();
                    // Phase 1: the gate is pinned — every attempt sheds.
                    for _ in 0..per_thread {
                        match handle.execute_governed(&storm_q(&mut rng), &ctx) {
                            Err(QueryError::Overloaded { .. }) => {}
                            Ok(_) => panic!("admitted through a pinned gate"),
                            Err(e) => panic!("storm error: {e}"),
                        }
                    }
                    barrier.wait(); // phase 1 done
                    barrier.wait(); // hogs released
                                    // Phase 2: collect per-thread admitted latencies
                                    // (residual sheds possible under real contention).
                    let mut ok = Vec::with_capacity(per_thread);
                    while ok.len() < per_thread {
                        let q = storm_q(&mut rng);
                        let started = Instant::now();
                        match handle.execute_governed(&q, &ctx) {
                            Ok(_) => ok.push(started.elapsed().as_secs_f64() * 1e6),
                            Err(QueryError::Overloaded { .. }) => {}
                            Err(e) => panic!("storm error: {e}"),
                        }
                    }
                    ok
                })
            })
            .collect();
        barrier.wait(); // start phase 1
        barrier.wait(); // phase 1 done
        drop(hog_a);
        drop(hog_b);
        barrier.wait(); // start phase 2
        for h in handles {
            lat_gated.extend(h.join().expect("storm thread"));
        }
    });
    let sheds = gate.stats().shed;
    assert!(
        sheds >= (threads * per_thread) as u64,
        "every attempt against the pinned gate must shed"
    );
    assert!(!lat_gated.is_empty(), "the gate must admit some queries");
    let (p99_shed_off, p99_shed_on) = (pct_us(lat_ungated, 99), pct_us(lat_gated, 99));
    let shed_rate = sheds as f64 / (2 * threads * per_thread) as f64;
    report.row(&[
        format!("storm p99, {threads} threads, shed off / on (2 slots)"),
        format!("{p99_shed_off:.1} / {p99_shed_on:.1} us"),
        format!("{sheds} sheds ({:.0}% of offered load)", shed_rate * 100.0),
    ]);
    metrics.push(Metric::new("storm_p99_us_shed_off", p99_shed_off, "us"));
    metrics.push(Metric::new("storm_p99_us_shed_on", p99_shed_on, "us"));
    metrics.push(Metric::new("sheds", sheds as f64, "count"));
    metrics.push(Metric::new("shed_rate", shed_rate, "ratio"));

    report.print();
    report.write_csv("resource_governor");
    trajectory::write_metrics_json(
        "BENCH_governor.json",
        "resource_governor",
        smoke,
        &[("rows", values), ("queries", queries as u64)],
        &metrics,
    );

    // Acceptance gates (full-size runs only; smoke keeps the correctness
    // asserts above but skips timing ratios).
    if !smoke {
        assert!(
            clean_ratio <= 1.10,
            "governed clean-path p99 must stay within 1.10x of ungoverned, \
             measured {clean_ratio:.3}x"
        );
    }
    println!(
        "\nceiling held at {ceiling_ratio:.2}x of a 50% budget with \
         {} evictions; rehydrate p50 {rehydrate_p50:.1} us; clean-path \
         overhead {clean_ratio:.3}x; {sheds} typed sheds under storm",
        stats.evictions
    );
}
