//! Figure 2 (conceptual trade-offs, regenerated quantitatively):
//!
//! * (a) structure: read cost falls ~logarithmically and write cost rises
//!   ~linearly with the number of non-overlapping partitions;
//! * (b) ghost values: write cost falls ~linearly with memory
//!   amplification while read cost pays only a sublinear penalty.
//!
//! Panel (a) evaluates the paper's own cost model over equi-width layouts;
//! panel (b) *measures* a real chunk under increasing ghost budgets.

use casper_bench::{Args, TableReport};
use casper_core::cost::{cost_of_segmentation, BlockTerms, CostConstants};
use casper_core::{FrequencyModel, Segmentation};
use casper_storage::ghost::GhostPlan;
use casper_storage::{BlockLayout, ChunkConfig, PartitionSpec, PartitionedChunk, StorageMode};
use std::time::Instant;

fn panel_a(n_blocks: usize) {
    let c = CostConstants::paper();
    let mut read_fm = FrequencyModel::new(n_blocks);
    read_fm.pq = vec![1.0; n_blocks];
    let mut write_fm = FrequencyModel::new(n_blocks);
    write_fm.ins = vec![1.0; n_blocks];
    let read_terms = BlockTerms::from_fm(&read_fm, &c);
    let write_terms = BlockTerms::from_fm(&write_fm, &c);
    let base_read = cost_of_segmentation(&Segmentation::single(n_blocks), &read_terms);
    let base_write = cost_of_segmentation(&Segmentation::single(n_blocks), &write_terms);
    let mut report = TableReport::new(
        format!("Fig. 2a — model cost vs #partitions (N={n_blocks} blocks)"),
        &["partitions", "read cost (norm)", "write cost (norm)"],
    );
    let mut k = 1usize;
    while k <= n_blocks {
        let seg = Segmentation::equi(n_blocks, k);
        report.row(&[
            k.to_string(),
            format!("{:.4}", cost_of_segmentation(&seg, &read_terms) / base_read),
            format!(
                "{:.4}",
                cost_of_segmentation(&seg, &write_terms) / base_write
            ),
        ]);
        k *= 2;
    }
    report.print();
    report.write_csv("fig02a_structure");
}

fn panel_b(values: usize, partitions: usize) {
    let layout = BlockLayout::new::<u64>(4096);
    let n_blocks = layout.num_blocks(values);
    let spec = PartitionSpec::equi_width(n_blocks, partitions);
    let k = spec.partition_count();
    let mut report = TableReport::new(
        format!(
            "Fig. 2b — measured cost vs memory amplification ({values} values, {k} partitions)"
        ),
        &["mem amplification", "insert us", "point query us"],
    );
    let n_ops = 2000u64;
    for ghost_frac in [0.0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5] {
        let budget = (values as f64 * ghost_frac) as usize;
        let config = ChunkConfig {
            // Tail must absorb the whole insert stream in the 0-ghost case.
            capacity_slack: n_ops as f64 / values as f64 + 0.05,
            ..ChunkConfig::default()
        };
        let mut chunk = PartitionedChunk::build(
            (0..values as u64).map(|v| v * 2).collect(),
            &spec,
            layout,
            &GhostPlan::even(k, budget),
            config,
        )
        .expect("build");
        // Inserts spread over the domain: with ghosts they are O(1), without
        // they ripple.
        let t = Instant::now();
        for i in 0..n_ops {
            let v = ((i * 48271) % (2 * values as u64)) | 1;
            chunk.insert(v, &[]).expect("insert");
        }
        let ins_us = t.elapsed().as_nanos() as f64 / n_ops as f64 / 1000.0;
        let t = Instant::now();
        let mut acc = 0usize;
        for i in 0..n_ops {
            let v = ((i * 16807) % (2 * values as u64)) & !1;
            acc += chunk.point_query(v).positions.len();
        }
        std::hint::black_box(acc);
        let pq_us = t.elapsed().as_nanos() as f64 / n_ops as f64 / 1000.0;
        report.row(&[
            format!("{:.2}", 1.0 + ghost_frac),
            format!("{ins_us:.2}"),
            format!("{pq_us:.2}"),
        ]);
    }
    report.print();
    report.write_csv("fig02b_ghost_values");
}

fn panel_c(values: usize) {
    // §6.2 synergy on a *live* chunk: finer partitioning narrows each
    // partition's value span, so per-partition FoR fragments pack narrower
    // offsets and the compressed scans stream fewer bytes.
    let layout = BlockLayout::new::<u64>(4096);
    let n_blocks = layout.num_blocks(values);
    // Step 60 per value: one 256-partition split drops the per-partition
    // span under 2^16, so the FoR offsets narrow from u32 to u16.
    let data: Vec<u64> = (0..values as u64).map(|v| v * 60).collect();
    let mut report = TableReport::new(
        format!("Fig. 2c — partitioning × compression synergy ({values} values, FoR fragments)"),
        &[
            "partitions",
            "encoded KiB",
            "ratio",
            "compressed scan us",
            "plain scan us",
        ],
    );
    let (lo, hi) = (data[values / 4], data[3 * values / 4]);
    for k in [1usize, 64, 256, 512] {
        let spec = PartitionSpec::equi_width(n_blocks, k.min(n_blocks));
        let mut chunk = PartitionedChunk::build(
            data.clone(),
            &spec,
            layout,
            &GhostPlan::none(spec.partition_count()),
            ChunkConfig::default(),
        )
        .expect("build");
        let (plain_n, _) = chunk.range_count(lo, hi);
        let reps = 50u32;
        let t = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(chunk.range_count(lo, hi));
        }
        let plain_us = t.elapsed().as_nanos() as f64 / f64::from(reps) / 1000.0;
        for p in 0..chunk.partition_count() {
            chunk.compress_partition(p, StorageMode::For);
        }
        let (comp_n, _) = chunk.range_count(lo, hi);
        assert_eq!(plain_n, comp_n, "compressed count must be bit-exact");
        let t = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(chunk.range_count(lo, hi));
        }
        let comp_us = t.elapsed().as_nanos() as f64 / f64::from(reps) / 1000.0;
        report.row(&[
            spec.partition_count().to_string(),
            format!("{:.0}", chunk.encoded_bytes() as f64 / 1024.0),
            format!(
                "{:.2}",
                chunk.compressed_plain_bytes() as f64 / chunk.encoded_bytes() as f64
            ),
            format!("{comp_us:.1}"),
            format!("{plain_us:.1}"),
        ]);
    }
    report.print();
    report.write_csv("fig02c_compression_synergy");
}

fn main() {
    let args = Args::parse();
    args.usage(
        "fig02_tradeoffs",
        "Fig. 2: structure vs read/write cost; ghost values vs memory",
        &[
            ("blocks=N", "model blocks for panel (a) (default 1024)"),
            ("values=N", "chunk values for panel (b) (default 262144)"),
            ("partitions=N", "partitions for panel (b) (default 64)"),
        ],
    );
    panel_a(args.usize_or("blocks", 1024));
    panel_b(
        args.usize_or("values", 1 << 18),
        args.usize_or("partitions", 64),
    );
    panel_c(args.usize_or("values", 1 << 18));
    println!(
        "\nShape check: (a) read cost ~1/k, write cost ~linear in k;\n\
         (b) insert latency falls steeply with slack, point queries pay little;\n\
         (c) finer partitions → higher compression ratio and faster compressed scans."
    );
}
