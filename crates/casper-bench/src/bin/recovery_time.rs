//! Durability trajectory: what incremental checkpointing, the background
//! checkpointer, and mmap restore buy.
//!
//! Four experiments, all recorded in `BENCH_persist.json`:
//!
//! 1. **Checkpoint cost vs dirty fraction** — a full checkpoint
//!    re-serializes every chunk; an incremental one only the dirty ones.
//!    With ~10% of chunks dirty the incremental cost must stay ≤ 25% of
//!    the full cost (acceptance gate).
//! 2. **Commit-path p99** — streaming single-row commits with the
//!    background checkpointer *on* (WAL watermark triggers async
//!    checkpoints) must sit within 10% of checkpointing fully *disabled*;
//!    the inline (foreground) checkpointer is measured too, to show what
//!    the thread removes from the tail.
//! 3. **Restore** — time-to-first-query of the v1 full-copy restore vs
//!    the v2 mmap restore (metadata-only open + lazy per-chunk hydration);
//!    mmap must win by ≥ 2x. Both paths restore with zero layout solves
//!    and zero codec re-encodes (counter-asserted).
//! 4. **Forced compaction** — collapse a multi-segment chain and verify
//!    contents survive bit-exactly (CI smoke for the compaction path).
//!
//! ```text
//! cargo run --release --bin recovery_time -- --values=1000000
//! cargo run --release --bin recovery_time -- --smoke     # CI-sized
//! ```

use casper_bench::trajectory::{self, Metric};
use casper_bench::{Args, TableReport};
use casper_engine::optimize::{optimize_table, OptimizeOptions};
use casper_engine::{EngineConfig, LayoutMode, Table};
use casper_persist::{DurableOptions, DurableTable, FaultVfs, VfsHandle};
use casper_storage::compress::telemetry as codec_telemetry;
use casper_workload::{HapQuery, HapSchema, KeyDist, Mix, MixKind, WorkloadGenerator};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

fn build_table(values: u64, config: EngineConfig) -> Table {
    let gen = WorkloadGenerator::new(HapSchema::narrow(), values, KeyDist::Uniform);
    Table::load_from_generator(&gen, config)
}

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

fn p99_us(mut lat: Vec<f64>) -> f64 {
    lat.sort_by(f64::total_cmp);
    lat[(lat.len() * 99 / 100).min(lat.len() - 1)]
}

fn max_us(lat: &[f64]) -> f64 {
    lat.iter().copied().fold(0.0, f64::max)
}

/// One odd key inside chunk `c`'s key range (keys are ~uniform over
/// `[0, 2·values)`), used to dirty exactly that chunk.
fn key_in_chunk(c: usize, chunks: usize, values: u64) -> u64 {
    (c as u64 * 2 * values) / chunks as u64 + 1
}

/// Stream `n` single-row commits, returning per-commit latencies in µs.
fn commit_stream(durable: &mut DurableTable, schema: HapSchema, base: u64, n: usize) -> Vec<f64> {
    let mut lat = Vec::with_capacity(n);
    for i in 0..n as u64 {
        let key = base + 2 * i + 1;
        let q = HapQuery::Q4 {
            key,
            payload: schema.payload_row(key),
        };
        let t = Instant::now();
        durable.execute(&q).expect("commit");
        lat.push(t.elapsed().as_secs_f64() * 1e6);
    }
    lat
}

fn probe_queries(values: u64) -> Vec<HapQuery> {
    (0..20u64)
        .map(|i| HapQuery::Q2 {
            vs: i * values / 10,
            ve: i * values / 10 + values / 7,
        })
        .collect()
}

fn fingerprint(durable: &mut DurableTable, values: u64) -> Vec<u64> {
    probe_queries(values)
        .iter()
        .map(|q| durable.execute(q).expect("probe").result.scalar())
        .collect()
}

fn fresh_dir(base: &Path, name: &str) -> PathBuf {
    let dir = base.join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn main() {
    let args = Args::parse();
    args.usage(
        "recovery_time",
        "Incremental checkpointing, background checkpointer and mmap-restore trajectory",
        &[
            ("values=N", "table rows (default 1M)"),
            ("sample=N", "optimizer workload sample size (default 4000)"),
            ("writes=N", "commits per latency stream (default 10000)"),
            (
                "dir=PATH",
                "scratch directory (default target/recovery_demo)",
            ),
            ("smoke", "CI smoke mode: tiny sizes, no ratio assertions"),
            (
                "fault-vfs",
                "route all persistence I/O through a zero-fault FaultVfs \
                 (proves the fault harness does not drift from the real \
                 filesystem; ratio gates are skipped — mmap under the \
                 harness is a copy)",
            ),
        ],
    );
    let smoke = args.flag("smoke");
    let fault_vfs = args.flag("fault-vfs");
    // A zero-fault FaultVfs must behave exactly like the real filesystem;
    // running the whole trajectory through it is the drift check.
    let vfs = if fault_vfs {
        VfsHandle::fault(Arc::new(FaultVfs::new()))
    } else {
        VfsHandle::default()
    };
    let values = args.u64_or("values", if smoke { 40_000 } else { 1_000_000 });
    let sample_n = args.usize_or("sample", if smoke { 400 } else { 4000 });
    let writes_n = args.usize_or("writes", if smoke { 400 } else { 10_000 });
    let base = PathBuf::from(
        args.get("dir")
            .unwrap_or("target/recovery_demo")
            .to_string(),
    );
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).expect("scratch dir");

    let mut config = EngineConfig::for_mode(LayoutMode::Casper);
    // ~20 chunks so a 10% dirty fraction is expressible as whole chunks.
    config.chunk_values = (values as usize / 20).clamp(1024, 1 << 20);
    let schema = HapSchema::narrow();
    let mix = Mix::new(MixKind::HybridPointSkewed, schema, values);
    let sample = mix.generate(sample_n, 7);
    let opts = OptimizeOptions::default();

    let mut report = TableReport::new(
        format!("Durability trajectory — {values} rows"),
        &["experiment", "value", "note"],
    );
    let mut metrics: Vec<Metric> = Vec::new();

    // --- Cold start baseline: load + solve + compress from scratch. ------
    let t = Instant::now();
    let mut cold = build_table(values, config);
    optimize_table(&mut cold, &sample, &opts);
    let cold_ms = ms(t);
    report.row(&[
        "cold start (load + re-solve + re-compress)".into(),
        format!("{cold_ms:.1} ms"),
        "what restore avoids".into(),
    ]);
    metrics.push(Metric::new("cold_start_ms", cold_ms, "ms"));

    // --- 1. Checkpoint cost vs dirty fraction. ---------------------------
    // Synchronous (inline) checkpointing isolates the serialization cost.
    let sync_opts = DurableOptions {
        background_checkpointer: false,
        ..DurableOptions::default()
    };
    let dir_main = fresh_dir(&base, "main");
    let mut durable =
        DurableTable::create_from_table_with_vfs(vfs.clone(), &dir_main, cold, sync_opts)
            .expect("create durable table");
    let chunks = durable.table().column().chunk_count();

    // Full checkpoint: dirty every chunk, then fold.
    for c in 0..chunks {
        let key = key_in_chunk(c, chunks, values);
        durable
            .execute(&HapQuery::Q4 {
                key,
                payload: schema.payload_row(key),
            })
            .expect("write");
    }
    assert_eq!(durable.stats().dirty_chunks as usize, chunks);
    let t = Instant::now();
    durable.checkpoint().expect("full checkpoint");
    let full_ms = ms(t);

    // Incremental checkpoint: dirty ~10% of chunks, then fold.
    let dirty_target = (chunks / 10).max(1);
    for c in 0..dirty_target {
        let key = key_in_chunk(c, chunks, values) + 2;
        durable
            .execute(&HapQuery::Q4 {
                key,
                payload: schema.payload_row(key),
            })
            .expect("write");
    }
    assert_eq!(durable.stats().dirty_chunks as usize, dirty_target);
    let t = Instant::now();
    durable.checkpoint().expect("incremental checkpoint");
    let inc_ms = ms(t);
    let ratio = inc_ms / full_ms.max(1e-9);
    report.row(&[
        format!("full checkpoint ({chunks}/{chunks} chunks dirty)"),
        format!("{full_ms:.1} ms"),
        "re-serializes everything".into(),
    ]);
    report.row(&[
        format!("incremental checkpoint ({dirty_target}/{chunks} chunks dirty)"),
        format!("{inc_ms:.1} ms"),
        format!("{:.1}% of full", ratio * 100.0),
    ]);
    metrics.push(Metric::new("full_checkpoint_ms", full_ms, "ms"));
    metrics.push(Metric::new("incremental_checkpoint_ms", inc_ms, "ms"));
    metrics.push(Metric::new(
        "incremental_dirty_fraction",
        dirty_target as f64 / chunks as f64,
        "ratio",
    ));
    metrics.push(Metric::new("incremental_vs_full", ratio, "ratio"));
    let rows_after_ckpt = durable.len();
    let want_fingerprint = fingerprint(&mut durable, values);
    drop(durable);

    // --- 2. Commit-path p99: checkpointer off / background / inline. -----
    // Sized so a couple of watermark checkpoints trigger mid-stream while
    // staying rare relative to the stream length: the scenario under test
    // is "a background checkpoint runs while commits stream", not
    // "checkpoint on every handful of writes" (a real deployment folds the
    // WAL every tens of MB, far rarer even than this). The stream is long
    // enough that the p99 rank clears the handful of commits that overlap
    // each checkpoint's I/O window — the tail those windows do add is
    // visible in the recorded max instead.
    let watermark = if smoke { 16 * 1024 } else { 512 * 1024 };
    let reps = if smoke { 1 } else { 5 };
    // The stream appends into one hot chunk, so checkpoint I/O per fold is
    // one chunk's serialization: chunk granularity bounds the write
    // amplification (chunk bytes per watermark of WAL). The 50k-row chunks
    // of experiment 1 would amplify ~8x and stretch each checkpoint's I/O
    // window across >1% of commits; a deployment pairing incremental
    // checkpoints with a hot append chunk uses finer chunks, so this
    // experiment does too (~8k rows ≈ 0.6 MB per fold, ~1x amplification).
    let mut p99_config = config;
    p99_config.chunk_values = (values as usize / 128).clamp(1024, 1 << 20);
    let dir_p99_src = fresh_dir(&base, "p99_src");
    drop(
        DurableTable::create_from_table_with_vfs(
            vfs.clone(),
            &dir_p99_src,
            build_table(values, p99_config),
            sync_opts,
        )
        .expect("create p99 table"),
    );
    let configs: [(&str, DurableOptions); 3] = [
        (
            "checkpointing disabled",
            DurableOptions {
                wal_checkpoint_bytes: 0,
                background_checkpointer: false,
                ..DurableOptions::default()
            },
        ),
        (
            "background checkpointer",
            DurableOptions {
                wal_checkpoint_bytes: watermark,
                background_checkpointer: true,
                ..DurableOptions::default()
            },
        ),
        (
            "inline checkpointer",
            DurableOptions {
                wal_checkpoint_bytes: watermark,
                background_checkpointer: false,
                ..DurableOptions::default()
            },
        ),
    ];
    // Interleaved repetitions: the three configurations run back to back
    // inside each repetition, so a container-level I/O noise epoch (the
    // disabled baseline alone shows multi-ms spikes) hits all of them
    // alike; the gated quantity is the *median of per-repetition ratios*,
    // which cancels that shared epoch instead of letting it bias whichever
    // stream it landed on.
    let mut p99s = [const { Vec::new() }; 3];
    let mut maxes = [0f64; 3];
    let mut checkpoints = [0u64; 3];
    for _ in 0..reps {
        for (ci, (_, opts)) in configs.iter().enumerate() {
            // Every trial starts from a pristine copy of the created
            // table: without this, streams accumulate in the directory and
            // later repetitions pay ever-larger WAL replays and checkpoint
            // an ever-growing hot chunk — a confound, not the effect under
            // measurement.
            let dir_p99 = fresh_dir(&base, "p99");
            std::fs::create_dir_all(&dir_p99).expect("trial dir");
            for entry in std::fs::read_dir(&dir_p99_src).expect("src").flatten() {
                std::fs::copy(entry.path(), dir_p99.join(entry.file_name())).expect("copy");
            }
            let mut d = DurableTable::open_with_vfs(vfs.clone(), &dir_p99, *opts).expect("open");
            let before_gen = d.stats().generation;
            let lat = commit_stream(&mut d, schema, 4 * values + 1_000_000, writes_n);
            checkpoints[ci] += d.stats().generation - before_gen;
            p99s[ci].push(p99_us(lat.clone()));
            maxes[ci] = maxes[ci].max(max_us(&lat));
            drop(d);
        }
    }
    let median = |v: &[f64]| -> f64 {
        let mut v = v.to_vec();
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    for (ci, (name, _)) in configs.iter().enumerate() {
        report.row(&[
            format!("commit p99, {name} (median of {reps})"),
            format!("{:.1} us", median(&p99s[ci])),
            format!("max {:.0} us, {} checkpoints", maxes[ci], checkpoints[ci]),
        ]);
    }
    let (p99_off, p99_bg, p99_inline) = (median(&p99s[0]), median(&p99s[1]), median(&p99s[2]));
    let (ck_off, ck_bg) = (checkpoints[0], checkpoints[1]);
    let max_inline = maxes[2];
    assert_eq!(ck_off, 0, "disabled stream must not checkpoint");
    let per_rep_ratios: Vec<f64> = p99s[1]
        .iter()
        .zip(&p99s[0])
        .map(|(bg, off)| bg / off.max(1e-9))
        .collect();
    let p99_ratio = median(&per_rep_ratios);
    metrics.push(Metric::new(
        "commit_p99_us_checkpointing_off",
        p99_off,
        "us",
    ));
    metrics.push(Metric::new("commit_p99_us_background", p99_bg, "us"));
    metrics.push(Metric::new("commit_p99_us_inline", p99_inline, "us"));
    metrics.push(Metric::new("commit_max_us_inline", max_inline, "us"));
    metrics.push(Metric::new("commit_p99_bg_vs_off", p99_ratio, "ratio"));
    metrics.push(Metric::new("background_checkpoints", ck_bg as f64, "count"));

    // --- 3. Restore: v1 full-copy vs v2 mmap, to first query. ------------
    // Fold any remaining WAL so both directories hold the same table.
    let mut durable = DurableTable::open_with_vfs(vfs.clone(), &dir_main, sync_opts).expect("open");
    durable.checkpoint().expect("fold");
    durable.hydrate_all().expect("hydrate for v1 encode");
    let rows_now = durable.len();
    let dir_v1 = fresh_dir(&base, "v1");
    std::fs::create_dir_all(&dir_v1).expect("v1 dir");
    let v1_bytes = casper_persist::encode_snapshot(durable.table(), &[], 1, 0);
    std::fs::write(dir_v1.join("snap-000001.casper"), &v1_bytes).expect("v1 snapshot");
    std::fs::write(dir_v1.join("CURRENT"), b"1\n").expect("v1 current");
    drop(durable);

    let probe_key = 2 * (values / 3); // an even (present) key
    let solves0 = casper_core::solver::telemetry::solve_count();
    let encodes0 = codec_telemetry::encode_count();
    let time_restore = |dir: &Path, opts: DurableOptions| -> (f64, u64) {
        let t = Instant::now();
        let mut d = DurableTable::open_with_vfs(vfs.clone(), dir, opts).expect("open");
        let hit = d
            .execute(&HapQuery::Q1 { v: probe_key, k: 2 })
            .expect("first query")
            .result
            .scalar();
        (ms(t), hit)
    };
    let (v1_ms, hit_v1) = time_restore(&dir_v1, sync_opts);
    let (mmap_ms, hit_mmap) = time_restore(&dir_main, DurableOptions::default());
    assert_eq!(hit_v1, hit_mmap, "restores disagree on the probe row");
    assert_eq!(
        casper_core::solver::telemetry::solve_count(),
        solves0,
        "restore must not re-solve"
    );
    assert_eq!(
        codec_telemetry::encode_count(),
        encodes0,
        "restore must not re-encode"
    );
    // Full hydration for honesty: the lazy win is real but deferred.
    let t = Instant::now();
    let mut d = DurableTable::open_with_vfs(vfs.clone(), &dir_main, DurableOptions::default())
        .expect("open");
    d.hydrate_all().expect("hydrate");
    let mmap_full_ms = ms(t);
    assert_eq!(d.len(), rows_now);
    drop(d);
    let speedup = v1_ms / mmap_ms.max(1e-9);
    report.row(&[
        "restore to first query, v1 full copy".into(),
        format!("{v1_ms:.1} ms"),
        "read + CRC + decode everything".into(),
    ]);
    report.row(&[
        "restore to first query, v2 mmap".into(),
        format!("{mmap_ms:.1} ms"),
        format!("{speedup:.1}x faster; full hydrate {mmap_full_ms:.1} ms"),
    ]);
    metrics.push(Metric::new("restore_v1_first_query_ms", v1_ms, "ms"));
    metrics.push(Metric::new("restore_mmap_first_query_ms", mmap_ms, "ms"));
    metrics.push(Metric::new(
        "restore_mmap_full_hydrate_ms",
        mmap_full_ms,
        "ms",
    ));
    metrics.push(Metric::new(
        "restore_speedup_to_first_query",
        speedup,
        "ratio",
    ));

    // --- 4. Forced compaction: collapse the chain, verify contents. ------
    let mut d = DurableTable::open_with_vfs(vfs.clone(), &dir_main, sync_opts).expect("open");
    let segments_before = d.stats().segments;
    let t = Instant::now();
    d.compact().expect("compact");
    let compact_ms = ms(t);
    assert_eq!(d.stats().segments, 1, "compaction collapses the chain");
    assert!(d.len() >= rows_after_ckpt);
    let got = fingerprint(&mut d, values);
    assert_eq!(
        got, want_fingerprint,
        "compaction/restore changed query results"
    );
    drop(d);
    report.row(&[
        format!("forced compaction ({segments_before} segments -> 1)"),
        format!("{compact_ms:.1} ms"),
        "clean records byte-copied".into(),
    ]);
    metrics.push(Metric::new("compaction_ms", compact_ms, "ms"));

    report.print();
    report.write_csv("recovery_time");
    trajectory::write_metrics_json(
        // The drift-check run must not clobber the real trajectory file.
        if fault_vfs {
            "BENCH_persist_faultvfs.json"
        } else {
            "BENCH_persist.json"
        },
        "recovery_time",
        smoke,
        &[
            ("rows", values),
            ("chunks", chunks as u64),
            ("stream_writes", writes_n as u64),
        ],
        &metrics,
    );

    // Acceptance gates (full-size runs only; smoke sizes are too noisy,
    // and under the fault harness mmap is a copy + every fsync re-reads
    // the file into the shadow model, so timing ratios are meaningless —
    // the correctness assertions above all still ran).
    if !smoke && !fault_vfs {
        assert!(
            ratio <= 0.25,
            "incremental checkpoint must cost <= 25% of full at a 10% dirty \
             fraction, measured {:.1}%",
            ratio * 100.0
        );
        assert!(
            p99_ratio <= 1.10,
            "commit p99 with the background checkpointer must stay within \
             10% of checkpointing disabled, measured {:.2}x",
            p99_ratio
        );
        assert!(
            speedup >= 2.0,
            "mmap restore must reach first query >= 2x faster than the v1 \
             full-copy restore, measured {speedup:.1}x"
        );
    }
    println!(
        "\nincremental checkpoint: {:.1}% of full at {}/{chunks} dirty; \
         commit p99 {:.2}x baseline with background checkpointing; \
         mmap restore {speedup:.1}x to first query",
        ratio * 100.0,
        dirty_target,
        p99_ratio
    );
}
