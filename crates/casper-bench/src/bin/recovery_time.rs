//! Recovery-time experiment: what durability buys on restart.
//!
//! A cold start pays the full pipeline — load + sort + frequency-model
//! capture + per-chunk layout solve + rebuild + compression pass — before
//! serving a single query. A warm start restores the snapshot: the same
//! optimized layout comes back from disk with **zero solver invocations
//! and zero codec re-encodes** (asserted via the telemetry counters), plus
//! a WAL replay proportional only to the writes since the last checkpoint.
//!
//! ```text
//! cargo run --release --bin recovery_time -- --values=1000000
//! ```

use casper_bench::{Args, TableReport};
use casper_engine::optimize::{optimize_table, OptimizeOptions};
use casper_engine::{EngineConfig, LayoutMode, Table};
use casper_persist::{DurableOptions, DurableTable};
use casper_storage::compress::telemetry as codec_telemetry;
use casper_workload::{HapQuery, HapSchema, KeyDist, Mix, MixKind, WorkloadGenerator};
use std::time::Instant;

fn build_table(values: u64, config: EngineConfig) -> Table {
    let gen = WorkloadGenerator::new(HapSchema::narrow(), values, KeyDist::Uniform);
    Table::load_from_generator(&gen, config)
}

fn main() {
    let args = Args::parse();
    args.usage(
        "recovery_time",
        "Cold re-solve vs snapshot restore vs restore + WAL replay",
        &[
            ("values=N", "table rows (default 1M)"),
            (
                "sample=N",
                "workload sample size for the optimizer (default 4000)",
            ),
            (
                "writes=N",
                "writes logged after the checkpoint (default 2000)",
            ),
            (
                "dir=PATH",
                "persistence directory (default target/recovery_demo)",
            ),
        ],
    );
    let values = args.u64_or("values", 1_000_000);
    let sample_n = args.usize_or("sample", 4000);
    let writes_n = args.usize_or("writes", 2000);
    let dir = std::path::PathBuf::from(
        args.get("dir")
            .unwrap_or("target/recovery_demo")
            .to_string(),
    );
    let _ = std::fs::remove_dir_all(&dir);

    let mut config = EngineConfig::for_mode(LayoutMode::Casper);
    config.chunk_values = (values as usize / 4).clamp(4096, 1 << 20);
    let schema = HapSchema::narrow();
    let mix = Mix::new(MixKind::HybridPointSkewed, schema, values);
    let sample = mix.generate(sample_n, 7);
    let opts = OptimizeOptions::default();

    let mut report = TableReport::new(
        format!("Recovery time — {values} rows, {sample_n}-query sample"),
        &["phase", "ms", "layout solves", "codec encodes"],
    );

    // --- Cold start: load + optimize from scratch. -----------------------
    let solves0 = casper_core::solver::telemetry::solve_count();
    let encodes0 = codec_telemetry::encode_count();
    let t = Instant::now();
    let mut cold = build_table(values, config);
    optimize_table(&mut cold, &sample, &opts);
    let cold_ms = t.elapsed().as_secs_f64() * 1e3;
    // Chunk solves run on worker threads; count at least the main thread's
    // share and report the per-thread counters honestly.
    report.row(&[
        "cold start (load + re-solve + re-compress)".into(),
        format!("{cold_ms:.1}"),
        format!(
            "{}+workers",
            casper_core::solver::telemetry::solve_count() - solves0
        ),
        format!("{}+workers", codec_telemetry::encode_count() - encodes0),
    ]);

    // --- Persist the already-optimized table, then time one checkpoint
    // (a pure snapshot write + WAL rotation — the cost paid in the
    // background after each re-layout, NOT another optimize pass). -------
    let mut durable = DurableTable::create_from_table(&dir, cold, DurableOptions::default())
        .expect("create durable table");
    let t = Instant::now();
    durable.checkpoint().expect("checkpoint");
    let persist_ms = t.elapsed().as_secs_f64() * 1e3;
    report.row(&[
        "checkpoint (snapshot write, amortized)".into(),
        format!("{persist_ms:.1}"),
        "-".into(),
        "-".into(),
    ]);

    // --- Log writes after the checkpoint. --------------------------------
    for i in 0..writes_n as u64 {
        let key = 2 * values + 1 + i * 2;
        durable
            .execute(&HapQuery::Q4 {
                key,
                payload: schema.payload_row(key),
            })
            .expect("write");
    }
    let rows_saved = durable.len();
    let fingerprint: Vec<u64> = {
        let probes: Vec<HapQuery> = (0..20u64)
            .map(|i| HapQuery::Q2 {
                vs: i * values / 10,
                ve: i * values / 10 + values / 7,
            })
            .collect();
        probes
            .iter()
            .map(|q| durable.execute(q).expect("probe").result.scalar())
            .collect()
    };
    drop(durable);

    // --- Warm start: snapshot restore + WAL replay. ----------------------
    let solves1 = casper_core::solver::telemetry::solve_count();
    let encodes1 = codec_telemetry::encode_count();
    let t = Instant::now();
    let mut warm = DurableTable::open(&dir, DurableOptions::default()).expect("open");
    let warm_ms = t.elapsed().as_secs_f64() * 1e3;
    let solves_during_open = casper_core::solver::telemetry::solve_count() - solves1;
    let encodes_during_open = codec_telemetry::encode_count() - encodes1;
    report.row(&[
        format!("warm start (restore + {writes_n} WAL writes)"),
        format!("{warm_ms:.1}"),
        solves_during_open.to_string(),
        encodes_during_open.to_string(),
    ]);
    report.print();
    report.write_csv("recovery_time");

    assert_eq!(solves_during_open, 0, "recovery must not re-solve");
    assert_eq!(encodes_during_open, 0, "recovery must not re-encode");
    assert_eq!(warm.len(), rows_saved, "row count must survive recovery");
    let probes: Vec<HapQuery> = (0..20u64)
        .map(|i| HapQuery::Q2 {
            vs: i * values / 10,
            ve: i * values / 10 + values / 7,
        })
        .collect();
    let warm_fingerprint: Vec<u64> = probes
        .iter()
        .map(|q| warm.execute(q).expect("probe").result.scalar())
        .collect();
    assert_eq!(
        warm_fingerprint, fingerprint,
        "results must survive recovery"
    );
    println!(
        "\nwarm start is {:.1}x faster than the cold re-solve path \
         (0 solver invocations, 0 codec re-encodes on recovery)",
        cold_ms / warm_ms.max(1e-9)
    );
}
