//! Run every experiment binary at reduced scale — a smoke-test sweep of
//! the whole evaluation (useful for CI and for regenerating EXPERIMENTS.md
//! on a laptop).

use std::process::Command;

fn main() {
    let quick_args: &[(&str, &[&str])] = &[
        ("table01_design_space", &["--rows=262144", "--ops=2000"]),
        ("fig01_headline", &["--rows=262144", "--ops=2000"]),
        ("fig02_tradeoffs", &["--values=65536"]),
        (
            "fig09_model_verification",
            &["--values=1000000", "--partitions=100", "--quick"],
        ),
        (
            "fig11_scalability",
            &["--max-size=100000000", "--budget-ms=5000"],
        ),
        ("fig12_throughput", &["--rows=262144", "--ops=2000"]),
        ("fig13_latency_breakdown", &["--rows=262144", "--ops=2000"]),
        ("fig14_ghost_values", &["--rows=262144", "--ops=2000"]),
        ("fig15_sla", &["--rows=262144", "--ops=2000"]),
        ("fig16_robustness", &["--values=65536", "--ops=4000"]),
    ];
    let exe_dir = std::env::current_exe()
        .expect("current exe")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    let mut failures = Vec::new();
    for (bin, extra) in quick_args {
        println!("\n################ {bin} ################");
        let status = Command::new(exe_dir.join(bin)).args(extra.iter()).status();
        match status {
            Ok(s) if s.success() => {}
            other => {
                eprintln!("[all] {bin} failed: {other:?}");
                failures.push(*bin);
            }
        }
    }
    if failures.is_empty() {
        println!("\nAll experiments completed.");
    } else {
        eprintln!("\nFailed experiments: {failures:?}");
        std::process::exit(1);
    }
}
