//! Figure 12: normalized throughput of six column layouts across six
//! workloads (hybrid point/range skewed, read-only skewed/uniform,
//! update-only skewed/uniform), normalized against the `State-of-art`
//! delta-store design.
//!
//! Paper's reported Casper values (16 threads, 1M chunks, 16KB blocks,
//! 0.1% ghosts): 1.75 / 2.14 / 1.16 / 0.95(×1.44 uniform reads… see §7.2)
//! / 2.28 / 2.32.

use casper_bench::report::kops;
use casper_bench::{Args, RunConfig, TableReport};
use casper_engine::LayoutMode;
use casper_workload::MixKind;

fn main() {
    let args = Args::parse();
    args.usage(
        "fig12_throughput",
        "Fig. 12: normalized throughput, 6 workloads x 6 layouts",
        &[
            ("rows=N", "initial table rows (default 1M)"),
            ("ops=N", "measured operations per run (default 5000)"),
            ("train-ops=N", "Casper training sample size (default 5000)"),
            ("seed=N", "workload seed (default 42)"),
            ("threads=N", "worker threads"),
            ("chunk-values=N", "values per chunk (default 1M)"),
            (
                "equi-partitions=N",
                "partitions per chunk for Equi/cap (default 64)",
            ),
            ("ghosts=F", "ghost budget fraction (default 0.001)"),
            (
                "batch=1",
                "apply write runs chunk-parallel via Table::execute_batch",
            ),
        ],
    );
    let rc = RunConfig::from_args(&args);
    let modes = [
        LayoutMode::Casper,
        LayoutMode::EquiGV,
        LayoutMode::Equi,
        LayoutMode::StateOfArt,
        LayoutMode::Sorted,
        LayoutMode::NoOrder,
    ];
    // Paper Fig. 12 Casper normalized throughput per workload.
    let paper_casper = [1.75, 2.14, 1.16, 0.95, 2.28, 2.32];

    let mut report = TableReport::new(
        format!(
            "Fig. 12 — normalized throughput vs State-of-art (rows={}, ops={})",
            rc.rows, rc.ops
        ),
        &[
            "workload",
            "Casper",
            "Equi-GV",
            "Equi",
            "St-of-art",
            "Sorted",
            "No Order",
            "SoA kops",
            "paper Casper",
        ],
    );

    for (wi, kind) in MixKind::fig12().into_iter().enumerate() {
        eprintln!("[fig12] running workload: {}", kind.label());
        let mut tputs = Vec::new();
        for mode in modes {
            let out = casper_bench::runner::run_mix(kind, mode, &rc);
            eprintln!(
                "[fig12]   {:<12} {:>10.0} ops/s (checksum {})",
                mode.label(),
                out.throughput,
                out.checksum
            );
            tputs.push(out.throughput);
        }
        let soa = tputs[3].max(1e-9);
        let mut cells: Vec<String> = vec![kind.label().to_string()];
        cells.extend(tputs.iter().map(|t| format!("{:.2}", t / soa)));
        cells.push(kops(soa));
        cells.push(format!("{:.2}", paper_casper[wi]));
        report.row(&cells);
    }
    report.print();
    report.write_csv("fig12_throughput");
    println!(
        "\nShape check: Casper >= 1.0 on hybrid and update-only workloads;\n\
         State-of-art may lead slightly on skewed read-only (paper: Casper 0.95x there)."
    );
}
