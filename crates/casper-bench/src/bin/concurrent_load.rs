//! Concurrency trajectory: mixed read/write throughput on the snapshot
//! read path, recorded in `BENCH_concurrent.json`.
//!
//! One writer applies count-neutral batches at a fixed (open-loop) arrival
//! rate through the chunk-parallel publish path while 1/2/4/8 reader
//! threads hammer `TableReader` handles flat-out, each pinning the
//! published snapshot once per query. Reported per reader level:
//!
//! - aggregate read throughput (queries/s) and its scaling versus one
//!   reader,
//! - read latency p50/p99 in microseconds,
//! - writer batches actually applied (the paced load stays on).
//!
//! Readers execute a seeded mix of Q1 point lookups, ~1% Q2 range counts,
//! and Q3 range sums. Because reads run on immutable pinned snapshots,
//! the only shared-state traffic per query is one `Arc` refcount bump —
//! the scaling curve measures that, not lock contention.
//!
//! ```text
//! cargo run --release --bin concurrent_load -- --rows=200000
//! cargo run --release --bin concurrent_load -- --smoke     # CI-sized
//! ```
//!
//! The ≥4x scaling-at-8-readers gate only fires on hosts that can
//! actually run 8 readers + 1 writer in parallel; the JSON records
//! `host_parallelism` so downstream tooling can interpret the curve.

use casper_bench::trajectory::{self, Metric};
use casper_bench::{Args, TableReport};
use casper_engine::{EngineConfig, LayoutMode, Table, TableReader};
use casper_workload::{HapQuery, HapSchema};
use rand::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

fn percentile(lat: &mut [f64], p: usize) -> f64 {
    lat.sort_by(f64::total_cmp);
    lat[(lat.len() * p / 100).min(lat.len() - 1)]
}

/// Even-keyed fixture so writer-minted odd keys never collide.
fn build_table(rows: u64, mode: LayoutMode) -> Table {
    let schema = HapSchema::narrow();
    let keys: Vec<u64> = (0..rows).map(|i| i * 2).collect();
    let payload_cols: Vec<Vec<u32>> = (0..schema.payload_cols)
        .map(|c| {
            keys.iter()
                .map(|&k| (k as u32).wrapping_mul(c as u32 + 1))
                .collect()
        })
        .collect();
    let mut config = EngineConfig::for_mode(mode);
    config.chunk_values = (rows as usize / 32).clamp(1024, 1 << 20);
    Table::load(schema, keys, payload_cols, config)
}

/// Closed-loop reader worker: pins the latest snapshot once per query and
/// records per-query latency until `stop` flips.
fn reader_loop(
    handle: &TableReader,
    domain: u64,
    seed: u64,
    stop: &AtomicBool,
    done: &AtomicU64,
    out: &Mutex<Vec<f64>>,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let span = (domain / 100).max(2); // ~1% selectivity ranges
    let mut lat = Vec::with_capacity(4096);
    let mut n = 0u64;
    while !stop.load(Ordering::Relaxed) {
        let roll: u64 = rng.gen_range(0..10);
        let at: u64 = rng.gen_range(0..domain.saturating_sub(span));
        let q = match roll {
            0..=4 => HapQuery::Q1 { v: at & !1, k: 4 },
            5..=7 => HapQuery::Q2 {
                vs: at,
                ve: at + span,
            },
            _ => HapQuery::Q3 {
                vs: at,
                ve: at + span,
                k: 2,
            },
        };
        let t = Instant::now();
        let o = handle.execute(&q).expect("snapshot read");
        std::hint::black_box(o.result.scalar());
        lat.push(t.elapsed().as_secs_f64() * 1e6);
        n += 1;
    }
    done.fetch_add(n, Ordering::Relaxed);
    out.lock().expect("latency sink").extend(lat);
}

struct LevelResult {
    readers: usize,
    read_qps: f64,
    p50_us: f64,
    p99_us: f64,
    writer_batches: u64,
}

/// Run one reader level: paced writer + `readers` flat-out readers for
/// `duration`.
fn run_level(
    table: &mut Table,
    readers: usize,
    duration: Duration,
    writer_interval: Duration,
    seed: u64,
    next_key: &mut u64,
) -> LevelResult {
    let schema = table.schema();
    let domain = 2 * table.len() as u64;
    let reader_handle = table.reader();
    let stop = AtomicBool::new(false);
    let done = AtomicU64::new(0);
    let lat_sink = Mutex::new(Vec::new());
    let mut writer_batches = 0u64;
    let mut elapsed = Duration::ZERO;

    std::thread::scope(|scope| {
        for r in 0..readers {
            let handle = reader_handle.clone();
            let (stop, done, lat_sink) = (&stop, &done, &lat_sink);
            scope.spawn(move || {
                reader_loop(&handle, domain, seed ^ (r as u64 + 1), stop, done, lat_sink)
            });
        }
        // Open-loop writer on this thread: one count-neutral batch per
        // arrival tick, independent of how fast readers drain.
        let start = Instant::now();
        let mut live_key = 0u64;
        while start.elapsed() < duration {
            let fresh = *next_key;
            *next_key += 2;
            let mut batch = vec![HapQuery::Q4 {
                key: fresh,
                payload: schema.payload_row(fresh),
            }];
            if live_key != 0 {
                batch.push(HapQuery::Q5 { v: live_key });
            }
            live_key = fresh;
            table.execute_batch(&batch).expect("write batch");
            writer_batches += 1;
            std::thread::sleep(writer_interval);
        }
        elapsed = start.elapsed();
        stop.store(true, Ordering::Relaxed);
    });

    let mut lat = lat_sink.into_inner().expect("latency sink");
    let reads = done.load(Ordering::Relaxed);
    LevelResult {
        readers,
        read_qps: reads as f64 / elapsed.as_secs_f64(),
        p50_us: percentile(&mut lat, 50),
        p99_us: percentile(&mut lat, 99),
        writer_batches,
    }
}

fn main() {
    let args = Args::parse();
    args.usage(
        "concurrent_load",
        "Mixed read/write driver: snapshot-reader scaling with an active writer",
        &[
            ("rows=N", "table rows (default 200k)"),
            ("secs=F", "seconds per reader level (default 2.0)"),
            ("writer-hz=N", "write batches per second (default 200)"),
            ("seed=N", "query-mix seed (default 42)"),
            ("smoke", "CI smoke mode: tiny sizes, no scaling assertions"),
        ],
    );
    let smoke = args.flag("smoke");
    let rows = args.u64_or("rows", if smoke { 40_000 } else { 200_000 });
    let secs = args.f64_or("secs", if smoke { 0.3 } else { 2.0 });
    let writer_hz = args.u64_or("writer-hz", 200).max(1);
    let seed = args.u64_or("seed", 42);
    let duration = Duration::from_secs_f64(secs);
    let writer_interval = Duration::from_secs_f64(1.0 / writer_hz as f64);
    let host_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut table = build_table(rows, LayoutMode::Casper);
    // Writer-minted odd keys live above the even fixture range.
    let mut next_key = 2 * rows + 1;

    let mut report = TableReport::new(
        format!(
            "Concurrent mixed load — {rows} rows, writer at {writer_hz} batches/s, \
             {host_parallelism}-way host"
        ),
        &[
            "readers",
            "read kq/s",
            "scaling",
            "p50 us",
            "p99 us",
            "writer batches",
        ],
    );
    let mut metrics: Vec<Metric> = Vec::new();
    let mut base_qps = 0.0f64;
    let mut scaling_at_8 = 0.0f64;

    for readers in [1usize, 2, 4, 8] {
        let level = run_level(
            &mut table,
            readers,
            duration,
            writer_interval,
            seed,
            &mut next_key,
        );
        if readers == 1 {
            base_qps = level.read_qps;
        }
        let scaling = level.read_qps / base_qps.max(1e-9);
        if readers == 8 {
            scaling_at_8 = scaling;
        }
        report.row(&[
            format!("{}", level.readers),
            format!("{:.1}", level.read_qps / 1e3),
            format!("{scaling:.2}x"),
            format!("{:.1}", level.p50_us),
            format!("{:.1}", level.p99_us),
            format!("{}", level.writer_batches),
        ]);
        metrics.push(Metric::new(
            format!("read_qps_{readers}r"),
            level.read_qps,
            "qps",
        ));
        metrics.push(Metric::new(
            format!("read_p50_us_{readers}r"),
            level.p50_us,
            "us",
        ));
        metrics.push(Metric::new(
            format!("read_p99_us_{readers}r"),
            level.p99_us,
            "us",
        ));
        metrics.push(Metric::new(
            format!("writer_batches_{readers}r"),
            level.writer_batches as f64,
            "count",
        ));
    }
    metrics.push(Metric::new("read_scaling_1_to_8", scaling_at_8, "ratio"));
    metrics.push(Metric::new(
        "host_parallelism",
        host_parallelism as f64,
        "count",
    ));

    report.print();
    report.write_csv("concurrent_load");
    trajectory::write_metrics_json(
        "BENCH_concurrent.json",
        "concurrent_load",
        smoke,
        &[
            ("rows", rows),
            ("writer_hz", writer_hz),
            ("host_parallelism", host_parallelism as u64),
        ],
        &metrics,
    );

    // Scaling gate: snapshot reads share no locks, so on a host with the
    // cores to run them, 8 readers must deliver ≥4x one reader even with
    // the writer publishing continuously. Skipped when the host cannot
    // physically run the 8-reader level in parallel (the curve then
    // measures the scheduler, not the engine).
    if !smoke && host_parallelism >= 9 {
        assert!(
            scaling_at_8 >= 4.0,
            "8-reader throughput must scale ≥4x over 1 reader with an active \
             writer, measured {scaling_at_8:.2}x"
        );
    }
    println!(
        "\n8-reader scaling {scaling_at_8:.2}x over 1 reader ({host_parallelism}-way host, \
         writer at {writer_hz} batches/s)"
    );
}
