//! Point-in-time recovery trajectory: what the LSN-indexed archive, hot
//! backup, and restore-to-LSN cost — and what archiving costs the commit
//! path.
//!
//! Three experiments, all recorded in `BENCH_pitr.json`:
//!
//! 1. **Restore-to-LSN latency vs replay distance** — `open_at` resolves
//!    the newest archived base at or before the target and replays the
//!    archived WAL chain the rest of the way; latency is measured at a
//!    checkpoint boundary (zero replay), one epoch of replay, and the
//!    chain tip. Every restore is counter-asserted solve-free and
//!    re-encode-free.
//! 2. **Hot-backup throughput** — `begin_backup` fences, then the copy
//!    runs on its own thread while the source streams commits; reported
//!    as copy MB/s, commits absorbed during the copy, and the verify
//!    pass's MB/s over the finished backup.
//! 3. **Commit p99, archiving on vs off** — identical watermark-triggered
//!    background checkpointing, with checkpoint pruning either deleting
//!    stale files or retiring them into the archive. The gate: archiving
//!    must hold the commit p99 within 10% of pruning (median of
//!    per-repetition ratios, same noise-cancelling scheme as
//!    `recovery_time`).
//!
//! ```text
//! cargo run --release --bin pitr_restore -- --values=1000000
//! cargo run --release --bin pitr_restore -- --smoke     # CI-sized
//! ```

use casper_bench::trajectory::{self, Metric};
use casper_bench::{Args, TableReport};
use casper_engine::{EngineConfig, LayoutMode, Table};
use casper_persist::{ArchiveConfig, DurableOptions, DurableTable, FaultVfs, VfsHandle};
use casper_storage::compress::telemetry as codec_telemetry;
use casper_workload::{HapQuery, HapSchema, KeyDist, WorkloadGenerator};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

fn build_table(values: u64, config: EngineConfig) -> Table {
    let gen = WorkloadGenerator::new(HapSchema::narrow(), values, KeyDist::Uniform);
    Table::load_from_generator(&gen, config)
}

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

fn p99_us(mut lat: Vec<f64>) -> f64 {
    lat.sort_by(f64::total_cmp);
    lat[(lat.len() * 99 / 100).min(lat.len() - 1)]
}

fn median(v: &[f64]) -> f64 {
    let mut v = v.to_vec();
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

/// Stream `n` single-row commits, returning per-commit latencies in µs.
fn commit_stream(durable: &mut DurableTable, schema: HapSchema, base: u64, n: usize) -> Vec<f64> {
    let mut lat = Vec::with_capacity(n);
    for i in 0..n as u64 {
        let key = base + 2 * i + 1;
        let q = HapQuery::Q4 {
            key,
            payload: schema.payload_row(key),
        };
        let t = Instant::now();
        durable.execute(&q).expect("commit");
        lat.push(t.elapsed().as_secs_f64() * 1e6);
    }
    lat
}

fn fresh_dir(base: &Path, name: &str) -> PathBuf {
    let dir = base.join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn main() {
    let args = Args::parse();
    args.usage(
        "pitr_restore",
        "Point-in-time recovery: archive, restore-to-LSN, hot backup, and the commit-path cost of archiving",
        &[
            ("values=N", "table rows (default 1M)"),
            ("writes=N", "commits per stream/epoch (default 10000)"),
            ("dir=PATH", "scratch directory (default target/pitr_demo)"),
            ("smoke", "CI smoke mode: tiny sizes, no ratio assertions"),
            (
                "fault-vfs",
                "route all persistence I/O through a zero-fault FaultVfs \
                 (harness-drift check; timing gates are skipped)",
            ),
        ],
    );
    let smoke = args.flag("smoke");
    let fault_vfs = args.flag("fault-vfs");
    let vfs = if fault_vfs {
        VfsHandle::fault(Arc::new(FaultVfs::new()))
    } else {
        VfsHandle::default()
    };
    let values = args.u64_or("values", if smoke { 40_000 } else { 1_000_000 });
    let writes_n = args.usize_or("writes", if smoke { 400 } else { 10_000 });
    let base = PathBuf::from(args.get("dir").unwrap_or("target/pitr_demo").to_string());
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).expect("scratch dir");

    let mut config = EngineConfig::for_mode(LayoutMode::Casper);
    // Fine chunks, as in recovery_time's commit-path experiment: the
    // streams append into a hot chunk, and chunk granularity bounds each
    // checkpoint's write amplification.
    config.chunk_values = (values as usize / 128).clamp(1024, 1 << 20);
    let schema = HapSchema::narrow();

    let sync_archive = DurableOptions {
        background_checkpointer: false,
        archive: Some(ArchiveConfig::default()),
        ..DurableOptions::default()
    };

    let mut report = TableReport::new(
        format!("PITR trajectory — {values} rows"),
        &["experiment", "value", "note"],
    );
    let mut metrics: Vec<Metric> = Vec::new();

    // --- 1. Restore-to-LSN latency vs replay distance. -------------------
    // Four checkpointed epochs of `writes_n` commits build an archived
    // history, plus one final unfolded epoch at the tip.
    let dir_hist = fresh_dir(&base, "history");
    let mut durable = DurableTable::create_from_table_with_vfs(
        vfs.clone(),
        &dir_hist,
        build_table(values, config),
        sync_archive,
    )
    .expect("create archived table");
    let epoch = writes_n;
    let mut boundary_lsns = Vec::new(); // durable LSN after each checkpoint
    for e in 0..4u64 {
        commit_stream(
            &mut durable,
            schema,
            4 * values + e * 8 * epoch as u64,
            epoch,
        );
        durable.checkpoint().expect("checkpoint");
        boundary_lsns.push(durable.stats().durable_lsn);
    }
    commit_stream(&mut durable, schema, 4 * values + 32 * epoch as u64, epoch);
    let tip_lsn = durable.stats().next_lsn - 1;
    let archived = durable.archive_index().expect("archive index").file_count();
    drop(durable);

    let probe = HapQuery::Q2 {
        vs: 0,
        ve: 2 * values,
    };
    let solves0 = casper_core::solver::telemetry::solve_count();
    let encodes0 = codec_telemetry::encode_count();
    // (label, target LSN): replay distance grows left to right.
    let targets = [
        ("checkpoint boundary (zero replay)", boundary_lsns[0]),
        (
            "half an epoch of archived replay",
            (boundary_lsns[0] + boundary_lsns[1]) / 2,
        ),
        ("chain tip (live WAL replay)", tip_lsn),
    ];
    let mut restore_ms = Vec::new();
    for (label, lsn) in targets {
        let t = Instant::now();
        let mut pit = DurableTable::open_at_with_vfs(vfs.clone(), &dir_hist, lsn, sync_archive)
            .expect("open_at");
        let hit = pit
            .table
            .execute(&probe)
            .expect("first query")
            .result
            .scalar();
        let elapsed = ms(t);
        assert!(hit > 0, "restored table answered nothing");
        assert!(pit.restored_lsn <= lsn);
        report.row(&[
            format!("restore to LSN, {label}"),
            format!("{elapsed:.1} ms"),
            format!("{} ops replayed, gen {}", pit.ops_replayed, pit.generation),
        ]);
        restore_ms.push((elapsed, pit.ops_replayed));
    }
    assert_eq!(
        casper_core::solver::telemetry::solve_count(),
        solves0,
        "restore-to-LSN must not re-solve"
    );
    assert_eq!(
        codec_telemetry::encode_count(),
        encodes0,
        "restore-to-LSN must not re-encode"
    );
    assert!(
        restore_ms[1].1 > 0,
        "the mid-epoch target must actually replay archived WAL"
    );
    metrics.push(Metric::new("restore_at_boundary_ms", restore_ms[0].0, "ms"));
    metrics.push(Metric::new("restore_mid_epoch_ms", restore_ms[1].0, "ms"));
    metrics.push(Metric::new("restore_tip_ms", restore_ms[2].0, "ms"));
    metrics.push(Metric::new(
        "restore_mid_epoch_ops_replayed",
        restore_ms[1].1 as f64,
        "count",
    ));
    metrics.push(Metric::new("archive_files", archived as f64, "count"));

    // --- 2. Hot-backup throughput under concurrent commits. --------------
    let dir_backup = fresh_dir(&base, "backup");
    let mut durable =
        DurableTable::open_with_vfs(vfs.clone(), &dir_hist, sync_archive).expect("open");
    let job = durable.begin_backup(&dir_backup).expect("begin_backup");
    let fence = job.backup_lsn();
    let t_copy = Instant::now();
    let copier = std::thread::spawn(move || {
        let t = Instant::now();
        let r = job.run().expect("backup");
        (r, t.elapsed().as_secs_f64())
    });
    // The source keeps absorbing commits while the copy runs.
    let during = commit_stream(
        &mut durable,
        schema,
        4 * values + 64 * epoch as u64,
        writes_n,
    );
    let (backup_report, copy_secs) = copier.join().expect("copier thread");
    let wall_ms = ms(t_copy);
    assert_eq!(backup_report.backup_lsn, fence);
    let backup_mb = backup_report.bytes as f64 / 1e6;
    let copy_mb_s = backup_mb / copy_secs.max(1e-9);
    let t = Instant::now();
    let verify = DurableTable::verify_backup_with_vfs(vfs.clone(), &dir_backup).expect("verify");
    let verify_secs = t.elapsed().as_secs_f64();
    let verify_mb_s = verify.bytes as f64 / 1e6 / verify_secs.max(1e-9);
    assert_eq!(verify.last_lsn, fence);
    report.row(&[
        "hot backup copy".into(),
        format!("{copy_mb_s:.0} MB/s"),
        format!(
            "{backup_mb:.1} MB, {} files; {writes_n} commits absorbed in {wall_ms:.0} ms wall",
            backup_report.files
        ),
    ]);
    report.row(&[
        "backup verification".into(),
        format!("{verify_mb_s:.0} MB/s"),
        format!("{} records, {} WAL links", verify.records, verify.wal_links),
    ]);
    metrics.push(Metric::new("backup_copy_mb_per_s", copy_mb_s, "MB/s"));
    metrics.push(Metric::new("backup_bytes_mb", backup_mb, "MB"));
    metrics.push(Metric::new(
        "backup_commit_p99_during_copy_us",
        p99_us(during),
        "us",
    ));
    metrics.push(Metric::new("backup_verify_mb_per_s", verify_mb_s, "MB/s"));
    drop(durable);

    // --- 3. Commit p99: archiving on vs off. -----------------------------
    // Same interleaved-repetition scheme as recovery_time: both configs
    // run back to back inside each repetition from a pristine directory
    // copy, and the gated quantity is the median of per-repetition
    // ratios, cancelling container-level I/O noise epochs.
    let watermark = if smoke { 16 * 1024 } else { 512 * 1024 };
    let reps = if smoke { 1 } else { 5 };
    let dir_src = fresh_dir(&base, "p99_src");
    drop(
        DurableTable::create_from_table_with_vfs(
            vfs.clone(),
            &dir_src,
            build_table(values, config),
            DurableOptions {
                background_checkpointer: false,
                ..DurableOptions::default()
            },
        )
        .expect("create p99 table"),
    );
    let configs: [(&str, DurableOptions); 2] = [
        (
            "archiving off (prune)",
            DurableOptions {
                wal_checkpoint_bytes: watermark,
                ..DurableOptions::default()
            },
        ),
        (
            "archiving on (retire)",
            DurableOptions {
                wal_checkpoint_bytes: watermark,
                archive: Some(ArchiveConfig::default()),
                ..DurableOptions::default()
            },
        ),
    ];
    let gated = !smoke && !fault_vfs;
    let measure = || {
        let mut p99s = [const { Vec::new() }; 2];
        let mut checkpoints = [0u64; 2];
        for _ in 0..reps {
            for (ci, (_, opts)) in configs.iter().enumerate() {
                let dir_p99 = fresh_dir(&base, "p99");
                std::fs::create_dir_all(&dir_p99).expect("trial dir");
                for entry in std::fs::read_dir(&dir_src).expect("src").flatten() {
                    if entry.path().is_file() {
                        std::fs::copy(entry.path(), dir_p99.join(entry.file_name())).expect("copy");
                    }
                }
                let mut d =
                    DurableTable::open_with_vfs(vfs.clone(), &dir_p99, *opts).expect("open");
                let before_gen = d.stats().generation;
                let lat = commit_stream(&mut d, schema, 4 * values + 1_000_000, writes_n);
                // Latencies are collected; a synchronous checkpoint now
                // waits out any watermark job still on the background
                // thread (the fault harness makes them slow enough to
                // straddle the stream) so the generation delta counts
                // every checkpoint of the rep.
                d.checkpoint().expect("final checkpoint");
                checkpoints[ci] += d.stats().generation - before_gen;
                p99s[ci].push(p99_us(lat));
                drop(d);
            }
        }
        let per_rep_ratios: Vec<f64> = p99s[1]
            .iter()
            .zip(&p99s[0])
            .map(|(on, off)| on / off.max(1e-9))
            .collect();
        let ratio = median(&per_rep_ratios);
        (p99s, checkpoints, ratio)
    };
    // One retry if the first attempt lands over the gate (the obs_overhead
    // idiom): a sustained container I/O noise epoch can poison even the
    // median of per-repetition ratios, but a genuine retire cost on the
    // commit path fails both attempts.
    let (p99s, checkpoints, p99_ratio) = {
        let first = measure();
        if gated && first.2 > 1.10 {
            eprintln!(
                "pitr_restore: first attempt {:.2}x over gate, retrying once",
                first.2
            );
            measure()
        } else {
            first
        }
    };
    for (ci, (name, _)) in configs.iter().enumerate() {
        report.row(&[
            format!("commit p99, {name} (median of {reps})"),
            format!("{:.1} us", median(&p99s[ci])),
            format!("{} checkpoints", checkpoints[ci]),
        ]);
    }
    metrics.push(Metric::new(
        "commit_p99_us_archiving_off",
        median(&p99s[0]),
        "us",
    ));
    metrics.push(Metric::new(
        "commit_p99_us_archiving_on",
        median(&p99s[1]),
        "us",
    ));
    metrics.push(Metric::new(
        "commit_p99_archive_vs_prune",
        p99_ratio,
        "ratio",
    ));
    assert!(
        checkpoints[1] > 0,
        "archiving stream never checkpointed — the retire path was not exercised"
    );

    report.print();
    report.write_csv("pitr_restore");
    trajectory::write_metrics_json(
        if fault_vfs {
            "BENCH_pitr_faultvfs.json"
        } else {
            "BENCH_pitr.json"
        },
        "pitr_restore",
        smoke,
        &[
            ("rows", values),
            ("stream_writes", writes_n as u64),
            ("archive_files", archived),
        ],
        &metrics,
    );

    // Acceptance gate (full-size, real-filesystem runs only — smoke sizes
    // are too noisy and the fault harness re-reads files on every fsync).
    if gated {
        assert!(
            p99_ratio <= 1.10,
            "archiving must hold the commit p99 within 10% of plain pruning, \
             measured {p99_ratio:.2}x"
        );
    }
    println!(
        "\nrestore-to-LSN {:.1}/{:.1}/{:.1} ms (boundary/epoch/tip); hot backup \
         {copy_mb_s:.0} MB/s with commits live; commit p99 {p99_ratio:.2}x with archiving",
        restore_ms[0].0, restore_ms[1].0, restore_ms[2].0
    );
}
