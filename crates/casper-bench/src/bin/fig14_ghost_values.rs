//! Figure 14: insert latency vs ghost-value budget (0.01% → 10% of the
//! data size) for the UDI1 (update-only skewed), UDI2 (update-only
//! uniform), and YCSB-A2 (hybrid skewed) workloads, on Casper layouts.
//!
//! Paper shape: more ghost values → lower insert latency in every
//! workload; already 1% of slack halves the insert latency.

use casper_bench::report::us;
use casper_bench::{Args, RunConfig, TableReport};
use casper_engine::LayoutMode;
use casper_workload::MixKind;

fn main() {
    let args = Args::parse();
    args.usage(
        "fig14_ghost_values",
        "Fig. 14: insert latency vs ghost budget for UDI1/UDI2/YCSB-A2",
        &[
            ("rows=N", "initial table rows (default 1M)"),
            ("ops=N", "measured operations (default 5000)"),
            ("seed=N", "workload seed"),
        ],
    );
    let mut rc = RunConfig::from_args(&args);
    let budgets = [0.0001, 0.001, 0.01, 0.1];
    let mixes = [
        MixKind::UpdateOnlySkewed,
        MixKind::UpdateOnlyUniform,
        MixKind::YcsbA2,
    ];
    let mut report = TableReport::new(
        format!(
            "Fig. 14 — insert latency (us) vs ghost budget (rows={})",
            rc.rows
        ),
        &["workload", "0.01%", "0.1%", "1%", "10%"],
    );
    for kind in mixes {
        let mut cells = vec![kind.label().to_string()];
        for budget in budgets {
            rc.engine.ghost_budget_frac = budget;
            eprintln!("[fig14] {} @ {:.2}%", kind.label(), budget * 100.0);
            let out = casper_bench::runner::run_mix(kind, LayoutMode::Casper, &rc);
            let q4 = out
                .latencies
                .summary(3)
                .map(|s| us(s.mean_ns))
                .unwrap_or_else(|| "-".into());
            cells.push(q4);
        }
        report.row(&cells);
    }
    report.print();
    report.write_csv("fig14_ghost_values");
    println!("\nShape check: insert latency must fall monotonically with the budget.");
}
