//! Figure 16: robustness to workload uncertainty (§7.5).
//!
//! Train a layout on the Fig. 16a profile (point queries concentrated on
//! the upper domain, inserts on the lower, 50/50), then serve shifted
//! workloads: rotational shift of the targeted domain (x-axis, 0–50%) ×
//! mass shift between point queries and inserts (lines, −25%…+25%).
//! Reported: latency of the trained layout normalized by a layout
//! re-optimized for the shifted workload (1.0 = still optimal).
//!
//! Paper shape: a plateau — up to ~10% rotation / ~15% mass shift costs
//! almost nothing — then a cliff of up to ~60%.

use casper_bench::{Args, TableReport};
use casper_core::cost::{BlockTerms, CostConstants};
use casper_core::fm::{AccessDistribution, WorkloadSpec};
use casper_core::ghost_alloc::allocate_ghosts;
use casper_core::robust::{evaluate_robustness, mass_shift, rotational_shift};
use casper_core::solver::{dp, SolverConstraints};
use casper_core::FrequencyModel;
use casper_storage::{BlockLayout, ChunkConfig, PartitionedChunk};
use rand::prelude::*;
use std::time::Instant;

fn fig16a_fm(n: usize) -> FrequencyModel {
    FrequencyModel::from_distributions(
        n,
        &WorkloadSpec {
            point: Some((
                5000.0,
                AccessDistribution::Gaussian {
                    mean: 0.75,
                    std: 0.12,
                },
            )),
            insert: Some((
                5000.0,
                AccessDistribution::Gaussian {
                    mean: 0.25,
                    std: 0.12,
                },
            )),
            ..WorkloadSpec::none()
        },
    )
}

/// Execute a point/insert stream drawn from `fm`'s distributions against a
/// chunk built with layout `seg`; returns mean op latency (ns).
fn measure(
    fm: &FrequencyModel,
    seg: &casper_core::Segmentation,
    values: usize,
    ops: usize,
    seed: u64,
) -> f64 {
    let layout = BlockLayout::new::<u64>(4096);
    let vpb = layout.values_per_block();
    let ghosts = allocate_ghosts(fm, seg, values / 100);
    let mut chunk = PartitionedChunk::build(
        (0..values as u64).map(|v| v * 2).collect(),
        &seg.to_spec(),
        layout,
        &ghosts,
        ChunkConfig {
            capacity_slack: 0.3,
            ..ChunkConfig::default()
        },
    )
    .expect("build");
    // Sample block ids proportionally to the fm's pq/ins histograms.
    let mut rng = StdRng::seed_from_u64(seed);
    let sample_block = |h: &[f64], rng: &mut StdRng| -> usize {
        let total: f64 = h.iter().sum();
        let mut pick = rng.gen_range(0.0..total.max(1e-12));
        for (i, &w) in h.iter().enumerate() {
            if pick < w {
                return i;
            }
            pick -= w;
        }
        h.len() - 1
    };
    let pq_mass: f64 = fm.pq.iter().sum();
    let ins_mass: f64 = fm.ins.iter().sum();
    let p_read = pq_mass / (pq_mass + ins_mass).max(1e-12);
    let t = Instant::now();
    let mut acc = 0usize;
    for _ in 0..ops {
        if rng.gen_bool(p_read) {
            let b = sample_block(&fm.pq, &mut rng);
            let v = ((b * vpb + rng.gen_range(0..vpb)) as u64 * 2).min(2 * values as u64);
            acc += chunk.point_query(v).positions.len();
        } else {
            let b = sample_block(&fm.ins, &mut rng);
            let v = (b * vpb + rng.gen_range(0..vpb)) as u64 * 2 + 1;
            chunk.insert(v, &[]).expect("insert");
        }
    }
    std::hint::black_box(acc);
    t.elapsed().as_nanos() as f64 / ops as f64
}

fn main() {
    let args = Args::parse();
    args.usage(
        "fig16_robustness",
        "Fig. 16: normalized latency under rotational and mass shift",
        &[
            ("values=N", "chunk values (default 262144)"),
            ("ops=N", "measured ops per grid point (default 20000)"),
            (
                "model-only",
                "skip execution, report model-based normalization",
            ),
        ],
    );
    let values = args.usize_or("values", 1 << 18);
    let ops = args.usize_or("ops", 20_000);
    let model_only = args.flag("model-only");
    // Model blocks must match the 4KB physical blocks of the measured chunk.
    let n = (values / 512).max(8);
    let constants = if model_only {
        CostConstants::paper()
    } else {
        casper_bench::runner::calibrated_constants(4096)
    };
    let constraints = SolverConstraints {
        max_partitions: Some(64),
        max_partition_blocks: None,
    };
    let base = fig16a_fm(n);
    let trained = dp::solve(&BlockTerms::from_fm(&base, &constants), &constraints).seg;
    println!("trained layout: {trained}");

    let rotations: Vec<f64> = (0..=10).map(|i| i as f64 * 0.05).collect();
    let mass_shifts = [-0.25, -0.15, 0.0, 0.15, 0.25];
    let mut report = TableReport::new(
        format!(
            "Fig. 16b — normalized latency ({}), rows = rotational shift, cols = mass shift",
            if model_only { "model" } else { "measured" }
        ),
        &["rotation", "-25%", "-15%", "0%", "+15%", "+25%"],
    );
    for &rot in &rotations {
        let mut cells = vec![format!("{:.0}%", rot * 100.0)];
        for &ms in &mass_shifts {
            let shifted = rotational_shift(&mass_shift(&base, ms), rot);
            let norm = if model_only {
                evaluate_robustness(&trained, &shifted, &constants, &constraints)
                    .normalized_latency()
            } else {
                let oracle_seg =
                    dp::solve(&BlockTerms::from_fm(&shifted, &constants), &constraints).seg;
                let seed = (rot * 100.0) as u64 * 1000 + ((ms + 1.0) * 100.0) as u64;
                // Two interleaved rounds each, keeping the minimum: the
                // first round of a fresh chunk pays first-touch page faults.
                let trained_ns = measure(&shifted, &trained, values, ops, seed).min(measure(
                    &shifted,
                    &trained,
                    values,
                    ops,
                    seed + 7,
                ));
                let oracle_ns = measure(&shifted, &oracle_seg, values, ops, seed).min(measure(
                    &shifted,
                    &oracle_seg,
                    values,
                    ops,
                    seed + 7,
                ));
                trained_ns / oracle_ns.max(1e-9)
            };
            cells.push(format!("{norm:.3}"));
        }
        report.row(&cells);
        eprintln!("[fig16] rotation {:.0}% done", rot * 100.0);
    }
    report.print();
    report.write_csv("fig16_robustness");
    println!(
        "\nShape check: ~1.0 plateau for small shifts, then a cliff as the\n\
         trained read/insert regions stop matching the workload (paper: up\n\
         to ~1.6x at extreme shifts)."
    );
}
