//! Shared experiment runner: build a table in a given mode, train Casper on
//! a workload sample, execute a measured query stream.

use casper_core::solver::SolverConstraints;
use casper_core::CostConstants;
use casper_engine::calibrate::{calibrate, CalibrationConfig};
use casper_engine::optimize::{optimize_table, OptimizeOptions};
use casper_engine::{EngineConfig, LatencyRecorder, LayoutMode, Table};
use casper_workload::{HapQuery, HapSchema, Mix, MixKind};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Host-calibrated cost constants for a given block size (§4.5: "for every
/// instance of Casper deployed, we first need to establish these values
/// through micro-benchmarking"). Cached per process; the 16 KB default
/// covers every experiment, other block sizes re-run the micro-benchmark.
pub fn calibrated_constants(block_bytes: usize) -> CostConstants {
    static CACHE: OnceLock<parking_lot_free::Cache> = OnceLock::new();
    CACHE
        .get_or_init(parking_lot_free::Cache::default)
        .get(block_bytes)
}

/// A tiny lock-free-ish cache (Mutex over a Vec) avoiding a parking_lot
/// dependency in this crate.
mod parking_lot_free {
    use super::*;
    #[derive(Default)]
    pub struct Cache {
        inner: std::sync::Mutex<Vec<(usize, CostConstants)>>,
    }
    impl Cache {
        pub fn get(&self, block_bytes: usize) -> CostConstants {
            let mut inner = self.inner.lock().expect("cache poisoned");
            if let Some((_, c)) = inner.iter().find(|(b, _)| *b == block_bytes) {
                return *c;
            }
            eprintln!("[calibrate] measuring RR/RW/SR/SW for {block_bytes}B blocks…");
            let c = calibrate(&CalibrationConfig {
                block_bytes,
                buffer_bytes: 32 << 20,
                repetitions: 3,
            });
            eprintln!(
                "[calibrate] RR={:.1}ns RW={:.1}ns SR={:.1}ns/blk SW={:.1}ns/blk",
                c.rr, c.rw, c.sr, c.sw
            );
            inner.push((block_bytes, c));
            c
        }
    }
}

/// Scale and seeding of one experiment run.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Rows in the initial load.
    pub rows: u64,
    /// Measured operations.
    pub ops: usize,
    /// Training-sample operations (Casper mode only).
    pub train_ops: usize,
    /// RNG seed (training uses `seed + 1`).
    pub seed: u64,
    /// Apply consecutive write runs chunk-parallel through
    /// `Table::execute_batch` instead of one query at a time.
    pub batch_writes: bool,
    /// Engine configuration template (mode is overridden per run).
    pub engine: EngineConfig,
    /// Solver constraints for the Casper optimization.
    pub constraints: SolverConstraints,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            rows: 1 << 20,
            ops: 5000,
            train_ops: 5000,
            seed: 42,
            batch_writes: false,
            engine: EngineConfig::default(),
            constraints: SolverConstraints::none(),
        }
    }
}

impl RunConfig {
    /// Read `--rows/--ops/--train-ops/--seed/--threads/--chunk-values`
    /// overrides from the CLI.
    pub fn from_args(args: &crate::cli::Args) -> Self {
        let mut rc = Self::default();
        rc.rows = args.u64_or("rows", rc.rows);
        rc.ops = args.usize_or("ops", rc.ops);
        rc.train_ops = args.usize_or("train-ops", rc.train_ops);
        rc.seed = args.u64_or("seed", rc.seed);
        rc.batch_writes = args.flag("batch");
        rc.engine.threads = args.usize_or("threads", rc.engine.threads);
        rc.engine.chunk_values = args.usize_or("chunk-values", rc.engine.chunk_values);
        rc.engine.equi_partitions = args.usize_or("equi-partitions", rc.engine.equi_partitions);
        rc.engine.ghost_budget_frac = args.f64_or("ghosts", rc.engine.ghost_budget_frac);
        rc
    }
}

/// Outcome of one measured run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Per-class latency samples.
    pub latencies: LatencyRecorder,
    /// Wall time of the measured phase.
    pub elapsed: Duration,
    /// Workload throughput (ops/s).
    pub throughput: f64,
    /// Sum of all result scalars (a cheap correctness checksum across
    /// modes).
    pub checksum: u64,
}

/// Build a table for `mix` in `mode`; Casper mode additionally trains on a
/// fresh sample from the same mix and optimizes the layout.
pub fn build_table(mix: &Mix, mode: LayoutMode, rc: &RunConfig) -> Table {
    let mut engine = rc.engine;
    engine.mode = mode;
    let mut table = Table::load_from_generator(mix.generator(), engine);
    if mode == LayoutMode::Casper {
        let sample = mix.generate(rc.train_ops, rc.seed + 1);
        let opts = OptimizeOptions {
            constants: calibrated_constants(engine.block_bytes),
            constraints: rc.constraints,
            ghost_budget_frac: engine.ghost_budget_frac,
            fairness_cap: true,
            threads: engine.threads,
            ..OptimizeOptions::default()
        };
        optimize_table(&mut table, &sample, &opts);
    }
    table
}

/// Execute a query stream with per-query timing.
pub fn run_queries(table: &mut Table, queries: &[HapQuery]) -> RunOutcome {
    let mut latencies = LatencyRecorder::new();
    let mut checksum = 0u64;
    let start = Instant::now();
    for q in queries {
        let t = Instant::now();
        let out = table.execute(q).expect("query execution");
        latencies.record(q.index(), t.elapsed().as_nanos() as u64);
        checksum = checksum.wrapping_add(out.result.scalar());
    }
    let elapsed = start.elapsed();
    let throughput = latencies.throughput_ops_per_sec(elapsed);
    RunOutcome {
        latencies,
        elapsed,
        throughput,
        checksum,
    }
}

/// Execute a query stream with chunk-parallel write batching: maximal
/// consecutive runs of Q4/Q5/Q6 go through `Table::execute_batch` (grouped
/// by target chunk, applied under the engine's worker pool), reads execute
/// in stream position. Latency for a batched run is attributed evenly to
/// its member queries, so per-class summaries stay comparable with
/// [`run_queries`].
pub fn run_queries_batched(table: &mut Table, queries: &[HapQuery]) -> RunOutcome {
    let is_write = |q: &HapQuery| matches!(q.index(), 3..=5);
    let mut latencies = LatencyRecorder::new();
    let mut checksum = 0u64;
    let start = Instant::now();
    let mut i = 0;
    while i < queries.len() {
        if is_write(&queries[i]) {
            let mut j = i + 1;
            while j < queries.len() && is_write(&queries[j]) {
                j += 1;
            }
            let t = Instant::now();
            let outs = table
                .execute_batch(&queries[i..j])
                .expect("batched query execution");
            let per = t.elapsed().as_nanos() as u64 / (j - i) as u64;
            for (q, out) in queries[i..j].iter().zip(outs) {
                latencies.record(q.index(), per);
                checksum = checksum.wrapping_add(out.result.scalar());
            }
            i = j;
        } else {
            let t = Instant::now();
            let out = table.execute(&queries[i]).expect("query execution");
            latencies.record(queries[i].index(), t.elapsed().as_nanos() as u64);
            checksum = checksum.wrapping_add(out.result.scalar());
            i += 1;
        }
    }
    let elapsed = start.elapsed();
    let throughput = latencies.throughput_ops_per_sec(elapsed);
    RunOutcome {
        latencies,
        elapsed,
        throughput,
        checksum,
    }
}

/// End-to-end: build, generate, run.
pub fn run_mix(kind: MixKind, mode: LayoutMode, rc: &RunConfig) -> RunOutcome {
    let mix = Mix::new(kind, HapSchema::narrow(), rc.rows);
    let mut table = build_table(&mix, mode, rc);
    let queries = mix.generate(rc.ops, rc.seed);
    if rc.batch_writes {
        run_queries_batched(&mut table, &queries)
    } else {
        run_queries(&mut table, &queries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_rc() -> RunConfig {
        let mut rc = RunConfig::default();
        rc.rows = 4096;
        rc.ops = 200;
        rc.train_ops = 200;
        rc.engine = EngineConfig::small(LayoutMode::Casper);
        rc.engine.chunk_values = 2048;
        rc
    }

    #[test]
    fn run_mix_produces_latencies_for_used_classes() {
        let rc = tiny_rc();
        let out = run_mix(MixKind::HybridPointSkewed, LayoutMode::Casper, &rc);
        assert!(out.throughput > 0.0);
        assert!(out.latencies.summary(0).is_some(), "Q1 samples");
        assert!(out.latencies.summary(3).is_some(), "Q4 samples");
        assert!(out.latencies.summary(1).is_none(), "no Q2 in this mix");
    }

    #[test]
    fn batched_writes_preserve_the_checksum() {
        let mut rc = tiny_rc();
        let serial = run_mix(MixKind::UpdateOnlyUniform, LayoutMode::Casper, &rc);
        rc.batch_writes = true;
        let batched = run_mix(MixKind::UpdateOnlyUniform, LayoutMode::Casper, &rc);
        assert_eq!(serial.checksum, batched.checksum);
        assert!(
            batched.latencies.summary(3).is_some(),
            "Q4 samples recorded"
        );
    }

    #[test]
    fn checksums_agree_across_modes() {
        let rc = tiny_rc();
        let reference = run_mix(MixKind::HybridPointSkewed, LayoutMode::Sorted, &rc).checksum;
        for mode in [
            LayoutMode::Casper,
            LayoutMode::EquiGV,
            LayoutMode::Equi,
            LayoutMode::StateOfArt,
            LayoutMode::NoOrder,
        ] {
            let out = run_mix(MixKind::HybridPointSkewed, mode, &rc);
            assert_eq!(out.checksum, reference, "{mode:?} diverged");
        }
    }
}
