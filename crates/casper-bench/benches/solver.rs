//! Criterion micro-benchmarks for the layout solvers: the exact DP's
//! scaling in the block count (Fig. 11's per-chunk cost) and the B&B on
//! the literal Eq. 20 model.

use casper_core::cost::{BlockTerms, CostConstants};
use casper_core::fm::{AccessDistribution, WorkloadSpec};
use casper_core::solver::{bip, dp, SolverConstraints};
use casper_core::FrequencyModel;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn terms(n: usize) -> BlockTerms {
    let fm = FrequencyModel::from_distributions(
        n,
        &WorkloadSpec {
            point: Some((1000.0, AccessDistribution::ZipfRecent { theta: 0.9 })),
            insert: Some((800.0, AccessDistribution::ZipfRecent { theta: 0.6 })),
            delete: Some((200.0, AccessDistribution::Uniform)),
            ..WorkloadSpec::none()
        },
    );
    BlockTerms::from_fm(&fm, &CostConstants::paper())
}

fn bench_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("dp_solve");
    for n in [64usize, 256, 1024, 4096] {
        let t = terms(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| std::hint::black_box(dp::solve(&t, &SolverConstraints::none()).cost))
        });
    }
    group.finish();
}

fn bench_dp_constrained(c: &mut Criterion) {
    let mut group = c.benchmark_group("dp_solve_constrained");
    let t = terms(512);
    for k in [8usize, 64, 256] {
        let constraints = SolverConstraints {
            max_partitions: Some(k),
            max_partition_blocks: None,
        };
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| std::hint::black_box(dp::solve(&t, &constraints).cost))
        });
    }
    group.finish();
}

fn bench_bnb(c: &mut Criterion) {
    let mut group = c.benchmark_group("bip_branch_and_bound");
    for n in [8usize, 12, 16] {
        let t = terms(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| std::hint::black_box(bip::solve(&t, &SolverConstraints::none()).0.cost))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dp, bench_dp_constrained, bench_bnb);
criterion_main!(benches);
