//! Criterion micro-benchmarks for the write paths: ripple insert cost vs
//! partition count (Fig. 2a's right axis) and the ghost-value fast path
//! (Fig. 2b).

use casper_storage::ghost::GhostPlan;
use casper_storage::{BlockLayout, ChunkConfig, PartitionSpec, PartitionedChunk, UpdatePolicy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const VALUES: usize = 1 << 16;

fn build(partitions: usize, ghost_budget: usize, policy: UpdatePolicy) -> PartitionedChunk<u64> {
    let layout = BlockLayout::new::<u64>(4096);
    let n_blocks = layout.num_blocks(VALUES);
    let spec = PartitionSpec::equi_width(n_blocks, partitions);
    let k = spec.partition_count();
    PartitionedChunk::build(
        (0..VALUES as u64).map(|v| v * 2).collect(),
        &spec,
        layout,
        &GhostPlan::even(k, ghost_budget),
        ChunkConfig {
            policy,
            capacity_slack: 2.0, // plenty of tail for sustained inserts
            ghost_fetch_block: 1,
        },
    )
    .expect("build")
}

fn bench_ripple_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("ripple_insert_dense");
    for partitions in [2usize, 8, 32, 128] {
        group.bench_with_input(
            BenchmarkId::from_parameter(partitions),
            &partitions,
            |b, &p| {
                let mut chunk = build(p, 0, UpdatePolicy::Dense);
                let mut i = 1u64;
                b.iter(|| {
                    i = i.wrapping_add(2);
                    // Insert near the front: worst-case trailing partitions.
                    let v = i % 1000;
                    let cost = match chunk.insert(v | 1, &[]) {
                        Ok(r) => r.cost,
                        Err(_) => {
                            chunk.grow(VALUES);
                            chunk.insert(v | 1, &[]).expect("insert after grow").cost
                        }
                    };
                    std::hint::black_box(cost)
                })
            },
        );
    }
    group.finish();
}

fn bench_ghost_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("insert_with_ghosts");
    for budget_pct in [0usize, 1, 10] {
        group.bench_with_input(
            BenchmarkId::from_parameter(budget_pct),
            &budget_pct,
            |b, &pct| {
                let mut chunk = build(64, VALUES * pct / 100, UpdatePolicy::Ghost);
                let mut i = 1u64;
                b.iter(|| {
                    i = i.wrapping_add(48271);
                    let v = (i % (VALUES as u64 * 2)) | 1;
                    let cost = match chunk.insert(v, &[]) {
                        Ok(r) => r.cost,
                        Err(_) => {
                            chunk.grow(VALUES);
                            chunk.insert(v, &[]).expect("insert after grow").cost
                        }
                    };
                    std::hint::black_box(cost)
                })
            },
        );
    }
    group.finish();
}

fn bench_direct_ripple_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("direct_ripple_update");
    for span in [1usize, 8, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(span), &span, |b, &span| {
            let mut chunk = build(64, 0, UpdatePolicy::Dense);
            let per_part = (VALUES as u64 * 2) / 64;
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                // Move a value `span` partitions to the right and back,
                // keeping the chunk in steady state.
                let src = ((i * 2909) % per_part) & !1;
                let dst = src + span as u64 * per_part;
                let r1 = chunk.update(src, dst).expect("fwd");
                let r2 = chunk.update(dst, src).expect("bwd");
                std::hint::black_box((r1.affected, r2.affected))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_ripple_insert,
    bench_ghost_insert,
    bench_direct_ripple_update
);
criterion_main!(benches);
