//! Criterion micro-benchmarks: point and range scans vs layout granularity.
//!
//! Quantifies Fig. 2a's left axis on real hardware: point-query latency
//! falls as partitions shrink; range scans are insensitive to partitioning
//! once middles are consumed blindly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use casper_storage::ghost::GhostPlan;
use casper_storage::{BlockLayout, ChunkConfig, PartitionSpec, PartitionedChunk};

const VALUES: usize = 1 << 18;

fn build(partitions: usize) -> PartitionedChunk<u64> {
    let layout = BlockLayout::new::<u64>(16 * 1024);
    let n_blocks = layout.num_blocks(VALUES);
    let spec = PartitionSpec::equi_width(n_blocks, partitions);
    PartitionedChunk::build(
        (0..VALUES as u64).map(|v| v * 2).collect(),
        &spec,
        layout,
        &GhostPlan::none(spec.partition_count()),
        ChunkConfig::default(),
    )
    .expect("build")
}

fn bench_point_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("point_query");
    for partitions in [1usize, 4, 16, 64, 128] {
        let chunk = build(partitions);
        let mut i = 0u64;
        group.bench_with_input(
            BenchmarkId::from_parameter(partitions),
            &partitions,
            |b, _| {
                b.iter(|| {
                    i = i.wrapping_add(48271);
                    let v = (i % VALUES as u64) * 2;
                    std::hint::black_box(chunk.point_query(v).positions.len())
                })
            },
        );
    }
    group.finish();
}

fn bench_range_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("range_count_1pct");
    let span = (VALUES as u64 * 2) / 100;
    for partitions in [1usize, 16, 128] {
        let chunk = build(partitions);
        let mut i = 0u64;
        group.bench_with_input(
            BenchmarkId::from_parameter(partitions),
            &partitions,
            |b, _| {
                b.iter(|| {
                    i = i.wrapping_add(16807);
                    let lo = i % (VALUES as u64 * 2 - span);
                    std::hint::black_box(chunk.range_count(lo, lo + span).0)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_point_query, bench_range_count);
criterion_main!(benches);
