//! Criterion micro-benchmarks: point and range scans vs layout granularity,
//! plus scalar-baseline vs branchless-kernel comparisons.
//!
//! Quantifies Fig. 2a's left axis on real hardware: point-query latency
//! falls as partitions shrink; range scans are insensitive to partitioning
//! once middles are consumed blindly. The `*_scalar_vs_kernel` groups track
//! the speedup of the batch kernels (`casper_storage::kernels`) over the
//! retained scalar reference paths (`casper_storage::ops::scalar`) on a
//! 1M-value chunk — the acceptance gate for the kernel subsystem.

use casper_bench::trajectory;
use casper_storage::ghost::GhostPlan;
use casper_storage::{BlockLayout, ChunkConfig, PartitionSpec, PartitionedChunk};
use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};

const VALUES: usize = 1 << 18;
/// Chunk size for the kernel-vs-scalar groups (the paper's 1M-value chunk).
const KERNEL_VALUES: usize = 1 << 20;

/// 1M-value chunk with one 4-byte payload column, `partitions` partitions.
fn build_1m(partitions: usize) -> PartitionedChunk<u64> {
    let layout = BlockLayout::new::<u64>(16 * 1024);
    let n_blocks = layout.num_blocks(KERNEL_VALUES);
    let spec = PartitionSpec::equi_width(n_blocks, partitions);
    let keys: Vec<u64> = (0..KERNEL_VALUES as u64).map(|v| v * 2).collect();
    let payload: Vec<u32> = keys.iter().map(|&k| (k % 997) as u32).collect();
    PartitionedChunk::build_with_payloads(
        keys,
        vec![payload],
        &spec,
        layout,
        &GhostPlan::none(spec.partition_count()),
        ChunkConfig::default(),
    )
    .expect("build")
}

fn bench_point_scalar_vs_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("point_1m_scalar_vs_kernel");
    for partitions in [1usize, 128] {
        let chunk = build_1m(partitions);
        let mut i = 0u64;
        group.bench_with_input(
            BenchmarkId::new("scalar", partitions),
            &partitions,
            |b, _| {
                b.iter(|| {
                    i = i.wrapping_add(48271);
                    let v = (i % KERNEL_VALUES as u64) * 2;
                    std::hint::black_box(chunk.point_query_scalar(v).positions.len())
                })
            },
        );
        let mut i = 0u64;
        group.bench_with_input(
            BenchmarkId::new("kernel", partitions),
            &partitions,
            |b, _| {
                b.iter(|| {
                    i = i.wrapping_add(48271);
                    let v = (i % KERNEL_VALUES as u64) * 2;
                    std::hint::black_box(chunk.point_query(v).positions.len())
                })
            },
        );
    }
    // Out-of-zone misses: the zone map resolves these from metadata alone.
    let chunk = build_1m(128);
    let mut i = 0u64;
    group.bench_function("kernel/miss_pruned", |b| {
        b.iter(|| {
            i = i.wrapping_add(48271);
            let v = KERNEL_VALUES as u64 * 2 + (i % 1000);
            std::hint::black_box(chunk.point_query(v).positions.len())
        })
    });
    group.finish();
}

fn bench_range_count_scalar_vs_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("range_count_1m_scalar_vs_kernel");
    group.throughput(Throughput::Elements(KERNEL_VALUES as u64));
    let span = (KERNEL_VALUES as u64 * 2) / 100; // 1% selectivity
    for partitions in [1usize, 128] {
        let chunk = build_1m(partitions);
        let mut i = 0u64;
        group.bench_with_input(
            BenchmarkId::new("scalar", partitions),
            &partitions,
            |b, _| {
                b.iter(|| {
                    i = i.wrapping_add(16807);
                    let lo = i % (KERNEL_VALUES as u64 * 2 - span);
                    std::hint::black_box(chunk.range_count_scalar(lo, lo + span).0)
                })
            },
        );
        let mut i = 0u64;
        group.bench_with_input(
            BenchmarkId::new("kernel", partitions),
            &partitions,
            |b, _| {
                b.iter(|| {
                    i = i.wrapping_add(16807);
                    let lo = i % (KERNEL_VALUES as u64 * 2 - span);
                    std::hint::black_box(chunk.range_count(lo, lo + span).0)
                })
            },
        );
    }
    group.finish();
}

fn bench_range_sum_scalar_vs_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("range_sum_1m_scalar_vs_kernel");
    let span = (KERNEL_VALUES as u64 * 2) / 100;
    for partitions in [1usize, 128] {
        let chunk = build_1m(partitions);
        let mut i = 0u64;
        group.bench_with_input(
            BenchmarkId::new("scalar", partitions),
            &partitions,
            |b, _| {
                b.iter(|| {
                    i = i.wrapping_add(16807);
                    let lo = i % (KERNEL_VALUES as u64 * 2 - span);
                    std::hint::black_box(chunk.range_sum_payload_scalar(lo, lo + span, &[0]).0)
                })
            },
        );
        let mut i = 0u64;
        group.bench_with_input(
            BenchmarkId::new("kernel", partitions),
            &partitions,
            |b, _| {
                b.iter(|| {
                    i = i.wrapping_add(16807);
                    let lo = i % (KERNEL_VALUES as u64 * 2 - span);
                    std::hint::black_box(chunk.range_sum_payload(lo, lo + span, &[0]).0)
                })
            },
        );
    }
    group.finish();
}

fn build(partitions: usize) -> PartitionedChunk<u64> {
    let layout = BlockLayout::new::<u64>(16 * 1024);
    let n_blocks = layout.num_blocks(VALUES);
    let spec = PartitionSpec::equi_width(n_blocks, partitions);
    PartitionedChunk::build(
        (0..VALUES as u64).map(|v| v * 2).collect(),
        &spec,
        layout,
        &GhostPlan::none(spec.partition_count()),
        ChunkConfig::default(),
    )
    .expect("build")
}

fn bench_point_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("point_query");
    for partitions in [1usize, 4, 16, 64, 128] {
        let chunk = build(partitions);
        let mut i = 0u64;
        group.bench_with_input(
            BenchmarkId::from_parameter(partitions),
            &partitions,
            |b, _| {
                b.iter(|| {
                    i = i.wrapping_add(48271);
                    let v = (i % VALUES as u64) * 2;
                    std::hint::black_box(chunk.point_query(v).positions.len())
                })
            },
        );
    }
    group.finish();
}

fn bench_range_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("range_count_1pct");
    let span = (VALUES as u64 * 2) / 100;
    for partitions in [1usize, 16, 128] {
        let chunk = build(partitions);
        let mut i = 0u64;
        group.bench_with_input(
            BenchmarkId::from_parameter(partitions),
            &partitions,
            |b, _| {
                b.iter(|| {
                    i = i.wrapping_add(16807);
                    let lo = i % (VALUES as u64 * 2 - span);
                    std::hint::black_box(chunk.range_count(lo, lo + span).0)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_point_query,
    bench_range_count,
    bench_point_scalar_vs_kernel,
    bench_range_count_scalar_vs_kernel,
    bench_range_sum_scalar_vs_kernel,
);

/// Custom harness entry: run the criterion groups, then emit the
/// machine-readable kernel trajectory (`BENCH_scan.json` at the workspace
/// root) — dispatched-SIMD vs forced-scalar ns/elem and GB/s for every
/// plain and compressed kernel × lane width. Smoke runs (`--test`) shrink
/// the lanes and rep counts but still assert both dispatch paths agree.
fn main() {
    let mut c = Criterion::default();
    benches(&mut c);

    let smoke = trajectory::smoke_mode();
    let (rows, reps) = if smoke { (1 << 14, 1) } else { (1 << 20, 7) };
    let mut entries = trajectory::plain_entries(rows, reps);
    entries.extend(trajectory::compressed_entries(rows, reps));
    for e in &entries {
        let gbps = e
            .gbps
            .map_or("      -".to_string(), |g| format!("{g:>7.2}"));
        eprintln!(
            "[trajectory] {:<28} u{:<2} {:>8} {}s  {:>7.3} ns/{}  {gbps} GB/s  {:>5.2}x vs scalar",
            e.kernel, e.width_bits, e.rows, e.unit, e.ns_per_elem, e.unit, e.speedup
        );
    }
    trajectory::write_json("BENCH_scan.json", "scan_ops", smoke, &entries);
}
