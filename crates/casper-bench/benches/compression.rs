//! Criterion micro-benchmarks for the §6.2 codecs: encode, decode, and
//! predicate-pushdown scans over compressed fragments, including the
//! partition-size synergy (narrower fragments → narrower FoR offsets →
//! faster scans).

use casper_storage::compress::{Codec, Dictionary, ForBlock, Rle};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const VALUES: usize = 1 << 16;

fn dataset(cardinality: u64) -> Vec<u64> {
    (0..VALUES as u64)
        .map(|i| (i.wrapping_mul(2654435761)) % cardinality * 300)
        .collect()
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode");
    group.throughput(Throughput::Elements(VALUES as u64));
    let data = dataset(1000);
    group.bench_function("dictionary", |b| {
        b.iter(|| std::hint::black_box(Dictionary::encode(&data).encoded_bytes()))
    });
    group.bench_function("for_delta", |b| {
        b.iter(|| std::hint::black_box(ForBlock::encode(&data).encoded_bytes()))
    });
    let mut sorted = data.clone();
    sorted.sort_unstable();
    group.bench_function("rle_sorted", |b| {
        b.iter(|| std::hint::black_box(Rle::encode(&sorted).encoded_bytes()))
    });
    group.finish();
}

fn bench_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("count_in_range");
    group.throughput(Throughput::Elements(VALUES as u64));
    let data = dataset(1000);
    let dict = Dictionary::encode(&data);
    let for_block = ForBlock::encode(&data);
    group.bench_function("dictionary", |b| {
        b.iter(|| std::hint::black_box(dict.count_in_range(30_000, 200_000)))
    });
    group.bench_function("for_delta", |b| {
        b.iter(|| std::hint::black_box(for_block.count_in_range(30_000, 200_000)))
    });
    group.bench_function("plain", |b| {
        b.iter(|| {
            std::hint::black_box(
                data.iter()
                    .filter(|&&v| (30_000..200_000).contains(&v))
                    .count(),
            )
        })
    });
    group.finish();
}

fn bench_partition_synergy(c: &mut Criterion) {
    // §6.2: finer partitions span narrower ranges → fewer FoR offset bytes.
    let mut group = c.benchmark_group("for_bytes_per_fragment_size");
    let data: Vec<u64> = (0..VALUES as u64).map(|i| i * 300).collect();
    for frag in [VALUES, VALUES / 16, VALUES / 256] {
        group.bench_with_input(BenchmarkId::from_parameter(frag), &frag, |b, &frag| {
            b.iter(|| {
                let total: usize = data
                    .chunks(frag)
                    .map(|c| ForBlock::encode(c).encoded_bytes())
                    .sum();
                std::hint::black_box(total)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_encode, bench_scan, bench_partition_synergy);
criterion_main!(benches);
