//! Criterion micro-benchmarks for the §6.2 codecs: encode, decode, and
//! predicate-pushdown scans over compressed fragments, including the
//! partition-size synergy (narrower fragments → narrower FoR offsets →
//! faster scans) and the compressed-execution kernels (count / select /
//! sum directly over the encoded forms vs the decode-then-scan baseline).
//!
//! CI runs this bench with `--test` (smoke mode: every body executes once,
//! untimed) so the codec kernels are exercised on every push.

use casper_storage::compress::{Codec, Dictionary, ForBlock, Rle};
use casper_storage::kernels::{self, Fragment};
use casper_storage::StorageMode;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const VALUES: usize = 1 << 16;

fn dataset(cardinality: u64) -> Vec<u64> {
    (0..VALUES as u64)
        .map(|i| (i.wrapping_mul(2654435761)) % cardinality * 300)
        .collect()
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode");
    group.throughput(Throughput::Elements(VALUES as u64));
    let data = dataset(1000);
    group.bench_function("dictionary", |b| {
        b.iter(|| std::hint::black_box(Dictionary::encode(&data).encoded_bytes()))
    });
    group.bench_function("for_delta", |b| {
        b.iter(|| std::hint::black_box(ForBlock::encode(&data).encoded_bytes()))
    });
    let mut sorted = data.clone();
    sorted.sort_unstable();
    group.bench_function("rle_sorted", |b| {
        b.iter(|| std::hint::black_box(Rle::encode(&sorted).encoded_bytes()))
    });
    group.finish();
}

fn bench_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("count_in_range");
    group.throughput(Throughput::Elements(VALUES as u64));
    let data = dataset(1000);
    let dict = Dictionary::encode(&data);
    let for_block = ForBlock::encode(&data);
    group.bench_function("dictionary", |b| {
        b.iter(|| std::hint::black_box(dict.count_in_range(30_000, 200_000)))
    });
    group.bench_function("for_delta", |b| {
        b.iter(|| std::hint::black_box(for_block.count_in_range(30_000, 200_000)))
    });
    group.bench_function("plain", |b| {
        b.iter(|| {
            std::hint::black_box(
                data.iter()
                    .filter(|&&v| (30_000..200_000).contains(&v))
                    .count(),
            )
        })
    });
    group.finish();
}

fn bench_partition_synergy(c: &mut Criterion) {
    // §6.2: finer partitions span narrower ranges → fewer FoR offset bytes.
    let mut group = c.benchmark_group("for_bytes_per_fragment_size");
    let data: Vec<u64> = (0..VALUES as u64).map(|i| i * 300).collect();
    for frag in [VALUES, VALUES / 16, VALUES / 256] {
        group.bench_with_input(BenchmarkId::from_parameter(frag), &frag, |b, &frag| {
            b.iter(|| {
                let total: usize = data
                    .chunks(frag)
                    .map(|c| ForBlock::encode(c).encoded_bytes())
                    .sum();
                std::hint::black_box(total)
            })
        });
    }
    group.finish();
}

/// The tentpole comparison: codec-aware kernels on the encoded form vs the
/// decode-then-scan baseline vs the plain kernel on raw data. The
/// acceptance target is compressed `count_range` ≥ 1.5x decode-then-scan
/// on a 1M-value FoR fragment.
fn bench_compressed_kernels(c: &mut Criterion) {
    const N: usize = 1 << 20;
    // Narrow span (u16 FoR offsets): the post-partitioning §6.2 shape.
    let data: Vec<u64> = (0..N as u64)
        .map(|i| 5_000_000 + i.wrapping_mul(2_654_435_761) % 60_000)
        .collect();
    let payload: Vec<u32> = (0..N as u32).collect();
    let (lo, hi) = (5_010_000u64, 5_040_000u64);

    let mut group = c.benchmark_group("compressed_count_range");
    group.throughput(Throughput::Elements(N as u64));
    for mode in [StorageMode::For, StorageMode::Dict, StorageMode::Rle] {
        let frag = Fragment::encode(mode, &data).expect("compressed mode");
        group.bench_function(format!("{}_kernel", mode.label()), |b| {
            b.iter(|| std::hint::black_box(frag.count_range(lo, hi)))
        });
        group.bench_function(format!("{}_decode_then_scan", mode.label()), |b| {
            b.iter(|| {
                let decoded = frag.decode();
                std::hint::black_box(kernels::count_range(&decoded, lo, hi))
            })
        });
    }
    group.bench_function("plain_kernel", |b| {
        b.iter(|| std::hint::black_box(kernels::count_range(&data, lo, hi)))
    });
    group.finish();

    let mut group = c.benchmark_group("compressed_select_bitmap");
    group.throughput(Throughput::Elements(N as u64));
    for mode in [StorageMode::For, StorageMode::Dict, StorageMode::Rle] {
        let frag = Fragment::encode(mode, &data).expect("compressed mode");
        group.bench_function(mode.label(), |b| {
            let mut mask = Vec::with_capacity(N / 64 + 1);
            b.iter(|| {
                mask.clear();
                std::hint::black_box(frag.select_range_bitmap(lo, hi, &mut mask))
            })
        });
    }
    group.bench_function("plain", |b| {
        let mut mask = Vec::with_capacity(N / 64 + 1);
        b.iter(|| {
            mask.clear();
            std::hint::black_box(kernels::select_range_bitmap(&data, lo, hi, &mut mask))
        })
    });
    group.finish();

    let mut group = c.benchmark_group("compressed_sum_payload");
    group.throughput(Throughput::Elements(N as u64));
    for mode in [StorageMode::For, StorageMode::Dict] {
        let frag = Fragment::encode(mode, &data).expect("compressed mode");
        group.bench_function(mode.label(), |b| {
            b.iter(|| std::hint::black_box(frag.sum_payload_range(&payload, lo, hi)))
        });
    }
    group.bench_function("plain_fused", |b| {
        b.iter(|| std::hint::black_box(kernels::sum_payload_range(&data, &payload, lo, hi)))
    });
    group.finish();

    // Correctness tripwire so smoke runs validate, not just execute.
    let expect = kernels::count_range(&data, lo, hi);
    for mode in [StorageMode::For, StorageMode::Dict, StorageMode::Rle] {
        let frag = Fragment::encode(mode, &data).expect("compressed mode");
        assert_eq!(frag.count_range(lo, hi), expect, "{mode:?}");
    }
}

criterion_group!(
    benches,
    bench_encode,
    bench_scan,
    bench_partition_synergy,
    bench_compressed_kernels
);
// The compressed-kernel *trajectory* (ns/elem, GB/s, SIMD-vs-scalar) is
// emitted once, by `scan_ops` into `BENCH_scan.json` — the single source
// of truth for per-PR kernel perf. This bench keeps the criterion timing
// groups plus the correctness tripwire in `bench_compressed_kernels`.
criterion_main!(benches);
