//! Metrics under concurrency: writer threads hammer one counter and one
//! histogram while a reader snapshots continuously. Every snapshot must be
//! internally consistent (a histogram's total is the sum of the very
//! bucket reads its quantiles use — never a separately-read count that
//! could disagree) and monotone across reads.
//!
//! Thread count comes from `CASPER_OBS_TEST_THREADS` (default 4; CI runs
//! the job at 8).

use casper_obs::{CounterDef, HistogramDef};
use std::sync::atomic::{AtomicBool, Ordering};

static COUNTER: CounterDef = CounterDef::new("stress_events_total");
static HIST: HistogramDef = HistogramDef::new("stress_latency_ns");

const OPS_PER_THREAD: u64 = 200_000;

fn writer_threads() -> usize {
    std::env::var("CASPER_OBS_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

#[test]
fn snapshots_are_untorn_and_monotone_under_contention() {
    casper_obs::enable();
    let threads = writer_threads();
    let done = AtomicBool::new(false);

    let reads = std::thread::scope(|scope| {
        let writers: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    for i in 0..OPS_PER_THREAD {
                        COUNTER.add(1);
                        // Spread values across buckets so torn bucket
                        // reads would actually show up in totals.
                        HIST.record((i % 17) * (t as u64 + 1) * 100);
                    }
                })
            })
            .collect();

        // Reader: snapshot in a tight loop while the writers run.
        let reader = scope.spawn(|| {
            let mut last_counter = 0u64;
            let mut last_hist_count = 0u64;
            let mut last_hist_sum = 0u64;
            let mut reads = 0u64;
            while !done.load(Ordering::Relaxed) {
                let snap = casper_obs::snapshot().expect("engaged");
                if let Some(c) = snap.counter("stress_events_total") {
                    assert!(
                        c >= last_counter,
                        "counter went backwards: {last_counter} -> {c}"
                    );
                    last_counter = c;
                }
                if let Some(h) = snap.histogram("stress_latency_ns") {
                    let count = h.count();
                    assert!(
                        count >= last_hist_count,
                        "histogram total went backwards: {last_hist_count} -> {count}"
                    );
                    assert!(
                        h.sum >= last_hist_sum,
                        "histogram sum went backwards: {last_hist_sum} -> {}",
                        h.sum
                    );
                    // Internal consistency: quantiles resolve against the
                    // same bucket reads the total came from, so any
                    // non-empty snapshot must produce a p999 ≤ max bound.
                    if count > 0 {
                        let p999 = h.quantile(0.999).expect("non-empty");
                        let max = h.max_bound().expect("non-empty");
                        assert!(p999 <= max, "p999 {p999} above max bound {max}");
                    }
                    last_hist_count = count;
                    last_hist_sum = h.sum;
                }
                reads += 1;
            }
            reads
        });

        for w in writers {
            w.join().expect("writer");
        }
        done.store(true, Ordering::Relaxed);
        reader.join().expect("reader")
    });

    assert!(reads > 0, "reader never snapshotted");

    // Final totals: exactly threads × OPS_PER_THREAD events, no loss.
    let snap = casper_obs::snapshot().expect("engaged");
    let want = threads as u64 * OPS_PER_THREAD;
    assert_eq!(snap.counter("stress_events_total"), Some(want));
    let h = snap.histogram("stress_latency_ns").expect("histogram");
    assert_eq!(h.count(), want);
}
