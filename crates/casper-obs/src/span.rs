//! Hierarchical span tracing: RAII scope guards that record their duration
//! into a per-span histogram and push slow completions into a bounded ring.
//!
//! A span site holds a `static` [`SpanDef`]; entering it returns a
//! [`SpanGuard`]. While telemetry is disengaged the guard is inert (one
//! relaxed load to find out). When engaged, entry pushes the span name
//! onto a thread-local stack — giving nesting for free — and drop records
//! the elapsed nanoseconds into the histogram
//! `casper_span_duration_ns{span="<name>"}`. Completions at or above the
//! slow threshold (`CASPER_OBS_SLOW_NS`, default 1 ms) additionally
//! capture their full `parent/child` path into the registry's slow-span
//! ring — the only part of the span layer that allocates or locks, and it
//! only runs for spans that already cost a millisecond.

use crate::registry::Registry;
use crate::Histogram;
use std::cell::RefCell;
use std::sync::atomic::Ordering;
use std::sync::OnceLock;
use std::time::Instant;

thread_local! {
    /// Names of the spans currently open on this thread, outermost first.
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// One slow-span completion retained in the ring buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowSpan {
    /// Slash-joined hierarchy at completion, e.g.
    /// `table_execute/checkpoint_sync`.
    pub path: String,
    /// Span duration in nanoseconds.
    pub nanos: u64,
}

/// `const`-constructible span site. Place in a `static` and call
/// [`SpanDef::start`] at scope entry.
#[derive(Debug)]
pub struct SpanDef {
    name: &'static str,
    hist: OnceLock<&'static Histogram>,
}

impl SpanDef {
    /// Define a span by name (lowercase snake-case by convention).
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            hist: OnceLock::new(),
        }
    }

    /// Enter the span. Returns an inert guard when telemetry is
    /// disengaged.
    #[inline]
    pub fn start(&'static self) -> SpanGuard {
        match crate::registry() {
            None => SpanGuard { active: None },
            Some(reg) => {
                STACK.with(|s| s.borrow_mut().push(self.name));
                SpanGuard {
                    active: Some(ActiveSpan {
                        def: self,
                        reg,
                        start: Instant::now(),
                    }),
                }
            }
        }
    }

    fn histogram(&self, reg: &'static Registry) -> &'static Histogram {
        self.hist.get_or_init(|| {
            reg.histogram(&format!(
                "casper_span_duration_ns{{span=\"{}\"}}",
                self.name
            ))
        })
    }
}

struct ActiveSpan {
    def: &'static SpanDef,
    reg: &'static Registry,
    start: Instant,
}

/// RAII guard returned by [`SpanDef::start`]; records on drop.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let nanos = active.start.elapsed().as_nanos() as u64;
        // Pop after reading the stack so a slow completion captures its
        // own name at the tail of the path.
        let slow = nanos >= active.reg.slow_threshold_ns.load(Ordering::Relaxed);
        let path = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let path = slow.then(|| stack.join("/"));
            stack.pop();
            path
        });
        active.def.histogram(active.reg).record(nanos);
        if let Some(path) = path {
            active.reg.push_slow(SlowSpan { path, nanos });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_record_and_slow_ring_captures_path() {
        static OUTER: SpanDef = SpanDef::new("test_outer");
        static INNER: SpanDef = SpanDef::new("test_inner");
        let _g = crate::test_lock();
        let reg = crate::enable();
        // Force everything to count as slow so the ring fills.
        reg.slow_threshold_ns.store(0, Ordering::Relaxed);
        {
            let _o = OUTER.start();
            let _i = INNER.start();
        }
        reg.slow_threshold_ns.store(1_000_000, Ordering::Relaxed);
        let snap = crate::snapshot().expect("engaged");
        let hist = snap
            .histogram("casper_span_duration_ns{span=\"test_inner\"}")
            .expect("inner span histogram");
        assert!(hist.count() >= 1);
        let ring = snap.slow_spans;
        assert!(
            ring.iter().any(|s| s.path == "test_outer/test_inner"),
            "ring: {ring:?}"
        );
        assert!(ring.iter().any(|s| s.path == "test_outer"));
    }

    #[test]
    fn disengaged_spans_are_inert() {
        static S: SpanDef = SpanDef::new("test_inert");
        let _g = crate::test_lock();
        crate::disable();
        {
            let _g = S.start();
        }
        crate::enable();
        let snap = crate::snapshot().expect("engaged");
        assert!(snap
            .histogram("casper_span_duration_ns{span=\"test_inert\"}")
            .is_none());
    }
}
