//! Fixed-bucket log₂-scale histograms and the shared nearest-rank
//! quantile rule.
//!
//! A histogram is 65 buckets of `AtomicU64`: bucket 0 holds the value 0,
//! bucket `b ∈ 1..=64` holds values in `[2^(b-1), 2^b)`. Recording is two
//! relaxed `fetch_add`s (bucket count + running sum) — no locks, no
//! allocation, bounded memory regardless of sample count. Quantiles are
//! estimated at snapshot time as the upper bound of the bucket containing
//! the nearest-rank sample, giving ≤2× relative error — plenty for the
//! latency trend lines this feeds (exact percentiles still come from the
//! raw-sample `LatencyRecorder` where the harness wants them).

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets: one for zero plus one per power of two.
pub const BUCKETS: usize = 65;

/// Nearest-rank rule shared by every quantile consumer in the workspace:
/// the 1-based rank of quantile `q` in a population of `count` samples,
/// `⌈count·q⌉` clamped to `[1, count]` (0 for an empty population).
///
/// The multiply is guarded with a small epsilon before the ceil so binary
/// floating-point noise cannot bump an exact product to the next rank
/// (e.g. `200 × 0.99` evaluates to `198.00000000000003`; a bare ceil
/// would report rank 199 — an off-by-one at exactly the tie a p99 is
/// supposed to hit).
pub fn quantile_rank(count: usize, q: f64) -> usize {
    if count == 0 {
        return 0;
    }
    let raw = (count as f64 * q - 1e-9).ceil();
    (raw as usize).clamp(1, count)
}

/// Lock-free fixed-bucket log₂ histogram.
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index of a value: 0 for 0, else `64 - leading_zeros` (the number
/// of significant bits).
#[inline]
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of a bucket (the value reported for quantiles
/// resolving into it).
fn bucket_upper(b: usize) -> u64 {
    match b {
        0 => 0,
        64.. => u64::MAX,
        _ => (1u64 << b) - 1,
    }
}

impl Histogram {
    /// Fresh (all-zero) histogram.
    pub fn new() -> Self {
        Self {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.counts[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Consistent point-in-time view: the total is *derived from the same
    /// bucket reads* the quantiles use, so it can never be torn against
    /// them, and — because buckets only ever grow — both the per-bucket
    /// counts and the derived total are monotone across snapshots.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: [u64; BUCKETS] =
            std::array::from_fn(|i| self.counts[i].load(Ordering::Relaxed));
        HistogramSnapshot {
            counts,
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`BUCKETS`]).
    pub counts: [u64; BUCKETS],
    /// Sum of all recorded values. Updated by a separate atomic, so under
    /// concurrent recording it may momentarily include an observation the
    /// buckets do not (or vice versa) — totals and quantiles always come
    /// from `counts`.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Total observations (Σ buckets — the only total this type exposes).
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Nearest-rank quantile estimate: the upper bound of the bucket
    /// containing rank [`quantile_rank`]`(count, q)`. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.count();
        let rank = quantile_rank(total as usize, q) as u64;
        if rank == 0 {
            return None;
        }
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_upper(b));
            }
        }
        None // unreachable: rank ≤ total
    }

    /// Upper bound of the highest non-empty bucket (`None` when empty).
    pub fn max_bound(&self) -> Option<u64> {
        self.counts.iter().rposition(|&c| c > 0).map(bucket_upper)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn rank_edge_cases() {
        assert_eq!(quantile_rank(0, 0.99), 0);
        assert_eq!(quantile_rank(1, 0.5), 1);
        assert_eq!(quantile_rank(1, 0.999), 1);
        // Exact ties must not be bumped by float noise: 200 × 0.99 = 198.
        assert_eq!(quantile_rank(200, 0.99), 198);
        assert_eq!(quantile_rank(1000, 0.5), 500);
        assert_eq!(quantile_rank(1000, 0.999), 999);
        // q = 1.0 is the maximum.
        assert_eq!(quantile_rank(37, 1.0), 37);
        // Tiny q still clamps up to the first sample.
        assert_eq!(quantile_rank(1000, 0.0), 1);
    }

    #[test]
    fn quantiles_resolve_to_bucket_bounds() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 5);
        assert_eq!(s.sum, 1106);
        // rank(5, 0.5) = 3 → third sample (3) lives in bucket [2,4).
        assert_eq!(s.quantile(0.5), Some(3));
        // p99 → rank 5 → 1000 lives in [512, 1024).
        assert_eq!(s.quantile(0.99), Some(1023));
        assert_eq!(s.max_bound(), Some(1023));
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.max_bound(), None);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn zero_values_occupy_bucket_zero() {
        let h = Histogram::new();
        h.record(0);
        h.record(0);
        let s = h.snapshot();
        assert_eq!(s.count(), 2);
        assert_eq!(s.quantile(0.5), Some(0));
    }
}
