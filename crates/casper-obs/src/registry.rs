//! The metrics registry: name-interned counters, gauges and histograms,
//! plus the `const`-constructible definition handles instrumentation
//! sites hold in `static`s.
//!
//! Registration (the first recording after engagement) takes a mutex and
//! allocates; every recording after that is a `OnceLock` read plus relaxed
//! atomics. Metric objects are leaked into `'static` — they live for the
//! process, like the registry itself.

use crate::drift::DriftTable;
use crate::hist::Histogram;
use crate::span::SlowSpan;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Shards per counter — enough to keep 8–16 hot threads off each other's
/// cache lines without bloating the (few dozen) registered counters.
const SHARDS: usize = 16;

/// Capacity of the slow-span ring buffer.
const SLOW_RING: usize = 64;

/// Default slow-span threshold: 1 ms.
const DEFAULT_SLOW_NS: u64 = 1_000_000;

/// One cache line per shard so concurrent increments do not false-share.
#[repr(align(64))]
#[derive(Debug)]
struct PaddedU64(AtomicU64);

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Each thread claims a shard index once, round-robin.
    static SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

#[inline]
fn shard_idx() -> usize {
    SHARD.with(|s| *s)
}

/// Shard-striped monotone counter.
#[derive(Debug)]
pub struct Counter {
    shards: [PaddedU64; SHARDS],
}

impl Counter {
    fn new() -> Self {
        Self {
            shards: std::array::from_fn(|_| PaddedU64(AtomicU64::new(0))),
        }
    }

    /// Add `n` to this thread's shard.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[shard_idx()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Sum across shards. Each shard is monotone, so the sum is monotone
    /// across reads even under concurrent increments.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// Last-writer-wins gauge holding an `f64` (stored as bits in one atomic).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    fn new() -> Self {
        Self {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// The process-wide registry. Obtain it through [`crate::enable`] /
/// [`crate::registry`].
#[derive(Debug)]
pub struct Registry {
    counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
    gauges: Mutex<BTreeMap<&'static str, &'static Gauge>>,
    histograms: Mutex<BTreeMap<&'static str, &'static Histogram>>,
    drift: DriftTable,
    pub(crate) slow_spans: Mutex<VecDeque<SlowSpan>>,
    pub(crate) slow_threshold_ns: AtomicU64,
}

fn intern(name: &str) -> &'static str {
    Box::leak(name.to_owned().into_boxed_str())
}

impl Registry {
    pub(crate) fn new() -> Self {
        let slow_ns = std::env::var("CASPER_OBS_SLOW_NS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_SLOW_NS);
        Self {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            drift: DriftTable::new(),
            slow_spans: Mutex::new(VecDeque::with_capacity(SLOW_RING)),
            slow_threshold_ns: AtomicU64::new(slow_ns),
        }
    }

    /// Counter registered under `name` (created on first request).
    /// Names follow Prometheus conventions; a label set may be embedded
    /// (`casper_query_total{class="q1"}`) — the renderer groups series by
    /// the base name before `{`.
    pub fn counter(&self, name: &str) -> &'static Counter {
        let mut map = self.counters.lock().expect("counter registry");
        if let Some(c) = map.get(name) {
            return c;
        }
        let c: &'static Counter = Box::leak(Box::new(Counter::new()));
        map.insert(intern(name), c);
        c
    }

    /// Gauge registered under `name` (created on first request).
    pub fn gauge(&self, name: &str) -> &'static Gauge {
        let mut map = self.gauges.lock().expect("gauge registry");
        if let Some(g) = map.get(name) {
            return g;
        }
        let g: &'static Gauge = Box::leak(Box::new(Gauge::new()));
        map.insert(intern(name), g);
        g
    }

    /// Histogram registered under `name` (created on first request).
    pub fn histogram(&self, name: &str) -> &'static Histogram {
        let mut map = self.histograms.lock().expect("histogram registry");
        if let Some(h) = map.get(name) {
            return h;
        }
        let h: &'static Histogram = Box::leak(Box::new(Histogram::new()));
        map.insert(intern(name), h);
        h
    }

    /// The per-chunk FM drift table.
    pub fn drift(&self) -> &DriftTable {
        &self.drift
    }

    /// Record a completed slow span into the ring (called by the span
    /// layer only for spans over the threshold, so the lock is cold).
    pub(crate) fn push_slow(&self, span: SlowSpan) {
        let mut ring = self.slow_spans.lock().expect("slow-span ring");
        if ring.len() == SLOW_RING {
            ring.pop_front();
        }
        ring.push_back(span);
    }

    /// Visit every registered counter in name order.
    pub(crate) fn for_each_counter(&self, mut f: impl FnMut(&'static str, &Counter)) {
        for (name, c) in self.counters.lock().expect("counter registry").iter() {
            f(name, c);
        }
    }

    /// Visit every registered gauge in name order.
    pub(crate) fn for_each_gauge(&self, mut f: impl FnMut(&'static str, &Gauge)) {
        for (name, g) in self.gauges.lock().expect("gauge registry").iter() {
            f(name, g);
        }
    }

    /// Visit every registered histogram in name order.
    pub(crate) fn for_each_histogram(&self, mut f: impl FnMut(&'static str, &Histogram)) {
        for (name, h) in self.histograms.lock().expect("histogram registry").iter() {
            f(name, h);
        }
    }
}

/// `const`-constructible counter handle for `static` placement at an
/// instrumentation site. Resolves against the registry once, on the first
/// recording after engagement; a no-op (single relaxed load) before that.
#[derive(Debug)]
pub struct CounterDef {
    name: &'static str,
    cell: OnceLock<&'static Counter>,
}

impl CounterDef {
    /// Define a counter by metric name.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            cell: OnceLock::new(),
        }
    }

    /// Add `n` if telemetry is engaged.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(reg) = crate::registry() {
            self.cell.get_or_init(|| reg.counter(self.name)).add(n);
        }
    }

    /// Add one if telemetry is engaged.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }
}

/// `const`-constructible gauge handle (see [`CounterDef`]).
#[derive(Debug)]
pub struct GaugeDef {
    name: &'static str,
    cell: OnceLock<&'static Gauge>,
}

impl GaugeDef {
    /// Define a gauge by metric name.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            cell: OnceLock::new(),
        }
    }

    /// Set the gauge if telemetry is engaged.
    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(reg) = crate::registry() {
            self.cell.get_or_init(|| reg.gauge(self.name)).set(v);
        }
    }
}

/// `const`-constructible histogram handle (see [`CounterDef`]).
#[derive(Debug)]
pub struct HistogramDef {
    name: &'static str,
    cell: OnceLock<&'static Histogram>,
}

impl HistogramDef {
    /// Define a histogram by metric name.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            cell: OnceLock::new(),
        }
    }

    /// Record an observation if telemetry is engaged.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(reg) = crate::registry() {
            self.cell.get_or_init(|| reg.histogram(self.name)).record(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_shards() {
        let c = Counter::new();
        c.add(3);
        c.inc();
        assert_eq!(c.get(), 4);
    }

    #[test]
    fn gauge_round_trips_f64() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(0.375);
        assert_eq!(g.get(), 0.375);
        g.set(-7.5);
        assert_eq!(g.get(), -7.5);
    }

    #[test]
    fn registry_interns_by_name() {
        let reg = Registry::new();
        let a = reg.counter("x_total") as *const Counter;
        let b = reg.counter("x_total") as *const Counter;
        assert_eq!(a, b);
        let h1 = reg.histogram("h_ns") as *const Histogram;
        let h2 = reg.histogram("h_ns") as *const Histogram;
        assert_eq!(h1, h2);
    }
}
