//! Per-chunk Frequency-Model drift gauges — the adaptive re-layout signal.
//!
//! Every chunk layout Casper installs was optimal *for the Frequency Model
//! it was solved against*. The drift table tracks, per chunk, the access
//! count that model predicted for the re-layout window against the access
//! count actually observed since — when observed traffic diverges from the
//! prediction, the layout is stale and the adaptive controller
//! (`casper_engine::adapt`) has cause to re-solve. The optimizer writes
//! `predicted` (and resets `observed`) when it installs a layout; the read
//! path bumps `observed` once per chunk it routes a query into.
//!
//! Storage is a fixed array of [`DRIFT_SLOTS`] chunk slots so the hot-path
//! increment is one relaxed `fetch_add` with no locking or growth; chunks
//! beyond the capacity are counted in an overflow counter rather than
//! silently dropped.

use std::sync::atomic::{AtomicU64, Ordering};

/// Chunk capacity of the drift table. At the default 1M-value chunks this
/// covers half a billion rows per column; larger tables overflow into
/// [`DriftTable::dropped`].
pub const DRIFT_SLOTS: usize = 512;

/// One observed-count slot, padded to a cache line. Neighbouring chunks
/// are hit by different reader threads in the same instant; packing eight
/// counters per line turns every bump into cross-core line bouncing
/// (measured as ~10% on the concurrent-read overhead gate).
#[derive(Debug)]
#[repr(align(64))]
struct PaddedSlot(AtomicU64);

/// Fixed-capacity per-chunk predicted/observed access table.
#[derive(Debug)]
pub struct DriftTable {
    observed: Box<[PaddedSlot]>,
    /// Predicted access counts, stored as `f64` bits (model outputs are
    /// fractional expected block accesses). Written only at layout
    /// installs, so these stay unpadded.
    predicted: Box<[AtomicU64]>,
    dropped: AtomicU64,
}

/// One chunk's drift reading.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftEntry {
    /// Chunk index.
    pub chunk: usize,
    /// Accesses observed since the layout was installed.
    pub observed: u64,
    /// Accesses the Frequency Model predicted for the window.
    pub predicted: f64,
}

impl Default for DriftTable {
    fn default() -> Self {
        Self::new()
    }
}

impl DriftTable {
    /// Fresh (all-zero) table.
    pub fn new() -> Self {
        Self {
            observed: (0..DRIFT_SLOTS)
                .map(|_| PaddedSlot(AtomicU64::new(0)))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            predicted: (0..DRIFT_SLOTS)
                .map(|_| AtomicU64::new(0))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            dropped: AtomicU64::new(0),
        }
    }

    /// Record `n` observed accesses to `chunk`.
    #[inline]
    pub fn note_observed(&self, chunk: usize, n: u64) {
        match self.observed.get(chunk) {
            Some(slot) => {
                slot.0.fetch_add(n, Ordering::Relaxed);
            }
            None => {
                self.dropped.fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// Install the model's predicted access count for `chunk` and reset
    /// its observed count (a new layout starts a new drift window).
    pub fn set_predicted(&self, chunk: usize, predicted: f64) {
        if let (Some(p), Some(o)) = (self.predicted.get(chunk), self.observed.get(chunk)) {
            p.store(predicted.to_bits(), Ordering::Relaxed);
            o.0.store(0, Ordering::Relaxed);
        }
    }

    /// Accesses attributed to chunks beyond [`DRIFT_SLOTS`].
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Every chunk with any signal (observed > 0 or predicted ≠ 0),
    /// in chunk order.
    pub fn entries(&self) -> Vec<DriftEntry> {
        (0..DRIFT_SLOTS)
            .filter_map(|i| {
                let observed = self.observed[i].0.load(Ordering::Relaxed);
                let predicted = f64::from_bits(self.predicted[i].load(Ordering::Relaxed));
                (observed > 0 || predicted != 0.0).then_some(DriftEntry {
                    chunk: i,
                    observed,
                    predicted,
                })
            })
            .collect()
    }

    /// Largest per-chunk drift ratio `max(observed, predicted) /
    /// max(min(observed, predicted), 1)` across chunks with any signal —
    /// a single scalar trend tools can alarm on. 1.0 when perfectly on
    /// model or when no signal exists.
    pub fn max_ratio(&self) -> f64 {
        self.entries()
            .iter()
            .map(|e| {
                let obs = e.observed as f64;
                let pred = e.predicted.max(0.0);
                let hi = obs.max(pred);
                let lo = obs.min(pred).max(1.0);
                hi / lo
            })
            .fold(1.0f64, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observed_accumulates_and_predictions_reset_the_window() {
        let t = DriftTable::new();
        t.note_observed(3, 10);
        t.note_observed(3, 5);
        t.set_predicted(7, 42.5);
        let entries = t.entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(
            entries[0],
            DriftEntry {
                chunk: 3,
                observed: 15,
                predicted: 0.0
            }
        );
        assert_eq!(
            entries[1],
            DriftEntry {
                chunk: 7,
                observed: 0,
                predicted: 42.5
            }
        );
        // Installing a new prediction resets the observed window.
        t.set_predicted(3, 20.0);
        let entries = t.entries();
        assert_eq!(
            entries[0],
            DriftEntry {
                chunk: 3,
                observed: 0,
                predicted: 20.0
            }
        );
    }

    #[test]
    fn overflow_chunks_count_as_dropped() {
        let t = DriftTable::new();
        t.note_observed(DRIFT_SLOTS + 5, 9);
        assert_eq!(t.dropped(), 9);
        assert!(t.entries().is_empty());
    }

    #[test]
    fn max_ratio_flags_divergence() {
        let t = DriftTable::new();
        assert_eq!(t.max_ratio(), 1.0);
        t.set_predicted(0, 100.0);
        t.note_observed(0, 100);
        assert!((t.max_ratio() - 1.0).abs() < 1e-9);
        t.set_predicted(1, 10.0);
        for _ in 0..5 {
            t.note_observed(1, 10);
        }
        assert!((t.max_ratio() - 5.0).abs() < 1e-9);
    }
}
