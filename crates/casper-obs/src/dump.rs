//! The `CASPER_OBS_DUMP` background writer.
//!
//! When engagement finds `CASPER_OBS_DUMP=path` in the environment, a
//! detached daemon thread re-renders the registry to `path` every
//! `CASPER_OBS_DUMP_MS` milliseconds (default 1000). Paths ending in
//! `.json` get the JSON rendering; everything else gets Prometheus text.
//! Writes go through a `.tmp` sibling plus rename so a scraper never reads
//! a torn file.

use crate::registry::Registry;
use crate::snapshot::MetricsSnapshot;
use std::sync::Once;
use std::time::Duration;

/// Start the writer once, if the environment asks for it. Called from
/// [`crate::enable`].
pub(crate) fn maybe_start(reg: &'static Registry) {
    static STARTED: Once = Once::new();
    STARTED.call_once(|| {
        let Ok(path) = std::env::var("CASPER_OBS_DUMP") else {
            return;
        };
        if path.is_empty() {
            return;
        }
        let period_ms: u64 = std::env::var("CASPER_OBS_DUMP_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1000);
        let result = std::thread::Builder::new()
            .name("casper-obs-dump".into())
            .spawn(move || loop {
                std::thread::sleep(Duration::from_millis(period_ms.max(10)));
                write_once(reg, &path);
            });
        if let Err(e) = result {
            eprintln!("[casper-obs] could not start dump writer: {e}");
        }
    });
}

/// Render and atomically replace `path` (also used directly by tests).
pub fn write_once(reg: &Registry, path: &str) {
    let snap = MetricsSnapshot::capture(reg);
    let body = if path.ends_with(".json") {
        snap.to_json()
    } else {
        snap.to_prometheus_text()
    };
    let tmp = format!("{path}.tmp");
    if std::fs::write(&tmp, body).is_ok() {
        let _ = std::fs::rename(&tmp, path);
    }
}
