//! # casper-obs
//!
//! Unified low-overhead telemetry for the Casper column-layout engine: a
//! process-wide metrics registry (sharded atomic counters, gauges,
//! fixed-bucket log₂-scale histograms) plus lightweight hierarchical span
//! tracing with a ring buffer of recent slow spans.
//!
//! ## Design
//!
//! The registry is **engaged lazily**, mirroring the engine's own
//! lazy-concurrency pattern (`ChunkedColumn`'s `OnceLock<SnapshotCell>`):
//! until someone calls [`enable`] (or sets `CASPER_OBS=1` /
//! `CASPER_OBS_DUMP=path` and opens a durable table), every instrumentation
//! site reduces to a single relaxed atomic load that returns `None` — an
//! unobserved run pays ~nothing. Once engaged, the hot path is lock-free:
//!
//! * [`Counter`] — shard-striped `AtomicU64`s (one cache line per shard,
//!   threads pick a shard once via a thread-local), summed at read time;
//! * [`Gauge`] — a single `AtomicU64` holding `f64` bits;
//! * [`Histogram`] — 65 fixed log₂ buckets of `AtomicU64`; recording is two
//!   relaxed `fetch_add`s, quantiles are estimated from bucket bounds at
//!   snapshot time with the same nearest-rank rule
//!   ([`quantile_rank`]) the engine's raw-sample
//!   `LatencyRecorder` uses.
//!
//! Instrumentation sites hold `const`-constructible definition handles
//! ([`CounterDef`], [`GaugeDef`], [`HistogramDef`], [`SpanDef`]) in
//! `static`s; the first recording after engagement resolves the handle
//! against the registry through a `OnceLock`, so steady-state recording
//! never touches a map or a lock.
//!
//! Reads are wait-free and **monotone**: a [`MetricsSnapshot`]
//! derives every histogram total from one pass over its buckets (never
//! from a separately-read count that could disagree), so concurrent
//! writers can only make a later snapshot's totals larger.
//!
//! ## Exposure
//!
//! Three ways out: the [`MetricsSnapshot`] API, Prometheus-text / JSON
//! rendering ([`MetricsSnapshot::to_prometheus_text`] /
//! [`MetricsSnapshot::to_json`], surfaced as
//! `DurableTable::metrics_text()`), and a `CASPER_OBS_DUMP=path`
//! background writer that re-renders the registry every
//! `CASPER_OBS_DUMP_MS` (default 1000) milliseconds. The `obs_overhead`
//! bench measures the enabled-vs-disabled cost and gates it at ≤2% in
//! `BENCH_obs.json`.

pub mod drift;
pub mod dump;
pub mod hist;
pub mod registry;
pub mod snapshot;
pub mod span;

pub use drift::{DriftEntry, DriftTable, DRIFT_SLOTS};
pub use hist::{quantile_rank, Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{Counter, CounterDef, Gauge, GaugeDef, HistogramDef, Registry};
pub use snapshot::MetricsSnapshot;
pub use span::{SlowSpan, SpanDef, SpanGuard};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static REGISTRY: OnceLock<Registry> = OnceLock::new();
static ENGAGED: AtomicBool = AtomicBool::new(false);

/// Engage telemetry process-wide and return the registry. Idempotent; also
/// starts the `CASPER_OBS_DUMP` background writer on first engagement if
/// that variable is set. Events that happened *before* the first `enable`
/// call were not recorded — the registry starts at zero.
pub fn enable() -> &'static Registry {
    let reg = REGISTRY.get_or_init(Registry::new);
    ENGAGED.store(true, Ordering::Release);
    dump::maybe_start(reg);
    reg
}

/// Disengage recording (the registry and its accumulated values survive;
/// [`snapshot`] still works). Used by the `obs_overhead` bench to A/B the
/// instrumented hot paths.
pub fn disable() {
    ENGAGED.store(false, Ordering::Release);
}

/// Whether recording is currently engaged.
pub fn enabled() -> bool {
    ENGAGED.load(Ordering::Relaxed)
}

/// Engage telemetry iff the environment asks for it (`CASPER_OBS` set to
/// anything but `0`/empty, or `CASPER_OBS_DUMP` naming a dump path).
/// Cheap after the first call; the durable table calls this on open so
/// production runs opt in purely through the environment.
pub fn enable_from_env() {
    static CHECKED: OnceLock<bool> = OnceLock::new();
    let wanted = *CHECKED.get_or_init(|| {
        let flag = std::env::var("CASPER_OBS").map(|v| !v.is_empty() && v != "0");
        let dump = std::env::var("CASPER_OBS_DUMP").map(|v| !v.is_empty());
        flag.unwrap_or(false) || dump.unwrap_or(false)
    });
    if wanted {
        enable();
    }
}

/// The registry, if recording is engaged — the single gate every
/// instrumentation site goes through. One relaxed load when disengaged.
#[inline]
pub fn registry() -> Option<&'static Registry> {
    if ENGAGED.load(Ordering::Relaxed) {
        REGISTRY.get()
    } else {
        None
    }
}

/// Snapshot the registry (works even while recording is disengaged, as
/// long as it was engaged at least once).
pub fn snapshot() -> Option<MetricsSnapshot> {
    REGISTRY.get().map(MetricsSnapshot::capture)
}

/// Serialize unit tests that toggle the process-global engaged flag.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    // Global-state tests share the process-wide registry; each uses its own
    // metric names so they do not interfere, and takes the test lock so
    // enable/disable toggles do not race across test threads.

    #[test]
    fn disabled_sites_record_nothing() {
        static C: CounterDef = CounterDef::new("test_disabled_counter_total");
        let _g = test_lock();
        disable();
        C.add(5);
        enable();
        C.add(2);
        let snap = snapshot().expect("engaged at least once");
        assert_eq!(snap.counter("test_disabled_counter_total"), Some(2));
    }

    #[test]
    fn snapshot_survives_disable() {
        static C: CounterDef = CounterDef::new("test_survives_total");
        let _g = test_lock();
        enable();
        C.add(7);
        disable();
        let snap = snapshot().expect("registry retained");
        assert_eq!(snap.counter("test_survives_total"), Some(7));
        enable();
    }

    #[test]
    fn enable_is_idempotent_and_returns_same_registry() {
        let a = enable() as *const Registry;
        let b = enable() as *const Registry;
        assert_eq!(a, b);
    }
}
