//! Point-in-time snapshots of the registry and their Prometheus-text /
//! JSON renderings.

use crate::drift::DriftEntry;
use crate::hist::HistogramSnapshot;
use crate::registry::Registry;
use crate::span::SlowSpan;
use std::fmt::Write as _;

/// A consistent point-in-time view of every registered metric.
///
/// Counters and histogram totals are monotone across captures (each atomic
/// only grows, and histogram totals are derived from the bucket reads
/// themselves — see [`crate::Histogram::snapshot`]).
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` in name order.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` in name order.
    pub gauges: Vec<(String, f64)>,
    /// `(name, snapshot)` in name order.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Per-chunk FM drift readings (chunks with any signal).
    pub drift: Vec<DriftEntry>,
    /// Accesses to chunks beyond the drift table's capacity.
    pub drift_dropped: u64,
    /// Recent slow spans, oldest first.
    pub slow_spans: Vec<SlowSpan>,
}

impl MetricsSnapshot {
    /// Capture the registry's current state.
    pub fn capture(reg: &Registry) -> Self {
        let mut snap = Self::default();
        reg.for_each_counter(|name, c| snap.counters.push((name.to_owned(), c.get())));
        reg.for_each_gauge(|name, g| snap.gauges.push((name.to_owned(), g.get())));
        reg.for_each_histogram(|name, h| snap.histograms.push((name.to_owned(), h.snapshot())));
        snap.drift = reg.drift().entries();
        snap.drift_dropped = reg.drift().dropped();
        snap.slow_spans = reg
            .slow_spans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect();
        snap
    }

    /// Value of a counter by exact name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Value of a gauge by exact name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Histogram snapshot by exact name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Sum of every counter whose name starts with `prefix` (handy for
    /// labeled families: `casper_query_total{class="q1"}` …).
    pub fn counter_family(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(n, _)| n.starts_with(prefix))
            .map(|&(_, v)| v)
            .sum()
    }

    /// Prometheus text exposition. Histograms are rendered as summary-style
    /// series (`_count`, `_sum`, and `{quantile=…}` gauges from the
    /// log₂-bucket estimate); drift readings become two labeled gauge
    /// families plus a `casper_fm_drift_max_ratio` scalar.
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        let mut last_base = String::new();
        let type_line = |out: &mut String, name: &str, kind: &str, last: &mut String| {
            let base = name.split('{').next().unwrap_or(name);
            if base != last {
                let _ = writeln!(out, "# TYPE {base} {kind}");
                last.clear();
                last.push_str(base);
            }
        };
        for (name, v) in &self.counters {
            type_line(&mut out, name, "counter", &mut last_base);
            let _ = writeln!(out, "{name} {v}");
        }
        last_base.clear();
        for (name, v) in &self.gauges {
            type_line(&mut out, name, "gauge", &mut last_base);
            let _ = writeln!(out, "{name} {v}");
        }
        last_base.clear();
        for (name, h) in &self.histograms {
            type_line(&mut out, name, "summary", &mut last_base);
            let (base, labels) = split_labels(name);
            let series = |suffix: &str, extra_labels: &str| {
                let mut all = String::new();
                all.push_str(labels);
                if !labels.is_empty() && !extra_labels.is_empty() {
                    all.push(',');
                }
                all.push_str(extra_labels);
                if all.is_empty() {
                    format!("{base}{suffix}")
                } else {
                    format!("{base}{suffix}{{{all}}}")
                }
            };
            let _ = writeln!(out, "{} {}", series("_count", ""), h.count());
            let _ = writeln!(out, "{} {}", series("_sum", ""), h.sum);
            for q in [0.5, 0.99, 0.999] {
                if let Some(v) = h.quantile(q) {
                    let _ = writeln!(out, "{} {v}", series("", &format!("quantile=\"{q}\"")));
                }
            }
        }
        if !self.drift.is_empty() || self.drift_dropped > 0 {
            let _ = writeln!(out, "# TYPE casper_fm_observed_accesses gauge");
            for e in &self.drift {
                let _ = writeln!(
                    out,
                    "casper_fm_observed_accesses{{chunk=\"{}\"}} {}",
                    e.chunk, e.observed
                );
            }
            let _ = writeln!(out, "# TYPE casper_fm_predicted_accesses gauge");
            for e in &self.drift {
                let _ = writeln!(
                    out,
                    "casper_fm_predicted_accesses{{chunk=\"{}\"}} {}",
                    e.chunk, e.predicted
                );
            }
            let _ = writeln!(out, "# TYPE casper_fm_drift_max_ratio gauge");
            let _ = writeln!(
                out,
                "casper_fm_drift_max_ratio {}",
                drift_max_ratio(&self.drift)
            );
            let _ = writeln!(out, "# TYPE casper_fm_drift_dropped_total counter");
            let _ = writeln!(out, "casper_fm_drift_dropped_total {}", self.drift_dropped);
        }
        out
    }

    /// Handwritten JSON rendering (the workspace is offline — no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"counters\": {{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let comma = if i + 1 < self.counters.len() { "," } else { "" };
            let _ = writeln!(out, "    \"{}\": {v}{comma}", escape(name));
        }
        let _ = writeln!(out, "  }},");
        let _ = writeln!(out, "  \"gauges\": {{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            let comma = if i + 1 < self.gauges.len() { "," } else { "" };
            let _ = writeln!(out, "    \"{}\": {v}{comma}", escape(name));
        }
        let _ = writeln!(out, "  }},");
        let _ = writeln!(out, "  \"histograms\": {{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            let comma = if i + 1 < self.histograms.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "    \"{}\": {{\"count\": {}, \"sum\": {}, \"p50\": {}, \"p99\": {}, \
                 \"p999\": {}, \"max\": {}}}{comma}",
                escape(name),
                h.count(),
                h.sum,
                h.quantile(0.5).unwrap_or(0),
                h.quantile(0.99).unwrap_or(0),
                h.quantile(0.999).unwrap_or(0),
                h.max_bound().unwrap_or(0),
            );
        }
        let _ = writeln!(out, "  }},");
        let _ = writeln!(out, "  \"fm_drift\": [");
        for (i, e) in self.drift.iter().enumerate() {
            let comma = if i + 1 < self.drift.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"chunk\": {}, \"observed\": {}, \"predicted\": {}}}{comma}",
                e.chunk, e.observed, e.predicted
            );
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(out, "  \"slow_spans\": [");
        for (i, s) in self.slow_spans.iter().enumerate() {
            let comma = if i + 1 < self.slow_spans.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "    {{\"path\": \"{}\", \"nanos\": {}}}{comma}",
                escape(&s.path),
                s.nanos
            );
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }
}

/// Max drift ratio over already-captured entries (mirrors
/// [`crate::DriftTable::max_ratio`] for snapshot rendering).
fn drift_max_ratio(entries: &[DriftEntry]) -> f64 {
    entries
        .iter()
        .map(|e| {
            let obs = e.observed as f64;
            let pred = e.predicted.max(0.0);
            obs.max(pred) / obs.min(pred).max(1.0)
        })
        .fold(1.0f64, f64::max)
}

/// Split `name{labels}` into `(name, labels)`; labels are empty for plain
/// names.
fn split_labels(name: &str) -> (&str, &str) {
    match name.split_once('{') {
        Some((base, rest)) => (base, rest.strip_suffix('}').unwrap_or(rest)),
        None => (name, ""),
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn render_contains_all_metric_kinds() {
        let reg = Registry::new();
        reg.counter("casper_test_events_total{class=\"q1\"}").add(3);
        reg.gauge("casper_test_level").set(2.0);
        reg.histogram("casper_test_ns").record(1000);
        reg.drift().set_predicted(0, 8.0);
        reg.drift().note_observed(0, 12);
        let snap = MetricsSnapshot::capture(&reg);
        let text = snap.to_prometheus_text();
        assert!(text.contains("# TYPE casper_test_events_total counter"));
        assert!(text.contains("casper_test_events_total{class=\"q1\"} 3"));
        assert!(text.contains("# TYPE casper_test_level gauge"));
        assert!(text.contains("casper_test_ns_count 1"));
        assert!(text.contains("quantile=\"0.99\""));
        assert!(text.contains("casper_fm_observed_accesses{chunk=\"0\"} 12"));
        assert!(text.contains("casper_fm_predicted_accesses{chunk=\"0\"} 8"));
        assert!(text.contains("casper_fm_drift_max_ratio 1.5"));
        let json = snap.to_json();
        assert!(json.contains("\"casper_test_events_total{class=\\\"q1\\\"}\": 3"));
        assert!(json.contains("\"chunk\": 0, \"observed\": 12, \"predicted\": 8"));
    }

    #[test]
    fn accessors_find_by_name_and_family() {
        let reg = Registry::new();
        reg.counter("fam_total{k=\"a\"}").add(1);
        reg.counter("fam_total{k=\"b\"}").add(2);
        reg.gauge("g").set(1.5);
        let snap = MetricsSnapshot::capture(&reg);
        assert_eq!(snap.counter("fam_total{k=\"b\"}"), Some(2));
        assert_eq!(snap.counter("missing"), None);
        assert_eq!(snap.counter_family("fam_total"), 3);
        assert_eq!(snap.gauge("g"), Some(1.5));
    }

    #[test]
    fn labels_split_correctly() {
        assert_eq!(split_labels("a_total"), ("a_total", ""));
        assert_eq!(split_labels("a_total{x=\"1\"}"), ("a_total", "x=\"1\""));
    }
}
