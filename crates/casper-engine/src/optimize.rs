//! The optimization pipeline of Fig. 10: (A) learn the Frequency Model from
//! a workload sample, (B) solve the layout problem, (C) apply the physical
//! layout — per chunk, in parallel (§6.3).
//!
//! "The histograms are created per chunk, and, similarly, design decisions
//! are made for each chunk without any need for communication with other
//! chunks. This allows us to arbitrarily reduce the partitioning
//! complexity."

use crate::column::{chunk_block_fences, rebuild_partitioned, ChunkStore};
use crate::compression::apply_compression_policy;
use crate::exec::{parallel_for_each_mut, parallel_map};
use crate::modes::LayoutMode;
use crate::table::Table;
use casper_core::fm::FmBuilder;
use casper_core::solver::{LayoutOptimizer, SolverConstraints};
use casper_core::{CostConstants, FrequencyModel, Op};
use casper_workload::HapQuery;
use parking_lot::Mutex;
use std::time::Instant;

/// Optimization options.
#[derive(Debug, Clone)]
pub struct OptimizeOptions {
    /// Calibrated cost constants.
    pub constants: CostConstants,
    /// SLA-derived structural constraints.
    pub constraints: SolverConstraints,
    /// Ghost budget as a fraction of each chunk's live size.
    pub ghost_budget_frac: f64,
    /// Cap Casper's partition count at the Equi baseline's (§7 fairness:
    /// "we allow Casper to have as many partitions as the equi-width
    /// partitioning schemes").
    pub fairness_cap: bool,
    /// Worker threads for the per-chunk solves.
    pub threads: usize,
    /// Whether to apply the §6.2 storage-mode policy after each rebuild:
    /// cold read-heavy partitions are encoded and served by the
    /// compressed-scan kernels.
    pub compress_cold: bool,
    /// A partition compresses when its FM write pressure is at most this
    /// fraction of its read pressure (see
    /// `casper_core::cost::advise_compression`).
    pub compress_write_threshold: f64,
}

impl Default for OptimizeOptions {
    fn default() -> Self {
        Self {
            constants: CostConstants::paper(),
            constraints: SolverConstraints::none(),
            ghost_budget_frac: 0.001,
            fairness_cap: true,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            compress_cold: true,
            compress_write_threshold: 0.05,
        }
    }
}

/// Per-chunk outcome of one optimization pass.
#[derive(Debug, Clone)]
pub struct ChunkReport {
    /// Chunk index.
    pub chunk: usize,
    /// Logical blocks in the chunk.
    pub blocks: usize,
    /// Partitions chosen by the solver.
    pub partitions: usize,
    /// Ghost slots allocated.
    pub ghosts: usize,
    /// Modeled workload cost of the chosen layout (ns).
    pub est_cost: f64,
    /// Wall time of the solve (ns), excluding the rebuild.
    pub solve_nanos: u64,
    /// Partitions encoded by the §6.2 storage-mode policy.
    pub compressed_partitions: usize,
    /// Encoded bytes across those partitions.
    pub encoded_bytes: usize,
}

/// Outcome of a whole optimization pass.
#[derive(Debug, Clone, Default)]
pub struct OptimizeReport {
    /// Per-chunk details.
    pub chunks: Vec<ChunkReport>,
}

impl OptimizeReport {
    /// Total solver wall time across chunks (the Fig. 11 quantity; note
    /// chunks solve in parallel, so elapsed time is lower).
    pub fn total_solve_nanos(&self) -> u64 {
        self.chunks.iter().map(|c| c.solve_nanos).sum()
    }

    /// Total partitions across chunks.
    pub fn total_partitions(&self) -> usize {
        self.chunks.iter().map(|c| c.partitions).sum()
    }
}

/// Build the per-chunk Frequency Models from a workload sample: each
/// operation is recorded in the chunk(s) its key endpoints route to, with
/// ranges clipped at chunk boundaries and cross-chunk updates decomposed
/// into a delete plus an insert.
pub fn capture_per_chunk(table: &Table, sample: &[HapQuery]) -> Vec<FrequencyModel> {
    let block_bytes = table.column().config().block_bytes;
    // Capture walks every chunk's sorted keys, so the column must be fully
    // hydrated (optimize_table's backstop hydration guarantees this on the
    // optimizer path).
    let stores: Vec<&ChunkStore> = table
        .column()
        .chunks()
        .iter()
        .map(|s| {
            s.store_opt()
                .expect("frequency capture requires hydrated chunks")
        })
        .collect();
    // Per-chunk fences and key coverage.
    let mut builders: Vec<FmBuilder<u64>> = stores
        .iter()
        .map(|s| FmBuilder::from_fences(chunk_block_fences(s, block_bytes)))
        .collect();
    // Chunk routing bounds: the first key of each chunk; the next chunk's
    // first key serves as the exclusive upper limit.
    let firsts: Vec<u64> = stores
        .iter()
        .map(|s| chunk_block_fences(s, block_bytes)[0])
        .collect();
    let route = |key: u64| -> usize {
        match firsts.binary_search(&key) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        }
    };
    let upper = |chunk: usize| -> u64 { firsts.get(chunk + 1).copied().unwrap_or(u64::MAX) };
    for q in sample {
        match q.key_op() {
            Op::Point(v) => builders[route(v)].record_point(v),
            Op::Insert(v) => builders[route(v)].record_insert(v),
            Op::Delete(v) => builders[route(v)].record_delete(v),
            Op::Range(lo, hi) => {
                let mut c = route(lo);
                let mut lo = lo;
                loop {
                    let hi_c = upper(c).min(hi);
                    if lo < hi_c {
                        builders[c].record_range(lo, hi_c);
                    }
                    if hi <= upper(c) || c + 1 >= builders.len() {
                        break;
                    }
                    lo = upper(c);
                    c += 1;
                }
            }
            Op::Update(old, new) => {
                let (a, b) = (route(old), route(new));
                if a == b {
                    builders[a].record_update(old, new);
                } else {
                    builders[a].record_delete(old);
                    builders[b].record_insert(new);
                }
            }
        }
    }
    builders.into_iter().map(FmBuilder::finish).collect()
}

/// Optimize a table's layout for a workload sample (Fig. 10 A→B→C).
///
/// Converts the table to Casper-mode partitioned chunks regardless of its
/// previous mode; unordered (`NoOrder`) tables are first re-loaded in key
/// order.
pub fn optimize_table(
    table: &mut Table,
    sample: &[HapQuery],
    opts: &OptimizeOptions,
) -> OptimizeReport {
    // A lazily-restored column must be fully decoded before the rebuild
    // sweep (the optimizer reads and rewrites every chunk). `DurableTable`
    // hydrates with typed error handling before reaching here; this is the
    // backstop for direct engine users.
    table.column_mut().hydrate_all().expect(
        "corrupt persisted chunk surfaced during optimize; open the table eagerly to diagnose",
    );
    // Unordered columns cannot be range-chunked in place: re-load sorted.
    if table.column().config().mode == LayoutMode::NoOrder {
        let mut keys = Vec::with_capacity(table.len());
        let mut cols: Vec<Vec<u32>> = (0..table.column().payload_width())
            .map(|_| Vec::with_capacity(table.len()))
            .collect();
        for slot in table.column().chunks() {
            let (k, p) = match slot.store_opt() {
                Some(ChunkStore::Partitioned(c)) => c.extract_live_sorted(),
                Some(ChunkStore::Sorted(s)) => s.to_parts(),
                Some(ChunkStore::Delta(d)) => {
                    let mut d = d.clone();
                    d.force_merge();
                    d.main().to_parts()
                }
                None => {
                    unreachable!("optimize_table hydrates the column before converting it")
                }
            };
            keys.extend(k);
            for (dst, src) in cols.iter_mut().zip(p) {
                dst.extend(src);
            }
        }
        let mut config = *table.column().config();
        config.mode = LayoutMode::Casper;
        *table = Table::load(table.schema(), keys, cols, config);
    }

    let fms = capture_per_chunk(table, sample);
    // Publish the predicted side of the per-chunk drift gauges: the FM's
    // total recorded mass is the access count the layout was solved for.
    // `set_predicted` also resets each chunk's observed window, so drift is
    // always measured against the layout currently in force.
    if let Some(reg) = casper_obs::registry() {
        for (i, fm) in fms.iter().enumerate() {
            reg.drift().set_predicted(i, fm.total_mass());
        }
    }
    let config = *table.column().config();
    let fairness = opts.fairness_cap.then_some(config.equi_partitions);
    let constraints = SolverConstraints {
        max_partitions: match (opts.constraints.max_partitions, fairness) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        },
        max_partition_blocks: opts.constraints.max_partition_blocks,
    };

    // Solve every chunk in parallel (§6.3's embarrassingly parallel
    // decomposition), then apply the layouts.
    let sizes: Vec<usize> = table.column().chunks().iter().map(|s| s.len()).collect();
    let decisions = parallel_map(&fms, opts.threads, |i, fm| {
        let budget = (sizes[i] as f64 * opts.ghost_budget_frac).ceil() as usize;
        let optimizer = LayoutOptimizer {
            constants: opts.constants,
            constraints,
        };
        let t = Instant::now();
        let d = optimizer.optimize(fm, budget);
        (d, t.elapsed().as_nanos() as u64)
    });

    let mut report = OptimizeReport::default();
    for (i, (decision, solve_nanos)) in decisions.iter().enumerate() {
        report.chunks.push(ChunkReport {
            chunk: i,
            blocks: decision.seg.n_blocks(),
            partitions: decision.seg.partition_count(),
            ghosts: decision.ghosts.total(),
            est_cost: decision.est_cost,
            solve_nanos: *solve_nanos,
            compressed_partitions: 0,
            encoded_bytes: 0,
        });
    }
    // Step C: materialize the new layouts. Rebuilds are independent per
    // chunk (extract → re-sort → re-partition), so they stripe across the
    // same worker budget as the solve. Each rebuilt chunk then receives the
    // §6.2 storage-mode pass: partitions the Frequency Model shows as cold
    // and read-heavy are encoded for the compressed-scan kernels.
    let compression = Mutex::new(Vec::new());
    let mut stores = table
        .column_mut()
        .chunks_mut()
        .expect("optimize hydrated the column, so chunk access cannot fail");
    parallel_for_each_mut(&mut stores, opts.threads, |i, store| {
        let (decision, _) = &decisions[i];
        **store = rebuild_partitioned(store, &decision.seg, &decision.ghosts, &config);
        if opts.compress_cold {
            if let ChunkStore::Partitioned(chunk) = &mut **store {
                let r = apply_compression_policy(
                    chunk,
                    &fms[i],
                    &decision.seg,
                    opts.compress_write_threshold,
                );
                compression.lock().push((i, r));
            }
        }
    });
    drop(stores);
    for (i, r) in compression.into_inner() {
        report.chunks[i].compressed_partitions = r.compressed_partitions;
        report.chunks[i].encoded_bytes = r.encoded_bytes;
    }
    // Re-layout replaced chunk stores wholesale: hand readers the new ones.
    table.column_mut().publish();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modes::{EngineConfig, LayoutMode};
    use casper_workload::{HapSchema, KeyDist, Mix, MixKind, WorkloadGenerator};

    fn test_table(mode: LayoutMode) -> Table {
        let gen = WorkloadGenerator::new(HapSchema::narrow(), 4000, KeyDist::Uniform);
        let mut config = EngineConfig::small(mode);
        config.chunk_values = 1024; // force several chunks
        Table::load_from_generator(&gen, config)
    }

    #[test]
    fn capture_routes_ops_to_chunks() {
        let table = test_table(LayoutMode::Casper);
        let sample = vec![
            HapQuery::Q1 { v: 10, k: 1 },   // chunk 0
            HapQuery::Q1 { v: 7990, k: 1 }, // last chunk
            HapQuery::Q4 {
                key: 11,
                payload: vec![],
            },
        ];
        let fms = capture_per_chunk(&table, &sample);
        assert_eq!(fms.len(), table.column().chunk_count());
        assert!(fms[0].pq.iter().sum::<f64>() >= 1.0);
        assert!(fms.last().unwrap().pq.iter().sum::<f64>() >= 1.0);
        assert!(fms[0].ins.iter().sum::<f64>() >= 1.0);
        for fm in &fms {
            fm.validate().unwrap();
        }
    }

    #[test]
    fn capture_clips_ranges_across_chunks() {
        let table = test_table(LayoutMode::Casper);
        // One huge range covering every chunk.
        let sample = vec![HapQuery::Q2 {
            vs: 0,
            ve: u64::MAX,
        }];
        let fms = capture_per_chunk(&table, &sample);
        for (i, fm) in fms.iter().enumerate() {
            assert!(
                fm.rs.iter().sum::<f64>() >= 1.0,
                "chunk {i} missing its clipped range start"
            );
        }
    }

    #[test]
    fn cross_chunk_update_becomes_delete_plus_insert() {
        let table = test_table(LayoutMode::Casper);
        let sample = vec![HapQuery::Q6 { v: 10, vnew: 7991 }];
        let fms = capture_per_chunk(&table, &sample);
        assert!(fms[0].de.iter().sum::<f64>() >= 1.0);
        assert!(fms.last().unwrap().ins.iter().sum::<f64>() >= 1.0);
    }

    #[test]
    fn optimize_improves_modeled_cost_and_keeps_results() {
        let mut table = test_table(LayoutMode::Casper);
        let mix = Mix::new(MixKind::HybridPointSkewed, HapSchema::narrow(), 4000);
        let sample = mix.generate(800, 5);
        // Reference results before optimization — read-only probes, so the
        // two executions compare the same logical table.
        let probes: Vec<_> = mix
            .generate(400, 6)
            .into_iter()
            .filter(|q| q.is_read())
            .collect();
        let before: Vec<u64> = {
            let outs = table.execute_all(&probes).unwrap();
            outs.iter().map(|o| o.result.scalar()).collect()
        };
        let report = optimize_table(&mut table, &sample, &OptimizeOptions::default());
        assert_eq!(report.chunks.len(), table.column().chunk_count());
        assert!(report.total_partitions() >= table.column().chunk_count());
        // Logical results unchanged by a physical re-layout.
        let after: Vec<u64> = {
            let outs = table.execute_all(&probes).unwrap();
            outs.iter().map(|o| o.result.scalar()).collect()
        };
        assert_eq!(before, after);
    }

    #[test]
    fn optimize_converts_noorder_tables() {
        let mut table = test_table(LayoutMode::NoOrder);
        let mix = Mix::new(MixKind::ReadOnlySkewed, HapSchema::narrow(), 4000);
        let sample = mix.generate(300, 9);
        let len = table.len();
        optimize_table(&mut table, &sample, &OptimizeOptions::default());
        assert_eq!(table.len(), len);
        assert_eq!(table.column().config().mode, LayoutMode::Casper);
        // Point queries still correct after conversion.
        let (rows, _) = table.column().q1_point(100, &[0]).unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn read_only_workload_compresses_and_stays_correct() {
        let mut table = test_table(LayoutMode::Casper);
        let mix = Mix::new(MixKind::ReadOnlySkewed, HapSchema::narrow(), 4000);
        let sample = mix.generate(500, 3);
        let report = optimize_table(&mut table, &sample, &OptimizeOptions::default());
        // A read-only sample leaves every partition cold on the write side:
        // the policy should encode a substantial share of them.
        let compressed: usize = report.chunks.iter().map(|c| c.compressed_partitions).sum();
        assert!(compressed > 0, "no partition compressed: {report:?}");
        let encoded: usize = report.chunks.iter().map(|c| c.encoded_bytes).sum();
        assert!(encoded > 0);
        // Reads over the mixed-mode table are bit-exact.
        let (rows, _) = table.column().q1_point(100, &[0]).unwrap();
        assert_eq!(rows.len(), 1);
        let (n, _) = table.column().q2_count(0, u64::MAX).unwrap();
        assert_eq!(n as usize, table.len());
        // Writes transparently decode-on-write.
        let mut col_writes = 0usize;
        for slot in table.column().chunks() {
            if let Some(ChunkStore::Partitioned(p)) = slot.store_opt() {
                col_writes += p.compressed_partition_count();
            }
        }
        assert!(col_writes > 0);
        let payload = vec![7u32; table.column().payload_width()];
        table.column_mut().q4_insert(101, &payload).unwrap();
        let (rows, _) = table.column().q1_point(101, &[0]).unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn compression_can_be_disabled() {
        let mut table = test_table(LayoutMode::Casper);
        let mix = Mix::new(MixKind::ReadOnlySkewed, HapSchema::narrow(), 4000);
        let sample = mix.generate(300, 4);
        let opts = OptimizeOptions {
            compress_cold: false,
            ..OptimizeOptions::default()
        };
        let report = optimize_table(&mut table, &sample, &opts);
        assert!(report.chunks.iter().all(|c| c.compressed_partitions == 0));
        for slot in table.column().chunks() {
            if let Some(ChunkStore::Partitioned(p)) = slot.store_opt() {
                assert_eq!(p.compressed_partition_count(), 0);
            }
        }
    }

    #[test]
    fn fairness_cap_limits_partitions() {
        let mut table = test_table(LayoutMode::Casper);
        let mix = Mix::new(MixKind::ReadOnlySkewed, HapSchema::narrow(), 4000);
        let sample = mix.generate(500, 11);
        let opts = OptimizeOptions::default();
        let report = optimize_table(&mut table, &sample, &opts);
        let cap = table.column().config().equi_partitions;
        for c in &report.chunks {
            assert!(
                c.partitions <= cap,
                "chunk {} has {} partitions",
                c.chunk,
                c.partitions
            );
        }
    }
}
