//! The six operation modes of the evaluation (§7) and engine configuration.
//!
//! "Casper integrates all tested column layout strategies. In particular,
//! Casper has six distinct operation modes": a plain column store, a sorted
//! column, the sorted-plus-delta state of the art, equi-width partitioning
//! with and without ghost values, and Casper proper (workload-optimized
//! partitions plus Eq. 18 ghost distribution).

/// Column layout strategy (§7 "Experimental Methodology").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayoutMode {
    /// Plain column store: insertion order, no structure (one partition per
    /// chunk, appends at the tail).
    NoOrder,
    /// Fully sorted column; reads binary-search, writes memmove.
    Sorted,
    /// Sorted column + global delta store — the state-of-the-art baseline.
    StateOfArt,
    /// Equi-width partitioned chunks, no ghost values.
    Equi,
    /// Equi-width partitioned chunks with evenly spread ghost values.
    EquiGV,
    /// Workload-optimized partitioning and ghost distribution.
    Casper,
}

impl LayoutMode {
    /// All modes in the paper's presentation order.
    pub fn all() -> [LayoutMode; 6] {
        [
            LayoutMode::Casper,
            LayoutMode::EquiGV,
            LayoutMode::Equi,
            LayoutMode::StateOfArt,
            LayoutMode::Sorted,
            LayoutMode::NoOrder,
        ]
    }

    /// Display label matching the figures.
    pub fn label(&self) -> &'static str {
        match self {
            LayoutMode::NoOrder => "No Order",
            LayoutMode::Sorted => "Sorted",
            LayoutMode::StateOfArt => "State-of-art",
            LayoutMode::Equi => "Equi",
            LayoutMode::EquiGV => "Equi-GV",
            LayoutMode::Casper => "Casper",
        }
    }

    /// Whether this mode stores chunks as partitioned columns.
    pub fn is_partitioned(&self) -> bool {
        matches!(
            self,
            LayoutMode::NoOrder | LayoutMode::Equi | LayoutMode::EquiGV | LayoutMode::Casper
        )
    }
}

/// Engine configuration (defaults follow the paper's experimental setup:
/// 1M-value chunks, 16 KB blocks, 0.1% ghost values).
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Layout strategy.
    pub mode: LayoutMode,
    /// Block size in bytes (16 KB in most experiments).
    pub block_bytes: usize,
    /// Values per column chunk (1M in the paper).
    pub chunk_values: usize,
    /// Partition count for the `Equi`/`EquiGV` baselines; also the
    /// fairness cap on Casper's partition count ("we allow Casper to have
    /// as many partitions as the equi-width partitioning schemes", §7).
    /// The default (256 over a 1M-value chunk of 512 16KB-blocks) gives the
    /// baselines ~2-block partitions, comparable to the sorted designs'
    /// block-granular reads.
    pub equi_partitions: usize,
    /// Ghost-value budget as a fraction of the data size (0.1% in Fig. 12).
    pub ghost_budget_frac: f64,
    /// Delta-store capacity as a fraction of the chunk size (`StateOfArt`).
    /// Small enough that merges amortize into short runs (real delta stores
    /// merge continuously; see DESIGN.md on baseline tuning).
    pub delta_frac: f64,
    /// Physical slack capacity per chunk beyond live + ghosts.
    pub capacity_slack: f64,
    /// Worker threads for chunk-parallel operations.
    pub threads: usize,
    /// Ghost slots fetched per ripple (§6.1 block fetching).
    pub ghost_fetch_block: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            mode: LayoutMode::Casper,
            block_bytes: 16 * 1024,
            chunk_values: 1 << 20,
            equi_partitions: 256,
            ghost_budget_frac: 0.001,
            delta_frac: 0.002,
            capacity_slack: 0.05,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            ghost_fetch_block: 8,
        }
    }
}

impl EngineConfig {
    /// Config for a given mode with all other defaults.
    pub fn for_mode(mode: LayoutMode) -> Self {
        Self {
            mode,
            ..Self::default()
        }
    }

    /// Small-footprint config for tests: 4 KB blocks, 4K-value chunks.
    pub fn small(mode: LayoutMode) -> Self {
        Self {
            mode,
            block_bytes: 4096,
            chunk_values: 4096,
            equi_partitions: 8,
            ghost_budget_frac: 0.01,
            threads: 2,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_modes() {
        assert_eq!(LayoutMode::all().len(), 6);
        let labels: std::collections::HashSet<_> =
            LayoutMode::all().iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), 6);
    }

    #[test]
    fn partitioned_classification() {
        assert!(LayoutMode::Casper.is_partitioned());
        assert!(LayoutMode::NoOrder.is_partitioned());
        assert!(!LayoutMode::Sorted.is_partitioned());
        assert!(!LayoutMode::StateOfArt.is_partitioned());
    }

    #[test]
    fn defaults_match_paper_setup() {
        let c = EngineConfig::default();
        assert_eq!(c.block_bytes, 16 * 1024);
        assert_eq!(c.chunk_values, 1 << 20);
        assert!((c.ghost_budget_frac - 0.001).abs() < 1e-12);
        assert!(c.threads >= 1);
    }
}
