//! Transaction support: snapshot isolation through MVCC (§6.1).
//!
//! "Casper supports general transactions through snapshot isolation, which
//! isolates a snapshot of the database observed at the beginning of each
//! transaction. ... each transaction is allowed to work on the data by
//! assigning timestamps to every row when inserted or updated, initially
//! maintained in a local per-transaction buffer. ... the first one to
//! commit wins and the other transactions abort and roll back."
//!
//! Design: writers buffer their operations locally and only touch the table
//! at commit, after first-committer-wins validation against per-key last
//! writer timestamps. Readers evaluate against the current table state and
//! *rewind* the effect of versions committed after their snapshot using the
//! version log — giving exact snapshot semantics for point/range counts.
//!
//! Ghost-value rippling is decoupled from transactions (§6.1): buffering an
//! insert immediately prefetches ghost slots into the target partition, and
//! that prefetch persists even when the transaction aborts.

use crate::table::Table;
use casper_obs::{CounterDef, SpanDef};
use casper_storage::StorageError;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

static OBS_COMMIT_SPAN: SpanDef = SpanDef::new("txn_commit");
static OBS_COMMITS: CounterDef = CounterDef::new("casper_txn_commits_total");
static OBS_CONFLICTS: CounterDef = CounterDef::new("casper_txn_conflicts_total");
static OBS_ABORTS: CounterDef = CounterDef::new("casper_txn_aborts_total");

/// A buffered write.
#[derive(Debug, Clone, PartialEq, Eq)]
enum TxnWrite {
    Insert(u64, Vec<u32>),
    Delete(u64),
    Update(u64, u64),
}

impl TxnWrite {
    /// Keys whose last-writer timestamps this write must validate against.
    fn keys(&self) -> [Option<u64>; 2] {
        match self {
            TxnWrite::Insert(k, _) => [Some(*k), None],
            TxnWrite::Delete(k) => [Some(*k), None],
            TxnWrite::Update(a, b) => [Some(*a), Some(*b)],
        }
    }
}

/// A committed version-log record.
#[derive(Debug, Clone)]
struct VersionRecord {
    ts: u64,
    write: TxnWrite,
}

/// Transaction failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnError {
    /// First-committer-wins validation failed on this key.
    Conflict {
        /// The contended key.
        key: u64,
    },
    /// The underlying storage rejected a write (e.g. a full chunk).
    Storage(String),
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::Conflict { key } => write!(f, "write-write conflict on key {key}"),
            TxnError::Storage(e) => write!(f, "storage error during commit: {e}"),
        }
    }
}

impl std::error::Error for TxnError {}

/// An open transaction: a snapshot timestamp plus a local write buffer.
#[derive(Debug)]
pub struct Transaction {
    /// Snapshot timestamp: the transaction sees exactly the versions with
    /// `ts <= begin_ts`.
    pub begin_ts: u64,
    writes: Vec<TxnWrite>,
}

impl Transaction {
    /// Buffer an insert. Ghost prefetching happens through
    /// [`TxnManager::buffer_insert`], which owns the table access.
    fn insert(&mut self, key: u64, payload: Vec<u32>) {
        self.writes.push(TxnWrite::Insert(key, payload));
    }

    /// Buffer a delete.
    pub fn delete(&mut self, key: u64) {
        self.writes.push(TxnWrite::Delete(key));
    }

    /// Buffer an update.
    pub fn update(&mut self, old: u64, new: u64) {
        self.writes.push(TxnWrite::Update(old, new));
    }

    /// Number of buffered writes.
    pub fn write_count(&self) -> usize {
        self.writes.len()
    }

    /// The buffered writes as HAP write queries, in buffer order — what a
    /// write-ahead log must record before the commit applies them.
    ///
    /// Invariant (durability depends on it): Q4/Q5/Q6 produced here map
    /// 1:1 onto the `q4_insert`/`q5_delete`/`q6_update` calls
    /// [`TxnManager::commit`] makes for the same writes, and
    /// `Table::execute` routes those queries to those same calls — so a
    /// log replayed through `execute` reproduces exactly the applied
    /// state. Any new `TxnWrite` kind must extend this mapping and
    /// `commit` together.
    pub fn as_queries(&self) -> Vec<casper_workload::HapQuery> {
        use casper_workload::HapQuery;
        self.writes
            .iter()
            .map(|w| match w {
                TxnWrite::Insert(k, payload) => HapQuery::Q4 {
                    key: *k,
                    payload: payload.clone(),
                },
                TxnWrite::Delete(k) => HapQuery::Q5 { v: *k },
                TxnWrite::Update(a, b) => HapQuery::Q6 { v: *a, vnew: *b },
            })
            .collect()
    }

    /// Read-your-writes adjustment for a point count of `key`.
    fn own_effect_point(&self, key: u64) -> i64 {
        let mut d = 0i64;
        for w in &self.writes {
            match w {
                TxnWrite::Insert(k, _) if *k == key => d += 1,
                TxnWrite::Delete(k) if *k == key => d -= 1,
                TxnWrite::Update(a, b) => {
                    if *a == key {
                        d -= 1;
                    }
                    if *b == key {
                        d += 1;
                    }
                }
                _ => {}
            }
        }
        d
    }

    /// Read-your-writes adjustment for a range count over `[lo, hi)`.
    fn own_effect_range(&self, lo: u64, hi: u64) -> i64 {
        let in_range = |k: u64| lo <= k && k < hi;
        let mut d = 0i64;
        for w in &self.writes {
            match w {
                TxnWrite::Insert(k, _) if in_range(*k) => d += 1,
                TxnWrite::Delete(k) if in_range(*k) => d -= 1,
                TxnWrite::Update(a, b) => {
                    if in_range(*a) {
                        d -= 1;
                    }
                    if in_range(*b) {
                        d += 1;
                    }
                }
                _ => {}
            }
        }
        d
    }
}

/// The MVCC coordinator: global clock, version log, last-writer table.
#[derive(Debug, Default)]
pub struct TxnManager {
    clock: AtomicU64,
    inner: Mutex<TxnState>,
}

#[derive(Debug, Default)]
struct TxnState {
    /// Per-key commit timestamp of the last writer.
    last_writer: HashMap<u64, u64>,
    /// Committed version log, ascending by `ts`.
    log: Vec<VersionRecord>,
}

impl TxnManager {
    /// Fresh manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Begin a transaction at the current timestamp.
    pub fn begin(&self) -> Transaction {
        Transaction {
            begin_ts: self.clock.load(Ordering::SeqCst),
            writes: Vec::new(),
        }
    }

    /// Buffer an insert, immediately prefetching ghost slots for the target
    /// partition (§6.1's decoupled rippling — persists even if `txn`
    /// aborts).
    pub fn buffer_insert(
        &self,
        txn: &mut Transaction,
        table: &mut Table,
        key: u64,
        payload: Vec<u32>,
    ) {
        // Best effort: only the owning chunk benefits (and is dirtied),
        // and prefetching an already-buffered partition is a no-op.
        table.column_mut().prefetch_ghosts_for_key(key, 1);
        txn.insert(key, payload);
    }

    /// Snapshot-consistent point count: current state, minus versions
    /// committed after the snapshot, plus the transaction's own writes.
    /// Corrupt persisted chunks surface as [`StorageError::Corrupt`].
    pub fn point_count(
        &self,
        txn: &Transaction,
        table: &Table,
        key: u64,
    ) -> Result<u64, StorageError> {
        let (rows, _) = table.column().q1_point(key, &[])?;
        let mut n = rows.len() as i64;
        let inner = self.inner.lock();
        for rec in inner.log.iter().rev() {
            if rec.ts <= txn.begin_ts {
                break;
            }
            // Rewind the record's effect on this key.
            match &rec.write {
                TxnWrite::Insert(k, _) if *k == key => n -= 1,
                TxnWrite::Delete(k) if *k == key => n += 1,
                TxnWrite::Update(a, b) => {
                    if *b == key {
                        n -= 1;
                    }
                    if *a == key {
                        n += 1;
                    }
                }
                _ => {}
            }
        }
        drop(inner);
        Ok((n + txn.own_effect_point(key)).max(0) as u64)
    }

    /// Snapshot-consistent range count over `[lo, hi)`.
    pub fn range_count(
        &self,
        txn: &Transaction,
        table: &Table,
        lo: u64,
        hi: u64,
    ) -> Result<u64, StorageError> {
        let (n, _) = table.column().q2_count(lo, hi)?;
        let mut n = n as i64;
        let in_range = |k: u64| lo <= k && k < hi;
        let inner = self.inner.lock();
        for rec in inner.log.iter().rev() {
            if rec.ts <= txn.begin_ts {
                break;
            }
            match &rec.write {
                TxnWrite::Insert(k, _) if in_range(*k) => n -= 1,
                TxnWrite::Delete(k) if in_range(*k) => n += 1,
                TxnWrite::Update(a, b) => {
                    if in_range(*b) {
                        n -= 1;
                    }
                    if in_range(*a) {
                        n += 1;
                    }
                }
                _ => {}
            }
        }
        drop(inner);
        Ok((n + txn.own_effect_range(lo, hi)).max(0) as u64)
    }

    /// Commit: first-committer-wins validation, then apply the buffered
    /// writes to the table and publish the versions.
    pub fn commit(&self, txn: Transaction, table: &mut Table) -> Result<u64, TxnError> {
        let _span = OBS_COMMIT_SPAN.start();
        let mut inner = self.inner.lock();
        // Validation: any key written by a transaction that committed after
        // our snapshot aborts us.
        for w in &txn.writes {
            for key in w.keys().into_iter().flatten() {
                if let Some(&ts) = inner.last_writer.get(&key) {
                    if ts > txn.begin_ts {
                        OBS_CONFLICTS.inc();
                        return Err(TxnError::Conflict { key });
                    }
                }
            }
        }
        let commit_ts = self.clock.fetch_add(1, Ordering::SeqCst) + 1;
        // Apply while holding the coordinator lock (single-writer apply
        // phase; reads remain concurrent thanks to the version log).
        for w in &txn.writes {
            let result = match w {
                TxnWrite::Insert(k, payload) => table
                    .column_mut()
                    .q4_insert(*k, payload)
                    .map(|_| ())
                    .map_err(|e| TxnError::Storage(e.to_string())),
                TxnWrite::Delete(k) => table
                    .column_mut()
                    .q5_delete(*k)
                    .map(|_| ())
                    .map_err(|e| TxnError::Storage(e.to_string())),
                TxnWrite::Update(a, b) => table
                    .column_mut()
                    .q6_update(*a, *b)
                    .map(|_| ())
                    .map_err(|e| TxnError::Storage(e.to_string())),
            };
            result?;
            for key in w.keys().into_iter().flatten() {
                inner.last_writer.insert(key, commit_ts);
            }
            inner.log.push(VersionRecord {
                ts: commit_ts,
                write: w.clone(),
            });
        }
        OBS_COMMITS.inc();
        Ok(commit_ts)
    }

    /// Abort: drop the buffer. Ghost prefetches performed while buffering
    /// persist by design (§6.1).
    pub fn abort(&self, txn: Transaction) {
        OBS_ABORTS.inc();
        drop(txn);
    }

    /// Committed version-log length (diagnostics).
    pub fn log_len(&self) -> usize {
        self.inner.lock().log.len()
    }

    /// Truncate the version log below `ts` (garbage collection once no
    /// snapshot can observe older versions).
    pub fn gc_versions(&self, ts: u64) {
        let mut inner = self.inner.lock();
        inner.log.retain(|r| r.ts >= ts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ChunkStore;
    use crate::modes::{EngineConfig, LayoutMode};
    use casper_workload::{HapSchema, KeyDist, WorkloadGenerator};

    fn table() -> Table {
        let gen = WorkloadGenerator::new(HapSchema::narrow(), 2000, KeyDist::Uniform);
        Table::load_from_generator(&gen, EngineConfig::small(LayoutMode::Casper))
    }

    #[test]
    fn committed_writes_become_visible() {
        let mut t = table();
        let mgr = TxnManager::new();
        let mut txn = mgr.begin();
        mgr.buffer_insert(&mut txn, &mut t, 4001, vec![0; 15]);
        mgr.commit(txn, &mut t).unwrap();
        let fresh = mgr.begin();
        assert_eq!(mgr.point_count(&fresh, &t, 4001).unwrap(), 1);
    }

    #[test]
    fn snapshot_does_not_see_later_commits() {
        let mut t = table();
        let mgr = TxnManager::new();
        let reader = mgr.begin(); // snapshot before the write
        let mut writer = mgr.begin();
        mgr.buffer_insert(&mut writer, &mut t, 4001, vec![0; 15]);
        mgr.commit(writer, &mut t).unwrap();
        // The reader's snapshot predates the commit. Loaded keys are the
        // even values 0..3998, so [3900, 4100) holds 50 of them and must
        // not include the concurrently inserted 4001.
        assert_eq!(mgr.point_count(&reader, &t, 4001).unwrap(), 0);
        assert_eq!(mgr.range_count(&reader, &t, 3900, 4100).unwrap(), 50);
        // A fresh snapshot sees it.
        let fresh = mgr.begin();
        assert_eq!(mgr.point_count(&fresh, &t, 4001).unwrap(), 1);
    }

    #[test]
    fn snapshot_rewinds_deletes_and_updates() {
        let mut t = table();
        let mgr = TxnManager::new();
        let reader = mgr.begin();
        let mut w = mgr.begin();
        w.delete(100);
        w.update(200, 201);
        mgr.commit(w, &mut t).unwrap();
        assert_eq!(
            mgr.point_count(&reader, &t, 100).unwrap(),
            1,
            "delete rewound"
        );
        assert_eq!(
            mgr.point_count(&reader, &t, 200).unwrap(),
            1,
            "update-from rewound"
        );
        assert_eq!(
            mgr.point_count(&reader, &t, 201).unwrap(),
            0,
            "update-to rewound"
        );
    }

    #[test]
    fn read_your_own_writes() {
        let mut t = table();
        let mgr = TxnManager::new();
        let mut txn = mgr.begin();
        mgr.buffer_insert(&mut txn, &mut t, 5001, vec![0; 15]);
        txn.delete(100);
        assert_eq!(mgr.point_count(&txn, &t, 5001).unwrap(), 1);
        assert_eq!(mgr.point_count(&txn, &t, 100).unwrap(), 0);
        mgr.abort(txn);
        let fresh = mgr.begin();
        assert_eq!(
            mgr.point_count(&fresh, &t, 5001).unwrap(),
            0,
            "abort discards writes"
        );
        assert_eq!(mgr.point_count(&fresh, &t, 100).unwrap(), 1);
    }

    #[test]
    fn first_committer_wins() {
        let mut t = table();
        let mgr = TxnManager::new();
        let mut t1 = mgr.begin();
        let mut t2 = mgr.begin();
        t1.update(300, 301);
        t2.update(300, 303);
        mgr.commit(t1, &mut t).unwrap();
        let err = mgr.commit(t2, &mut t).unwrap_err();
        assert_eq!(err, TxnError::Conflict { key: 300 });
        // The loser's write must not be applied.
        let fresh = mgr.begin();
        assert_eq!(mgr.point_count(&fresh, &t, 301).unwrap(), 1);
        assert_eq!(mgr.point_count(&fresh, &t, 303).unwrap(), 0);
    }

    #[test]
    fn disjoint_writers_both_commit() {
        let mut t = table();
        let mgr = TxnManager::new();
        let mut t1 = mgr.begin();
        let mut t2 = mgr.begin();
        t1.update(300, 301);
        t2.update(500, 501);
        mgr.commit(t1, &mut t).unwrap();
        mgr.commit(t2, &mut t).unwrap();
        let fresh = mgr.begin();
        assert_eq!(mgr.point_count(&fresh, &t, 301).unwrap(), 1);
        assert_eq!(mgr.point_count(&fresh, &t, 501).unwrap(), 1);
    }

    #[test]
    fn ghost_prefetch_survives_abort() {
        let mut t = table();
        let mgr = TxnManager::new();
        let ghosts_for = |t: &Table, key: u64| -> usize {
            for slot in t.column().chunks() {
                if let Some(ChunkStore::Partitioned(c)) = slot.store_opt() {
                    let r = c.point_query(key);
                    return c.partitions()[r.partition].ghosts;
                }
            }
            0
        };
        // Drain any local ghosts first so the prefetch is observable.
        let before = ghosts_for(&t, 100);
        let mut txn = mgr.begin();
        mgr.buffer_insert(&mut txn, &mut t, 101, vec![0; 15]);
        let during = ghosts_for(&t, 100);
        assert!(during >= 1.max(before), "prefetch must provision a ghost");
        mgr.abort(txn);
        let after = ghosts_for(&t, 100);
        assert_eq!(after, during, "aborting must not undo the ghost fetch");
    }

    #[test]
    fn gc_trims_version_log() {
        let mut t = table();
        let mgr = TxnManager::new();
        for i in 0..5 {
            let mut txn = mgr.begin();
            txn.delete(i * 2);
            mgr.commit(txn, &mut t).unwrap();
        }
        assert_eq!(mgr.log_len(), 5);
        mgr.gc_versions(4);
        assert_eq!(mgr.log_len(), 2);
    }
}
