//! # casper-engine
//!
//! The Casper storage engine (§6, Fig. 10): the integration layer that
//! turns the layout optimizer of `casper-core` and the partitioned chunks
//! of `casper-storage` into a usable columnar engine.
//!
//! * [`modes`] — the six operation modes of the evaluation (§7): `NoOrder`,
//!   `Sorted`, `StateOfArt` (sorted + delta), `Equi`, `EquiGV`, `Casper`.
//! * [`mod@column`] / [`table`] — chunked columns (1M-value chunks by default)
//!   and multi-column HAP tables executing Q1–Q6.
//! * [`optimize`] — the per-chunk Frequency-Model → solver → repartition
//!   pipeline (the A→B→C loop of Fig. 10), chunk-parallel per §6.3.
//! * [`compression`] — the §6.2 storage-mode policy: after a re-layout,
//!   cold read-heavy partitions are encoded (FoR/dictionary/RLE) and served
//!   by the compressed-scan kernels; writes decode-on-write back to plain.
//! * [`txn`] — snapshot isolation through MVCC with first-committer-wins
//!   (§6.1), including the decoupled ghost rippling that survives aborts.
//! * [`adapt`] — the online re-optimization loop of §1 (A′ in Fig. 10):
//!   sliding-window monitoring and benefit-gated re-partitioning.
//! * [`calibrate`] — the §4.5 micro-benchmark fitting `RR/RW/SR/SW`.
//! * [`exec`] — scoped-thread helpers for chunk-parallel execution.
//! * [`metrics`] — latency/throughput recording used by the experiment
//!   harness.

pub mod adapt;
pub mod calibrate;
pub mod column;
pub mod compression;
pub mod exec;
pub mod governor;
pub mod metrics;
pub mod modes;
pub mod optimize;
pub mod table;
pub mod txn;

pub use adapt::{AdaptConfig, AdaptiveController};
pub use column::{ChunkSlot, ChunkedColumn, ColumnSnapshot, SnapshotCell, WriteOp};
pub use governor::{CancelToken, Governor, GovernorConfig, GovernorStats, QueryCtx, QueryError};
pub use metrics::{LatencyRecorder, Summary};
pub use modes::{EngineConfig, LayoutMode};
pub use table::{QueryOutput, QueryResult, Table, TableReader};
pub use txn::{Transaction, TxnError, TxnManager};
