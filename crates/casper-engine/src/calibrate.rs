//! Cost-constant calibration (§4.5).
//!
//! "For every instance of Casper deployed, we first need to establish
//! these values through micro-benchmarking." The four constants play two
//! roles in the model: `RR`/`RW` price the single-value random accesses of
//! ripple steps (Fig. 9a verifies inserts at `(RR+RW)·(1+trail)`), while
//! `SR`/`SW` price the per-block amortized cost of tight-loop scans
//! (Fig. 9b verifies point queries at `RR + SR·(blocks−1)`).
//!
//! The micro-benchmark measures exactly those quantities on the host:
//! dependent random single-element reads/writes for `RR`/`RW`, streaming
//! scans for per-block `SR`/`SW`.

use casper_core::CostConstants;
use std::hint::black_box;
use std::time::Instant;

/// Calibration parameters.
#[derive(Debug, Clone, Copy)]
pub struct CalibrationConfig {
    /// Working-set size in bytes (should exceed LLC; default 64 MB).
    pub buffer_bytes: usize,
    /// Block size the engine will use (per-block `SR`/`SW`).
    pub block_bytes: usize,
    /// Measurement repetitions (the median is reported).
    pub repetitions: usize,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        Self {
            buffer_bytes: 64 << 20,
            block_bytes: 16 * 1024,
            repetitions: 3,
        }
    }
}

impl CalibrationConfig {
    /// Tiny configuration for unit tests (fast, less accurate).
    pub fn quick() -> Self {
        Self {
            buffer_bytes: 4 << 20,
            block_bytes: 16 * 1024,
            repetitions: 1,
        }
    }
}

/// Run the micro-benchmark and fit the four constants.
pub fn calibrate(config: &CalibrationConfig) -> CostConstants {
    let n = (config.buffer_bytes / 8).max(1024);
    let values_per_block = (config.block_bytes / 8).max(1);
    let n_blocks = n / values_per_block;
    let mut buf: Vec<u64> = (0..n as u64).collect();

    // Pseudo-random dependent chain over the buffer (LCG permutation) so
    // random reads cannot be prefetched.
    let mut perm: Vec<u32> = (0..n as u32).collect();
    let mut state = 0x9e3779b97f4a7c15u64;
    for i in (1..n).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }

    let median = |mut v: Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        v[v.len() / 2]
    };

    // Sequential read: stream the whole buffer, charge per block.
    let sr = median(
        (0..config.repetitions)
            .map(|_| {
                let t = Instant::now();
                let mut acc = 0u64;
                for &v in &buf {
                    acc = acc.wrapping_add(v);
                }
                black_box(acc);
                t.elapsed().as_nanos() as f64 / n_blocks as f64
            })
            .collect(),
    );

    // Sequential write: stream writes, charge per block.
    let sw = median(
        (0..config.repetitions)
            .map(|r| {
                let t = Instant::now();
                for v in buf.iter_mut() {
                    *v = v.wrapping_add(r as u64 + 1);
                }
                black_box(&buf);
                t.elapsed().as_nanos() as f64 / n_blocks as f64
            })
            .collect(),
    );

    // Random read: dependent single-element loads at permuted positions.
    let probes = n.min(1 << 20);
    let rr = median(
        (0..config.repetitions)
            .map(|_| {
                let t = Instant::now();
                let mut idx = 0usize;
                let mut acc = 0u64;
                for _ in 0..probes {
                    idx = perm[idx] as usize;
                    acc = acc.wrapping_add(buf[idx]);
                }
                black_box(acc);
                t.elapsed().as_nanos() as f64 / probes as f64
            })
            .collect(),
    );

    // Random write: single-element stores at permuted positions.
    let rw = median(
        (0..config.repetitions)
            .map(|r| {
                let t = Instant::now();
                let mut idx = 0usize;
                for _ in 0..probes {
                    idx = perm[idx] as usize;
                    buf[idx] = buf[idx].wrapping_add(r as u64 + 1);
                }
                black_box(&buf);
                t.elapsed().as_nanos() as f64 / probes as f64
            })
            .collect(),
    );

    CostConstants::new(rr.max(0.1), rw.max(0.1), sr.max(0.01), sw.max(0.01))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_produces_positive_constants() {
        let c = calibrate(&CalibrationConfig::quick());
        assert!(c.rr > 0.0 && c.rw > 0.0 && c.sr > 0.0 && c.sw > 0.0);
    }

    #[test]
    fn random_access_slower_than_amortized_per_value() {
        // A dependent random load must cost more than the amortized
        // per-value sequential cost (the asymmetry the whole design rides
        // on).
        let cfg = CalibrationConfig::quick();
        let c = calibrate(&cfg);
        let values_per_block = cfg.block_bytes / 8;
        let seq_per_value = c.sr / values_per_block as f64;
        assert!(
            c.rr > seq_per_value,
            "rr={} should exceed per-value seq cost {}",
            c.rr,
            seq_per_value
        );
    }
}
