//! Resource governor: the serving-survival layer.
//!
//! The layout machinery assumes the engine stays alive long enough to
//! amortize optimization; this module supplies the four guarantees that
//! make that true under hostile load:
//!
//! 1. **Memory budget** — resident-byte accounting over hydrated chunk
//!    stores, with cold-chunk eviction driven by the persistence layer
//!    (clean, checkpointed chunks demote back to lazy slots re-pointed at
//!    their manifest records; see `casper-persist`).
//! 2. **Deadlines + cancellation** — queries carry an optional
//!    [`QueryCtx`] checked at chunk boundaries; expiry unwinds as a typed
//!    error without poisoning shared state.
//! 3. **Admission control** — a bounded slot gate with a short wait for
//!    reads (load shedding) and a longer wait for writes (backpressure);
//!    exhaustion surfaces as [`QueryError::Overloaded`].
//! 4. **Panic isolation** — `catch_unwind` around governed execution
//!    converts a panicking query into [`QueryError::Panicked`] carrying
//!    the implicated chunk so callers can quarantine it.
//!
//! See `docs/resource-governance.md` for the full escalation ladder.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use casper_obs::{CounterDef, GaugeDef, HistogramDef};
use casper_storage::StorageError;

// Governor telemetry: one relaxed load each while telemetry is disengaged.
// Catalogued in `docs/observability.md`; synced into `metrics_json` by the
// same `sync_obs_gauges` pass the durability gauges use.
static OBS_RESIDENT: GaugeDef = GaugeDef::new("casper_governor_resident_bytes");
static OBS_EVICTIONS: CounterDef = CounterDef::new("casper_governor_evictions_total");
static OBS_REHYDRATIONS: CounterDef = CounterDef::new("casper_governor_rehydrations_total");
static OBS_SHED: CounterDef = CounterDef::new("casper_governor_shed_total");
static OBS_DEADLINE: CounterDef = CounterDef::new("casper_governor_deadline_exceeded_total");
static OBS_CANCELLED: CounterDef = CounterDef::new("casper_governor_cancelled_total");
static OBS_PANICS: CounterDef = CounterDef::new("casper_governor_query_panics_total");
static OBS_WAIT: HistogramDef = HistogramDef::new("casper_governor_admit_wait_ns");

/// Configuration for the [`Governor`]. The zero values mean "off" for the
/// budget and the slot gate, so a default-constructed governor is inert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GovernorConfig {
    /// Resident-byte ceiling across hydrated chunk stores; `0` disables
    /// budget enforcement (no eviction passes run).
    pub memory_budget_bytes: usize,
    /// Concurrent governed-query slots; `0` disables admission control.
    pub query_slots: usize,
    /// How long a read waits for a slot before it is shed as
    /// [`QueryError::Overloaded`].
    pub admit_wait_ms: u64,
    /// How long a write waits for a slot (backpressure) before
    /// [`QueryError::Overloaded`]. Writes get the longer wait: shedding a
    /// read costs a retry, shedding a write costs client-visible work.
    pub write_wait_ms: u64,
    /// Governed queries between resident-byte budget checks. Accounting
    /// walks every chunk slot, so it is amortized rather than per-query.
    pub check_interval: u64,
    /// Consecutive over-budget eviction passes (budget still exceeded
    /// after evicting everything eligible) before the governor asks the
    /// durability layer to escalate to degraded read-only mode.
    pub over_budget_degrade_after: u32,
    /// Allow the governor to trigger a checkpoint when an eviction pass
    /// cannot reach budget because dirty chunks are ineligible — the
    /// checkpoint makes them clean and therefore evictable next pass.
    pub governor_checkpoint: bool,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        Self {
            memory_budget_bytes: 0,
            query_slots: 0,
            admit_wait_ms: 5,
            write_wait_ms: 50,
            check_interval: 16,
            over_budget_degrade_after: 3,
            governor_checkpoint: true,
        }
    }
}

/// Cooperative cancellation handle: cloneable, flip once with
/// [`CancelToken::cancel`], observed by every query carrying it in its
/// [`QueryCtx`] at the next chunk boundary.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation (idempotent).
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Per-query execution context: optional deadline and cancel token,
/// checked cooperatively at chunk boundaries in the scan loops. A default
/// context never interrupts.
#[derive(Debug, Clone, Default)]
pub struct QueryCtx {
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
}

impl QueryCtx {
    /// A context that never interrupts.
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// Expire at an absolute instant.
    pub fn with_deadline(mut self, at: Instant) -> Self {
        self.deadline = Some(at);
        self
    }

    /// Expire after a duration from now.
    pub fn with_timeout(self, after: Duration) -> Self {
        self.with_deadline(Instant::now() + after)
    }

    /// Attach a cancel token.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Chunk-boundary check: cancellation is reported before expiry so an
    /// explicit cancel is never masked as a timeout.
    pub fn check(&self) -> Result<(), StorageError> {
        if let Some(t) = &self.cancel {
            if t.is_cancelled() {
                return Err(StorageError::Cancelled);
            }
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Err(StorageError::DeadlineExceeded);
            }
        }
        Ok(())
    }
}

/// Errors surfaced by governed query execution, strictly separating
/// resource-governance outcomes from storage faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// An underlying storage fault (corruption, quarantine, capacity…).
    Storage(StorageError),
    /// The query's deadline expired at a chunk boundary.
    DeadlineExceeded,
    /// The query's cancel token was flipped.
    Cancelled,
    /// No query slot became available within the bounded wait.
    Overloaded {
        /// How long the query waited before being shed.
        waited_ms: u64,
    },
    /// The query panicked; execution was isolated and the serving loop
    /// stays alive.
    Panicked {
        /// The panic payload, stringified.
        detail: String,
        /// The chunk the query routed to, when identifiable (point-shaped
        /// operations) — callers quarantine it.
        chunk: Option<usize>,
    },
}

impl From<StorageError> for QueryError {
    fn from(e: StorageError) -> Self {
        match e {
            StorageError::DeadlineExceeded => QueryError::DeadlineExceeded,
            StorageError::Cancelled => QueryError::Cancelled,
            other => QueryError::Storage(other),
        }
    }
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Storage(e) => write!(f, "storage error: {e}"),
            QueryError::DeadlineExceeded => write!(f, "query deadline exceeded"),
            QueryError::Cancelled => write!(f, "query cancelled"),
            QueryError::Overloaded { waited_ms } => {
                write!(f, "overloaded: no query slot after {waited_ms}ms")
            }
            QueryError::Panicked { detail, chunk } => match chunk {
                Some(c) => write!(f, "query panicked in chunk {c}: {detail}"),
                None => write!(f, "query panicked: {detail}"),
            },
        }
    }
}

impl std::error::Error for QueryError {}

/// Point-in-time governor counters (all monotone except `resident_bytes`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GovernorStats {
    /// Governed queries admitted through the slot gate.
    pub admitted: u64,
    /// Queries shed with [`QueryError::Overloaded`].
    pub shed: u64,
    /// Queries that hit their deadline.
    pub deadline_exceeded: u64,
    /// Queries interrupted by a cancel token.
    pub cancelled: u64,
    /// Queries isolated after panicking.
    pub panics: u64,
    /// Chunks demoted to lazy slots by eviction passes.
    pub evictions: u64,
    /// Evicted chunks decoded back on demand.
    pub rehydrations: u64,
    /// Last accounted resident bytes across hydrated chunk stores.
    pub resident_bytes: u64,
}

/// The slot gate. `std::sync::Condvar` because the in-tree `parking_lot`
/// shim deliberately omits one; poisoning is swallowed via `into_inner`
/// (the protected state is a plain counter, valid under any interleaving).
struct Gate {
    available: Mutex<usize>,
    cv: Condvar,
}

impl Gate {
    /// Take one slot, waiting up to `wait`. Returns how long it waited,
    /// or `Err(waited)` when the wait expired empty-handed.
    fn acquire(&self, wait: Duration) -> Result<Duration, Duration> {
        let start = Instant::now();
        let mut avail = self
            .available
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if *avail > 0 {
                *avail -= 1;
                return Ok(start.elapsed());
            }
            let elapsed = start.elapsed();
            if elapsed >= wait {
                return Err(elapsed);
            }
            let (g, _timeout) = self
                .cv
                .wait_timeout(avail, wait - elapsed)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            avail = g;
        }
    }

    fn release(&self) {
        let mut avail = self
            .available
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *avail += 1;
        self.cv.notify_one();
    }
}

/// RAII query slot: released on drop, panic-safe by construction (the
/// governed execution path holds the permit across `catch_unwind`, so a
/// panicking query still returns its slot).
pub struct AdmitPermit<'a> {
    gate: Option<&'a Gate>,
}

impl std::fmt::Debug for AdmitPermit<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmitPermit")
            .field("gated", &self.gate.is_some())
            .finish()
    }
}

impl Drop for AdmitPermit<'_> {
    fn drop(&mut self) {
        if let Some(g) = self.gate {
            g.release();
        }
    }
}

/// The shared resource-governor handle threaded through `DurableTable`,
/// `Table` and `TableReader` (one per table, `Arc`-shared with readers).
pub struct Governor {
    cfg: GovernorConfig,
    gate: Gate,
    admitted: AtomicU64,
    shed: AtomicU64,
    deadline_exceeded: AtomicU64,
    cancelled: AtomicU64,
    panics: AtomicU64,
    evictions: AtomicU64,
    rehydrations: AtomicU64,
    resident_bytes: AtomicU64,
    /// Governed queries since the last budget check (amortization clock).
    since_check: AtomicU64,
    /// Consecutive eviction passes that ended still over budget.
    over_budget_streak: AtomicU64,
}

impl Governor {
    /// Build a governor; inert dimensions (zero budget / zero slots) cost
    /// one branch per query.
    pub fn new(cfg: GovernorConfig) -> Self {
        Self {
            gate: Gate {
                available: Mutex::new(cfg.query_slots),
                cv: Condvar::new(),
            },
            cfg,
            admitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            rehydrations: AtomicU64::new(0),
            resident_bytes: AtomicU64::new(0),
            since_check: AtomicU64::new(0),
            over_budget_streak: AtomicU64::new(0),
        }
    }

    /// The configuration the governor was built with.
    pub fn config(&self) -> &GovernorConfig {
        &self.cfg
    }

    /// Acquire a query slot (reads wait `admit_wait_ms`, writes
    /// `write_wait_ms`), or shed with [`QueryError::Overloaded`].
    pub fn admit(&self, is_write: bool) -> Result<AdmitPermit<'_>, QueryError> {
        if self.cfg.query_slots == 0 {
            self.admitted.fetch_add(1, Ordering::Relaxed);
            return Ok(AdmitPermit { gate: None });
        }
        let wait = Duration::from_millis(if is_write {
            self.cfg.write_wait_ms
        } else {
            self.cfg.admit_wait_ms
        });
        match self.gate.acquire(wait) {
            Ok(waited) => {
                self.admitted.fetch_add(1, Ordering::Relaxed);
                OBS_WAIT.record(waited.as_nanos() as u64);
                Ok(AdmitPermit {
                    gate: Some(&self.gate),
                })
            }
            Err(waited) => {
                self.shed.fetch_add(1, Ordering::Relaxed);
                OBS_SHED.inc();
                Err(QueryError::Overloaded {
                    waited_ms: waited.as_millis() as u64,
                })
            }
        }
    }

    /// Classify a governed outcome into the interrupt counters. Returns
    /// the error unchanged for ergonomic `map_err` use.
    pub fn note_outcome(&self, e: QueryError) -> QueryError {
        match &e {
            QueryError::DeadlineExceeded => {
                self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                OBS_DEADLINE.inc();
            }
            QueryError::Cancelled => {
                self.cancelled.fetch_add(1, Ordering::Relaxed);
                OBS_CANCELLED.inc();
            }
            QueryError::Panicked { .. } => {
                self.panics.fetch_add(1, Ordering::Relaxed);
                OBS_PANICS.inc();
            }
            QueryError::Storage(_) | QueryError::Overloaded { .. } => {}
        }
        e
    }

    /// Whether the budget clock says it is time to re-account resident
    /// bytes (every `check_interval` governed queries). Only meaningful
    /// when a budget is configured.
    pub fn budget_check_due(&self) -> bool {
        if self.cfg.memory_budget_bytes == 0 {
            return false;
        }
        let n = self.since_check.fetch_add(1, Ordering::Relaxed) + 1;
        if n >= self.cfg.check_interval.max(1) {
            self.since_check.store(0, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Record freshly accounted resident bytes.
    pub fn set_resident_bytes(&self, bytes: u64) {
        self.resident_bytes.store(bytes, Ordering::Relaxed);
        OBS_RESIDENT.set(bytes as f64);
    }

    /// Record `n` chunk evictions.
    pub fn note_evictions(&self, n: u64) {
        self.evictions.fetch_add(n, Ordering::Relaxed);
        OBS_EVICTIONS.add(n);
    }

    /// Record one on-demand rehydration of a previously evicted chunk
    /// (called from the wrapped chunk loader).
    pub fn note_rehydration(&self) {
        self.rehydrations.fetch_add(1, Ordering::Relaxed);
        OBS_REHYDRATIONS.inc();
    }

    /// Feed the outcome of one eviction pass into the escalation ladder:
    /// returns `true` when `over_budget_degrade_after` consecutive passes
    /// ended still over budget — the caller escalates to degraded
    /// read-only mode instead of riding into the OOM killer.
    pub fn over_budget_tick(&self, still_over: bool) -> bool {
        if !still_over {
            self.over_budget_streak.store(0, Ordering::Relaxed);
            return false;
        }
        let streak = self.over_budget_streak.fetch_add(1, Ordering::Relaxed) + 1;
        streak >= u64::from(self.cfg.over_budget_degrade_after.max(1))
    }

    /// Point-in-time stats snapshot.
    pub fn stats(&self) -> GovernorStats {
        GovernorStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            rehydrations: self.rehydrations.load(Ordering::Relaxed),
            resident_bytes: self.resident_bytes.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for Governor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Governor")
            .field("config", &self.cfg)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Stringify a panic payload (`&str` and `String` payloads verbatim,
/// anything else by type opacity).
pub(crate) fn panic_detail(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_governor_is_inert() {
        let g = Governor::new(GovernorConfig::default());
        for _ in 0..100 {
            let p = g.admit(false).expect("no gate configured");
            drop(p);
        }
        assert_eq!(g.stats().shed, 0);
        assert!(!g.budget_check_due(), "no budget, no checks");
    }

    #[test]
    fn gate_sheds_when_slots_exhausted() {
        let g = Governor::new(GovernorConfig {
            query_slots: 2,
            admit_wait_ms: 1,
            ..GovernorConfig::default()
        });
        let p1 = g.admit(false).expect("slot 1");
        let p2 = g.admit(false).expect("slot 2");
        let e = g.admit(false).expect_err("gate full");
        assert!(matches!(e, QueryError::Overloaded { .. }));
        drop(p1);
        let _p3 = g.admit(false).expect("released slot re-admits");
        drop(p2);
        assert_eq!(g.stats().shed, 1);
        assert_eq!(g.stats().admitted, 3);
    }

    #[test]
    fn permit_released_even_across_panic() {
        let g = Governor::new(GovernorConfig {
            query_slots: 1,
            admit_wait_ms: 1,
            ..GovernorConfig::default()
        });
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _p = g.admit(false).expect("slot");
            panic!("boom");
        }));
        assert!(r.is_err());
        g.admit(false).expect("slot returned by unwound permit");
    }

    #[test]
    fn ctx_deadline_and_cancel_surface_typed() {
        let ctx = QueryCtx::unbounded().with_timeout(Duration::from_secs(0));
        assert_eq!(ctx.check(), Err(StorageError::DeadlineExceeded));

        let token = CancelToken::new();
        let ctx = QueryCtx::unbounded()
            .with_timeout(Duration::from_secs(0))
            .with_cancel(token.clone());
        token.cancel();
        // Cancel wins over an expired deadline.
        assert_eq!(ctx.check(), Err(StorageError::Cancelled));

        assert_eq!(QueryCtx::unbounded().check(), Ok(()));
    }

    #[test]
    fn escalation_ladder_requires_consecutive_over_budget() {
        let g = Governor::new(GovernorConfig {
            memory_budget_bytes: 1,
            over_budget_degrade_after: 3,
            ..GovernorConfig::default()
        });
        assert!(!g.over_budget_tick(true));
        assert!(!g.over_budget_tick(true));
        g.over_budget_tick(false); // recovery resets the streak
        assert!(!g.over_budget_tick(true));
        assert!(!g.over_budget_tick(true));
        assert!(g.over_budget_tick(true), "third consecutive pass escalates");
    }

    #[test]
    fn budget_clock_fires_every_interval() {
        let g = Governor::new(GovernorConfig {
            memory_budget_bytes: 1024,
            check_interval: 4,
            ..GovernorConfig::default()
        });
        let fired: usize = (0..12).filter(|_| g.budget_check_due()).count();
        assert_eq!(fired, 3);
    }
}
