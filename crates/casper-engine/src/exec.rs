//! Chunk-parallel execution helpers (§6: "Casper naturally supports
//! multi-threaded execution since the column layouts create regions of the
//! data that can be processed in parallel without any interference").
//!
//! Built on `std::thread::scope`; `crossbeam` channels distribute uneven
//! work (the per-chunk solver calls of Fig. 11 vary with chunk content).

/// Run `f(index, &mut item)` over all items, using up to `threads` workers.
/// Items are split into contiguous stripes — ideal when work per item is
/// uniform (scans).
pub fn parallel_for_each_mut<T, F>(items: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let stripe = items.len().div_ceil(threads);
    std::thread::scope(|s| {
        for (t, chunk) in items.chunks_mut(stripe).enumerate() {
            let f = &f;
            s.spawn(move || {
                for (i, item) in chunk.iter_mut().enumerate() {
                    f(t * stripe + i, item);
                }
            });
        }
    });
}

/// Map `f(index, &item)` over all items with work stealing via a shared
/// atomic cursor — used when per-item work varies wildly (per-chunk layout
/// solving). Results come back in input order.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let slot_ptr = SendPtr(slots.as_mut_ptr());
    std::thread::scope(|s| {
        for _ in 0..threads {
            let f = &f;
            let cursor = &cursor;
            s.spawn(move || loop {
                let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(i, &items[i]);
                // SAFETY: each index is claimed exactly once via the atomic
                // cursor, so no two threads write the same slot, and the
                // scope guarantees the buffer outlives the workers.
                unsafe {
                    *slot_ptr.get().add(i) = Some(r);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("every slot filled by the cursor loop"))
        .collect()
}

/// Pointer wrapper asserting cross-thread transfer safety for the
/// disjoint-write pattern in [`parallel_map`]. The accessor keeps closures
/// capturing the wrapper itself (not the raw field), which is what carries
/// the `Send` assertion across the spawn boundary.
struct SendPtr<R>(*mut Option<R>);

// Manual impls: the derive would demand `R: Copy`, but the pointer itself
// is always trivially copyable.
impl<R> Clone for SendPtr<R> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<R> Copy for SendPtr<R> {}

impl<R> SendPtr<R> {
    #[inline]
    fn get(self) -> *mut Option<R> {
        self.0
    }
}
// SAFETY: see parallel_map — disjoint writes, scope-bounded lifetime.
unsafe impl<R: Send> Send for SendPtr<R> {}
unsafe impl<R: Send> Sync for SendPtr<R> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_each_mut_touches_every_item_once() {
        let mut items = vec![0u64; 103];
        parallel_for_each_mut(&mut items, 8, |i, x| *x = i as u64 + 1);
        for (i, &x) in items.iter().enumerate() {
            assert_eq!(x, i as u64 + 1);
        }
    }

    #[test]
    fn for_each_mut_single_thread_path() {
        let mut items = vec![1u32, 2, 3];
        parallel_for_each_mut(&mut items, 1, |_, x| *x *= 10);
        assert_eq!(items, vec![10, 20, 30]);
    }

    #[test]
    fn map_preserves_order() {
        let items: Vec<usize> = (0..500).collect();
        let out = parallel_map(&items, 7, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..500).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_handles_empty_and_tiny() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[42u32], 4, |_, &x| x + 1), vec![43]);
    }

    #[test]
    fn map_slot_writes_handle_droppable_results() {
        // Regression for the unsafe SendPtr slot writes: results that own
        // heap memory (and run Drop) must be written exactly once per slot
        // and dropped exactly once overall.
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        static LIVE: AtomicUsize = AtomicUsize::new(0);
        struct Tracked(String);
        impl Tracked {
            fn new(s: String) -> Self {
                LIVE.fetch_add(1, Ordering::SeqCst);
                Tracked(s)
            }
        }
        impl Drop for Tracked {
            fn drop(&mut self) {
                LIVE.fetch_sub(1, Ordering::SeqCst);
            }
        }

        let items: Vec<usize> = (0..257).collect();
        let shared = Arc::new(());
        let shared2 = Arc::clone(&shared);
        let out = parallel_map(&items, 8, move |_, &x| {
            let _keep = Arc::clone(&shared2);
            format!("item-{x}")
        });
        assert_eq!(out.len(), 257);
        assert_eq!(out[256], "item-256");
        drop(out);

        let tracked = parallel_map(&items, 8, |_, &x| Tracked::new(format!("v{x}")));
        assert_eq!(LIVE.load(Ordering::SeqCst), 257);
        for (i, t) in tracked.iter().enumerate() {
            assert_eq!(t.0, format!("v{i}"));
        }
        drop(tracked);
        assert_eq!(
            LIVE.load(Ordering::SeqCst),
            0,
            "each result dropped exactly once"
        );
        assert_eq!(Arc::strong_count(&shared), 1);
    }

    #[test]
    fn map_more_threads_than_items() {
        let items = vec![1u32, 2, 3];
        let out = parallel_map(&items, 64, |_, &x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn for_each_mut_more_threads_than_items_and_empty() {
        let mut items: Vec<u8> = Vec::new();
        parallel_for_each_mut(&mut items, 8, |_, _| unreachable!("no items"));
        let mut items = vec![5u64; 3];
        parallel_for_each_mut(&mut items, 100, |i, x| *x += i as u64);
        assert_eq!(items, vec![5, 6, 7]);
    }

    #[test]
    fn for_each_mut_striping_keeps_global_indices() {
        // Stripe boundaries must not reset the index: item i always sees i.
        for threads in [2usize, 3, 5, 7, 13] {
            let mut items = vec![usize::MAX; 101];
            parallel_for_each_mut(&mut items, threads, |i, x| *x = i);
            for (i, &x) in items.iter().enumerate() {
                assert_eq!(x, i, "threads={threads}");
            }
        }
    }

    #[test]
    fn map_with_uneven_work() {
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map(&items, 8, |_, &x| {
            // Simulate skewed work.
            let mut acc = 0u64;
            for i in 0..(x % 7) * 1000 {
                acc = acc.wrapping_add(i);
            }
            std::hint::black_box(acc);
            x
        });
        assert_eq!(out, items);
    }
}
