//! Online re-optimization (§1 "Positioning"): "For more dynamic
//! applications with unpredictable workloads ... our techniques can be
//! extended ... by periodically analyzing the workload online (similar to
//! how offline indexing techniques were repurposed for online indexing)
//! and reapplying the new format if the expected benefit crosses a desired
//! threshold."
//!
//! [`AdaptiveController`] implements exactly that loop (the A′ arrow of
//! Fig. 10): it records every executed query into a sliding window, and on
//! each `maybe_reoptimize` tick compares the modeled cost of the *current*
//! layout against the modeled optimum for the recent window. When the
//! predicted speedup exceeds the configured threshold, it re-partitions.

use crate::column::ChunkStore;
use crate::optimize::{capture_per_chunk, optimize_table, OptimizeOptions};
use crate::table::Table;
use casper_core::cost::{cost_of_segmentation, BlockTerms};
use casper_core::solver::dp;
use casper_core::Segmentation;
use casper_workload::HapQuery;
use std::collections::VecDeque;

/// Configuration of the adaptive loop.
#[derive(Debug, Clone)]
pub struct AdaptConfig {
    /// Sliding-window size in recorded queries.
    pub window: usize,
    /// Minimum modeled speedup (e.g. `1.2` = 20% better) required before
    /// re-partitioning — re-layout is not free, so small gains are skipped.
    pub benefit_threshold: f64,
    /// Solver/ghost options used when re-optimizing.
    pub optimize: OptimizeOptions,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        Self {
            window: 4096,
            benefit_threshold: 1.2,
            optimize: OptimizeOptions::default(),
        }
    }
}

/// Outcome of one adaptation check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdaptDecision {
    /// Not enough recorded queries yet.
    TooFewSamples,
    /// Current layout is within the threshold of the window-optimal one.
    KeepLayout {
        /// Modeled speedup a re-layout would give (≥ 1).
        predicted_speedup: f64,
    },
    /// The layout was re-optimized.
    Reoptimized {
        /// Modeled speedup that justified it.
        predicted_speedup: f64,
    },
}

/// Sliding-window workload monitor + re-optimization trigger.
#[derive(Debug)]
pub struct AdaptiveController {
    config: AdaptConfig,
    recent: VecDeque<HapQuery>,
    /// Number of re-layouts performed.
    pub reoptimizations: u64,
}

impl AdaptiveController {
    /// New controller.
    pub fn new(config: AdaptConfig) -> Self {
        Self {
            recent: VecDeque::with_capacity(config.window),
            config,
            reoptimizations: 0,
        }
    }

    /// Record one executed query into the window.
    pub fn observe(&mut self, q: &HapQuery) {
        if self.recent.len() == self.config.window {
            self.recent.pop_front();
        }
        self.recent.push_back(q.clone());
    }

    /// Number of queries currently in the window.
    pub fn window_len(&self) -> usize {
        self.recent.len()
    }

    /// Modeled speedup of re-optimizing `table` for the current window:
    /// `cost(current layout) / cost(optimal layout)`, both under the
    /// window's Frequency Model.
    pub fn predicted_speedup(&self, table: &Table) -> Option<f64> {
        if self.recent.len() < self.config.window / 4 {
            return None;
        }
        let sample: Vec<HapQuery> = self.recent.iter().cloned().collect();
        let fms = capture_per_chunk(table, &sample);
        let mut current_cost = 0.0f64;
        let mut best_cost = 0.0f64;
        for (slot, fm) in table.column().chunks().iter().zip(&fms) {
            // Capture above already required hydration; bail out rather
            // than decode here if a slot is somehow still pending.
            let store = slot.store_opt()?;
            let terms = BlockTerms::from_fm(fm, &self.config.optimize.constants);
            let current_seg = current_segmentation(store, fm.n_blocks());
            current_cost += cost_of_segmentation(&current_seg, &terms);
            best_cost += dp::solve(&terms, &self.config.optimize.constraints).cost;
        }
        if best_cost <= 0.0 {
            return Some(1.0);
        }
        Some((current_cost / best_cost).max(1.0))
    }

    /// Check the benefit threshold and re-partition when it is crossed.
    pub fn maybe_reoptimize(&mut self, table: &mut Table) -> AdaptDecision {
        let Some(speedup) = self.predicted_speedup(table) else {
            return AdaptDecision::TooFewSamples;
        };
        if speedup < self.config.benefit_threshold {
            return AdaptDecision::KeepLayout {
                predicted_speedup: speedup,
            };
        }
        let sample: Vec<HapQuery> = self.recent.iter().cloned().collect();
        optimize_table(table, &sample, &self.config.optimize);
        self.reoptimizations += 1;
        AdaptDecision::Reoptimized {
            predicted_speedup: speedup,
        }
    }
}

/// The block-granularity segmentation a chunk currently implements
/// (approximated by live sizes for partitioned stores; sorted stores are
/// block-granular by construction).
fn current_segmentation(store: &ChunkStore, n_blocks: usize) -> Segmentation {
    match store {
        ChunkStore::Partitioned(chunk) => {
            let vpb = chunk.layout().values_per_block().max(1);
            let mut ends = Vec::new();
            let mut cum_blocks = 0usize;
            for part in chunk.partitions() {
                let blocks = part.len.div_ceil(vpb).max(1);
                cum_blocks = (cum_blocks + blocks).min(n_blocks);
                if ends.last() != Some(&cum_blocks) {
                    ends.push(cum_blocks);
                }
            }
            if ends.last() != Some(&n_blocks) {
                if ends.last().is_some_and(|&e| e > n_blocks) {
                    // Rounding overflow: clamp the tail.
                    while ends.last().is_some_and(|&e| e >= n_blocks) {
                        ends.pop();
                    }
                }
                ends.push(n_blocks);
            }
            Segmentation::new(ends)
        }
        // Sorted designs read at block granularity.
        _ => Segmentation::equi(n_blocks, n_blocks),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modes::{EngineConfig, LayoutMode};
    use casper_workload::{HapSchema, KeyDist, Mix, MixKind, WorkloadGenerator};

    fn table() -> Table {
        let gen = WorkloadGenerator::new(HapSchema::narrow(), 8192, KeyDist::Uniform);
        let mut config = EngineConfig::small(LayoutMode::Casper);
        config.chunk_values = 4096;
        config.equi_partitions = 2; // deliberately bad initial layout
        Table::load_from_generator(&gen, config)
    }

    fn controller(threshold: f64) -> AdaptiveController {
        let mut cfg = AdaptConfig::default();
        cfg.window = 512;
        cfg.benefit_threshold = threshold;
        cfg.optimize.threads = 2;
        AdaptiveController::new(cfg)
    }

    #[test]
    fn too_few_samples_defers() {
        let mut table = table();
        let mut ctl = controller(1.1);
        assert_eq!(
            ctl.maybe_reoptimize(&mut table),
            AdaptDecision::TooFewSamples
        );
    }

    #[test]
    fn read_pressure_on_bad_layout_triggers_relayout() {
        let mut table = table();
        let mut ctl = controller(1.1);
        let mix = Mix::new(MixKind::ReadOnlySkewed, HapSchema::narrow(), 8192);
        for q in mix.generate(512, 3) {
            table.execute(&q).expect("execute");
            ctl.observe(&q);
        }
        match ctl.maybe_reoptimize(&mut table) {
            AdaptDecision::Reoptimized { predicted_speedup } => {
                assert!(predicted_speedup > 1.1, "speedup {predicted_speedup}");
            }
            other => panic!("expected a re-layout, got {other:?}"),
        }
        assert_eq!(ctl.reoptimizations, 1);
        // The second check finds the layout near-optimal and keeps it.
        match ctl.maybe_reoptimize(&mut table) {
            AdaptDecision::KeepLayout { predicted_speedup } => {
                assert!(
                    predicted_speedup < 1.1,
                    "residual speedup {predicted_speedup}"
                );
            }
            other => panic!("expected to keep the new layout, got {other:?}"),
        }
    }

    #[test]
    fn high_threshold_keeps_layout() {
        let mut table = table();
        let mut ctl = controller(1000.0);
        let mix = Mix::new(MixKind::ReadOnlySkewed, HapSchema::narrow(), 8192);
        for q in mix.generate(512, 4) {
            ctl.observe(&q);
        }
        assert!(matches!(
            ctl.maybe_reoptimize(&mut table),
            AdaptDecision::KeepLayout { .. }
        ));
        assert_eq!(ctl.reoptimizations, 0);
    }

    #[test]
    fn window_slides() {
        let mut ctl = controller(1.1);
        let mix = Mix::new(MixKind::ReadOnlyUniform, HapSchema::narrow(), 8192);
        for q in mix.generate(2000, 5) {
            ctl.observe(&q);
        }
        assert_eq!(ctl.window_len(), 512);
    }

    #[test]
    fn results_survive_adaptive_relayout() {
        let mut table = table();
        let mut ctl = controller(1.05);
        let mix = Mix::new(MixKind::HybridPointSkewed, HapSchema::narrow(), 8192);
        let queries = mix.generate(600, 6);
        let mut scalars = Vec::new();
        for (i, q) in queries.iter().enumerate() {
            scalars.push(table.execute(q).expect("execute").result.scalar());
            ctl.observe(q);
            if i % 200 == 199 {
                ctl.maybe_reoptimize(&mut table);
            }
        }
        // Replay on a never-adapted table must give identical results.
        let mut reference = {
            let gen = WorkloadGenerator::new(HapSchema::narrow(), 8192, KeyDist::Uniform);
            let mut config = EngineConfig::small(LayoutMode::EquiGV);
            config.chunk_values = 4096;
            Table::load_from_generator(&gen, config)
        };
        for (i, q) in queries.iter().enumerate() {
            let want = reference.execute(q).expect("reference").result.scalar();
            assert_eq!(scalars[i], want, "query {i} diverged under adaptation");
        }
    }
}
