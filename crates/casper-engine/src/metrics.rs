//! Latency and throughput recording for the experiment harness.
//!
//! The paper reports mean latency per query class, the 99.9th percentile
//! (Fig. 15's error bars), and overall workload throughput (ops/s). The
//! recorder keeps raw nanosecond samples per class and computes summaries
//! on demand.

/// Number of query classes tracked (Q1..Q6).
pub const CLASSES: usize = 6;

/// Raw latency samples per query class.
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    samples: [Vec<u64>; CLASSES],
}

/// Summary statistics of one class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub count: usize,
    /// Mean latency (ns).
    pub mean_ns: f64,
    /// Median (ns).
    pub p50_ns: u64,
    /// 99th percentile (ns).
    pub p99_ns: u64,
    /// 99.9th percentile (ns).
    pub p999_ns: u64,
    /// Maximum (ns).
    pub max_ns: u64,
}

impl LatencyRecorder {
    /// Fresh recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample for a query class (0-based, Q1..Q6).
    #[inline]
    pub fn record(&mut self, class: usize, nanos: u64) {
        self.samples[class].push(nanos);
    }

    /// Total recorded operations.
    pub fn total_ops(&self) -> usize {
        self.samples.iter().map(Vec::len).sum()
    }

    /// Summary for one class, if any samples exist.
    pub fn summary(&self, class: usize) -> Option<Summary> {
        let s = &self.samples[class];
        if s.is_empty() {
            return None;
        }
        let mut sorted = s.clone();
        sorted.sort_unstable();
        let pct = |p: f64| {
            let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
            sorted[idx]
        };
        Some(Summary {
            count: sorted.len(),
            mean_ns: sorted.iter().sum::<u64>() as f64 / sorted.len() as f64,
            p50_ns: pct(0.50),
            p99_ns: pct(0.99),
            p999_ns: pct(0.999),
            max_ns: *sorted.last().expect("non-empty"),
        })
    }

    /// Workload throughput in operations per second given the elapsed wall
    /// time of the run.
    pub fn throughput_ops_per_sec(&self, elapsed: std::time::Duration) -> f64 {
        if elapsed.is_zero() {
            return 0.0;
        }
        self.total_ops() as f64 / elapsed.as_secs_f64()
    }

    /// Merge another recorder (e.g. from a worker thread).
    pub fn merge(&mut self, other: &LatencyRecorder) {
        for (mine, theirs) in self.samples.iter_mut().zip(&other.samples) {
            mine.extend_from_slice(theirs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_distribution() {
        let mut r = LatencyRecorder::new();
        for v in 1..=1000u64 {
            r.record(0, v);
        }
        let s = r.summary(0).expect("has samples");
        assert_eq!(s.count, 1000);
        assert!((s.mean_ns - 500.5).abs() < 1e-9);
        assert_eq!(s.p50_ns, 500);
        assert_eq!(s.p99_ns, 990);
        assert_eq!(s.p999_ns, 999);
        assert_eq!(s.max_ns, 1000);
    }

    #[test]
    fn empty_class_has_no_summary() {
        let r = LatencyRecorder::new();
        assert!(r.summary(3).is_none());
    }

    #[test]
    fn throughput_computation() {
        let mut r = LatencyRecorder::new();
        for _ in 0..500 {
            r.record(1, 10);
        }
        let t = r.throughput_ops_per_sec(std::time::Duration::from_millis(250));
        assert!((t - 2000.0).abs() < 1e-6);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = LatencyRecorder::new();
        a.record(0, 1);
        let mut b = LatencyRecorder::new();
        b.record(0, 3);
        b.record(5, 7);
        a.merge(&b);
        assert_eq!(a.total_ops(), 3);
        assert_eq!(a.summary(0).unwrap().count, 2);
    }

    #[test]
    fn single_sample_percentiles() {
        let mut r = LatencyRecorder::new();
        r.record(2, 42);
        let s = r.summary(2).unwrap();
        assert_eq!(s.p50_ns, 42);
        assert_eq!(s.p999_ns, 42);
        assert_eq!(s.max_ns, 42);
    }
}
