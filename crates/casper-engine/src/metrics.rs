//! Latency and throughput recording for the experiment harness.
//!
//! The paper reports mean latency per query class, the 99.9th percentile
//! (Fig. 15's error bars), and overall workload throughput (ops/s). The
//! recorder keeps raw nanosecond samples per class and computes summaries
//! on demand.
//!
//! Percentiles use the same nearest-rank rule as the registry histograms
//! ([`casper_obs::quantile_rank`]) so a raw-sample summary and a
//! `casper-obs` snapshot of the same run can never disagree about which
//! rank a quantile selects. (The previous in-line `ceil(n*p)` was also
//! vulnerable to `n*p` landing a hair *above* an integer in floating
//! point, selecting the next rank up.)

use casper_obs::quantile_rank;

/// Number of query classes tracked (Q1..Q6).
pub const CLASSES: usize = 6;

/// Raw latency samples per query class.
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    samples: [Vec<u64>; CLASSES],
}

/// Summary statistics of one class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub count: usize,
    /// Mean latency (ns).
    pub mean_ns: f64,
    /// Median (ns).
    pub p50_ns: u64,
    /// 99th percentile (ns).
    pub p99_ns: u64,
    /// 99.9th percentile (ns).
    pub p999_ns: u64,
    /// Maximum (ns).
    pub max_ns: u64,
}

impl LatencyRecorder {
    /// Fresh recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample for a query class (0-based, Q1..Q6).
    #[inline]
    pub fn record(&mut self, class: usize, nanos: u64) {
        self.samples[class].push(nanos);
    }

    /// Total recorded operations.
    pub fn total_ops(&self) -> usize {
        self.samples.iter().map(Vec::len).sum()
    }

    /// Summary for one class, if any samples exist.
    pub fn summary(&self, class: usize) -> Option<Summary> {
        let s = &self.samples[class];
        if s.is_empty() {
            return None;
        }
        let mut sorted = s.clone();
        sorted.sort_unstable();
        let pct = |p: f64| sorted[quantile_rank(sorted.len(), p) - 1];
        Some(Summary {
            count: sorted.len(),
            mean_ns: sorted.iter().sum::<u64>() as f64 / sorted.len() as f64,
            p50_ns: pct(0.50),
            p99_ns: pct(0.99),
            p999_ns: pct(0.999),
            max_ns: *sorted.last().expect("non-empty"),
        })
    }

    /// Nearest-rank percentile of one class for an arbitrary quantile in
    /// `(0, 1]` (e.g. `0.95`), if any samples exist.
    pub fn percentile(&self, class: usize, q: f64) -> Option<u64> {
        let s = &self.samples[class];
        if s.is_empty() {
            return None;
        }
        let mut sorted = s.clone();
        sorted.sort_unstable();
        Some(sorted[quantile_rank(sorted.len(), q) - 1])
    }

    /// Workload throughput in operations per second given the elapsed wall
    /// time of the run.
    pub fn throughput_ops_per_sec(&self, elapsed: std::time::Duration) -> f64 {
        if elapsed.is_zero() {
            return 0.0;
        }
        self.total_ops() as f64 / elapsed.as_secs_f64()
    }

    /// Merge another recorder (e.g. from a worker thread).
    pub fn merge(&mut self, other: &LatencyRecorder) {
        for (mine, theirs) in self.samples.iter_mut().zip(&other.samples) {
            mine.extend_from_slice(theirs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_distribution() {
        let mut r = LatencyRecorder::new();
        for v in 1..=1000u64 {
            r.record(0, v);
        }
        let s = r.summary(0).expect("has samples");
        assert_eq!(s.count, 1000);
        assert!((s.mean_ns - 500.5).abs() < 1e-9);
        assert_eq!(s.p50_ns, 500);
        assert_eq!(s.p99_ns, 990);
        assert_eq!(s.p999_ns, 999);
        assert_eq!(s.max_ns, 1000);
    }

    #[test]
    fn empty_class_has_no_summary() {
        let r = LatencyRecorder::new();
        assert!(r.summary(3).is_none());
    }

    #[test]
    fn throughput_computation() {
        let mut r = LatencyRecorder::new();
        for _ in 0..500 {
            r.record(1, 10);
        }
        let t = r.throughput_ops_per_sec(std::time::Duration::from_millis(250));
        assert!((t - 2000.0).abs() < 1e-6);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = LatencyRecorder::new();
        a.record(0, 1);
        let mut b = LatencyRecorder::new();
        b.record(0, 3);
        b.record(5, 7);
        a.merge(&b);
        assert_eq!(a.total_ops(), 3);
        assert_eq!(a.summary(0).unwrap().count, 2);
    }

    #[test]
    fn single_sample_percentiles() {
        let mut r = LatencyRecorder::new();
        r.record(2, 42);
        let s = r.summary(2).unwrap();
        assert_eq!(s.p50_ns, 42);
        assert_eq!(s.p999_ns, 42);
        assert_eq!(s.max_ns, 42);
    }

    #[test]
    fn tiny_sample_counts_select_sane_ranks() {
        // With n < 100, p99/p999 must select the max, never run past the
        // end, and never fall to rank 0.
        for n in 1..=10u64 {
            let mut r = LatencyRecorder::new();
            for v in 1..=n {
                r.record(0, v);
            }
            let s = r.summary(0).unwrap();
            assert_eq!(s.p99_ns, n, "p99 of 1..={n}");
            assert_eq!(s.p999_ns, n, "p999 of 1..={n}");
        }
    }

    #[test]
    fn percentile_matches_summary_quantiles() {
        let mut r = LatencyRecorder::new();
        for v in 1..=1000u64 {
            r.record(4, v);
        }
        let s = r.summary(4).unwrap();
        assert_eq!(r.percentile(4, 0.50), Some(s.p50_ns));
        assert_eq!(r.percentile(4, 0.99), Some(s.p99_ns));
        assert_eq!(r.percentile(4, 0.999), Some(s.p999_ns));
        assert_eq!(r.percentile(4, 1.0), Some(s.max_ns));
        assert_eq!(r.percentile(3, 0.5), None);
    }

    #[test]
    fn quantile_rank_is_float_robust() {
        // A computed quantile can land a hair above its mathematical value
        // (0.1 + 0.2 = 0.30000000000000004): with 10 samples a bare
        // ceil(n*q) selects rank 4, but the nearest rank for q = 0.3 is 3.
        let q = 0.1 + 0.2;
        assert_eq!((10f64 * q).ceil() as usize, 4);
        assert_eq!(casper_obs::quantile_rank(10, q), 3);
        let mut r = LatencyRecorder::new();
        for v in 1..=10u64 {
            r.record(1, v);
        }
        assert_eq!(r.percentile(1, q), Some(3));
    }
}
