//! Applying the §6.2 storage-mode policy to rebuilt chunks.
//!
//! `casper-core::cost` decides *which* partitions are cold enough to
//! compress (from the Frequency Model); this module decides *how* — it
//! inspects each advised partition's actual data and picks the codec with
//! the smallest estimated encoded footprint (frame-of-reference for narrow
//! value spans, dictionary for low cardinality, RLE for heavy duplication),
//! staying plain when no codec wins. Write traffic reverts compressed
//! partitions transparently via the chunk's decode-on-write escape hatch,
//! so a mis-predicted partition costs one decode, never correctness.

use casper_core::cost::CompressionAdvice;
use casper_core::{FrequencyModel, Segmentation};
use casper_storage::compress::dictionary::CodeWidth;
use casper_storage::compress::for_delta::OffsetWidth;
use casper_storage::{ColumnValue, PartitionedChunk, StorageMode};

/// Outcome of one chunk's compression pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompressionReport {
    /// Partitions that received an encoded fragment.
    pub compressed_partitions: usize,
    /// Plain bytes of the live values in those partitions.
    pub plain_bytes: usize,
    /// Their total encoded bytes.
    pub encoded_bytes: usize,
}

impl CompressionReport {
    /// Compression ratio achieved over the compressed partitions (1.0 when
    /// nothing compressed).
    pub fn ratio(&self) -> f64 {
        if self.encoded_bytes == 0 {
            1.0
        } else {
            self.plain_bytes as f64 / self.encoded_bytes as f64
        }
    }
}

/// Estimated encoded bytes per codec for `values`; used to pick the
/// best-fitting mode without encoding three times.
fn estimate_modes<K: ColumnValue>(values: &[K]) -> [(StorageMode, usize); 3] {
    let n = values.len();
    let mut sorted: Vec<u64> = values.iter().map(|v| v.to_ordered_u64()).collect();
    sorted.sort_unstable();
    let span = sorted.last().map_or(0, |hi| hi - sorted[0]);
    let for_bytes = 8 + n * OffsetWidth::for_span(span).bytes();
    let mut distinct = 0usize;
    let mut runs = 0usize;
    let mut prev = None;
    for &v in &sorted {
        if prev != Some(v) {
            distinct += 1;
            runs += 1;
        }
        prev = Some(v);
    }
    let dict_bytes = distinct * K::WIDTH + n * CodeWidth::for_cardinality(distinct).bytes();
    let rle_bytes = runs * (K::WIDTH + 4);
    [
        (StorageMode::For, for_bytes),
        (StorageMode::Dict, dict_bytes),
        (StorageMode::Rle, rle_bytes),
    ]
}

/// Pick the storage mode with the smallest estimated footprint, or `Plain`
/// when no codec beats the fixed-width slots.
pub fn choose_mode<K: ColumnValue>(values: &[K]) -> StorageMode {
    if values.is_empty() {
        return StorageMode::Plain;
    }
    let plain = values.len() * K::WIDTH;
    estimate_modes(values)
        .into_iter()
        .filter(|&(_, bytes)| bytes < plain)
        .min_by_key(|&(_, bytes)| bytes)
        .map_or(StorageMode::Plain, |(mode, _)| mode)
}

/// Apply the cost layer's per-partition advice to a freshly rebuilt chunk:
/// advised-cold partitions are encoded under their best-fitting codec.
pub fn apply_compression_policy<K: ColumnValue>(
    chunk: &mut PartitionedChunk<K>,
    fm: &FrequencyModel,
    seg: &Segmentation,
    write_threshold: f64,
) -> CompressionReport {
    let advice = casper_core::cost::advise_compression(fm, seg, write_threshold);
    debug_assert_eq!(advice.len(), chunk.partition_count());
    let mut report = CompressionReport::default();
    for (p, advice) in advice.iter().enumerate().take(chunk.partition_count()) {
        if *advice != CompressionAdvice::Compress {
            continue;
        }
        let mode = choose_mode(chunk.partition_values(p));
        if mode == StorageMode::Plain {
            continue;
        }
        chunk.compress_partition(p, mode);
        if let Some(frag) = chunk.partition_fragment(p) {
            report.compressed_partitions += 1;
            report.plain_bytes += frag.len() * K::WIDTH;
            report.encoded_bytes += frag.encoded_bytes();
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use casper_storage::ghost::GhostPlan;
    use casper_storage::{BlockLayout, ChunkConfig, PartitionSpec};

    #[test]
    fn choose_mode_matches_data_shape() {
        // Narrow span → FoR wins (u8 offsets beat a dictionary that must
        // store the distinct values at full width).
        let narrow: Vec<u64> = (0..1000u64).map(|i| 5_000_000 + i % 200).collect();
        assert_eq!(choose_mode(&narrow), StorageMode::For);
        // Few distinct values scattered over a huge span, few runs → RLE
        // estimate (runs ≈ distinct) is smallest.
        let dup: Vec<u64> = (0..1000u64).map(|i| (i % 3) * (1 << 40)).collect();
        assert_eq!(choose_mode(&dup), StorageMode::Rle);
        // Moderate cardinality over a huge span with many runs: dictionary.
        let dict: Vec<u64> = (0..1000u64).map(|i| (i % 100) * (1 << 40)).collect();
        assert!(matches!(
            choose_mode(&dict),
            StorageMode::Dict | StorageMode::Rle
        ));
        // Incompressible: full-width span, all distinct.
        let wide: Vec<u64> = (0..1000u64).map(|i| i * (u64::MAX / 1001)).collect();
        assert_eq!(choose_mode(&wide), StorageMode::Plain);
        assert_eq!(choose_mode(&[] as &[u64]), StorageMode::Plain);
    }

    #[test]
    fn policy_compresses_cold_partitions_only() {
        let layout = BlockLayout {
            block_bytes: 16,
            value_width: 8,
        }; // 2 values per block
        let mut chunk = PartitionedChunk::build(
            (0..32u64).map(|i| 1000 + i).collect(),
            &PartitionSpec::from_block_sizes(&[4, 4, 4, 4]),
            layout,
            &GhostPlan::none(4),
            ChunkConfig::default(),
        )
        .expect("build");
        let seg = Segmentation::equi(16, 4);
        let mut fm = FrequencyModel::new(16);
        for b in 0..16 {
            fm.pq[b] = 10.0; // reads everywhere
        }
        fm.ins[2] = 100.0; // hot writes in partition 0
        let report = apply_compression_policy(&mut chunk, &fm, &seg, 0.05);
        assert_eq!(report.compressed_partitions, 3);
        assert_eq!(chunk.partition_mode(0), StorageMode::Plain);
        for p in 1..4 {
            assert_ne!(chunk.partition_mode(p), StorageMode::Plain, "partition {p}");
        }
        assert!(report.ratio() > 1.0);
        chunk.validate_invariants().expect("fragments consistent");
        // Reads stay bit-exact over the mixed-mode chunk.
        assert_eq!(chunk.range_count(1000, 1032).0, 32);
        assert_eq!(chunk.point_query(1010).positions.len(), 1);
    }
}
