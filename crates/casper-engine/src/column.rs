//! Chunked columns: the engine's horizontal unit of scale.
//!
//! "Each column is not a single contiguous column; instead, it is a
//! collection of column chunks, each one stored and managed separately"
//! (§7). Ordered modes range-partition the key domain across chunks (a
//! fence per chunk routes operations); the `NoOrder` baseline has no
//! ordering invariant, so its reads and deletes must broadcast to every
//! chunk — which is precisely why it loses on point-query workloads.
//!
//! # Shared-read concurrency
//!
//! Chunks are held as [`Arc<ChunkSlot>`]: a sealed chunk is an immutable
//! shared value that any number of reader threads can scan without
//! coordination. Writers keep `&mut` access through [`ChunkedColumn`] —
//! when a chunk's `Arc` is shared with a published snapshot the writer
//! clones it first (copy-on-write) and mutates the fresh copy, then
//! republishes. Readers obtain an [`Arc<ColumnSnapshot>`] from the
//! column's [`SnapshotCell`] (one pin per query) and run Q1/Q2/Q3/
//! `q3_sum_where` against it lock-free; reclamation is plain `Arc`
//! refcounting — the last pin of a superseded snapshot frees it. See
//! `docs/concurrency.md` for the full protocol.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use crate::exec::{parallel_for_each_mut, parallel_map};
use crate::governor::QueryCtx;
use crate::modes::{EngineConfig, LayoutMode};
use casper_core::Segmentation;
use casper_obs::{CounterDef, HistogramDef};
use casper_storage::ghost::GhostPlan;
use casper_storage::{
    BlockLayout, ChunkConfig, OpCost, PartitionSpec, PartitionedChunk, SortedColumn, SortedDelta,
    StorageError, UpdatePolicy,
};
use casper_workload::HapQuery;
use parking_lot::Mutex;

// Telemetry sites. Each is one relaxed atomic load while telemetry is
// disengaged (see `casper_obs`); metric names are the catalog entries in
// `docs/observability.md`.
static OBS_HYDRATIONS: CounterDef = CounterDef::new("casper_chunk_hydrations_total");
static OBS_COW_COPIES: CounterDef = CounterDef::new("casper_write_cow_chunk_copies_total");
static OBS_PUBLISHES: CounterDef = CounterDef::new("casper_snapshot_publishes_total");
static OBS_BATCH_OPS: HistogramDef = HistogramDef::new("casper_write_batch_ops");
static OBS_CHUNKS_ROUTED: CounterDef = CounterDef::new("casper_query_chunks_routed_total");
static OBS_CHUNKS_PRUNED: CounterDef = CounterDef::new("casper_query_chunks_pruned_total");

/// Record one read's chunk routing — `routed` chunks starting at `first`
/// were scanned out of `total` — and mark each scanned chunk in the FM
/// drift table (the observed side of the predicted-vs-observed gauges).
fn note_routed(first: usize, routed: usize, total: usize) {
    if let Some(reg) = casper_obs::registry() {
        OBS_CHUNKS_ROUTED.add(routed as u64);
        if routed < total {
            OBS_CHUNKS_PRUNED.add((total - routed) as u64);
        }
        for c in first..first + routed {
            reg.drift().note_observed(c, 1);
        }
    }
}

/// Storage behind one chunk, depending on the layout mode.
#[derive(Debug, Clone)]
pub enum ChunkStore {
    /// Range-partitioned chunk (NoOrder/Equi/EquiGV/Casper).
    Partitioned(PartitionedChunk<u64>),
    /// Fully sorted chunk (Sorted).
    Sorted(SortedColumn<u64>),
    /// Sorted chunk with a delta buffer (StateOfArt).
    Delta(SortedDelta<u64>),
}

impl ChunkStore {
    /// Live row count.
    pub fn len(&self) -> usize {
        match self {
            ChunkStore::Partitioned(c) => c.live_len(),
            ChunkStore::Sorted(c) => c.len(),
            ChunkStore::Delta(c) => c.len_estimate(),
        }
    }

    /// Whether the chunk holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Heap bytes this decoded store keeps resident (slots, fragments,
    /// indexes, payloads) — the governor's budget unit.
    pub fn resident_bytes(&self) -> usize {
        match self {
            ChunkStore::Partitioned(c) => c.resident_bytes(),
            ChunkStore::Sorted(c) => c.resident_bytes(),
            ChunkStore::Delta(c) => c.resident_bytes(),
        }
    }
}

/// Global coarse access clock for LRU victim selection: each hydrated-store
/// access stamps its slot with the next tick. Monotone and cross-column —
/// comparing stamps orders accesses table-wide.
static ACCESS_CLOCK: AtomicU64 = AtomicU64::new(1);

/// Deferred chunk loader: decodes (and checksum-verifies) the store from
/// its persisted segment on first touch.
pub type ChunkLoader = Box<dyn FnOnce() -> Result<ChunkStore, StorageError> + Send + Sync>;

/// One chunk position of a column: either an already-decoded [`ChunkStore`]
/// or a pending loader from a persisted snapshot segment (mmap restore),
/// which hydrates in place on first access.
///
/// Hydration works through `&self` — a `OnceLock` fill — so every holder of
/// the same `Arc<ChunkSlot>` (the writer column *and* any published
/// [`ColumnSnapshot`]) observes the decoded store the moment it lands, with
/// no republish needed. Only the live row count is known eagerly; `len`
/// serves it without forcing the decode.
pub struct ChunkSlot {
    store: OnceLock<ChunkStore>,
    lazy: Mutex<Option<ChunkLoader>>,
    live: usize,
    /// Last [`ACCESS_CLOCK`] tick that touched this slot's store — the
    /// governor's LRU signal. Relaxed: an approximate ordering is all
    /// victim selection needs.
    stamp: AtomicU64,
}

impl ChunkSlot {
    /// Wrap an already-decoded store.
    pub fn new(store: ChunkStore) -> Self {
        let live = store.len();
        let cell = OnceLock::new();
        let _ = cell.set(store);
        Self {
            store: cell,
            lazy: Mutex::new(None),
            live,
            stamp: AtomicU64::new(ACCESS_CLOCK.fetch_add(1, Ordering::Relaxed)),
        }
    }

    /// Wrap a deferred loader; `live` is the store's live row count
    /// (served by [`ChunkSlot::len`] before hydration).
    pub fn new_lazy(live: usize, loader: ChunkLoader) -> Self {
        Self {
            store: OnceLock::new(),
            lazy: Mutex::new(Some(loader)),
            live,
            stamp: AtomicU64::new(0),
        }
    }

    /// The decoded store, hydrating from the persisted segment on first
    /// call. Checksum/decoding damage surfaces as [`StorageError::Corrupt`];
    /// once a load fails the slot stays failed (the loader is consumed) and
    /// every later access reports the re-entry.
    pub fn get(&self) -> Result<&ChunkStore, StorageError> {
        if let Some(s) = self.store.get() {
            self.stamp.store(
                ACCESS_CLOCK.fetch_add(1, Ordering::Relaxed),
                Ordering::Relaxed,
            );
            return Ok(s);
        }
        let mut lazy = self.lazy.lock();
        if let Some(s) = self.store.get() {
            return Ok(s);
        }
        let loader = lazy.take().ok_or_else(|| StorageError::Corrupt {
            reason: "hydration re-entered after a failed load".to_string(),
        })?;
        let store = loader()?;
        OBS_HYDRATIONS.inc();
        if store.len() != self.live {
            return Err(StorageError::Corrupt {
                reason: format!(
                    "segment decodes to {} live rows but the manifest says {}",
                    store.len(),
                    self.live
                ),
            });
        }
        self.stamp.store(
            ACCESS_CLOCK.fetch_add(1, Ordering::Relaxed),
            Ordering::Relaxed,
        );
        Ok(self.store.get_or_init(move || store))
    }

    /// The decoded store if this slot is already hydrated.
    pub fn store_opt(&self) -> Option<&ChunkStore> {
        self.store.get()
    }

    /// The [`ACCESS_CLOCK`] tick of the last store access (0 = never
    /// touched since restore/eviction). Lower = colder.
    pub fn last_access(&self) -> u64 {
        self.stamp.load(Ordering::Relaxed)
    }

    /// Resident heap bytes of the decoded store; 0 while unhydrated (a
    /// pending loader keeps no decoded data alive).
    pub fn resident_bytes(&self) -> usize {
        self.store.get().map_or(0, ChunkStore::resident_bytes)
    }

    /// Whether the store has been decoded from its segment.
    pub fn is_hydrated(&self) -> bool {
        self.store.get().is_some()
    }

    /// Live row count (known without hydration).
    pub fn len(&self) -> usize {
        self.store.get().map_or(self.live, ChunkStore::len)
    }

    /// Whether the chunk holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Mutable store access, hydrating first. Requires unique ownership of
    /// the slot (the column copy-on-writes shared slots before calling).
    fn store_mut(&mut self) -> Result<&mut ChunkStore, StorageError> {
        self.get()?;
        self.store.get_mut().ok_or_else(|| StorageError::Corrupt {
            reason: "hydrated slot lost its store".to_string(),
        })
    }
}

impl std::fmt::Debug for ChunkSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunkSlot")
            .field("live", &self.len())
            .field("hydrated", &self.is_hydrated())
            .finish()
    }
}

/// An immutable, shareable view of one column at a publish point: the chunk
/// `Arc`s plus the routing fences frozen at publish time. Readers scan it
/// lock-free on any number of threads; a writer that has published a newer
/// snapshot never mutates these chunks (copy-on-write), so the data a pin
/// observes is stable for the pin's lifetime.
#[derive(Debug, Clone)]
pub struct ColumnSnapshot {
    chunks: Vec<Arc<ChunkSlot>>,
    fences: Option<Vec<u64>>,
    config: EngineConfig,
    payload_width: usize,
}

impl ColumnSnapshot {
    fn view(&self) -> View<'_> {
        View {
            chunks: &self.chunks,
            fences: self.fences.as_deref(),
            config: &self.config,
            ctx: None,
        }
    }

    fn view_ctx<'a>(&'a self, ctx: &'a QueryCtx) -> View<'a> {
        View {
            ctx: Some(ctx),
            ..self.view()
        }
    }

    /// Total live rows at the publish point.
    pub fn len(&self) -> usize {
        self.chunks.iter().map(|s| s.len()).sum()
    }

    /// Whether the snapshot holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Payload column count.
    pub fn payload_width(&self) -> usize {
        self.payload_width
    }

    /// Q1 against the snapshot (see [`ChunkedColumn::q1_point`]).
    pub fn q1_point(
        &self,
        v: u64,
        cols: &[usize],
    ) -> Result<(Vec<Vec<u32>>, OpCost), StorageError> {
        self.view().q1_point(v, cols)
    }

    /// Q2 against the snapshot (see [`ChunkedColumn::q2_count`]).
    pub fn q2_count(&self, lo: u64, hi: u64) -> Result<(u64, OpCost), StorageError> {
        self.view().q2_count(lo, hi)
    }

    /// Q3 against the snapshot (see [`ChunkedColumn::q3_sum`]).
    pub fn q3_sum(&self, lo: u64, hi: u64, cols: &[usize]) -> Result<(u64, OpCost), StorageError> {
        self.view().q3_sum(lo, hi, cols)
    }

    /// Multi-column predicated sum against the snapshot (see
    /// [`ChunkedColumn::q3_sum_where`]).
    pub fn q3_sum_where(
        &self,
        lo: u64,
        hi: u64,
        sum_cols: &[usize],
        pred_col: usize,
        pred_lo: u32,
        pred_hi: u32,
    ) -> Result<(u64, OpCost), StorageError> {
        self.view()
            .q3_sum_where(lo, hi, sum_cols, pred_col, pred_lo, pred_hi)
    }

    /// Q1 with a deadline/cancel context checked at chunk boundaries.
    pub fn q1_point_ctx(
        &self,
        v: u64,
        cols: &[usize],
        ctx: &QueryCtx,
    ) -> Result<(Vec<Vec<u32>>, OpCost), StorageError> {
        self.view_ctx(ctx).q1_point(v, cols)
    }

    /// Q2 with a deadline/cancel context checked at chunk boundaries.
    pub fn q2_count_ctx(
        &self,
        lo: u64,
        hi: u64,
        ctx: &QueryCtx,
    ) -> Result<(u64, OpCost), StorageError> {
        self.view_ctx(ctx).q2_count(lo, hi)
    }

    /// Q3 with a deadline/cancel context checked at chunk boundaries.
    pub fn q3_sum_ctx(
        &self,
        lo: u64,
        hi: u64,
        cols: &[usize],
        ctx: &QueryCtx,
    ) -> Result<(u64, OpCost), StorageError> {
        self.view_ctx(ctx).q3_sum(lo, hi, cols)
    }

    /// Predicated sum with a deadline/cancel context checked at chunk
    /// boundaries.
    pub fn q3_sum_where_ctx(
        &self,
        lo: u64,
        hi: u64,
        sum_cols: &[usize],
        pred_col: usize,
        pred_lo: u32,
        pred_hi: u32,
        ctx: &QueryCtx,
    ) -> Result<(u64, OpCost), StorageError> {
        self.view_ctx(ctx)
            .q3_sum_where(lo, hi, sum_cols, pred_col, pred_lo, pred_hi)
    }
}

/// The publication point readers subscribe to: holds the current
/// [`ColumnSnapshot`] behind a mutex that is only ever held for a pointer
/// clone (pin) or a pointer store (publish) — an arc-swap built from std
/// parts, chosen over an epoch scheme because `Arc` refcounts already give
/// deferred reclamation without a third-party crate (see
/// `docs/concurrency.md`).
pub struct SnapshotCell {
    current: Mutex<Arc<ColumnSnapshot>>,
    version: AtomicU64,
}

impl SnapshotCell {
    fn new(snapshot: ColumnSnapshot) -> Self {
        Self {
            current: Mutex::new(Arc::new(snapshot)),
            version: AtomicU64::new(0),
        }
    }

    /// Pin the current snapshot: one mutex-protected pointer clone, after
    /// which the reader runs entirely lock-free against immutable chunks.
    pub fn pin(&self) -> Arc<ColumnSnapshot> {
        self.current.lock().clone()
    }

    /// Monotone publish counter (one tick per published write batch).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    fn publish(&self, snapshot: ColumnSnapshot) {
        *self.current.lock() = Arc::new(snapshot);
        self.version.fetch_add(1, Ordering::Release);
        OBS_PUBLISHES.inc();
    }
}

impl std::fmt::Debug for SnapshotCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotCell")
            .field("version", &self.version())
            .finish()
    }
}

/// A key column split into range chunks, with slot-aligned payload columns
/// inside each chunk.
#[derive(Debug)]
pub struct ChunkedColumn {
    chunks: Vec<Arc<ChunkSlot>>,
    /// Inclusive upper key fence per chunk (ordered modes); `None` for
    /// `NoOrder`, which broadcasts.
    fences: Option<Vec<u64>>,
    config: EngineConfig,
    payload_width: usize,
    /// Per-chunk monotone modification counters: every write, ripple,
    /// compression-mode change or optimizer re-layout that touches a chunk
    /// bumps its counter, so a persistence layer can diff two counter
    /// snapshots and enumerate exactly the chunks dirtied in between
    /// (incremental checkpointing). Hydration does **not** bump — decoding
    /// a persisted chunk changes nothing logically.
    versions: Vec<u64>,
    /// Engaged lazily by the first [`ChunkedColumn::snapshot_cell`] call;
    /// until then every chunk `Arc` is unique and writes mutate in place
    /// with zero copy-on-write cost (the serial-execution fast path).
    snapshots: OnceLock<Arc<SnapshotCell>>,
}

impl ChunkedColumn {
    /// Load a column: keys plus column-major payloads (each payload column
    /// exactly as long as `keys`).
    pub fn load(mut keys: Vec<u64>, mut payload_cols: Vec<Vec<u32>>, config: EngineConfig) -> Self {
        assert!(!keys.is_empty(), "cannot load an empty column");
        for c in &payload_cols {
            assert_eq!(c.len(), keys.len(), "payload column length mismatch");
        }
        let payload_width = payload_cols.len();
        let ordered = config.mode != LayoutMode::NoOrder;
        if ordered {
            // Global co-sort so chunks partition the key domain.
            let mut perm: Vec<u32> = (0..keys.len() as u32).collect();
            perm.sort_by_key(|&i| keys[i as usize]);
            keys = perm.iter().map(|&i| keys[i as usize]).collect();
            for col in &mut payload_cols {
                *col = perm.iter().map(|&i| col[i as usize]).collect();
            }
        }
        let mut chunks = Vec::new();
        let mut fences = Vec::new();
        let n = keys.len();
        let per = config.chunk_values.max(1);
        let mut start = 0usize;
        while start < n {
            let end = (start + per).min(n);
            let chunk_keys = keys[start..end].to_vec();
            let chunk_payloads: Vec<Vec<u32>> = payload_cols
                .iter()
                .map(|c| c[start..end].to_vec())
                .collect();
            fences.push(chunk_keys.last().copied().expect("non-empty chunk"));
            chunks.push(Arc::new(ChunkSlot::new(build_chunk(
                chunk_keys,
                chunk_payloads,
                &config,
            ))));
            start = end;
        }
        let versions = vec![0; chunks.len()];
        Self {
            chunks,
            fences: ordered.then_some(fences),
            config,
            payload_width,
            versions,
            snapshots: OnceLock::new(),
        }
    }

    /// Reassemble a column from restored chunk slots (snapshot recovery).
    /// The chunks arrive exactly as they were persisted — already
    /// partitioned, compressed and ghost-buffered — so no re-sort,
    /// re-partition or re-encode happens here.
    ///
    /// # Panics
    /// Panics when `chunks` is empty or `fences` disagrees with the chunk
    /// count (persist callers validate first and surface typed errors).
    pub fn from_restored(
        chunks: Vec<ChunkSlot>,
        fences: Option<Vec<u64>>,
        config: EngineConfig,
        payload_width: usize,
    ) -> Self {
        assert!(!chunks.is_empty(), "a column needs at least one chunk");
        if let Some(f) = &fences {
            assert_eq!(f.len(), chunks.len(), "one fence per chunk");
        }
        let versions = vec![0; chunks.len()];
        Self {
            chunks: chunks.into_iter().map(Arc::new).collect(),
            fences,
            config,
            payload_width,
            versions,
            snapshots: OnceLock::new(),
        }
    }

    // ------------------------------------------------------------------
    // Snapshot publication
    // ------------------------------------------------------------------

    /// The column's publication cell, engaging snapshot mode on first call
    /// (from then on every write republishes). Readers clone the returned
    /// `Arc` and [`SnapshotCell::pin`] per query.
    pub fn snapshot_cell(&self) -> Arc<SnapshotCell> {
        self.snapshots
            .get_or_init(|| Arc::new(SnapshotCell::new(self.make_snapshot())))
            .clone()
    }

    fn make_snapshot(&self) -> ColumnSnapshot {
        ColumnSnapshot {
            chunks: self.chunks.clone(),
            fences: self.fences.clone(),
            config: self.config,
            payload_width: self.payload_width,
        }
    }

    /// Publish the current state to readers. A no-op until
    /// [`ChunkedColumn::snapshot_cell`] has engaged snapshot mode; after
    /// that it is one `Vec` of `Arc` clones plus a pointer store.
    pub(crate) fn publish(&self) {
        if let Some(cell) = self.snapshots.get() {
            cell.publish(self.make_snapshot());
        }
    }

    // ------------------------------------------------------------------
    // Dirty tracking + lazy hydration
    // ------------------------------------------------------------------

    /// Per-chunk modification counters (parallel to [`Self::chunks`]).
    /// A persistence layer snapshots this at checkpoint time; a chunk is
    /// dirty iff its counter differs from the snapshot.
    pub fn versions(&self) -> &[u64] {
        &self.versions
    }

    /// Record a modification of chunk `i` (write, ripple, storage-mode
    /// change or re-layout).
    #[inline]
    fn touch(&mut self, i: usize) {
        self.versions[i] += 1;
    }

    /// Number of chunks still awaiting hydration from persisted segments.
    pub fn unloaded_count(&self) -> usize {
        self.chunks.iter().filter(|c| !c.is_hydrated()).count()
    }

    /// Resident heap bytes across all hydrated chunk stores (the
    /// governor's budget measure). A cheap walk: unhydrated slots report
    /// zero without decoding anything.
    pub fn resident_bytes(&self) -> usize {
        self.chunks.iter().map(|c| c.resident_bytes()).sum()
    }

    /// Demote hydrated chunk `i` back to an unloaded lazy slot re-pointed
    /// at its persisted record (`loader` decodes it on next touch).
    /// Returns `false` (consuming nothing) when the slot is not hydrated.
    ///
    /// The old `Arc<ChunkSlot>` is only *unlinked*, not freed: published
    /// snapshots and in-flight pins keep it alive until their refcounts
    /// drop — which is exactly what keeps concurrent readers correct while
    /// the governor evicts underneath them. The chunk's version is **not**
    /// bumped (its logical content is unchanged; eviction must not dirty
    /// it for the incremental checkpointer). Callers are responsible for
    /// eligibility (clean + persisted + not quarantined) and must
    /// [`ChunkedColumn::republish`] once per eviction pass so new pins
    /// stop holding the hydrated copies.
    pub fn evict_chunk(&mut self, i: usize, loader: ChunkLoader) -> bool {
        if !self.chunks[i].is_hydrated() {
            return false;
        }
        let live = self.chunks[i].len();
        self.chunks[i] = Arc::new(ChunkSlot::new_lazy(live, loader));
        true
    }

    /// Replace chunk `i`'s slot with a fresh lazy slot of `live` rows
    /// backed by `loader`, regardless of the old slot's hydration state.
    /// This is the panic-containment primitive: after a query panics in a
    /// clean, persisted chunk, the suspect in-memory state (or a poisoned
    /// lazy slot) is discarded and the chunk re-points at its last durable
    /// record. Same version / publish contract as
    /// [`ChunkedColumn::evict_chunk`].
    pub fn repoint_chunk(&mut self, i: usize, live: usize, loader: ChunkLoader) {
        self.chunks[i] = Arc::new(ChunkSlot::new_lazy(live, loader));
    }

    /// Publish the current chunk set to readers (used after an eviction
    /// pass; writes publish on their own). No-op until snapshot mode is
    /// engaged.
    pub fn republish(&self) {
        self.publish();
    }

    /// Route a key to its owning chunk (`None` = broadcast column).
    /// Exposed for panic attribution: a governed query that panics on a
    /// point-shaped operation reports the chunk it routed to.
    pub fn route_for(&self, key: u64) -> Option<usize> {
        self.route(key)
    }

    /// Decode chunk `i` from its segment if it has not hydrated yet.
    /// Checksum/decoding damage surfaces as [`StorageError::Corrupt`];
    /// hydration does not mark the chunk dirty.
    pub fn hydrate_chunk(&self, i: usize) -> Result<(), StorageError> {
        self.chunks[i].get().map(|_| ())
    }

    /// Hydrate every remaining unloaded chunk.
    pub fn hydrate_all(&self) -> Result<(), StorageError> {
        for i in 0..self.chunks.len() {
            self.hydrate_chunk(i)?;
        }
        Ok(())
    }

    /// Hydrate exactly the chunks `q` routes to: the owning chunk for
    /// point-shaped operations, the overlapping chunks for ranges, every
    /// chunk when the column broadcasts (`NoOrder`). Called by
    /// [`crate::table::Table::execute`] before dispatch, which is what
    /// makes restore-time laziness invisible to query code.
    pub fn hydrate_for_query(&self, q: &HapQuery) -> Result<(), StorageError> {
        if self.chunks.iter().all(|c| c.is_hydrated()) {
            return Ok(());
        }
        use casper_core::Op;
        match q.key_op() {
            Op::Point(v) | Op::Insert(v) | Op::Delete(v) => self.hydrate_key(v),
            Op::Range(lo, hi) => {
                for c in self.view().chunk_range_for(lo, hi) {
                    self.hydrate_chunk(c)?;
                }
                Ok(())
            }
            Op::Update(old, new) => {
                self.hydrate_key(old)?;
                self.hydrate_key(new)
            }
        }
    }

    /// Hydrate the chunk owning `v` (all chunks for broadcast columns).
    fn hydrate_key(&self, v: u64) -> Result<(), StorageError> {
        match self.route(v) {
            Some(c) => self.hydrate_chunk(c),
            None => self.hydrate_all(),
        }
    }

    /// Inclusive per-chunk upper key fences (`None` for `NoOrder`, which
    /// broadcasts). Exposed for persistence.
    pub fn fences(&self) -> Option<&[u64]> {
        self.fences.as_deref()
    }

    /// Total live rows.
    pub fn len(&self) -> usize {
        self.chunks.iter().map(|s| s.len()).sum()
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Payload column count.
    pub fn payload_width(&self) -> usize {
        self.payload_width
    }

    /// Immutable chunk access (optimizer, persistence, tests). Slots
    /// dereference to their store via [`ChunkSlot::get`] (hydrating) or
    /// [`ChunkSlot::store_opt`].
    pub fn chunks(&self) -> &[Arc<ChunkSlot>] {
        &self.chunks
    }

    /// Make chunk `i` uniquely owned and hydrated: when its `Arc` is shared
    /// with a published snapshot, clone the store into a fresh slot
    /// (copy-on-write) so the snapshot's copy stays frozen.
    fn ensure_unique(&mut self, i: usize) -> Result<(), StorageError> {
        self.chunks[i].get()?;
        if Arc::get_mut(&mut self.chunks[i]).is_none() {
            let cloned = self.chunks[i].get()?.clone();
            self.chunks[i] = Arc::new(ChunkSlot::new(cloned));
            OBS_COW_COPIES.inc();
        }
        Ok(())
    }

    /// Mutable access to chunk `i`'s store, hydrating and copy-on-writing
    /// as needed. Does **not** bump the version — callers [`Self::touch`]
    /// on logical modification.
    fn chunk_mut(&mut self, i: usize) -> Result<&mut ChunkStore, StorageError> {
        self.ensure_unique(i)?;
        let slot = Arc::get_mut(&mut self.chunks[i]).ok_or_else(|| StorageError::Corrupt {
            reason: "chunk slot still shared after copy-on-write".to_string(),
        })?;
        slot.store_mut()
    }

    /// Mutable access to every chunk store (optimizer rebuild).
    /// Conservatively marks every chunk dirty: the optimizer rewrites
    /// stores through the returned borrows, which give no way to observe
    /// which ones it touched.
    pub(crate) fn chunks_mut(&mut self) -> Result<Vec<&mut ChunkStore>, StorageError> {
        for i in 0..self.chunks.len() {
            self.ensure_unique(i)?;
        }
        for v in &mut self.versions {
            *v += 1;
        }
        let mut out = Vec::with_capacity(self.chunks.len());
        for slot in &mut self.chunks {
            let slot = Arc::get_mut(slot).ok_or_else(|| StorageError::Corrupt {
                reason: "chunk slot still shared after copy-on-write".to_string(),
            })?;
            out.push(slot.store_mut()?);
        }
        Ok(out)
    }

    /// Best-effort ghost prefetch for `key`'s owning chunk (§6.1 decoupled
    /// rippling): routes the key, skips unhydrated or non-partitioned
    /// stores, and dirties only the chunk it actually touches — a
    /// transactional insert must not mark the whole table dirty for the
    /// incremental checkpointer.
    pub(crate) fn prefetch_ghosts_for_key(&mut self, key: u64, count: usize) {
        let target = match self.route(key) {
            // Ordered column: prefetch only into the owning chunk, and only
            // if it is a hydrated partitioned store — planting ghosts for
            // an out-of-range key in some other chunk would dirty (and
            // re-checkpoint) a chunk that logically did not change.
            Some(routed) => matches!(
                self.chunks.get(routed).and_then(|s| s.store_opt()),
                Some(ChunkStore::Partitioned(_))
            )
            .then_some(routed),
            // NoOrder broadcasts: fall back to the first partitioned
            // chunk, matching the historical best-effort behavior.
            None => self
                .chunks
                .iter()
                .position(|c| matches!(c.store_opt(), Some(ChunkStore::Partitioned(_)))),
        };
        if let Some(i) = target {
            if let Ok(ChunkStore::Partitioned(chunk)) = self.chunk_mut(i) {
                // Prefetch may move slots and decompress the target
                // partition, so the chunk is physically dirty.
                chunk.prefetch_ghosts(key, count);
                self.touch(i);
                self.publish();
            }
        }
    }

    /// Route a key to its owning chunk; `None` means broadcast.
    fn route(&self, key: u64) -> Option<usize> {
        self.fences
            .as_ref()
            .map(|f| f.partition_point(|&b| b < key).min(f.len() - 1))
    }

    fn maybe_raise_fence(&mut self, chunk: usize, key: u64) {
        if let Some(f) = self.fences.as_mut() {
            if key > f[chunk] {
                f[chunk] = key;
            }
        }
    }

    fn view(&self) -> View<'_> {
        View {
            chunks: &self.chunks,
            fences: self.fences.as_deref(),
            config: &self.config,
            ctx: None,
        }
    }

    fn view_ctx<'a>(&'a self, ctx: &'a QueryCtx) -> View<'a> {
        View {
            ctx: Some(ctx),
            ..self.view()
        }
    }

    /// Q1: gather `cols` payload attributes of every row with key `v`.
    /// Ordered modes probe exactly one chunk; `NoOrder` must broadcast to
    /// every chunk, which runs chunk-parallel like the range scans.
    pub fn q1_point(
        &self,
        v: u64,
        cols: &[usize],
    ) -> Result<(Vec<Vec<u32>>, OpCost), StorageError> {
        self.view().q1_point(v, cols)
    }

    /// Q2: count rows with key in `[lo, hi)`. Chunk-parallel when the
    /// range spans several chunks.
    pub fn q2_count(&self, lo: u64, hi: u64) -> Result<(u64, OpCost), StorageError> {
        self.view().q2_count(lo, hi)
    }

    /// Q3: sum the given payload columns over rows with key in `[lo, hi)`.
    pub fn q3_sum(&self, lo: u64, hi: u64, cols: &[usize]) -> Result<(u64, OpCost), StorageError> {
        self.view().q3_sum(lo, hi, cols)
    }

    /// Multi-column range query (§6.4, the TPC-H Q6 shape): sum `sum_cols`
    /// over rows whose key lies in `[lo, hi)` *and* whose `pred_col`
    /// payload value lies in `[pred_lo, pred_hi)`.
    ///
    /// "Casper evaluates the first (typically the most selective) filter
    /// and retrieves the qualifying positions to evaluate the subsequent
    /// filters."
    pub fn q3_sum_where(
        &self,
        lo: u64,
        hi: u64,
        sum_cols: &[usize],
        pred_col: usize,
        pred_lo: u32,
        pred_hi: u32,
    ) -> Result<(u64, OpCost), StorageError> {
        self.view()
            .q3_sum_where(lo, hi, sum_cols, pred_col, pred_lo, pred_hi)
    }

    /// Q1 with a deadline/cancel context checked at chunk boundaries.
    pub fn q1_point_ctx(
        &self,
        v: u64,
        cols: &[usize],
        ctx: &QueryCtx,
    ) -> Result<(Vec<Vec<u32>>, OpCost), StorageError> {
        self.view_ctx(ctx).q1_point(v, cols)
    }

    /// Q2 with a deadline/cancel context checked at chunk boundaries.
    pub fn q2_count_ctx(
        &self,
        lo: u64,
        hi: u64,
        ctx: &QueryCtx,
    ) -> Result<(u64, OpCost), StorageError> {
        self.view_ctx(ctx).q2_count(lo, hi)
    }

    /// Q3 with a deadline/cancel context checked at chunk boundaries.
    pub fn q3_sum_ctx(
        &self,
        lo: u64,
        hi: u64,
        cols: &[usize],
        ctx: &QueryCtx,
    ) -> Result<(u64, OpCost), StorageError> {
        self.view_ctx(ctx).q3_sum(lo, hi, cols)
    }

    /// Predicated sum with a deadline/cancel context checked at chunk
    /// boundaries.
    pub fn q3_sum_where_ctx(
        &self,
        lo: u64,
        hi: u64,
        sum_cols: &[usize],
        pred_col: usize,
        pred_lo: u32,
        pred_hi: u32,
        ctx: &QueryCtx,
    ) -> Result<(u64, OpCost), StorageError> {
        self.view_ctx(ctx)
            .q3_sum_where(lo, hi, sum_cols, pred_col, pred_lo, pred_hi)
    }

    /// Q4: insert a row.
    pub fn q4_insert(&mut self, key: u64, payload: &[u32]) -> Result<OpCost, StorageError> {
        let cost = self.q4_insert_inner(key, payload)?;
        self.publish();
        Ok(cost)
    }

    fn q4_insert_inner(&mut self, key: u64, payload: &[u32]) -> Result<OpCost, StorageError> {
        let chunk = self.route(key).unwrap_or_else(|| {
            // NoOrder: append to the last chunk with capacity.
            self.chunks
                .iter()
                .rposition(|c| match c.store_opt() {
                    Some(ChunkStore::Partitioned(p)) => p.tail_free() > 0 || p.ghost_total() > 0,
                    _ => true,
                })
                .unwrap_or(self.chunks.len() - 1)
        });
        let cost = store_insert(self.chunk_mut(chunk)?, key, payload)?;
        self.touch(chunk);
        self.maybe_raise_fence(chunk, key);
        Ok(cost)
    }

    /// Q5: delete every row with key `v`.
    pub fn q5_delete(&mut self, v: u64) -> Result<(u64, OpCost), StorageError> {
        let out = self.q5_delete_inner(v)?;
        self.publish();
        Ok(out)
    }

    fn q5_delete_inner(&mut self, v: u64) -> Result<(u64, OpCost), StorageError> {
        let targets: Vec<usize> = match self.route(v) {
            Some(c) => vec![c],
            None => (0..self.chunks.len()).collect(),
        };
        let mut affected = 0u64;
        let mut cost = OpCost::default();
        for c in targets {
            let (n, oc) = store_delete(self.chunk_mut(c)?, v);
            if n > 0 {
                self.touch(c);
            }
            affected += n;
            cost.absorb(oc);
        }
        Ok((affected, cost))
    }

    /// Q6: update the first row with key `old` to key `new`, carrying its
    /// payload. Cross-chunk updates take exactly one row out of the source
    /// chunk and re-insert it under the new key, matching the single-chunk
    /// path's first-match semantics even under duplicate keys.
    pub fn q6_update(&mut self, old: u64, new: u64) -> Result<(u64, OpCost), StorageError> {
        let out = self.q6_update_inner(old, new)?;
        self.publish();
        Ok(out)
    }

    fn q6_update_inner(&mut self, old: u64, new: u64) -> Result<(u64, OpCost), StorageError> {
        let (from, to) = match (self.route(old), self.route(new)) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                // NoOrder: the single-partition chunks make update local to
                // whichever chunk holds the key.
                let mut cost = OpCost::default();
                for c in 0..self.chunks.len() {
                    if let ChunkStore::Partitioned(p) = self.chunk_mut(c)? {
                        let r = p.update(old, new)?;
                        cost.absorb(r.cost);
                        if r.affected > 0 {
                            self.touch(c);
                            return Ok((r.affected, cost));
                        }
                    }
                }
                return Ok((0, cost));
            }
        };
        if from == to {
            let (n, cost) = store_update(self.chunk_mut(from)?, old, new)?;
            if n > 0 {
                self.touch(from);
            }
            self.maybe_raise_fence(from, new);
            return Ok((n, cost));
        }
        // Cross-chunk: move exactly one row — take the first match out of
        // the source chunk (duplicates stay put) and re-insert it under the
        // new key.
        let (row, mut cost) = store_take_one(self.chunk_mut(from)?, old);
        let Some(row) = row else {
            return Ok((0, cost));
        };
        self.touch(from);
        let c2 = self.q4_insert_inner(new, &row)?;
        cost.absorb(c2);
        Ok((1, cost))
    }

    /// Apply a stream of write operations, chunk-parallel.
    ///
    /// Operations are grouped by target chunk (routing is stable during a
    /// batch: only the last chunk's fence can rise, which never changes
    /// routing) and each chunk's group is applied **in stream order** under
    /// [`parallel_for_each_mut`] — chunks are disjoint slot spaces, so
    /// writes to different chunks commute. Cross-chunk updates act as
    /// barriers: pending groups flush, the update runs serially, batching
    /// resumes. `NoOrder` columns (no routing fences) and single-chunk
    /// columns fall back to serial application.
    ///
    /// The batch publishes to readers exactly once, after the last
    /// operation lands — a pinned snapshot observes either none or all of a
    /// batch, never an intermediate state.
    ///
    /// Returns one `(rows_affected, cost)` per input operation, identical
    /// to serial execution. On error (chunk at capacity after growth) the
    /// failing chunk stops at the failing op but *other chunks complete
    /// their groups* before the first error is returned — a batch is not
    /// atomic, matching the paper's storage-engine semantics where each
    /// query is its own operation.
    pub fn apply_write_batch(
        &mut self,
        ops: &[WriteOp<'_>],
    ) -> Result<Vec<(u64, OpCost)>, StorageError> {
        OBS_BATCH_OPS.record(ops.len() as u64);
        let out = self.apply_write_batch_inner(ops);
        // Publish even on error: completed chunk groups have landed.
        self.publish();
        out
    }

    fn apply_write_batch_inner(
        &mut self,
        ops: &[WriteOp<'_>],
    ) -> Result<Vec<(u64, OpCost)>, StorageError> {
        let mut results = vec![(0u64, OpCost::default()); ops.len()];
        if self.fences.is_none() || self.chunks.len() <= 1 {
            for (i, &op) in ops.iter().enumerate() {
                results[i] = self.apply_write_serial(op)?;
            }
            return Ok(results);
        }
        let mut pending: Vec<Vec<(usize, WriteOp<'_>)>> = vec![Vec::new(); self.chunks.len()];
        let mut pending_count = 0usize;
        // Routing failure on an ordered column is an internal-invariant
        // breach (the fence vector covers the whole key domain); surface
        // it typed rather than panicking — a panic inside a governed batch
        // would quarantine a chunk that holds perfectly good data.
        let routed = |col: &Self, key: u64| {
            col.route(key).ok_or(StorageError::Corrupt {
                reason: format!("ordered column failed to route key {key}"),
            })
        };
        for (i, &op) in ops.iter().enumerate() {
            let chunk = match op {
                WriteOp::Insert { key, .. } | WriteOp::Delete { key } => routed(self, key)?,
                WriteOp::Update { old, new } => {
                    let from = routed(self, old)?;
                    let to = routed(self, new)?;
                    if from != to {
                        // Barrier: the move touches two chunks.
                        self.flush_write_groups(&mut pending, &mut pending_count, &mut results)?;
                        results[i] = self.q6_update_inner(old, new)?;
                        continue;
                    }
                    from
                }
            };
            pending[chunk].push((i, op));
            pending_count += 1;
        }
        self.flush_write_groups(&mut pending, &mut pending_count, &mut results)?;
        Ok(results)
    }

    /// Apply one write operation through the serial Q4/Q5/Q6 paths
    /// (publication is the batch's responsibility).
    fn apply_write_serial(&mut self, op: WriteOp<'_>) -> Result<(u64, OpCost), StorageError> {
        match op {
            WriteOp::Insert { key, payload } => self.q4_insert_inner(key, payload).map(|c| (1, c)),
            WriteOp::Delete { key } => self.q5_delete_inner(key),
            WriteOp::Update { old, new } => self.q6_update_inner(old, new),
        }
    }

    /// Drain the per-chunk groups through the parallel worker pool and
    /// scatter per-op results back into stream order.
    fn flush_write_groups(
        &mut self,
        pending: &mut [Vec<(usize, WriteOp<'_>)>],
        pending_count: &mut usize,
        results: &mut [(u64, OpCost)],
    ) -> Result<(), StorageError> {
        if *pending_count == 0 {
            return Ok(());
        }
        *pending_count = 0;
        // Hydrate + copy-on-write every routed chunk up front so the
        // parallel phase below holds plain `&mut ChunkStore`s.
        for ci in 0..self.chunks.len() {
            if !pending[ci].is_empty() {
                self.ensure_unique(ci)?;
            }
        }
        struct ChunkJob<'s, 'o> {
            chunk: usize,
            store: &'s mut ChunkStore,
            ops: Vec<(usize, WriteOp<'o>)>,
            /// `(op index, affected, cost)` per applied op.
            out: Vec<(usize, u64, OpCost)>,
            /// Largest key inserted/updated-to (fence raise candidate).
            max_key: Option<u64>,
            err: Option<StorageError>,
        }
        let mut jobs: Vec<ChunkJob<'_, '_>> = Vec::new();
        for (ci, slot) in self.chunks.iter_mut().enumerate() {
            let ops = std::mem::take(&mut pending[ci]);
            if !ops.is_empty() {
                let slot = Arc::get_mut(slot).ok_or_else(|| StorageError::Corrupt {
                    reason: "chunk slot still shared after copy-on-write".to_string(),
                })?;
                let cap = ops.len();
                jobs.push(ChunkJob {
                    chunk: ci,
                    store: slot.store_mut()?,
                    ops,
                    out: Vec::with_capacity(cap),
                    max_key: None,
                    err: None,
                });
            }
        }
        parallel_for_each_mut(&mut jobs, self.config.threads, |_, job| {
            for &(idx, op) in &job.ops {
                let applied = match op {
                    WriteOp::Insert { key, payload } => {
                        store_insert(job.store, key, payload).map(|cost| (1, cost, Some(key)))
                    }
                    WriteOp::Delete { key } => {
                        let (n, cost) = store_delete(job.store, key);
                        Ok((n, cost, None))
                    }
                    WriteOp::Update { old, new } => {
                        store_update(job.store, old, new).map(|(n, cost)| (n, cost, Some(new)))
                    }
                };
                match applied {
                    Ok((affected, cost, key)) => {
                        job.out.push((idx, affected, cost));
                        if let Some(k) = key {
                            job.max_key = Some(job.max_key.map_or(k, |m| m.max(k)));
                        }
                    }
                    Err(e) => {
                        job.err = Some(e);
                        break;
                    }
                }
            }
        });
        let mut first_err: Option<StorageError> = None;
        let mut raises: Vec<(usize, u64)> = Vec::new();
        let mut touched: Vec<usize> = Vec::new();
        // Batched writes access their target chunks too: feed the observed
        // side of the drift gauges (the FM predicts write frequencies).
        if let Some(reg) = casper_obs::registry() {
            for job in &jobs {
                reg.drift().note_observed(job.chunk, job.ops.len() as u64);
            }
        }
        for job in jobs {
            if job.out.iter().any(|&(_, affected, _)| affected > 0) {
                touched.push(job.chunk);
            }
            for (idx, affected, cost) in job.out {
                results[idx] = (affected, cost);
            }
            if let Some(k) = job.max_key {
                raises.push((job.chunk, k));
            }
            if first_err.is_none() {
                first_err = job.err;
            }
        }
        for c in touched {
            self.touch(c);
        }
        for (chunk, key) in raises {
            self.maybe_raise_fence(chunk, key);
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// The shared read-path logic: both the live [`ChunkedColumn`] (`&self`)
/// and pinned [`ColumnSnapshot`]s scan through this view, so the two paths
/// cannot drift. Every method hydrates the slots it routes to (serially,
/// before the parallel scan) and surfaces decode damage as a typed error.
struct View<'a> {
    chunks: &'a [Arc<ChunkSlot>],
    fences: Option<&'a [u64]>,
    config: &'a EngineConfig,
    /// Deadline/cancel context, checked once per chunk boundary (`None`
    /// on the ungoverned paths — a single branch of overhead).
    ctx: Option<&'a QueryCtx>,
}

impl View<'_> {
    fn route(&self, key: u64) -> Option<usize> {
        self.fences
            .map(|f| f.partition_point(|&b| b < key).min(f.len() - 1))
    }

    /// Chunk-boundary interrupt check (no-op without a context).
    #[inline]
    fn check_interrupt(&self) -> Result<(), StorageError> {
        match self.ctx {
            Some(ctx) => ctx.check(),
            None => Ok(()),
        }
    }

    /// Indices of the chunks overlapping `[lo, hi)` (mirrors the target
    /// selection of `scan_chunks`).
    fn chunk_range_for(&self, lo: u64, hi: u64) -> std::ops::Range<usize> {
        match (self.fences, self.route(lo)) {
            (Some(fences), Some(first)) => {
                let mut end = first + 1;
                while end < self.chunks.len() && fences[end - 1] < hi {
                    end += 1;
                }
                first..end
            }
            _ => 0..self.chunks.len(),
        }
    }

    fn q1_point(&self, v: u64, cols: &[usize]) -> Result<(Vec<Vec<u32>>, OpCost), StorageError> {
        let targets: Vec<&ChunkStore> = match self.route(v) {
            Some(c) => {
                self.check_interrupt()?;
                note_routed(c, 1, self.chunks.len());
                vec![self.chunks[c].get()?]
            }
            None => {
                note_routed(0, self.chunks.len(), self.chunks.len());
                let mut t = Vec::with_capacity(self.chunks.len());
                for s in self.chunks {
                    self.check_interrupt()?;
                    t.push(s.get()?);
                }
                t
            }
        };
        let results = parallel_map(&targets, self.config.threads, |_, store| match store {
            ChunkStore::Partitioned(p) => {
                let r = p.point_query(v);
                let rows: Vec<Vec<u32>> = r
                    .positions
                    .into_iter()
                    .map(|pos| p.payloads().gather_row(pos, cols))
                    .collect();
                (rows, r.cost)
            }
            ChunkStore::Sorted(s) => {
                let (range, c2) = s.point_query(v);
                let rows: Vec<Vec<u32>> = range.map(|pos| s.gather_row(pos, cols)).collect();
                (rows, c2)
            }
            ChunkStore::Delta(d) => d.point_rows(v, cols),
        });
        let mut cost = OpCost::default();
        let mut rows = Vec::new();
        for (mut r, c) in results {
            rows.append(&mut r);
            cost.absorb(c);
        }
        Ok((rows, cost))
    }

    fn q2_count(&self, lo: u64, hi: u64) -> Result<(u64, OpCost), StorageError> {
        let results = self.scan_chunks(lo, hi, |store| match store {
            ChunkStore::Partitioned(p) => p.range_count(lo, hi),
            ChunkStore::Sorted(s) => s.range_count(lo, hi),
            ChunkStore::Delta(d) => d.range_count(lo, hi),
        })?;
        let mut total = 0u64;
        let mut cost = OpCost::default();
        for (n, c) in results {
            total += n;
            cost.absorb(c);
        }
        Ok((total, cost))
    }

    fn q3_sum(&self, lo: u64, hi: u64, cols: &[usize]) -> Result<(u64, OpCost), StorageError> {
        let results = self.scan_chunks(lo, hi, |store| match store {
            ChunkStore::Partitioned(p) => p.range_sum_payload(lo, hi, cols),
            ChunkStore::Sorted(s) => s.range_sum_payload(lo, hi, cols),
            ChunkStore::Delta(d) => d.range_sum_payload(lo, hi, cols),
        })?;
        let mut total = 0u64;
        let mut cost = OpCost::default();
        for (n, c) in results {
            total += n;
            cost.absorb(c);
        }
        Ok((total, cost))
    }

    fn q3_sum_where(
        &self,
        lo: u64,
        hi: u64,
        sum_cols: &[usize],
        pred_col: usize,
        pred_lo: u32,
        pred_hi: u32,
    ) -> Result<(u64, OpCost), StorageError> {
        let results = self.scan_chunks(lo, hi, |store| match store {
            ChunkStore::Partitioned(p) => {
                let mut pc = casper_storage::ops::PositionsConsumer::default();
                let r = p.range_query(lo, hi, &mut pc);
                let mut cost = r.cost;
                let payloads = p.payloads();
                let mut sum = 0u64;
                let mut qualifying = 0usize;
                let positions = pc
                    .positions
                    .iter()
                    .copied()
                    .chain(pc.runs.iter().flat_map(|r| r.clone()));
                for pos in positions {
                    let v = payloads.get(pred_col, pos);
                    if pred_lo <= v && v < pred_hi {
                        qualifying += 1;
                        for &c in sum_cols {
                            sum += u64::from(payloads.get(c, pos));
                        }
                    }
                }
                // One sequential pass over the predicate column plus the
                // summed columns for the qualifying rows.
                let vpb = (self.config.block_bytes / 4).max(1);
                cost.seq_reads += ((1 + sum_cols.len()) * qualifying.div_ceil(vpb)) as u64;
                (sum, cost)
            }
            ChunkStore::Sorted(s) => {
                let (range, mut cost) = s.range_query(lo, hi);
                let mut sum = 0u64;
                for pos in range {
                    let v = s.payload(pred_col, pos);
                    if pred_lo <= v && v < pred_hi {
                        for &c in sum_cols {
                            sum += u64::from(s.payload(c, pos));
                        }
                    }
                }
                cost.seq_reads += cost.seq_reads * (1 + sum_cols.len() as u64);
                (sum, cost)
            }
            ChunkStore::Delta(d) => {
                // Evaluate the main column, then replay the delta buffer —
                // the read-path overhead delta stores impose (§1).
                let s = d.main();
                let (range, cost) = s.range_query(lo, hi);
                let mut sum = 0i128;
                for pos in range {
                    let v = s.payload(pred_col, pos);
                    if pred_lo <= v && v < pred_hi {
                        for &c in sum_cols {
                            sum += i128::from(s.payload(c, pos));
                        }
                    }
                }
                sum += d.replay_sum_where(lo, hi, sum_cols, pred_col, pred_lo, pred_hi);
                (sum.max(0) as u64, cost)
            }
        })?;
        let mut total = 0u64;
        let mut cost = OpCost::default();
        for (n, c) in results {
            total += n;
            cost.absorb(c);
        }
        Ok((total, cost))
    }

    /// Run `f` over every chunk overlapping `[lo, hi)`, in parallel when
    /// profitable. Routed slots hydrate serially before the parallel scan.
    /// Deadline/cancel contexts are honored at both kinds of chunk
    /// boundary: once per slot in the serial hydration loop, and once per
    /// chunk inside the parallel phase (a sticky flag makes every worker
    /// stand down as soon as one observes the interrupt).
    fn scan_chunks<R: Send>(
        &self,
        lo: u64,
        hi: u64,
        f: impl Fn(&ChunkStore) -> R + Sync,
    ) -> Result<Vec<R>, StorageError> {
        let mut targets: Vec<&ChunkStore> = Vec::new();
        match (self.fences, self.route(lo)) {
            (Some(fences), Some(first)) => {
                for c in first..self.chunks.len() {
                    // A chunk may overlap if its predecessor's fence is
                    // below `hi`.
                    if c > first && fences[c - 1] >= hi {
                        break;
                    }
                    self.check_interrupt()?;
                    targets.push(self.chunks[c].get()?);
                }
                note_routed(first, targets.len(), self.chunks.len());
            }
            _ => {
                for s in self.chunks {
                    self.check_interrupt()?;
                    targets.push(s.get()?);
                }
                note_routed(0, self.chunks.len(), self.chunks.len());
            }
        }
        let Some(ctx) = self.ctx else {
            return Ok(parallel_map(&targets, self.config.threads, |_, store| {
                f(store)
            }));
        };
        let interrupted = AtomicBool::new(false);
        let results = parallel_map(&targets, self.config.threads, |_, store| {
            if interrupted.load(Ordering::Relaxed) || ctx.check().is_err() {
                interrupted.store(true, Ordering::Relaxed);
                return None;
            }
            Some(f(store))
        });
        if interrupted.load(Ordering::Relaxed) {
            // Re-derive the typed interrupt (expiry and cancellation are
            // both sticky, so the re-check reproduces the worker's error).
            ctx.check()?;
            return Err(StorageError::Cancelled);
        }
        Ok(results.into_iter().flatten().collect())
    }
}

/// One buffered write operation for [`ChunkedColumn::apply_write_batch`]
/// (the Q4/Q5/Q6 stream element). Payloads are borrowed from the query
/// stream, so buffering a write run allocates nothing per operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOp<'a> {
    /// Q4: insert a row.
    Insert {
        /// Key of the new row.
        key: u64,
        /// Payload attributes (must match the column's payload arity).
        payload: &'a [u32],
    },
    /// Q5: delete every row with this key.
    Delete {
        /// Key to delete.
        key: u64,
    },
    /// Q6: update the first row with key `old` to key `new`.
    Update {
        /// Existing key.
        old: u64,
        /// Replacement key.
        new: u64,
    },
}

/// Insert into one chunk store, growing a full partitioned chunk once
/// ("if no empty slots are available, the column is expanded", §3).
fn store_insert(store: &mut ChunkStore, key: u64, payload: &[u32]) -> Result<OpCost, StorageError> {
    match store {
        ChunkStore::Partitioned(p) => match p.insert(key, payload) {
            Ok(r) => Ok(r.cost),
            Err(StorageError::ChunkFull { capacity }) => {
                // Grow by ~10% and retry once.
                p.grow((capacity / 10).max(64));
                Ok(p.insert(key, payload)?.cost)
            }
            Err(e) => Err(e),
        },
        ChunkStore::Sorted(s) => Ok(s.insert(key, payload)),
        ChunkStore::Delta(d) => Ok(d.insert(key, payload)),
    }
}

/// Delete every row with key `v` from one chunk store.
fn store_delete(store: &mut ChunkStore, v: u64) -> (u64, OpCost) {
    match store {
        ChunkStore::Partitioned(p) => {
            let r = p.delete(v);
            (r.affected, r.cost)
        }
        ChunkStore::Sorted(s) => s.delete(v),
        ChunkStore::Delta(d) => {
            // Only buffer a delete when the key currently exists.
            let (n, c0) = d.point_count(v);
            if n > 0 {
                let c1 = d.delete(v);
                let mut c = c0;
                c.absorb(c1);
                (n.min(1), c)
            } else {
                (0, c0)
            }
        }
    }
}

/// Update `old` → `new` within one chunk store (both keys must route to
/// this chunk).
fn store_update(store: &mut ChunkStore, old: u64, new: u64) -> Result<(u64, OpCost), StorageError> {
    match store {
        ChunkStore::Partitioned(p) => {
            let r = p.update(old, new)?;
            Ok((r.affected, r.cost))
        }
        ChunkStore::Sorted(s) => Ok(s.update(old, new)),
        ChunkStore::Delta(d) => {
            let (n, c0) = d.point_count(old);
            if n > 0 {
                let c1 = d.update(old, new);
                let mut c = c0;
                c.absorb(c1);
                Ok((1, c))
            } else {
                Ok((0, c0))
            }
        }
    }
}

/// Take exactly one row with key `v` out of a chunk store, returning its
/// full payload row — the source half of a cross-chunk update. Every store
/// removes only its first match, so duplicates survive the move.
fn store_take_one(store: &mut ChunkStore, v: u64) -> (Option<Vec<u32>>, OpCost) {
    match store {
        ChunkStore::Partitioned(p) => {
            let (row, r) = p.take_one(v);
            (row, r.cost)
        }
        ChunkStore::Sorted(s) => s.take_one(v),
        ChunkStore::Delta(d) => d.take_one(v),
    }
}

/// Build one chunk's store for the configured mode.
fn build_chunk(keys: Vec<u64>, payloads: Vec<Vec<u32>>, config: &EngineConfig) -> ChunkStore {
    let layout = BlockLayout::new::<u64>(config.block_bytes);
    let vpb = layout.values_per_block();
    let len = keys.len();
    let n_blocks = layout.num_blocks(len);
    match config.mode {
        LayoutMode::Sorted => ChunkStore::Sorted(SortedColumn::build(keys, payloads, vpb)),
        LayoutMode::StateOfArt => ChunkStore::Delta(SortedDelta::build(
            keys,
            payloads,
            vpb,
            ((len as f64 * config.delta_frac) as usize).max(16),
        )),
        LayoutMode::NoOrder => {
            let chunk_config = ChunkConfig {
                policy: UpdatePolicy::Dense,
                capacity_slack: config.capacity_slack,
                ghost_fetch_block: 1,
            };
            ChunkStore::Partitioned(
                PartitionedChunk::build_with_payloads(
                    keys,
                    payloads,
                    &PartitionSpec::single(n_blocks),
                    layout,
                    &GhostPlan::none(1),
                    chunk_config,
                )
                .expect("single-partition build cannot fail"),
            )
        }
        LayoutMode::Equi | LayoutMode::EquiGV | LayoutMode::Casper => {
            let k = config.equi_partitions.min(n_blocks).max(1);
            let spec = PartitionSpec::equi_width(n_blocks, k);
            let (policy, ghosts) = if config.mode == LayoutMode::Equi {
                (UpdatePolicy::Dense, GhostPlan::none(k))
            } else {
                let budget = (len as f64 * config.ghost_budget_frac).ceil() as usize;
                (UpdatePolicy::Ghost, GhostPlan::even(k, budget))
            };
            let chunk_config = ChunkConfig {
                policy,
                capacity_slack: config.capacity_slack,
                ghost_fetch_block: config.ghost_fetch_block,
            };
            ChunkStore::Partitioned(
                PartitionedChunk::build_with_payloads(
                    keys,
                    payloads,
                    &spec,
                    layout,
                    &ghosts,
                    chunk_config,
                )
                .expect("equi build cannot fail"),
            )
        }
    }
}

/// Rebuild a partitioned chunk with a new layout decision (used by the
/// optimizer). Requires a hydrated store.
pub(crate) fn rebuild_partitioned(
    store: &ChunkStore,
    seg: &Segmentation,
    ghosts: &GhostPlan,
    config: &EngineConfig,
) -> ChunkStore {
    let layout = BlockLayout::new::<u64>(config.block_bytes);
    let (keys, payloads) = match store {
        ChunkStore::Partitioned(p) => p.extract_live_sorted(),
        ChunkStore::Sorted(s) => s.to_parts(),
        ChunkStore::Delta(d) => {
            let mut d = d.clone();
            d.force_merge();
            d.main().to_parts()
        }
    };
    let chunk_config = ChunkConfig {
        policy: UpdatePolicy::Ghost,
        capacity_slack: config.capacity_slack,
        ghost_fetch_block: config.ghost_fetch_block,
    };
    ChunkStore::Partitioned(
        PartitionedChunk::build_with_payloads(
            keys,
            payloads,
            &seg.to_spec(),
            layout,
            ghosts,
            chunk_config,
        )
        .expect("rebuild with solver output cannot fail"),
    )
}

/// Expose a chunk's block fences for Frequency-Model capture: the first key
/// of each logical block of its sorted live data. Requires a hydrated
/// store.
pub(crate) fn chunk_block_fences(store: &ChunkStore, block_bytes: usize) -> Vec<u64> {
    let layout = BlockLayout::new::<u64>(block_bytes);
    let vpb = layout.values_per_block();
    let keys: Vec<u64> = match store {
        ChunkStore::Partitioned(p) => p.extract_live_sorted().0,
        ChunkStore::Sorted(s) => s.values().to_vec(),
        ChunkStore::Delta(d) => d.main().values().to_vec(),
    };
    keys.chunks(vpb).map(|c| c[0]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(mode: LayoutMode, rows: u64) -> ChunkedColumn {
        let keys: Vec<u64> = (0..rows).map(|i| i * 2).collect();
        let payload: Vec<u32> = keys.iter().map(|&k| (k % 1000) as u32).collect();
        let mut config = EngineConfig::small(mode);
        config.chunk_values = 1024;
        ChunkedColumn::load(keys, vec![payload], config)
    }

    /// Like `load`, but key 10 appears three times (the duplicate-key
    /// regression fixture).
    fn load_with_duplicates(mode: LayoutMode, rows: u64) -> ChunkedColumn {
        let mut keys: Vec<u64> = (0..rows).map(|i| i * 2).collect();
        keys.push(10);
        keys.push(10);
        let payload: Vec<u32> = keys.iter().map(|&k| (k % 1000) as u32).collect();
        let mut config = EngineConfig::small(mode);
        config.chunk_values = 1024;
        ChunkedColumn::load(keys, vec![payload], config)
    }

    #[test]
    fn load_splits_into_chunks() {
        for mode in LayoutMode::all() {
            let col = load(mode, 4000);
            assert_eq!(col.chunk_count(), 4, "{mode:?}");
            assert_eq!(col.len(), 4000, "{mode:?}");
        }
    }

    #[test]
    fn q1_finds_rows_in_every_mode() {
        for mode in LayoutMode::all() {
            let col = load(mode, 4000);
            let (rows, _) = col.q1_point(2468, &[0]).unwrap();
            assert_eq!(rows.len(), 1, "{mode:?}");
            assert_eq!(rows[0], vec![(2468 % 1000) as u32], "{mode:?}");
            let (rows, _) = col.q1_point(2469, &[0]).unwrap();
            assert!(rows.is_empty(), "{mode:?}");
        }
    }

    #[test]
    fn q2_counts_match_in_every_mode() {
        for mode in LayoutMode::all() {
            let col = load(mode, 4000);
            let (n, _) = col.q2_count(100, 300).unwrap();
            assert_eq!(n, 100, "{mode:?}"); // even keys in [100, 300)
            let (n, _) = col.q2_count(0, 8000).unwrap();
            assert_eq!(n, 4000, "{mode:?}");
        }
    }

    #[test]
    fn q3_sums_payload_in_every_mode() {
        for mode in LayoutMode::all() {
            let col = load(mode, 4000);
            let (sum, _) = col.q3_sum(0, 20, &[0]).unwrap();
            // Keys 0..18 even: payloads k % 1000 = k.
            let want: u64 = (0..10).map(|i| i * 2).sum();
            assert_eq!(sum, want, "{mode:?}");
        }
    }

    #[test]
    fn q4_q5_q6_round_trip_in_every_mode() {
        for mode in LayoutMode::all() {
            let mut col = load(mode, 4000);
            col.q4_insert(101, &[7]).unwrap();
            let (rows, _) = col.q1_point(101, &[0]).unwrap();
            assert_eq!(rows, vec![vec![7]], "{mode:?} insert");
            let (n, _) = col.q5_delete(101).unwrap();
            assert_eq!(n, 1, "{mode:?} delete");
            assert!(col.q1_point(101, &[0]).unwrap().0.is_empty(), "{mode:?}");
            let (n, _) = col.q6_update(200, 201).unwrap();
            assert_eq!(n, 1, "{mode:?} update");
            let (rows, _) = col.q1_point(201, &[0]).unwrap();
            assert_eq!(rows.len(), 1, "{mode:?} updated row");
            assert_eq!(rows[0], vec![200], "{mode:?} payload follows update");
            assert_eq!(col.len(), 4000, "{mode:?} len conserved");
        }
    }

    #[test]
    fn cross_chunk_update_moves_row() {
        for mode in LayoutMode::all() {
            let mut col = load(mode, 4000);
            // Key 10 lives in chunk 0; 7001 belongs to the last chunk.
            let (n, _) = col.q6_update(10, 7001).unwrap();
            assert_eq!(n, 1, "{mode:?}");
            assert!(col.q1_point(10, &[0]).unwrap().0.is_empty(), "{mode:?}");
            let (rows, _) = col.q1_point(7001, &[0]).unwrap();
            assert_eq!(rows.len(), 1, "{mode:?}");
            assert_eq!(rows[0], vec![10], "{mode:?} payload moved");
        }
    }

    /// Regression: a cross-chunk Q6 used to fall back to `q5_delete(old)`
    /// (which removes *every* row with the key) before re-inserting one
    /// row, silently destroying duplicates. It must move exactly one row,
    /// matching the single-chunk path.
    #[test]
    fn cross_chunk_update_preserves_duplicate_keys() {
        for mode in LayoutMode::all() {
            let mut col = load_with_duplicates(mode, 4000);
            assert_eq!(col.q1_point(10, &[0]).unwrap().0.len(), 3, "{mode:?}");
            let before = col.len();
            // Key 10 lives in chunk 0; 7001 belongs to the last chunk.
            let (n, _) = col.q6_update(10, 7001).unwrap();
            assert_eq!(n, 1, "{mode:?} affected");
            let (survivors, _) = col.q1_point(10, &[0]).unwrap();
            assert_eq!(survivors.len(), 2, "{mode:?} duplicates must survive");
            let (moved, _) = col.q1_point(7001, &[0]).unwrap();
            assert_eq!(moved.len(), 1, "{mode:?} exactly one row moved");
            assert_eq!(moved[0], vec![10], "{mode:?} payload moved");
            assert_eq!(col.len(), before, "{mode:?} row count conserved");
        }
    }

    /// The same regression through the batched path: a cross-chunk update
    /// inside `apply_write_batch` is a barrier that calls the Q6 fallback.
    #[test]
    fn batched_cross_chunk_update_preserves_duplicate_keys() {
        for mode in LayoutMode::all() {
            let mut col = load_with_duplicates(mode, 4000);
            let before = col.len();
            // Key 5 is absent from the fixture (even keys only), so the
            // insert/delete pair is count-neutral.
            let payload = [33u32];
            let ops = [
                WriteOp::Insert {
                    key: 5,
                    payload: &payload,
                },
                WriteOp::Update { old: 10, new: 7001 },
                WriteOp::Delete { key: 5 },
            ];
            let results = col.apply_write_batch(&ops).unwrap();
            assert_eq!(results[1].0, 1, "{mode:?} update affected");
            let (survivors, _) = col.q1_point(10, &[0]).unwrap();
            assert_eq!(survivors.len(), 2, "{mode:?} duplicates must survive");
            assert_eq!(col.q1_point(7001, &[0]).unwrap().0.len(), 1, "{mode:?}");
            assert_eq!(col.len(), before, "{mode:?} row count conserved");
        }
    }

    #[test]
    fn inserts_above_all_fences_route_to_last_chunk() {
        for mode in LayoutMode::all() {
            let mut col = load(mode, 4000);
            col.q4_insert(1_000_001, &[9]).unwrap();
            let (rows, _) = col.q1_point(1_000_001, &[0]).unwrap();
            assert_eq!(rows.len(), 1, "{mode:?}");
        }
    }

    #[test]
    fn q2_spanning_all_chunks_uses_parallel_path() {
        let col = load(LayoutMode::Casper, 8000);
        let (n, _) = col.q2_count(0, u64::MAX).unwrap();
        assert_eq!(n, 8000);
    }

    #[test]
    fn snapshot_pins_are_isolated_from_later_writes() {
        for mode in LayoutMode::all() {
            let mut col = load(mode, 4000);
            let cell = col.snapshot_cell();
            let v0 = cell.version();
            let before = cell.pin();
            col.q4_insert(101, &[7]).unwrap();
            // The old pin still counts the pre-write state...
            assert_eq!(before.q2_count(0, u64::MAX).unwrap().0, 4000, "{mode:?}");
            // ...while a fresh pin observes the published write.
            assert!(cell.version() > v0, "{mode:?} publish ticked");
            let after = cell.pin();
            assert_eq!(after.q2_count(0, u64::MAX).unwrap().0, 4001, "{mode:?}");
            assert_eq!(after.q1_point(101, &[0]).unwrap().0, vec![vec![7]]);
        }
    }

    #[test]
    fn batch_publishes_once_at_the_end() {
        let mut col = load(LayoutMode::Casper, 4000);
        let cell = col.snapshot_cell();
        let v0 = cell.version();
        let payload = [1u32];
        let ops: Vec<WriteOp<'_>> = (0..10)
            .map(|i| WriteOp::Insert {
                key: 100 + i,
                payload: &payload,
            })
            .collect();
        col.apply_write_batch(&ops).unwrap();
        assert_eq!(cell.version(), v0 + 1, "one publish per batch");
        assert_eq!(cell.pin().q2_count(0, u64::MAX).unwrap().0, 4010);
    }

    #[test]
    fn failed_lazy_hydration_surfaces_typed_error() {
        let slot = ChunkSlot::new_lazy(
            7,
            Box::new(|| {
                Err(StorageError::Corrupt {
                    reason: "injected decode failure".to_string(),
                })
            }),
        );
        assert_eq!(slot.len(), 7, "live count served without hydration");
        assert!(matches!(
            slot.get(),
            Err(StorageError::Corrupt { ref reason }) if reason.contains("injected")
        ));
        // The loader is consumed: later touches report the re-entry
        // instead of panicking.
        assert!(matches!(
            slot.get(),
            Err(StorageError::Corrupt { ref reason }) if reason.contains("re-entered")
        ));
    }

    #[test]
    fn lazy_hydration_validates_live_count() {
        let col = load(LayoutMode::Casper, 100);
        let store = col.chunks()[0].get().unwrap().clone();
        let slot = ChunkSlot::new_lazy(55, Box::new(move || Ok(store)));
        assert!(matches!(
            slot.get(),
            Err(StorageError::Corrupt { ref reason }) if reason.contains("manifest says 55")
        ));
    }
}
