//! HAP tables: a key column plus payload columns, executing Q1–Q6.
//!
//! The table is the engine's user-facing object: load a schema-ful dataset,
//! execute [`casper_workload::HapQuery`] instances, and receive results
//! with block-access costs attached. It is also the unit the optimizer
//! re-layouts (§6.4: "Casper can be easily integrated into existing
//! systems" — this is the generic storage-engine API surface).

use std::sync::Arc;
use std::time::Instant;

use crate::column::{ChunkedColumn, ColumnSnapshot, SnapshotCell};
use crate::governor::{panic_detail, Governor, QueryCtx, QueryError};
use crate::modes::EngineConfig;
use casper_obs::{CounterDef, HistogramDef, SpanDef};
use casper_storage::{OpCost, StorageError};
use casper_workload::{HapQuery, HapSchema, WorkloadGenerator};

// Per-query-class telemetry families, indexed by `class_idx`. Inert
// (one relaxed load) while telemetry is disengaged.
static OBS_TABLE_SPAN: SpanDef = SpanDef::new("table_execute");
static OBS_QUERY_LATENCY: [HistogramDef; 6] = [
    HistogramDef::new("casper_query_latency_ns{class=\"q1\"}"),
    HistogramDef::new("casper_query_latency_ns{class=\"q2\"}"),
    HistogramDef::new("casper_query_latency_ns{class=\"q3\"}"),
    HistogramDef::new("casper_query_latency_ns{class=\"q4\"}"),
    HistogramDef::new("casper_query_latency_ns{class=\"q5\"}"),
    HistogramDef::new("casper_query_latency_ns{class=\"q6\"}"),
];
static OBS_QUERY_ROWS: [CounterDef; 6] = [
    CounterDef::new("casper_query_rows_scanned_total{class=\"q1\"}"),
    CounterDef::new("casper_query_rows_scanned_total{class=\"q2\"}"),
    CounterDef::new("casper_query_rows_scanned_total{class=\"q3\"}"),
    CounterDef::new("casper_query_rows_scanned_total{class=\"q4\"}"),
    CounterDef::new("casper_query_rows_scanned_total{class=\"q5\"}"),
    CounterDef::new("casper_query_rows_scanned_total{class=\"q6\"}"),
];

/// 0-based query-class index into the metric families above.
fn class_idx(q: &HapQuery) -> usize {
    match q {
        HapQuery::Q1 { .. } => 0,
        HapQuery::Q2 { .. } => 1,
        HapQuery::Q3 { .. } => 2,
        HapQuery::Q4 { .. } => 3,
        HapQuery::Q5 { .. } => 4,
        HapQuery::Q6 { .. } => 5,
    }
}

/// Per-query timer, armed only while telemetry is engaged: records the
/// class latency histogram and rows-scanned counter on completion.
struct QueryTimer {
    start: Instant,
    class: usize,
    /// Multiplier applied to the rows-scanned counter (1 on the exact
    /// mutable path, [`READ_SAMPLE`] on the sampled reader path).
    scale: u64,
}

/// Reader-path sampling factor: [`TableReader::execute`] times one query
/// in this many per thread. A snapshot read can be a sub-microsecond
/// point lookup, and two clock reads plus histogram updates on every one
/// would cost several percent of the hot path — sampling keeps the
/// enabled overhead inside the `obs_overhead` bench's ≤2% gate while the
/// latency quantiles stay statistically faithful. Rows-scanned totals
/// from sampled queries are scaled back up (an estimate, labelled so in
/// `docs/observability.md`); the mutable [`Table::execute`] path records
/// every query exactly.
const READ_SAMPLE: u32 = 16;

thread_local! {
    static READ_TICK: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

impl QueryTimer {
    #[inline]
    fn start(q: &HapQuery) -> Option<Self> {
        casper_obs::enabled().then(|| Self {
            start: Instant::now(),
            class: class_idx(q),
            scale: 1,
        })
    }

    /// Sampled variant for the reader hot path: arms the timer for one
    /// query in [`READ_SAMPLE`] per thread.
    #[inline]
    fn start_sampled(q: &HapQuery) -> Option<Self> {
        if !casper_obs::enabled() {
            return None;
        }
        let due = READ_TICK.with(|t| {
            let v = t.get().wrapping_add(1);
            t.set(v);
            v % READ_SAMPLE == 0
        });
        due.then(|| Self {
            start: Instant::now(),
            class: class_idx(q),
            scale: u64::from(READ_SAMPLE),
        })
    }

    fn finish(timer: Option<Self>, out: &QueryOutput) {
        if let Some(t) = timer {
            OBS_QUERY_LATENCY[t.class].record(t.start.elapsed().as_nanos() as u64);
            OBS_QUERY_ROWS[t.class].add(out.cost.values_scanned * t.scale);
        }
    }
}

/// Result payload of one query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryResult {
    /// Q1: materialized rows (selected payload attributes).
    Rows(Vec<Vec<u32>>),
    /// Q2: count.
    Count(u64),
    /// Q3: sum.
    Sum(u64),
    /// Q4/Q5/Q6: rows affected.
    Affected(u64),
}

impl QueryResult {
    /// The scalar the result carries (row count / count / sum / affected).
    pub fn scalar(&self) -> u64 {
        match self {
            QueryResult::Rows(r) => r.len() as u64,
            QueryResult::Count(n) | QueryResult::Sum(n) | QueryResult::Affected(n) => *n,
        }
    }
}

/// A query result with its storage-level access pattern.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// Result payload.
    pub result: QueryResult,
    /// Block accesses performed.
    pub cost: OpCost,
}

/// A loaded HAP table.
#[derive(Debug)]
pub struct Table {
    column: ChunkedColumn,
    schema: HapSchema,
}

impl Table {
    /// Load a table from a workload generator's initial dataset.
    pub fn load_from_generator(gen: &WorkloadGenerator, config: EngineConfig) -> Self {
        Self::load(
            gen.schema(),
            gen.initial_keys(),
            gen.initial_payload_columns(),
            config,
        )
    }

    /// Load a table from explicit keys + column-major payloads.
    pub fn load(
        schema: HapSchema,
        keys: Vec<u64>,
        payload_cols: Vec<Vec<u32>>,
        config: EngineConfig,
    ) -> Self {
        assert_eq!(
            payload_cols.len(),
            schema.payload_cols,
            "payload arity must match the schema"
        );
        Self {
            column: ChunkedColumn::load(keys, payload_cols, config),
            schema,
        }
    }

    /// Reassemble a table around an already-restored column (snapshot
    /// recovery; see `ChunkedColumn::from_restored`).
    pub fn from_restored(schema: HapSchema, column: ChunkedColumn) -> Self {
        assert_eq!(
            column.payload_width(),
            schema.payload_cols,
            "restored column arity must match the schema"
        );
        Self { column, schema }
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.column.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.column.is_empty()
    }

    /// The schema.
    pub fn schema(&self) -> HapSchema {
        self.schema
    }

    /// The underlying chunked key column.
    pub fn column(&self) -> &ChunkedColumn {
        &self.column
    }

    /// Mutable access for the optimizer.
    pub fn column_mut(&mut self) -> &mut ChunkedColumn {
        &mut self.column
    }

    /// Decode every chunk still awaiting hydration from a persisted
    /// segment (no-op on ordinary tables). See
    /// [`ChunkedColumn::hydrate_all`].
    pub fn hydrate_all(&self) -> Result<(), StorageError> {
        self.column.hydrate_all()
    }

    /// A shared read handle over this table: readers on other threads pin
    /// the column's published snapshot once per query and scan it
    /// lock-free, while this table keeps executing writes. The handle
    /// stays valid for the table's lifetime; each pin observes the most
    /// recently published write batch in full (never a torn batch).
    pub fn reader(&self) -> TableReader {
        TableReader {
            cell: self.column.snapshot_cell(),
            schema: self.schema,
            governor: None,
        }
    }

    /// Execute one HAP query. On a lazily-restored table (mmap recovery)
    /// the chunks the query routes to are hydrated first, so restore-time
    /// laziness is invisible here — a chunk pays its decode exactly once,
    /// on the first query that touches it.
    pub fn execute(&mut self, q: &HapQuery) -> Result<QueryOutput, StorageError> {
        let _span = OBS_TABLE_SPAN.start();
        let timer = QueryTimer::start(q);
        let out = self.execute_inner(q, None)?;
        QueryTimer::finish(timer, &out);
        Ok(out)
    }

    /// [`Table::execute`] with a deadline/cancel context checked at chunk
    /// boundaries. Expiry unwinds as [`StorageError::DeadlineExceeded`] /
    /// [`StorageError::Cancelled`] without touching shared state: reads
    /// abandon their scan, and writes are checked *before* dispatch (a
    /// point write that has started is cheaper to finish than to abort
    /// half-applied).
    pub fn execute_ctx(
        &mut self,
        q: &HapQuery,
        ctx: &QueryCtx,
    ) -> Result<QueryOutput, StorageError> {
        let _span = OBS_TABLE_SPAN.start();
        let timer = QueryTimer::start(q);
        let out = self.execute_inner(q, Some(ctx))?;
        QueryTimer::finish(timer, &out);
        Ok(out)
    }

    /// Fully governed execution: admission through `gov`'s slot gate,
    /// deadline/cancel checks from `ctx`, and `catch_unwind` panic
    /// isolation. A panicking query surfaces as [`QueryError::Panicked`]
    /// carrying the implicated chunk (point-shaped operations route to
    /// exactly one) so the caller can quarantine it; the serving loop —
    /// and the query slot, released by RAII — survive.
    pub fn execute_governed(
        &mut self,
        q: &HapQuery,
        gov: &Governor,
        ctx: &QueryCtx,
    ) -> Result<QueryOutput, QueryError> {
        let is_write = matches!(
            q,
            HapQuery::Q4 { .. } | HapQuery::Q5 { .. } | HapQuery::Q6 { .. }
        );
        let _permit = gov.admit(is_write)?;
        // AssertUnwindSafe: a panic can leave the routed chunk's in-memory
        // state half-mutated, which is exactly why the caller quarantines
        // the implicated chunk — nothing else is reachable mid-query.
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.execute_ctx(q, ctx)));
        match result {
            Ok(Ok(out)) => Ok(out),
            Ok(Err(e)) => Err(gov.note_outcome(QueryError::from(e))),
            Err(payload) => Err(gov.note_outcome(QueryError::Panicked {
                detail: panic_detail(payload),
                chunk: self.implicated_chunk(q),
            })),
        }
    }

    /// The chunk a panicked query was operating on, when attributable:
    /// point-shaped operations route to exactly one chunk; range scans and
    /// broadcast columns report `None` (no single suspect).
    fn implicated_chunk(&self, q: &HapQuery) -> Option<usize> {
        use casper_core::Op;
        match q.key_op() {
            Op::Point(v) | Op::Insert(v) | Op::Delete(v) => self.column.route_for(v),
            Op::Update(old, _) => self.column.route_for(old),
            Op::Range(..) => None,
        }
    }

    fn execute_inner(
        &mut self,
        q: &HapQuery,
        ctx: Option<&QueryCtx>,
    ) -> Result<QueryOutput, StorageError> {
        if let Some(c) = ctx {
            c.check()?;
        }
        self.column.hydrate_for_query(q)?;
        Ok(match q {
            HapQuery::Q1 { v, k } => {
                let cols: Vec<usize> = (0..(*k).min(self.schema.payload_cols)).collect();
                let (rows, cost) = match ctx {
                    Some(c) => self.column.q1_point_ctx(*v, &cols, c)?,
                    None => self.column.q1_point(*v, &cols)?,
                };
                QueryOutput {
                    result: QueryResult::Rows(rows),
                    cost,
                }
            }
            HapQuery::Q2 { vs, ve } => {
                let (n, cost) = match ctx {
                    Some(c) => self.column.q2_count_ctx(*vs, *ve, c)?,
                    None => self.column.q2_count(*vs, *ve)?,
                };
                QueryOutput {
                    result: QueryResult::Count(n),
                    cost,
                }
            }
            HapQuery::Q3 { vs, ve, k } => {
                let cols: Vec<usize> = (0..(*k).min(self.schema.payload_cols)).collect();
                let (sum, cost) = match ctx {
                    Some(c) => self.column.q3_sum_ctx(*vs, *ve, &cols, c)?,
                    None => self.column.q3_sum(*vs, *ve, &cols)?,
                };
                QueryOutput {
                    result: QueryResult::Sum(sum),
                    cost,
                }
            }
            HapQuery::Q4 { key, payload } => {
                let cost = self.column.q4_insert(*key, payload)?;
                QueryOutput {
                    result: QueryResult::Affected(1),
                    cost,
                }
            }
            HapQuery::Q5 { v } => {
                let (n, cost) = self.column.q5_delete(*v)?;
                QueryOutput {
                    result: QueryResult::Affected(n),
                    cost,
                }
            }
            HapQuery::Q6 { v, vnew } => {
                let (n, cost) = self.column.q6_update(*v, *vnew)?;
                QueryOutput {
                    result: QueryResult::Affected(n),
                    cost,
                }
            }
        })
    }

    /// Multi-column range query (§6.4, the TPC-H Q6 shape): sum `sum_cols`
    /// over rows with key in `[lo, hi)` whose `pred_col` payload lies in
    /// `[pred_lo, pred_hi)`. Corrupt persisted chunks surface as
    /// [`StorageError::Corrupt`], same as [`Table::execute`].
    ///
    /// `&self`: hydration goes through the shared `ChunkSlot` fill (the
    /// same `&self` path `TableReader` uses), so this works on a shared
    /// borrow — the historical `&mut self` requirement was a persistence
    /// workaround that no longer exists.
    pub fn multi_column_sum(
        &self,
        lo: u64,
        hi: u64,
        sum_cols: &[usize],
        pred_col: usize,
        pred_lo: u32,
        pred_hi: u32,
    ) -> Result<QueryOutput, StorageError> {
        // Same contract as `execute`: hydrate the chunks the key range
        // routes to, so lazily-restored tables serve this path too.
        self.column
            .hydrate_for_query(&HapQuery::Q2 { vs: lo, ve: hi })?;
        let (sum, cost) = self
            .column
            .q3_sum_where(lo, hi, sum_cols, pred_col, pred_lo, pred_hi)?;
        Ok(QueryOutput {
            result: QueryResult::Sum(sum),
            cost,
        })
    }

    /// Execute a batch, returning per-query outputs.
    pub fn execute_all(&mut self, queries: &[HapQuery]) -> Result<Vec<QueryOutput>, StorageError> {
        queries.iter().map(|q| self.execute(q)).collect()
    }

    /// Execute a batch with **chunk-parallel write batching**: consecutive
    /// runs of Q4/Q5/Q6 are grouped by target chunk and applied in parallel
    /// through [`ChunkedColumn::apply_write_batch`]; reads execute in
    /// stream position, so every query observes exactly the writes that
    /// preceded it. Per-query outputs are identical to [`Table::execute_all`]
    /// on streams that do not hit a capacity error.
    pub fn execute_batch(
        &mut self,
        queries: &[HapQuery],
    ) -> Result<Vec<QueryOutput>, StorageError> {
        use crate::column::WriteOp;
        // Batched streams fan writes out chunk-parallel; hydrate everything
        // up front rather than threading lazy-decode through the workers.
        self.column.hydrate_all()?;
        let mut outputs: Vec<Option<QueryOutput>> = vec![None; queries.len()];
        // Write ops borrow their payloads straight from the query stream —
        // buffering a run allocates nothing per operation.
        let mut run: Vec<(usize, WriteOp<'_>)> = Vec::new();
        for (i, q) in queries.iter().enumerate() {
            match q {
                HapQuery::Q4 { key, payload } => {
                    run.push((i, WriteOp::Insert { key: *key, payload }));
                }
                HapQuery::Q5 { v } => {
                    run.push((i, WriteOp::Delete { key: *v }));
                }
                HapQuery::Q6 { v, vnew } => {
                    run.push((
                        i,
                        WriteOp::Update {
                            old: *v,
                            new: *vnew,
                        },
                    ));
                }
                _ => {
                    self.flush_write_run(&mut run, &mut outputs)?;
                    outputs[i] = Some(self.execute(q)?);
                }
            }
        }
        self.flush_write_run(&mut run, &mut outputs)?;
        Ok(outputs
            .into_iter()
            .map(|o| o.expect("every query position filled"))
            .collect())
    }

    /// Apply a buffered write run through the chunk-parallel batch path.
    fn flush_write_run(
        &mut self,
        run: &mut Vec<(usize, crate::column::WriteOp<'_>)>,
        outputs: &mut [Option<QueryOutput>],
    ) -> Result<(), StorageError> {
        if run.is_empty() {
            return Ok(());
        }
        let (idxs, ops): (Vec<usize>, Vec<crate::column::WriteOp<'_>>) = run.drain(..).unzip();
        let results = self.column.apply_write_batch(&ops)?;
        for (i, (affected, cost)) in idxs.into_iter().zip(results) {
            outputs[i] = Some(QueryOutput {
                result: QueryResult::Affected(affected),
                cost,
            });
        }
        Ok(())
    }
}

/// A concurrent read handle over a [`Table`]: `Send`-able to any number of
/// reader threads, each of which pins the column's published snapshot once
/// per query and scans it lock-free while the owning table keeps writing.
///
/// Only read queries (Q1/Q2/Q3) execute here — write queries return
/// [`StorageError::InvalidSpec`], since a snapshot is immutable by
/// construction.
#[derive(Debug, Clone)]
pub struct TableReader {
    cell: Arc<SnapshotCell>,
    schema: HapSchema,
    /// Attached by [`TableReader::with_governor`]: when present,
    /// [`TableReader::execute_governed`] admits through its slot gate and
    /// isolates panics.
    governor: Option<Arc<Governor>>,
}

impl TableReader {
    /// Attach a shared [`Governor`] so [`TableReader::execute_governed`]
    /// participates in admission control and panic isolation.
    pub fn with_governor(mut self, governor: Arc<Governor>) -> Self {
        self.governor = Some(governor);
        self
    }

    /// The attached governor, if any.
    pub fn governor(&self) -> Option<&Arc<Governor>> {
        self.governor.as_ref()
    }

    /// Pin the currently published snapshot (one lightweight pointer
    /// clone); the returned snapshot is stable for its lifetime.
    pub fn pin(&self) -> Arc<ColumnSnapshot> {
        self.cell.pin()
    }

    /// Monotone publish counter (one tick per published write batch).
    pub fn version(&self) -> u64 {
        self.cell.version()
    }

    /// Execute one read query against the current snapshot.
    pub fn execute(&self, q: &HapQuery) -> Result<QueryOutput, StorageError> {
        // No span here: a snapshot read can be sub-microsecond and the
        // guard's bookkeeping would dominate it — the sampled timer and
        // the routed/pruned counters carry the read-path telemetry.
        let timer = QueryTimer::start_sampled(q);
        let out = self.execute_inner(q, None)?;
        QueryTimer::finish(timer, &out);
        Ok(out)
    }

    /// [`TableReader::execute`] with a deadline/cancel context checked at
    /// chunk boundaries.
    pub fn execute_ctx(&self, q: &HapQuery, ctx: &QueryCtx) -> Result<QueryOutput, StorageError> {
        let timer = QueryTimer::start_sampled(q);
        let out = self.execute_inner(q, Some(ctx))?;
        QueryTimer::finish(timer, &out);
        Ok(out)
    }

    /// Governed snapshot read: admission through the attached governor's
    /// slot gate (a reader without one passes straight through), ctx
    /// interrupts, and panic isolation. Snapshot reads cannot attribute a
    /// panic to a chunk the live column could quarantine, so
    /// [`QueryError::Panicked::chunk`] is `None` here.
    pub fn execute_governed(
        &self,
        q: &HapQuery,
        ctx: &QueryCtx,
    ) -> Result<QueryOutput, QueryError> {
        let Some(gov) = &self.governor else {
            return self.execute_ctx(q, ctx).map_err(QueryError::from);
        };
        let _permit = gov.admit(false)?;
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.execute_ctx(q, ctx)));
        match result {
            Ok(Ok(out)) => Ok(out),
            Ok(Err(e)) => Err(gov.note_outcome(QueryError::from(e))),
            Err(payload) => Err(gov.note_outcome(QueryError::Panicked {
                detail: panic_detail(payload),
                chunk: None,
            })),
        }
    }

    fn execute_inner(
        &self,
        q: &HapQuery,
        ctx: Option<&QueryCtx>,
    ) -> Result<QueryOutput, StorageError> {
        if let Some(c) = ctx {
            c.check()?;
        }
        let snap = self.pin();
        Ok(match q {
            HapQuery::Q1 { v, k } => {
                let cols: Vec<usize> = (0..(*k).min(self.schema.payload_cols)).collect();
                let (rows, cost) = match ctx {
                    Some(c) => snap.q1_point_ctx(*v, &cols, c)?,
                    None => snap.q1_point(*v, &cols)?,
                };
                QueryOutput {
                    result: QueryResult::Rows(rows),
                    cost,
                }
            }
            HapQuery::Q2 { vs, ve } => {
                let (n, cost) = match ctx {
                    Some(c) => snap.q2_count_ctx(*vs, *ve, c)?,
                    None => snap.q2_count(*vs, *ve)?,
                };
                QueryOutput {
                    result: QueryResult::Count(n),
                    cost,
                }
            }
            HapQuery::Q3 { vs, ve, k } => {
                let cols: Vec<usize> = (0..(*k).min(self.schema.payload_cols)).collect();
                let (sum, cost) = match ctx {
                    Some(c) => snap.q3_sum_ctx(*vs, *ve, &cols, c)?,
                    None => snap.q3_sum(*vs, *ve, &cols)?,
                };
                QueryOutput {
                    result: QueryResult::Sum(sum),
                    cost,
                }
            }
            HapQuery::Q4 { .. } | HapQuery::Q5 { .. } | HapQuery::Q6 { .. } => {
                return Err(StorageError::InvalidSpec {
                    reason: "write query on a read-only snapshot handle".to_string(),
                })
            }
        })
    }

    /// Multi-column predicated sum against the current snapshot (see
    /// [`Table::multi_column_sum`]).
    pub fn multi_column_sum(
        &self,
        lo: u64,
        hi: u64,
        sum_cols: &[usize],
        pred_col: usize,
        pred_lo: u32,
        pred_hi: u32,
    ) -> Result<QueryOutput, StorageError> {
        let (sum, cost) = self
            .pin()
            .q3_sum_where(lo, hi, sum_cols, pred_col, pred_lo, pred_hi)?;
        Ok(QueryOutput {
            result: QueryResult::Sum(sum),
            cost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modes::LayoutMode;
    use casper_workload::{KeyDist, Mix, MixKind};

    fn table(mode: LayoutMode) -> Table {
        let gen = WorkloadGenerator::new(HapSchema::narrow(), 2000, KeyDist::Uniform);
        Table::load_from_generator(&gen, EngineConfig::small(mode))
    }

    #[test]
    fn q1_projects_k_columns() {
        let mut t = table(LayoutMode::Casper);
        let out = t.execute(&HapQuery::Q1 { v: 100, k: 3 }).unwrap();
        if let QueryResult::Rows(rows) = out.result {
            assert_eq!(rows.len(), 1);
            assert_eq!(rows[0].len(), 3);
            assert_eq!(rows[0], HapSchema::narrow().payload_row(100)[..3].to_vec());
        } else {
            panic!("wrong result kind");
        }
    }

    #[test]
    fn q2_count_is_exact() {
        let mut t = table(LayoutMode::Casper);
        let out = t.execute(&HapQuery::Q2 { vs: 0, ve: 1000 }).unwrap();
        assert_eq!(out.result, QueryResult::Count(500));
    }

    #[test]
    fn q3_sum_matches_reference() {
        let mut t = table(LayoutMode::Casper);
        let out = t
            .execute(&HapQuery::Q3 {
                vs: 0,
                ve: 100,
                k: 2,
            })
            .unwrap();
        let want: u64 = (0..50u64)
            .map(|i| {
                let row = HapSchema::narrow().payload_row(i * 2);
                u64::from(row[0]) + u64::from(row[1])
            })
            .sum();
        assert_eq!(out.result, QueryResult::Sum(want));
    }

    #[test]
    fn write_queries_affect_rows() {
        let mut t = table(LayoutMode::Casper);
        let key = 4001;
        let payload = HapSchema::narrow().payload_row(key);
        t.execute(&HapQuery::Q4 { key, payload }).unwrap();
        assert_eq!(t.len(), 2001);
        let out = t.execute(&HapQuery::Q5 { v: key }).unwrap();
        assert_eq!(out.result, QueryResult::Affected(1));
        assert_eq!(t.len(), 2000);
        let out = t.execute(&HapQuery::Q6 { v: 200, vnew: 201 }).unwrap();
        assert_eq!(out.result, QueryResult::Affected(1));
    }

    #[test]
    fn all_modes_agree_on_results() {
        // The six layouts are different physical designs of the same
        // logical table: a mixed workload must produce identical results.
        let mix = Mix::new(MixKind::HybridPointSkewed, HapSchema::narrow(), 2000);
        let queries = mix.generate(400, 99);
        let mut outputs: Vec<Vec<u64>> = Vec::new();
        for mode in LayoutMode::all() {
            let mut t = table(mode);
            let outs = t.execute_all(&queries).unwrap();
            outputs.push(outs.iter().map(|o| o.result.scalar()).collect());
        }
        for pair in outputs.windows(2) {
            assert_eq!(pair[0], pair[1], "modes disagree on query results");
        }
    }

    #[test]
    fn multi_column_sum_agrees_across_modes() {
        // Reference: recompute from the deterministic payload generator.
        let schema = HapSchema::narrow();
        let want: u64 = (0..2000u64)
            .map(|i| i * 2)
            .filter(|&k| (300..900).contains(&k))
            .map(|k| {
                let row = schema.payload_row(k);
                if (100..60000).contains(&row[2]) {
                    u64::from(row[0]) + u64::from(row[1])
                } else {
                    0
                }
            })
            .sum();
        for mode in LayoutMode::all() {
            let mut t = table(mode);
            // Dirty the delta/ghost paths a little first.
            t.execute(&HapQuery::Q4 {
                key: 301,
                payload: schema.payload_row(301),
            })
            .unwrap();
            t.execute(&HapQuery::Q5 { v: 301 }).unwrap();
            let out = t
                .multi_column_sum(300, 900, &[0, 1], 2, 100, 60000)
                .unwrap();
            assert_eq!(out.result, QueryResult::Sum(want), "{mode:?}");
        }
    }

    /// Multi-chunk table (chunk_values 512 → four chunks at 2000 rows) so
    /// batched writes actually fan out across chunk-parallel groups.
    fn multi_chunk_table(mode: LayoutMode) -> Table {
        let gen = WorkloadGenerator::new(HapSchema::narrow(), 2000, KeyDist::Uniform);
        let mut config = EngineConfig::small(mode);
        config.chunk_values = 512;
        Table::load_from_generator(&gen, config)
    }

    #[test]
    fn execute_batch_matches_serial_execution() {
        // Chunk-parallel write batching must be observationally identical
        // to serial execution: same per-query scalars, same final table
        // state, for every layout mode and a write-heavy mixed stream.
        for kind in [MixKind::UpdateOnlySkewed, MixKind::HybridPointSkewed] {
            let mix = Mix::new(kind, HapSchema::narrow(), 2000);
            let queries = mix.generate(600, 7);
            for mode in LayoutMode::all() {
                let mut serial = multi_chunk_table(mode);
                let mut batched = multi_chunk_table(mode);
                let a = serial.execute_all(&queries).unwrap();
                let b = batched.execute_batch(&queries).unwrap();
                assert_eq!(a.len(), b.len());
                for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                    assert_eq!(
                        x.result.scalar(),
                        y.result.scalar(),
                        "{mode:?} {kind:?} query {i} scalar"
                    );
                }
                assert_eq!(serial.len(), batched.len(), "{mode:?} row count");
                // Final state agrees: probe with reads.
                for v in (0..4200).step_by(97) {
                    let qa = serial.execute(&HapQuery::Q2 { vs: v, ve: v + 53 }).unwrap();
                    let qb = batched
                        .execute(&HapQuery::Q2 { vs: v, ve: v + 53 })
                        .unwrap();
                    assert_eq!(qa.result, qb.result, "{mode:?} count at {v}");
                }
            }
        }
    }

    #[test]
    fn execute_batch_pure_write_stream_with_cross_chunk_updates() {
        let mut serial = multi_chunk_table(LayoutMode::Casper);
        let mut batched = multi_chunk_table(LayoutMode::Casper);
        let schema = HapSchema::narrow();
        let mut queries = Vec::new();
        // Interleave inserts/deletes across the key domain with updates
        // that hop between chunks (barrier path).
        for i in 0..200u64 {
            queries.push(HapQuery::Q4 {
                key: 4001 + i * 2,
                payload: schema.payload_row(4001 + i * 2),
            });
            if i % 5 == 0 {
                queries.push(HapQuery::Q6 {
                    v: i * 20,
                    vnew: 3999 - i,
                });
            }
            if i % 7 == 0 {
                queries.push(HapQuery::Q5 { v: i * 14 });
            }
        }
        let a = serial.execute_all(&queries).unwrap();
        let b = batched.execute_batch(&queries).unwrap();
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(x.result, y.result, "query {i}");
        }
        assert_eq!(serial.len(), batched.len());
    }

    /// Regression: `multi_column_sum` used to `.expect()` on hydration
    /// failure, panicking the process on a corrupt persisted chunk. It now
    /// propagates the typed error like `execute`.
    #[test]
    fn multi_column_sum_surfaces_corrupt_chunk_as_error() {
        use crate::column::{ChunkSlot, ChunkedColumn};
        let schema = HapSchema::narrow();
        let slot = ChunkSlot::new_lazy(
            100,
            Box::new(|| {
                Err(StorageError::Corrupt {
                    reason: "checksum mismatch (injected)".to_string(),
                })
            }),
        );
        let column = ChunkedColumn::from_restored(
            vec![slot],
            None,
            EngineConfig::small(LayoutMode::NoOrder),
            schema.payload_cols,
        );
        let t = Table::from_restored(schema, column);
        let out = t.multi_column_sum(0, 1000, &[0, 1], 2, 0, u32::MAX);
        assert!(matches!(
            out,
            Err(StorageError::Corrupt { ref reason }) if reason.contains("injected")
        ));
    }

    #[test]
    fn reader_handle_serves_reads_and_rejects_writes() {
        let mut t = table(LayoutMode::Casper);
        let reader = t.reader();
        let out = reader.execute(&HapQuery::Q2 { vs: 0, ve: 1000 }).unwrap();
        assert_eq!(out.result, QueryResult::Count(500));
        let key = 4001;
        let payload = HapSchema::narrow().payload_row(key);
        t.execute(&HapQuery::Q4 { key, payload }).unwrap();
        // The write published: a fresh pin sees it.
        let out = reader.execute(&HapQuery::Q1 { v: key, k: 1 }).unwrap();
        assert_eq!(out.result.scalar(), 1);
        assert!(matches!(
            reader.execute(&HapQuery::Q5 { v: key }),
            Err(StorageError::InvalidSpec { .. })
        ));
    }

    #[test]
    fn read_only_workload_preserves_len() {
        let mut t = table(LayoutMode::EquiGV);
        let before = t.len();
        for v in (0..4000).step_by(7) {
            t.execute(&HapQuery::Q1 { v, k: 1 }).unwrap();
            t.execute(&HapQuery::Q2 { vs: v, ve: v + 50 }).unwrap();
        }
        assert_eq!(t.len(), before);
    }
}
