//! Minimal offline shim for the subset of the `rand` crate API used by this
//! workspace: `Rng::{gen, gen_range, gen_bool}`, `SeedableRng::seed_from_u64`
//! and `rngs::StdRng` (a xoshiro256++ generator seeded via SplitMix64).
//!
//! Deterministic given a seed, statistically adequate for workload
//! generation and randomized tests. Not cryptographically secure.

use std::ops::{Range, RangeInclusive};

/// Values samplable from the "standard" distribution (`Rng::gen`).
pub trait Standard: Sized {
    /// Produce one value from a 64-bit entropy source.
    fn sample(next: &mut dyn FnMut() -> u64) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample(next: &mut dyn FnMut() -> u64) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample(next: &mut dyn FnMut() -> u64) -> Self {
        (next() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample(next: &mut dyn FnMut() -> u64) -> Self {
        next() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample(next: &mut dyn FnMut() -> u64) -> Self {
                next() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by `Rng::gen_range`. The element type is a trait
/// parameter (as in real rand) so the caller's expected output type drives
/// integer-literal inference, e.g. `let v: u64 = rng.gen_range(0..400);`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample(self, next: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (next() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (next() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample(self, next: &mut dyn FnMut() -> u64) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(next);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    #[inline]
    fn sample(self, next: &mut dyn FnMut() -> u64) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::sample(next);
        self.start + u * (self.end - self.start)
    }
}

/// The `rand::Rng` surface the workspace relies on.
pub trait Rng {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample from the standard distribution (e.g. `f64` in `[0, 1)`).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(&mut || self.next_u64())
    }

    /// Sample uniformly from a range.
    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(&mut || self.next_u64())
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.gen::<f64>() < p
    }
}

/// Seedable generators (`rand::SeedableRng` subset).
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// xoshiro256++ — the shim's stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// One-import convenience, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }
}
