//! Minimal offline shim for the subset of the `criterion` API this
//! workspace's benches use: `criterion_group!` / `criterion_main!`,
//! `Criterion::benchmark_group`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Throughput::Elements` and `Bencher::iter`.
//!
//! Measurement model: after a short warm-up, the harness calibrates a batch
//! size so one batch lasts ≥ ~10 ms, times `sample_count` batches, and
//! reports the median / min / max ns-per-iteration (plus elements/s when a
//! throughput was declared). Simpler than criterion's bootstrap, but stable
//! enough to compare kernels against baselines on the same machine.

use std::time::{Duration, Instant};

/// Identifier for one bench within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `group/<function>/<parameter>` style id.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self(format!("{}/{parameter}", function.into()))
    }

    /// Id rendering just a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

/// Work-per-iteration declaration for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Harness entry point (one per process, built by `criterion_main!`).
#[derive(Debug)]
pub struct Criterion {
    sample_count: u32,
    min_batch: Duration,
    warm_up: Duration,
    /// Smoke mode (real criterion's `--test` flag): run every bench body
    /// exactly once, untimed — CI uses this to exercise bench-only code
    /// paths (e.g. the codec kernels) on every push without paying for a
    /// measurement run.
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_count: 12,
            min_batch: Duration::from_millis(10),
            warm_up: Duration::from_millis(50),
            smoke: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Open a named group of related benches.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }
}

/// A named collection of benches sharing a throughput declaration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare the work one iteration performs.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Override the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_count = n.max(2) as u32;
        self
    }

    /// Run one bench.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), |b| f(b));
    }

    /// Run one bench with an explicit input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id, |b| f(b, input));
    }

    fn run(&mut self, id: BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            config: BenchConfig {
                sample_count: self.criterion.sample_count,
                min_batch: self.criterion.min_batch,
                warm_up: self.criterion.warm_up,
            },
            smoke: self.criterion.smoke,
            result: None,
        };
        f(&mut bencher);
        if self.criterion.smoke {
            println!("{}/{}: ok (smoke)", self.name, id.0);
            return;
        }
        let Some(r) = bencher.result else {
            println!("{}/{}: no measurement taken", self.name, id.0);
            return;
        };
        let mut line = format!(
            "{}/{}: time [{} {} {}]",
            self.name,
            id.0,
            fmt_ns(r.min_ns),
            fmt_ns(r.median_ns),
            fmt_ns(r.max_ns)
        );
        if let Some(t) = self.throughput {
            let (work, unit) = match t {
                Throughput::Elements(n) => (n as f64, "elem/s"),
                Throughput::Bytes(n) => (n as f64, "B/s"),
            };
            if r.median_ns > 0.0 {
                line.push_str(&format!("  thrpt {:.3e} {unit}", work * 1e9 / r.median_ns));
            }
        }
        println!("{line}");
    }

    /// End the group (kept for API compatibility; reporting is immediate).
    pub fn finish(self) {}
}

#[derive(Debug, Clone, Copy)]
struct BenchConfig {
    sample_count: u32,
    min_batch: Duration,
    warm_up: Duration,
}

#[derive(Debug, Clone, Copy)]
struct Measurement {
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
}

/// Timing context passed to each bench closure.
pub struct Bencher {
    config: BenchConfig,
    smoke: bool,
    result: Option<Measurement>,
}

impl Bencher {
    /// Measure a routine. The routine's return value is black-boxed so the
    /// optimizer cannot elide the measured work.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        if self.smoke {
            // `--test` mode: exercise the body once, skip all timing.
            std::hint::black_box(routine());
            return;
        }
        // Warm up and estimate per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.config.warm_up || warm_iters < 10 {
            std::hint::black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000_000 {
                break;
            }
        }
        let est_per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let batch = ((self.config.min_batch.as_secs_f64() / est_per_iter.max(1e-9)) as u64)
            .clamp(1, 1_000_000_000);

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.config.sample_count as usize);
        for _ in 0..self.config.sample_count {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            samples_ns.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        self.result = Some(Measurement {
            median_ns: samples_ns[samples_ns.len() / 2],
            min_ns: samples_ns[0],
            max_ns: *samples_ns.last().expect("non-empty"),
        });
    }
}

/// Opaque value barrier (re-exported for criterion API compatibility).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// Bundle bench functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes `--bench` (and possibly filters) to harness=false
            // bench binaries; this harness runs everything unconditionally.
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            sample_count: 3,
            min_batch: Duration::from_micros(200),
            warm_up: Duration::from_micros(200),
            smoke: false,
        };
        let mut group = c.benchmark_group("t");
        group.throughput(Throughput::Elements(1));
        let mut acc = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                acc = acc.wrapping_add(1);
                acc
            })
        });
        group.finish();
        assert!(acc > 0);
    }

    #[test]
    fn smoke_mode_runs_body_exactly_once() {
        let mut c = Criterion {
            sample_count: 3,
            min_batch: Duration::from_micros(200),
            warm_up: Duration::from_micros(200),
            smoke: true,
        };
        let mut group = c.benchmark_group("t");
        let mut runs = 0u64;
        group.bench_function("once", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::from_parameter(64).0, "64");
        assert_eq!(BenchmarkId::new("f", 2).0, "f/2");
    }
}
