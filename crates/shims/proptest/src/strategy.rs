//! Value-generation strategies (no shrinking — see the crate docs).

use rand::prelude::*;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate an intermediate value, then generate from a strategy
    /// derived from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng: &mut StdRng| self.generate(rng)))
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut StdRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice among several strategies (the `prop_oneof!` backend).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from type-erased arms.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let arm = rng.gen_range(0..self.arms.len());
        self.arms[arm].generate(rng)
    }
}

/// Always produce a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_flat_map` combinator.
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        let mid = self.inner.generate(rng);
        (self.f)(mid).generate(rng)
    }
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[inline]
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    #[inline]
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over the full domain of `T`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The `proptest::prelude::any` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

/// Length specification for [`crate::collection::vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Inclusive lower bound.
    pub lo: usize,
    /// Exclusive upper bound.
    pub hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        Self {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy producing vectors (see [`crate::collection::vec`]).
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    /// Element strategy.
    pub element: S,
    /// Length range.
    pub size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = if self.size.lo + 1 >= self.size.hi {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = (0u64..5).generate(&mut r);
            assert!(v < 5);
            let (a, b) = (0usize..3, 10i64..=12).generate(&mut r);
            assert!(a < 3 && (10..=12).contains(&b));
        }
    }

    #[test]
    fn map_flat_map_just_compose() {
        let mut r = rng();
        let s = (1usize..4).prop_flat_map(|n| (Just(n), crate::collection::vec(0u64..10, n)));
        for _ in 0..200 {
            let (n, v) = s.generate(&mut r);
            assert_eq!(v.len(), n);
        }
        let doubled = (0u32..10).prop_map(|x| x * 2);
        assert_eq!(doubled.generate(&mut r) % 2, 0);
    }

    #[test]
    fn union_picks_every_arm() {
        let mut r = rng();
        let u = Union::new(vec![
            Just(1u8).boxed(),
            Just(2u8).boxed(),
            Just(3u8).boxed(),
        ]);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[u.generate(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn vec_strategy_respects_exact_and_ranged_sizes() {
        let mut r = rng();
        let exact = crate::collection::vec(any::<u16>(), 7usize);
        assert_eq!(exact.generate(&mut r).len(), 7);
        let ranged = crate::collection::vec(any::<bool>(), 2..5);
        for _ in 0..100 {
            let len = ranged.generate(&mut r).len();
            assert!((2..5).contains(&len));
        }
    }
}
