//! Deterministic case runner (`proptest::test_runner` subset).

use rand::prelude::*;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Why one generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property does not hold for this input.
    Fail(String),
    /// The input should be discarded without counting as a failure.
    Reject(String),
}

impl TestCaseError {
    /// A property violation.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// An input rejection.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Execute `body` once per case with a deterministic per-case RNG, panicking
/// (with a replayable seed) on the first failure.
pub fn run_cases<F>(config: ProptestConfig, name: &str, mut body: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let base = std::env::var("PROPTEST_BASE_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0x5EED_CA5E_D00D_F00Du64);
    let mut executed = 0u32;
    let mut attempt = 0u64;
    while executed < config.cases {
        let seed = base ^ fnv1a(name) ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        attempt += 1;
        assert!(
            attempt < 16 * u64::from(config.cases) + 256,
            "proptest '{name}': too many rejected cases"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        match body(&mut rng) {
            Ok(()) => executed += 1,
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(reason)) => panic!(
                "proptest '{name}' failed at case {executed} \
                 (replay with PROPTEST_BASE_SEED={base} — case seed {seed:#x}):\n{reason}"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_when_property_holds() {
        let mut count = 0;
        run_cases(ProptestConfig::with_cases(10), "ok", |_| {
            count += 1;
            Ok(())
        });
        assert_eq!(count, 10);
    }

    #[test]
    #[should_panic(expected = "replay with")]
    fn panics_with_seed_on_failure() {
        run_cases(ProptestConfig::with_cases(5), "bad", |_| {
            Err(TestCaseError::fail("nope"))
        });
    }

    #[test]
    fn rejections_do_not_count_as_cases() {
        let mut executed = 0;
        let mut toggle = false;
        run_cases(ProptestConfig::with_cases(8), "rej", |_| {
            toggle = !toggle;
            if toggle {
                Err(TestCaseError::reject("skip"))
            } else {
                executed += 1;
                Ok(())
            }
        });
        assert_eq!(executed, 8);
    }
}
