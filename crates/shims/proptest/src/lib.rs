//! Minimal offline shim for the subset of `proptest` this workspace uses.
//!
//! Supported surface: the `proptest!` macro (block form with
//! `#![proptest_config(..)]` and the inline closure form), `prop_oneof!`,
//! `prop_assert!`/`prop_assert_eq!`, `Strategy` with `prop_map` /
//! `prop_flat_map` / `boxed`, `Just`, `any::<T>()`, range and tuple
//! strategies, and `proptest::collection::vec`.
//!
//! Semantics differ from real proptest in one deliberate way: there is **no
//! shrinking**. Every case is generated from a deterministic per-test seed
//! (`PROPTEST_BASE_SEED` env var overrides the base), and a failure panics
//! with the case's seed so it can be replayed exactly.

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`proptest::collection` subset).
pub mod collection {
    use crate::strategy::{SizeRange, VecStrategy};

    /// Strategy producing `Vec`s of `element` with a length drawn from
    /// `size` (an exact `usize`, a `Range`, or a `RangeInclusive`).
    pub fn vec<S>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything a test needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Run property tests. Two forms:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_test(x in 0u64..10, v in proptest::collection::vec(any::<u16>(), 1..9)) {
///         prop_assert!(x < 10);
///     }
/// }
/// proptest!(|(x in 0u64..10)| { prop_assert!(x < 10); });
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                $crate::test_runner::run_cases(__cfg, stringify!($name), |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    #[allow(unreachable_code)]
                    let __out: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    __out
                });
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strat),+) $body)*
        }
    };
    (|($($arg:pat in $strat:expr),+ $(,)?)| $body:block $(,)?) => {
        $crate::test_runner::run_cases(
            $crate::test_runner::ProptestConfig::default(),
            "inline",
            |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                #[allow(unreachable_code)]
                let __out: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                __out
            },
        );
    };
}

/// Uniform choice between several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Assert a condition inside a proptest body, failing the case (not the
/// whole process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        $crate::prop_assert_eq!($left, $right, "assertion failed: `(left == right)`")
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __left = &$left;
        let __right = &$right;
        if !(*__left == *__right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: `{:?}`\n right: `{:?}`",
                    format!($($fmt)+),
                    __left,
                    __right
                ),
            ));
        }
    }};
}
