//! Minimal offline shim for the subset of `parking_lot` this workspace
//! uses: a `Mutex` whose `lock()` returns the guard directly (no poison
//! `Result`), plus a matching `RwLock`. Backed by `std::sync`; a poisoned
//! std lock is transparently recovered, matching parking_lot's
//! no-poisoning semantics.

use std::sync::{MutexGuard, PoisonError, RwLockReadGuard, RwLockWriteGuard};

/// `parking_lot::Mutex` lookalike over `std::sync::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// `parking_lot::RwLock` lookalike over `std::sync::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn lock_recovers_from_poison() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1; // must not panic
        assert_eq!(*m.lock(), 1);
    }
}
