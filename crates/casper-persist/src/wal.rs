//! The append-only write-ahead log.
//!
//! Q4/Q5/Q6 writes are recorded as framed, CRC-guarded records and sealed
//! into *batches* by a commit marker — the group-commit unit. A batch
//! becomes durable with a single `write + fsync` when it is sealed;
//! everything buffered but unsealed is intentionally lost on a crash
//! (it was never acknowledged). Replay applies exactly the committed
//! batches, in order, and ignores the torn tail: the first frame that is
//! short, checksum-damaged, non-monotonic or simply uncommitted ends the
//! scan, and the recovered file is truncated back to the last sealed batch
//! so the writer appends from a clean boundary.
//!
//! ## Record framing
//!
//! ```text
//! frame  := len:u32 | crc32(body):u32 | body
//! body   := lsn:u64 | kind:u8 | payload
//! kind 1 := insert  | key:u64 | payload_len:u64 | u32 * payload_len
//! kind 2 := delete  | key:u64
//! kind 3 := update  | old:u64 | new:u64
//! kind 4 := commit  | n_records:u64           (seals the preceding records)
//! ```
//!
//! LSNs are strictly increasing across the whole log. The snapshot records
//! the highest LSN it folded in (`durable_lsn`); replay skips batches at or
//! below it, which is what makes replaying the same WAL twice a no-op.

use crate::codec::{ByteReader, ByteWriter};
use crate::crc::crc32;
use crate::vfs::{Vfs, VfsFile, VfsHandle};
use crate::PersistError;
use casper_engine::Table;
use casper_obs::{CounterDef, HistogramDef};
use casper_storage::OpCost;
use casper_workload::HapQuery;
use std::io::SeekFrom;
use std::path::{Path, PathBuf};

// Group-commit telemetry: every seal is one fsync, so occupancy (records
// per sealed batch) and fsync latency together describe the amortization.
static OBS_FSYNC_NS: HistogramDef = HistogramDef::new("casper_wal_fsync_ns");
static OBS_FSYNCS: CounterDef = CounterDef::new("casper_wal_fsyncs_total");
static OBS_FSYNC_FAILURES: CounterDef = CounterDef::new("casper_wal_fsync_failures_total");
static OBS_BATCH_RECORDS: HistogramDef = HistogramDef::new("casper_wal_group_commit_records");

/// One logged write operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// HAP Q4.
    Insert {
        /// Row key.
        key: u64,
        /// Full payload row.
        payload: Vec<u32>,
    },
    /// HAP Q5.
    Delete {
        /// Key whose rows are removed.
        key: u64,
    },
    /// HAP Q6.
    Update {
        /// Key to rewrite.
        old: u64,
        /// Replacement key.
        new: u64,
    },
}

impl WalOp {
    /// The WAL image of a write query; `None` for reads (reads are not
    /// logged).
    pub fn from_query(q: &HapQuery) -> Option<Self> {
        match q {
            HapQuery::Q4 { key, payload } => Some(WalOp::Insert {
                key: *key,
                payload: payload.clone(),
            }),
            HapQuery::Q5 { v } => Some(WalOp::Delete { key: *v }),
            HapQuery::Q6 { v, vnew } => Some(WalOp::Update {
                old: *v,
                new: *vnew,
            }),
            _ => None,
        }
    }

    /// The query that replays this record.
    pub fn to_query(&self) -> HapQuery {
        match self {
            WalOp::Insert { key, payload } => HapQuery::Q4 {
                key: *key,
                payload: payload.clone(),
            },
            WalOp::Delete { key } => HapQuery::Q5 { v: *key },
            WalOp::Update { old, new } => HapQuery::Q6 {
                v: *old,
                vnew: *new,
            },
        }
    }
}

/// A committed (sealed) batch recovered from the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalBatch {
    /// LSN of the commit marker that sealed the batch.
    pub commit_lsn: u64,
    /// The batch's operations, in log order.
    pub ops: Vec<WalOp>,
}

/// Outcome of scanning a log image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalScan {
    /// Committed batches, in order.
    pub batches: Vec<WalBatch>,
    /// Byte length of the valid committed prefix; everything past it is
    /// torn tail (partial frame, checksum damage, or an unsealed batch)
    /// and gets truncated on recovery.
    pub valid_len: usize,
    /// Highest LSN observed in a committed batch (0 when none).
    pub last_lsn: u64,
}

const KIND_INSERT: u8 = 1;
const KIND_DELETE: u8 = 2;
const KIND_UPDATE: u8 = 3;
const KIND_COMMIT: u8 = 4;

fn encode_frame(out: &mut Vec<u8>, body: &[u8]) {
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(body).to_le_bytes());
    out.extend_from_slice(body);
}

fn encode_op_body(lsn: u64, op: &WalOp) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u64(lsn);
    match op {
        WalOp::Insert { key, payload } => {
            w.u8(KIND_INSERT);
            w.u64(*key);
            w.vec_u32(payload);
        }
        WalOp::Delete { key } => {
            w.u8(KIND_DELETE);
            w.u64(*key);
        }
        WalOp::Update { old, new } => {
            w.u8(KIND_UPDATE);
            w.u64(*old);
            w.u64(*new);
        }
    }
    w.into_bytes()
}

fn encode_commit_body(lsn: u64, n_records: u64) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u64(lsn);
    w.u8(KIND_COMMIT);
    w.u64(n_records);
    w.into_bytes()
}

/// Parsed frame: `(lsn, Commit(n) | Op)`.
enum Frame {
    Op(WalOp),
    Commit(u64),
}

/// Try to parse one frame at `bytes[pos..]`. Returns `None` on any damage
/// (that ends the scan — the tail is torn, not an error).
fn parse_frame(bytes: &[u8], pos: usize) -> Option<(u64, Frame, usize)> {
    let header = bytes.get(pos..pos + 8)?;
    let len = u32::from_le_bytes(header[..4].try_into().ok()?) as usize;
    let want_crc = u32::from_le_bytes(header[4..8].try_into().ok()?);
    let body = bytes.get(pos + 8..pos + 8 + len)?;
    if crc32(body) != want_crc {
        return None;
    }
    let mut r = ByteReader::new(body);
    let lsn = r.u64().ok()?;
    let frame = match r.u8().ok()? {
        KIND_INSERT => {
            let key = r.u64().ok()?;
            let payload = r.vec_u32().ok()?;
            Frame::Op(WalOp::Insert { key, payload })
        }
        KIND_DELETE => Frame::Op(WalOp::Delete { key: r.u64().ok()? }),
        KIND_UPDATE => Frame::Op(WalOp::Update {
            old: r.u64().ok()?,
            new: r.u64().ok()?,
        }),
        KIND_COMMIT => Frame::Commit(r.u64().ok()?),
        _ => return None,
    };
    r.finish().ok()?;
    Some((lsn, frame, pos + 8 + len))
}

/// Scan a raw log image into its committed batches (pure function — the
/// crash-window property tests drive it over every possible truncation).
pub fn scan(bytes: &[u8]) -> WalScan {
    let mut batches = Vec::new();
    let mut pending: Vec<WalOp> = Vec::new();
    let mut pos = 0usize;
    let mut valid_len = 0usize;
    let mut last_lsn = 0u64;
    let mut expected_lsn: Option<u64> = None;
    while let Some((lsn, frame, next)) = parse_frame(bytes, pos) {
        // LSNs must advance by exactly one; anything else is damage.
        if expected_lsn.is_some_and(|e| lsn != e) {
            break;
        }
        expected_lsn = Some(lsn + 1);
        match frame {
            Frame::Op(op) => pending.push(op),
            Frame::Commit(n_records) => {
                if n_records as usize != pending.len() {
                    break; // commit marker disagrees with its batch
                }
                batches.push(WalBatch {
                    commit_lsn: lsn,
                    ops: std::mem::take(&mut pending),
                });
                valid_len = next;
                last_lsn = lsn;
            }
        }
        pos = next;
    }
    WalScan {
        batches,
        valid_len,
        last_lsn,
    }
}

/// Replay committed batches with `commit_lsn > after_lsn` into a table.
/// Returns the number of operations applied and the block-access cost —
/// replaying twice with the same watermark applies nothing the second
/// time.
pub fn replay(
    scan: &WalScan,
    table: &mut Table,
    after_lsn: u64,
) -> Result<(u64, OpCost), PersistError> {
    replay_upto(scan, table, after_lsn, u64::MAX)
}

/// [`replay`] bounded above: only batches with
/// `after_lsn < commit_lsn <= upto_lsn` are applied. Point-in-time restore
/// uses the upper bound to stop at a historical LSN; batch granularity is
/// exact because group commit never acknowledged anything between commit
/// boundaries.
pub fn replay_upto(
    scan: &WalScan,
    table: &mut Table,
    after_lsn: u64,
    upto_lsn: u64,
) -> Result<(u64, OpCost), PersistError> {
    let mut applied = 0u64;
    let mut cost = OpCost::default();
    for batch in &scan.batches {
        if batch.commit_lsn <= after_lsn || batch.commit_lsn > upto_lsn {
            continue;
        }
        for op in &batch.ops {
            let out = table.execute(&op.to_query())?;
            cost.absorb(out.cost);
            applied += 1;
        }
    }
    Ok((applied, cost))
}

/// The append side of the log: buffers records in memory and makes them
/// durable batch-at-a-time (`seal`), with a single write + fsync per batch
/// — the group-commit discipline.
#[derive(Debug)]
pub struct Wal {
    file: VfsFile,
    path: PathBuf,
    next_lsn: u64,
    /// Encoded frames of the open (unsealed) batch.
    staged: Vec<u8>,
    staged_records: u64,
    bytes_on_disk: u64,
    /// Set when a seal's fsync failed: the durability of that batch (and
    /// of the file's tail) is unknown — the kernel may have dropped the
    /// dirty pages while the page cache still reads them back clean
    /// (fsyncgate). A poisoned log is never written or fsynced again;
    /// the owner must rotate to a fresh file and cover the ghost LSNs
    /// with a checkpoint.
    poisoned: bool,
}

impl Wal {
    /// Create a fresh, empty log. Fails if the file already exists.
    pub fn create(vfs: &VfsHandle, path: &Path, next_lsn: u64) -> Result<Self, PersistError> {
        let file = vfs.create_new(path)?;
        Ok(Self {
            file,
            path: path.to_path_buf(),
            next_lsn,
            staged: Vec::new(),
            staged_records: 0,
            bytes_on_disk: 0,
            poisoned: false,
        })
    }

    /// Recover an existing log: scan it, truncate the torn tail, and
    /// position the writer after the last committed batch. Returns the
    /// writer plus the scan (for replay).
    pub fn recover(vfs: &VfsHandle, path: &Path) -> Result<(Self, WalScan), PersistError> {
        let mut file = vfs.open_rw(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let scan_result = scan(&bytes);
        if scan_result.valid_len < bytes.len() {
            // Torn-tail truncation: drop everything past the last sealed
            // batch so new frames never interleave with damaged ones.
            file.set_len(scan_result.valid_len as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(scan_result.valid_len as u64))?;
        let next_lsn = scan_result
            .batches
            .last()
            .map_or(1, |b| b.commit_lsn + 1)
            .max(1);
        Ok((
            Self {
                file,
                path: path.to_path_buf(),
                next_lsn,
                staged: Vec::new(),
                staged_records: 0,
                bytes_on_disk: scan_result.valid_len as u64,
                poisoned: false,
            },
            scan_result,
        ))
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records staged in the open batch.
    pub fn staged_records(&self) -> u64 {
        self.staged_records
    }

    /// Durable (sealed) bytes on disk.
    pub fn durable_bytes(&self) -> u64 {
        self.bytes_on_disk
    }

    /// The LSN the next record will receive.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Raise the LSN floor (an empty post-checkpoint log must continue the
    /// sequence after the LSNs its snapshot already folded in).
    pub fn ensure_lsn_at_least(&mut self, lsn: u64) {
        debug_assert_eq!(self.staged_records, 0, "raise the floor before staging");
        self.next_lsn = self.next_lsn.max(lsn);
    }

    /// Stage one operation into the open batch (not yet durable).
    pub fn stage(&mut self, op: &WalOp) {
        let body = encode_op_body(self.next_lsn, op);
        self.next_lsn += 1;
        encode_frame(&mut self.staged, &body);
        self.staged_records += 1;
    }

    /// Discard the open batch (transaction abort / failed validation):
    /// nothing of it was written to disk. Staged LSNs are re-used by the
    /// next batch, keeping the on-disk sequence gapless.
    pub fn discard_staged(&mut self) {
        self.next_lsn -= self.staged_records;
        self.staged.clear();
        self.staged_records = 0;
    }

    /// Seal the open batch: append a commit marker and make the whole batch
    /// durable with one write + fsync. No-op when nothing is staged.
    /// Returns the commit LSN (0 when empty).
    ///
    /// Failure-retry safe: the commit frame is assembled outside `staged`
    /// and all writer state advances only after the fsync, so a failed
    /// seal (e.g. ENOSPC mid-write) leaves the batch intact for a retry;
    /// the retry first truncates back to the last durable offset, so bytes
    /// a failed attempt may have landed can never precede — and thereby
    /// corrupt — an acknowledged batch.
    /// The retry exception: a failed **fsync** (as opposed to a failed
    /// write) poisons the log permanently — see [`Wal::poisoned`].
    pub fn seal(&mut self) -> Result<u64, PersistError> {
        if self.staged_records == 0 {
            return Ok(0);
        }
        if self.poisoned {
            return Err(PersistError::Io(std::io::Error::other(
                "WAL is poisoned by an earlier fsync failure; rotate before writing",
            )));
        }
        let commit_lsn = self.next_lsn;
        OBS_BATCH_RECORDS.record(self.staged_records);
        let body = encode_commit_body(commit_lsn, self.staged_records);
        let mut commit_frame = Vec::new();
        encode_frame(&mut commit_frame, &body);
        // Discard any partial garbage from a previously failed seal and
        // re-position at the durable boundary (cheap next to the fsync).
        self.file.set_len(self.bytes_on_disk)?;
        self.file.seek(SeekFrom::Start(self.bytes_on_disk))?;
        self.file.write_all(&self.staged)?;
        self.file.write_all(&commit_frame)?;
        let fsync_start = casper_obs::enabled().then(std::time::Instant::now);
        let synced = self.file.sync_data();
        if let Some(t) = fsync_start {
            OBS_FSYNC_NS.record(t.elapsed().as_nanos() as u64);
        }
        OBS_FSYNCS.inc();
        if let Err(e) = synced {
            OBS_FSYNC_FAILURES.inc();
            // fsyncgate: after a failed fsync the kernel may have dropped
            // the dirty pages while marking them clean, so a *retried*
            // fsync on this fd can succeed without making the data
            // durable. The batch's durability is now unknown — poison the
            // log so it is never written or fsynced again. The owner must
            // rotate and cover the ghost LSNs with a checkpoint before
            // acknowledging anything.
            self.poisoned = true;
            return Err(e.into());
        }
        self.next_lsn = commit_lsn + 1;
        self.bytes_on_disk += (self.staged.len() + commit_frame.len()) as u64;
        self.staged.clear();
        self.staged_records = 0;
        Ok(commit_lsn)
    }

    /// True when an earlier seal's fsync failed, leaving the log tail with
    /// unknown durability. A poisoned log refuses further seals; the owner
    /// rotates to a fresh file and checkpoints over the ghost LSNs.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// Best-effort removal of the possibly-ghost tail of a poisoned log:
    /// truncate a *fresh* descriptor back to the last acknowledged-durable
    /// boundary and sync it, so a later reader of this (now abandoned)
    /// file cannot observe the batch whose fsync failed. Errors are
    /// ignored — the file is about to be superseded by rotation, and the
    /// recovery checkpoint's watermark already skips the ghost LSNs.
    pub(crate) fn truncate_tail(&self, vfs: &VfsHandle) {
        if let Ok(mut f) = vfs.open_rw(&self.path) {
            let _ = f.set_len(self.bytes_on_disk);
            let _ = f.sync_data();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops() -> Vec<WalOp> {
        vec![
            WalOp::Insert {
                key: 11,
                payload: vec![1, 2, 3],
            },
            WalOp::Delete { key: 40 },
            WalOp::Update { old: 7, new: 9 },
        ]
    }

    fn encode_batches(batches: &[Vec<WalOp>]) -> Vec<u8> {
        let mut bytes = Vec::new();
        let mut lsn = 1u64;
        for batch in batches {
            let mut n = 0u64;
            for op in batch {
                encode_frame(&mut bytes, &encode_op_body(lsn, op));
                lsn += 1;
                n += 1;
            }
            encode_frame(&mut bytes, &encode_commit_body(lsn, n));
            lsn += 1;
        }
        bytes
    }

    #[test]
    fn scan_round_trips_committed_batches() {
        let batches = vec![ops(), vec![WalOp::Delete { key: 99 }]];
        let bytes = encode_batches(&batches);
        let s = scan(&bytes);
        assert_eq!(s.batches.len(), 2);
        assert_eq!(s.batches[0].ops, ops());
        assert_eq!(s.valid_len, bytes.len());
        // Batch 1 uses LSNs 1..=3 + commit 4; batch 2 uses 5 + commit 6.
        assert_eq!(s.last_lsn, 6);
    }

    #[test]
    fn uncommitted_tail_is_invisible() {
        let mut bytes = encode_batches(&[ops()]);
        let sealed = bytes.len();
        // Stage two more records without a commit marker.
        encode_frame(&mut bytes, &encode_op_body(5, &WalOp::Delete { key: 1 }));
        encode_frame(&mut bytes, &encode_op_body(6, &WalOp::Delete { key: 2 }));
        let s = scan(&bytes);
        assert_eq!(s.batches.len(), 1);
        assert_eq!(s.valid_len, sealed);
    }

    #[test]
    fn corrupt_frame_ends_scan_at_last_commit() {
        let mut bytes = encode_batches(&[ops(), ops()]);
        let s_clean = scan(&bytes);
        assert_eq!(s_clean.batches.len(), 2);
        // Damage a byte inside the second batch's first record.
        let first_commit_end = {
            let one = encode_batches(&[ops()]);
            one.len()
        };
        bytes[first_commit_end + 12] ^= 0xFF;
        let s = scan(&bytes);
        assert_eq!(s.batches.len(), 1);
        assert_eq!(s.valid_len, first_commit_end);
    }

    #[test]
    fn commit_count_mismatch_rejected() {
        let mut bytes = Vec::new();
        encode_frame(&mut bytes, &encode_op_body(1, &WalOp::Delete { key: 5 }));
        encode_frame(&mut bytes, &encode_commit_body(2, 7)); // claims 7 records
        let s = scan(&bytes);
        assert!(s.batches.is_empty());
        assert_eq!(s.valid_len, 0);
    }

    #[test]
    fn op_query_round_trip() {
        for op in ops() {
            assert_eq!(WalOp::from_query(&op.to_query()).as_ref(), Some(&op));
        }
        assert_eq!(WalOp::from_query(&HapQuery::Q2 { vs: 0, ve: 9 }), None);
    }
}
