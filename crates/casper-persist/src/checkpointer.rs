//! The background checkpointer: a dedicated thread that serializes and
//! fsyncs checkpoint jobs off the commit path.
//!
//! The foreground (`DurableTable`) **captures** a checkpoint under its own
//! short pause — seal the WAL batch, rotate to a fresh WAL file, clone the
//! dirty chunk stores (a memcpy, no serialization) — and hands the job
//! here. The thread then pays the expensive part alone: encoding the dirty
//! records, writing + fsyncing the segment, writing the manifest, and
//! swinging `CURRENT`. Commits meanwhile continue against the *new* WAL,
//! so the only fsync left on the commit path is the group-commit seal they
//! already pay.
//!
//! ## Locking contract
//!
//! `DurableTable` is externally synchronized (`&mut self`), so the
//! "lock" is the capture itself: the foreground clones dirty state while
//! no query runs, then never shares live table memory with the thread.
//! At most one job is in flight; completion is applied by the foreground
//! (`try_recv` on every seal, blocking `recv` for the synchronous
//! `checkpoint()` / `optimize()` / drop paths). Crash at any point is
//! safe: until `CURRENT` swings, recovery resolves the previous manifest
//! plus the intact WAL chain (the rotated-out WAL file is only pruned
//! *after* the swing).

use crate::incremental::{run_checkpoint, CheckpointJob, Manifest};
use crate::PersistError;
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::thread::JoinHandle;

/// Handle to the checkpointer thread.
#[derive(Debug)]
pub(crate) struct Checkpointer {
    jobs: Option<Sender<CheckpointJob>>,
    done: Receiver<Result<Manifest, PersistError>>,
    handle: Option<JoinHandle<()>>,
}

fn thread_died() -> PersistError {
    PersistError::Storage(casper_storage::StorageError::Corrupt {
        reason: "checkpointer thread died (panicked or channel closed)".into(),
    })
}

impl Checkpointer {
    /// Spawn the worker thread.
    pub fn spawn() -> Self {
        let (jobs_tx, jobs_rx) = std::sync::mpsc::channel::<CheckpointJob>();
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        let handle = std::thread::Builder::new()
            .name("casper-checkpointer".into())
            .spawn(move || {
                while let Ok(job) = jobs_rx.recv() {
                    let result = run_checkpoint(&job);
                    if done_tx.send(result).is_err() {
                        break; // foreground gone; nothing to report to
                    }
                }
            })
            .expect("spawn checkpointer thread");
        Self {
            jobs: Some(jobs_tx),
            done: done_rx,
            handle: Some(handle),
        }
    }

    /// Queue a job (the caller tracks that exactly one is in flight).
    pub fn submit(&self, job: CheckpointJob) -> Result<(), PersistError> {
        self.jobs
            .as_ref()
            .expect("sender lives until drop")
            .send(job)
            .map_err(|_| thread_died())
    }

    /// Non-blocking poll for a finished job.
    pub fn try_recv(&self) -> Option<Result<Manifest, PersistError>> {
        match self.done.try_recv() {
            Ok(r) => Some(r),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => Some(Err(thread_died())),
        }
    }

    /// Block until the in-flight job finishes.
    pub fn recv(&self) -> Result<Manifest, PersistError> {
        self.done.recv().map_err(|_| thread_died())?
    }
}

impl Drop for Checkpointer {
    fn drop(&mut self) {
        // Closing the job channel ends the worker loop; join so no write
        // races the process teardown.
        self.jobs.take();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}
