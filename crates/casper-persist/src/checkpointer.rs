//! The background checkpointer: a dedicated thread that serializes and
//! fsyncs checkpoint jobs off the commit path.
//!
//! The foreground (`DurableTable`) **captures** a checkpoint under its own
//! short pause — seal the WAL batch, rotate to a fresh WAL file, clone the
//! dirty chunk stores (a memcpy, no serialization) — and hands the job
//! here. The thread then pays the expensive part alone: encoding the dirty
//! records, writing + fsyncing the segment, writing the manifest, and
//! swinging `CURRENT`. Commits meanwhile continue against the *new* WAL,
//! so the only fsync left on the commit path is the group-commit seal they
//! already pay.
//!
//! ## Retry discipline
//!
//! Transient I/O failures (ENOSPC that an operator may clear, a flaky
//! fsync) are retried with bounded exponential backoff before the failure
//! surfaces to the foreground. Retrying the *whole job* is safe because
//! `run_checkpoint` re-creates the segment file with a fresh descriptor
//! and rewrites it end to end on every attempt — no retried fsync ever
//! runs against a descriptor whose dirty pages a failed fsync may have
//! dropped (the fsyncgate trap). Corruption and transaction errors are
//! permanent and fail immediately.
//!
//! ## Locking contract
//!
//! `DurableTable` is externally synchronized (`&mut self`), so the
//! "lock" is the capture itself: the foreground clones dirty state while
//! no query runs, then never shares live table memory with the thread.
//! At most one job is in flight; completion is applied by the foreground
//! (`try_recv` on every seal, blocking `recv` for the synchronous
//! `checkpoint()` / `optimize()` / drop paths). Crash at any point is
//! safe: until `CURRENT` swings, recovery resolves the previous manifest
//! plus the intact WAL chain (the rotated-out WAL file is only pruned —
//! or, with archiving on, *retired* into the archive — *after* the
//! swing). Each job carries the table's shared backup pins, so the
//! post-swing prune/retire running on this thread never removes a file an
//! in-flight `BackupJob` is still copying; `begin_backup`'s fence
//! (`finish_inflight` before pinning) closes the race in the other
//! direction.

use crate::incremental::{run_checkpoint, CheckpointJob, Manifest};
use crate::PersistError;
use casper_obs::HistogramDef;
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::thread::JoinHandle;
use std::time::Duration;

/// End-to-end duration of one checkpoint job, retries and backoff
/// included (the number an operator actually waits on).
static OBS_CP_DURATION: HistogramDef = HistogramDef::new("casper_checkpoint_duration_ns");

/// How a checkpoint job is retried on transient I/O failure.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RetryPolicy {
    /// Total attempts (1 = no retry).
    pub attempts: u32,
    /// Sleep before the first retry; doubles per retry, capped at 1s.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 1,
            backoff: Duration::from_millis(10),
        }
    }
}

const BACKOFF_CAP: Duration = Duration::from_secs(1);

/// Outcome of one (possibly retried) checkpoint job.
#[derive(Debug)]
pub(crate) struct Completion {
    /// The final result after retries.
    pub result: Result<Manifest, PersistError>,
    /// Attempts actually made (≥ 1; > 1 means retries happened).
    pub attempts: u32,
}

/// True for failures worth retrying: raw I/O errors (ENOSPC, EIO, a failed
/// fsync) can clear; corruption and transaction errors cannot.
fn transient(e: &PersistError) -> bool {
    matches!(e, PersistError::Io(_))
}

/// Run `job` under `policy`: retry transient failures with doubling,
/// capped backoff. See the module docs for why whole-job retry is safe.
pub(crate) fn run_with_retry(job: &CheckpointJob, policy: &RetryPolicy) -> Completion {
    let started = casper_obs::enabled().then(std::time::Instant::now);
    let completion = run_with_retry_inner(job, policy);
    if let Some(t) = started {
        OBS_CP_DURATION.record(t.elapsed().as_nanos() as u64);
    }
    completion
}

fn run_with_retry_inner(job: &CheckpointJob, policy: &RetryPolicy) -> Completion {
    let attempts_allowed = policy.attempts.max(1);
    let mut backoff = policy.backoff;
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        match run_checkpoint(job) {
            Ok(m) => {
                return Completion {
                    result: Ok(m),
                    attempts,
                }
            }
            Err(e) if transient(&e) && attempts < attempts_allowed => {
                std::thread::sleep(backoff.min(BACKOFF_CAP));
                backoff = (backoff * 2).min(BACKOFF_CAP);
            }
            Err(e) => {
                return Completion {
                    result: Err(e),
                    attempts,
                }
            }
        }
    }
}

/// Handle to the checkpointer thread.
#[derive(Debug)]
pub(crate) struct Checkpointer {
    jobs: Option<Sender<CheckpointJob>>,
    done: Receiver<Completion>,
    handle: Option<JoinHandle<()>>,
}

fn thread_died() -> PersistError {
    PersistError::Storage(casper_storage::StorageError::Corrupt {
        reason: "checkpointer thread died (panicked or channel closed)".into(),
    })
}

impl Checkpointer {
    /// Spawn the worker thread. Fails (typed, not a panic) if the OS
    /// refuses the thread.
    pub fn spawn(policy: RetryPolicy) -> Result<Self, PersistError> {
        let (jobs_tx, jobs_rx) = std::sync::mpsc::channel::<CheckpointJob>();
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        let handle = std::thread::Builder::new()
            .name("casper-checkpointer".into())
            .spawn(move || {
                while let Ok(job) = jobs_rx.recv() {
                    let completion = run_with_retry(&job, &policy);
                    if done_tx.send(completion).is_err() {
                        break; // foreground gone; nothing to report to
                    }
                }
            })?;
        Ok(Self {
            jobs: Some(jobs_tx),
            done: done_rx,
            handle: Some(handle),
        })
    }

    /// Queue a job (the caller tracks that exactly one is in flight).
    pub fn submit(&self, job: CheckpointJob) -> Result<(), PersistError> {
        self.jobs
            .as_ref()
            .expect("sender lives until drop")
            .send(job)
            .map_err(|_| thread_died())
    }

    /// Non-blocking poll for a finished job.
    pub fn try_recv(&self) -> Option<Completion> {
        match self.done.try_recv() {
            Ok(c) => Some(c),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => Some(Completion {
                result: Err(thread_died()),
                attempts: 0,
            }),
        }
    }

    /// Block until the in-flight job finishes.
    pub fn recv(&self) -> Completion {
        self.done.recv().unwrap_or_else(|_| Completion {
            result: Err(thread_died()),
            attempts: 0,
        })
    }
}

impl Drop for Checkpointer {
    fn drop(&mut self) {
        // Closing the job channel ends the worker loop; join so no write
        // races the process teardown.
        self.jobs.take();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}
