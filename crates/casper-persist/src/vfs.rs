//! The storage VFS: every byte this crate reads or writes goes through a
//! [`Vfs`], so the whole persistence stack can run unmodified on top of
//! either the real filesystem ([`RealVfs`]) or the deterministic
//! fault-injection harness ([`crate::fault::FaultVfs`]) — the SQLite
//! test-VFS idea.
//!
//! The production path pays nothing for the indirection: [`VfsHandle`] is
//! a two-variant enum whose `Real` arm compiles to the exact `std::fs`
//! calls the crate made before, and [`VfsFile`] wraps a real
//! [`std::fs::File`] plus an `Option` fault hook that is `None` outside
//! tests (one branch per operation, no allocation, no dynamic dispatch).
//!
//! Operations are deliberately the crate's *actual* I/O vocabulary rather
//! than a general filesystem API: whole-file read, create/open, rename,
//! remove, directory fsync, mmap. Anything the persistence layer does not
//! do (hard links, permissions, partial-file mmap) is not modeled, which
//! keeps the fault harness honest — it intercepts every operation the
//! production code can perform.

use crate::fault::FaultVfs;
use crate::mmap::Mmap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The filesystem operations the persistence layer performs. Implemented
/// by [`RealVfs`] (plain `std::fs`) and [`crate::fault::FaultVfs`]
/// (deterministic fault injection + crash simulation); production code
/// holds a [`VfsHandle`] so the dispatch is a branch, not a vtable.
pub trait Vfs {
    /// Read a whole file into memory.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Create (or truncate) a file for writing.
    fn create(&self, path: &Path) -> io::Result<VfsFile>;
    /// Create a file that must not already exist.
    fn create_new(&self, path: &Path) -> io::Result<VfsFile>;
    /// Open an existing file for reading and writing.
    fn open_rw(&self, path: &Path) -> io::Result<VfsFile>;
    /// Open an existing file read-only.
    fn open_read(&self, path: &Path) -> io::Result<VfsFile>;
    /// Atomically rename `from` to `to` (replacing `to` if present).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Remove a file.
    fn remove(&self, path: &Path) -> io::Result<()>;
    /// Fsync a directory, making its entries (created, renamed and removed
    /// names) durable.
    fn fsync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Map a whole file read-only.
    fn mmap(&self, path: &Path) -> io::Result<Mmap>;
}

/// The production VFS: plain `std::fs` plus the in-repo mmap FFI. Zero
/// overhead over calling `std::fs` directly.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealVfs;

impl Vfs for RealVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn create(&self, path: &Path) -> io::Result<VfsFile> {
        Ok(VfsFile::real(File::create(path)?, path))
    }

    fn create_new(&self, path: &Path) -> io::Result<VfsFile> {
        let file = OpenOptions::new().write(true).create_new(true).open(path)?;
        Ok(VfsFile::real(file, path))
    }

    fn open_rw(&self, path: &Path) -> io::Result<VfsFile> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        Ok(VfsFile::real(file, path))
    }

    fn open_read(&self, path: &Path) -> io::Result<VfsFile> {
        Ok(VfsFile::real(File::open(path)?, path))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn fsync_dir(&self, dir: &Path) -> io::Result<()> {
        File::open(dir)?.sync_all()
    }

    fn mmap(&self, path: &Path) -> io::Result<Mmap> {
        Mmap::map(&File::open(path)?)
    }
}

/// The VFS a [`crate::DurableTable`] (and everything under it) routes I/O
/// through. Enum dispatch instead of `dyn Vfs` so the `Real` arm inlines
/// to direct `std::fs` calls and the handle stays `Clone` + cheap to pass
/// into background checkpoint jobs.
#[derive(Debug, Clone, Default)]
pub enum VfsHandle {
    /// The real filesystem (production default).
    #[default]
    Real,
    /// The deterministic fault-injection harness (tests, benches, CI).
    Fault(Arc<FaultVfs>),
}

impl VfsHandle {
    /// Wrap a fault harness into a handle.
    pub fn fault(vfs: Arc<FaultVfs>) -> Self {
        VfsHandle::Fault(vfs)
    }

    /// The fault harness behind this handle, if any.
    pub fn as_fault(&self) -> Option<&Arc<FaultVfs>> {
        match self {
            VfsHandle::Real => None,
            VfsHandle::Fault(f) => Some(f),
        }
    }
}

impl Vfs for VfsHandle {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        match self {
            VfsHandle::Real => RealVfs.read(path),
            VfsHandle::Fault(f) => f.read(path),
        }
    }

    fn create(&self, path: &Path) -> io::Result<VfsFile> {
        match self {
            VfsHandle::Real => RealVfs.create(path),
            VfsHandle::Fault(f) => f.create(path),
        }
    }

    fn create_new(&self, path: &Path) -> io::Result<VfsFile> {
        match self {
            VfsHandle::Real => RealVfs.create_new(path),
            VfsHandle::Fault(f) => f.create_new(path),
        }
    }

    fn open_rw(&self, path: &Path) -> io::Result<VfsFile> {
        match self {
            VfsHandle::Real => RealVfs.open_rw(path),
            VfsHandle::Fault(f) => f.open_rw(path),
        }
    }

    fn open_read(&self, path: &Path) -> io::Result<VfsFile> {
        match self {
            VfsHandle::Real => RealVfs.open_read(path),
            VfsHandle::Fault(f) => f.open_read(path),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self {
            VfsHandle::Real => RealVfs.rename(from, to),
            VfsHandle::Fault(f) => f.rename(from, to),
        }
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        match self {
            VfsHandle::Real => RealVfs.remove(path),
            VfsHandle::Fault(f) => f.remove(path),
        }
    }

    fn fsync_dir(&self, dir: &Path) -> io::Result<()> {
        match self {
            VfsHandle::Real => RealVfs.fsync_dir(dir),
            VfsHandle::Fault(f) => f.fsync_dir(dir),
        }
    }

    fn mmap(&self, path: &Path) -> io::Result<Mmap> {
        match self {
            VfsHandle::Real => RealVfs.mmap(path),
            VfsHandle::Fault(f) => f.mmap(path),
        }
    }
}

/// An open file handle obtained through a [`Vfs`]. Always backed by a real
/// [`File`]; when it was opened through a [`crate::fault::FaultVfs`] every
/// operation first consults the fault schedule, and every successful fsync
/// records the file's bytes in the harness's durable-content shadow (the
/// state a simulated crash rolls back to).
#[derive(Debug)]
pub struct VfsFile {
    file: File,
    path: PathBuf,
    fault: Option<Arc<FaultVfs>>,
}

impl VfsFile {
    pub(crate) fn real(file: File, path: &Path) -> Self {
        Self {
            file,
            path: path.to_path_buf(),
            fault: None,
        }
    }

    pub(crate) fn faulted(file: File, path: &Path, fault: Arc<FaultVfs>) -> Self {
        Self {
            file,
            path: path.to_path_buf(),
            fault: Some(fault),
        }
    }

    /// Path the handle was opened at.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The underlying [`File`] (for FFI that needs a raw descriptor, e.g.
    /// `sync_file_range` writeback hints — advisory calls that carry no
    /// durability semantics and therefore bypass the fault schedule).
    pub fn std_file(&self) -> &File {
        &self.file
    }

    /// Write all of `buf`, honoring short-write and error injections.
    pub fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match &self.fault {
            None => self.file.write_all(buf),
            Some(f) => f.file_write_all(&self.path, &mut self.file, buf),
        }
    }

    /// Fsync file data (`fdatasync` semantics). A successful sync under the
    /// fault harness checkpoints the file's bytes as crash-durable.
    pub fn sync_data(&mut self) -> io::Result<()> {
        match &self.fault {
            None => self.file.sync_data(),
            Some(f) => f.file_sync(&self.path, &self.file),
        }
    }

    /// Fsync file data and metadata.
    pub fn sync_all(&mut self) -> io::Result<()> {
        match &self.fault {
            None => self.file.sync_all(),
            Some(f) => f.file_sync(&self.path, &self.file),
        }
    }

    /// Truncate (or extend) the file.
    pub fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.file.set_len(len)
    }

    /// Reposition the file cursor.
    pub fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        self.file.seek(pos)
    }

    /// Read until EOF, honoring read-error injections.
    pub fn read_to_end(&mut self, buf: &mut Vec<u8>) -> io::Result<usize> {
        if let Some(f) = &self.fault {
            f.check_read(&self.path)?;
        }
        self.file.read_to_end(buf)
    }

    /// Fill `buf` exactly, honoring read-error injections.
    pub fn read_exact(&mut self, buf: &mut [u8]) -> io::Result<()> {
        if let Some(f) = &self.fault {
            f.check_read(&self.path)?;
        }
        self.file.read_exact(buf)
    }
}
