//! The versioned, checksummed snapshot format.
//!
//! A snapshot serializes a whole [`Table`] — chunk slots, partition
//! boundaries, zone maps, per-partition storage modes *with their encoded
//! fragment bytes*, ghost accounting, and the captured frequency-model
//! state — so that [`decode_snapshot`] restores the exact optimized layout
//! with **no re-solve and no re-compress**: partitioned chunks come back
//! through `PartitionedChunk::from_state` (bit-exact raw state) and
//! fragments through the codecs' `from_raw` constructors, which bypass the
//! encode paths entirely. The solver-invocation and codec-encode telemetry
//! counters therefore stay flat across a restore — the durability tests
//! assert exactly that.
//!
//! ## File layout
//!
//! ```text
//! magic "CSPR" | version u32 | body_len u64 | body_crc32 u32 | body
//! ```
//!
//! The CRC covers the entire body; any mismatch (or any structural length
//! violation inside the body) surfaces as [`StorageError::Corrupt`] —
//! never a panic — so recovery can reject a damaged generation. See
//! `docs/persist-format.md` for the full field-by-field record layout.

use crate::codec::{ByteReader, ByteWriter};
use crate::crc::crc32;
use casper_core::FrequencyModel;
use casper_engine::column::{ChunkSlot, ChunkStore};
use casper_engine::{ChunkedColumn, EngineConfig, LayoutMode, Table};
use casper_storage::compress::dictionary::PackedCodes;
use casper_storage::compress::for_delta::PackedOffsets;
use casper_storage::compress::{Dictionary, ForBlock, Rle};
use casper_storage::kernels::ZoneMap;
use casper_storage::{
    BlockLayout, ChunkConfig, ChunkState, Fragment, PartitionMeta, PartitionedChunk, SortedColumn,
    SortedDelta, StorageError, UpdatePolicy,
};
use casper_workload::HapSchema;

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"CSPR";
/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

fn corrupt(reason: impl Into<String>) -> StorageError {
    StorageError::Corrupt {
        reason: reason.into(),
    }
}

/// Everything a decoded snapshot yields.
#[derive(Debug)]
pub struct RestoredSnapshot {
    /// The table, layout-identical to the one that was saved.
    pub table: Table,
    /// Captured per-chunk frequency models (empty when none were saved).
    pub fms: Vec<FrequencyModel>,
    /// Checkpoint generation this snapshot belongs to.
    pub generation: u64,
    /// Highest WAL LSN already folded into this snapshot; replay skips
    /// records at or below it (replay idempotence).
    pub durable_lsn: u64,
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

/// Serialize a table (plus captured FM state and WAL watermark) into the
/// snapshot byte format.
pub fn encode_snapshot(
    table: &Table,
    fms: &[FrequencyModel],
    generation: u64,
    durable_lsn: u64,
) -> Vec<u8> {
    let mut body = ByteWriter::new();
    body.u64(generation);
    body.u64(durable_lsn);
    body.u64(table.schema().payload_cols as u64);
    let column = table.column();
    encode_config(&mut body, column.config());
    match column.fences() {
        Some(f) => {
            body.u8(1);
            body.vec_u64(f);
        }
        None => body.u8(0),
    }
    body.u64(column.chunks().len() as u64);
    for slot in column.chunks() {
        // Dirty chunks are hydrated by definition, and callers hydrate
        // before a full snapshot — an unhydrated slot here is a logic bug.
        let store = slot
            .store_opt()
            .expect("cannot serialize an unhydrated chunk");
        encode_store(&mut body, store);
    }
    body.u64(fms.len() as u64);
    for fm in fms {
        for (_, hist) in fm.histograms() {
            body.vec_f64(hist);
        }
    }
    let body = body.into_bytes();

    let mut out = ByteWriter::new();
    out.u8(SNAPSHOT_MAGIC[0]);
    out.u8(SNAPSHOT_MAGIC[1]);
    out.u8(SNAPSHOT_MAGIC[2]);
    out.u8(SNAPSHOT_MAGIC[3]);
    out.u32(SNAPSHOT_VERSION);
    out.u64(body.len() as u64);
    out.u32(crc32(&body));
    let mut bytes = out.into_bytes();
    bytes.extend_from_slice(&body);
    bytes
}

pub(crate) fn encode_config(w: &mut ByteWriter, c: &EngineConfig) {
    w.u8(mode_tag(c.mode));
    w.u64(c.block_bytes as u64);
    w.u64(c.chunk_values as u64);
    w.u64(c.equi_partitions as u64);
    w.f64(c.ghost_budget_frac);
    w.f64(c.delta_frac);
    w.f64(c.capacity_slack);
    w.u64(c.threads as u64);
    w.u64(c.ghost_fetch_block as u64);
}

pub(crate) fn encode_store(w: &mut ByteWriter, store: &ChunkStore) {
    match store {
        ChunkStore::Partitioned(chunk) => {
            w.u8(0);
            encode_chunk(w, chunk);
        }
        ChunkStore::Sorted(s) => {
            w.u8(1);
            let (keys, cols) = s.to_parts();
            w.vec_u64(&keys);
            w.u64(cols.len() as u64);
            for col in &cols {
                w.vec_u32(col);
            }
        }
        ChunkStore::Delta(d) => {
            // Checkpointing flushes the delta buffer into the main column,
            // exactly as real delta stores merge their write-optimized
            // buffer at checkpoint time; the store reopens with an empty
            // delta of the same capacity. The O(chunk) merge clone is only
            // paid when the buffer actually holds entries.
            w.u8(2);
            let (keys, cols) = if d.delta_len() == 0 {
                d.main().to_parts()
            } else {
                let mut merged = d.clone();
                merged.force_merge();
                merged.main().to_parts()
            };
            w.vec_u64(&keys);
            w.u64(cols.len() as u64);
            for col in &cols {
                w.vec_u32(col);
            }
            w.u64(d.capacity() as u64);
        }
    }
}

fn encode_chunk(w: &mut ByteWriter, chunk: &PartitionedChunk<u64>) {
    // Streams straight from the chunk's borrowed state (accessors mirror
    // the `ChunkState` capture field for field) — no intermediate deep
    // copy of slots, payload columns or fragments per checkpoint.
    let layout = chunk.layout();
    let config = chunk.chunk_config();
    w.u64(layout.block_bytes as u64);
    w.u64(layout.value_width as u64);
    w.u8(match config.policy {
        UpdatePolicy::Dense => 0,
        UpdatePolicy::Ghost => 1,
    });
    w.f64(config.capacity_slack);
    w.u64(config.ghost_fetch_block as u64);
    w.u64(chunk.live_len() as u64);
    w.vec_u64(chunk.raw_slots());
    w.u64(chunk.partition_count() as u64);
    for p in chunk.partitions() {
        w.u64(p.start as u64);
        w.u64(p.len as u64);
        w.u64(p.ghosts as u64);
        w.u64(p.min);
        w.u64(p.max);
    }
    for z in chunk.zones() {
        w.u64(z.min);
        w.u64(z.max);
    }
    for p in 0..chunk.partition_count() {
        encode_fragment(w, chunk.partition_fragment(p));
    }
    let cols = chunk.payloads().columns();
    w.u64(cols.len() as u64);
    for col in cols {
        w.vec_u32(col);
    }
}

fn encode_fragment(w: &mut ByteWriter, frag: Option<&Fragment<u64>>) {
    match frag {
        None => w.u8(0),
        Some(Fragment::For(f)) => {
            w.u8(1);
            w.u64(f.base());
            match f.offsets() {
                PackedOffsets::U8(v) => {
                    w.u8(1);
                    w.vec_u8(v);
                }
                PackedOffsets::U16(v) => {
                    w.u8(2);
                    w.vec_u16(v);
                }
                PackedOffsets::U32(v) => {
                    w.u8(4);
                    w.vec_u32(v);
                }
                PackedOffsets::U64(v) => {
                    w.u8(8);
                    w.vec_u64(v);
                }
            }
        }
        Some(Fragment::Dict(d)) => {
            w.u8(2);
            w.vec_u64(d.dict());
            match d.codes() {
                PackedCodes::U8(v) => {
                    w.u8(1);
                    w.vec_u8(v);
                }
                PackedCodes::U16(v) => {
                    w.u8(2);
                    w.vec_u16(v);
                }
                PackedCodes::U32(v) => {
                    w.u8(4);
                    w.vec_u32(v);
                }
            }
        }
        Some(Fragment::Rle(r)) => {
            w.u8(3);
            w.u64(r.runs().len() as u64);
            for &(v, n) in r.runs() {
                w.u64(v);
                w.u32(n);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// Decode a snapshot, verifying magic, version and the body checksum.
pub fn decode_snapshot(bytes: &[u8]) -> Result<RestoredSnapshot, StorageError> {
    let mut header = ByteReader::new(bytes);
    let magic = [header.u8()?, header.u8()?, header.u8()?, header.u8()?];
    if magic != SNAPSHOT_MAGIC {
        return Err(corrupt(format!("bad magic {magic:02x?}")));
    }
    let version = header.u32()?;
    if version != SNAPSHOT_VERSION {
        return Err(corrupt(format!(
            "unsupported snapshot version {version} (this build reads {SNAPSHOT_VERSION})"
        )));
    }
    let body_len = header.len_u64()?;
    let want_crc = header.u32()?;
    if header.remaining() != body_len {
        return Err(corrupt(format!(
            "body length {body_len} but {} bytes follow the header",
            header.remaining()
        )));
    }
    let body = &bytes[bytes.len() - body_len..];
    let got_crc = crc32(body);
    if got_crc != want_crc {
        return Err(corrupt(format!(
            "body checksum mismatch: stored {want_crc:#010x}, computed {got_crc:#010x}"
        )));
    }

    let mut r = ByteReader::new(body);
    let generation = r.u64()?;
    let durable_lsn = r.u64()?;
    let payload_cols = r.len_u64()?;
    let schema = HapSchema { payload_cols };
    let config = decode_config(&mut r)?;
    let fences = match r.u8()? {
        0 => None,
        1 => Some(r.vec_u64()?),
        t => return Err(corrupt(format!("bad fence tag {t}"))),
    };
    // The schema's arity is the single source of truth for payload width;
    // every chunk store is validated against it during decode.
    let payload_width = schema.payload_cols;
    let n_chunks = r.len_u64()?;
    let mut chunks = Vec::with_capacity(n_chunks.min(1 << 20));
    for _ in 0..n_chunks {
        chunks.push(ChunkSlot::new(decode_store(
            &mut r,
            &config,
            payload_width,
        )?));
    }
    if chunks.is_empty() {
        return Err(corrupt("snapshot holds zero chunks"));
    }
    if let Some(f) = &fences {
        if f.len() != chunks.len() {
            return Err(corrupt(format!(
                "{} fences for {} chunks",
                f.len(),
                chunks.len()
            )));
        }
    }
    let n_fms = r.len_u64()?;
    let mut fms = Vec::with_capacity(n_fms.min(1 << 20));
    for _ in 0..n_fms {
        let hists: [Vec<f64>; 10] = [
            r.vec_f64()?,
            r.vec_f64()?,
            r.vec_f64()?,
            r.vec_f64()?,
            r.vec_f64()?,
            r.vec_f64()?,
            r.vec_f64()?,
            r.vec_f64()?,
            r.vec_f64()?,
            r.vec_f64()?,
        ];
        fms.push(
            FrequencyModel::from_histograms(hists)
                .map_err(|e| corrupt(format!("frequency model: {e}")))?,
        );
    }
    r.finish()?;

    let column = ChunkedColumn::from_restored(chunks, fences, config, payload_width);
    Ok(RestoredSnapshot {
        table: Table::from_restored(schema, column),
        fms,
        generation,
        durable_lsn,
    })
}

pub(crate) fn decode_config(r: &mut ByteReader<'_>) -> Result<EngineConfig, StorageError> {
    let mode = mode_from_tag(r.u8()?)?;
    Ok(EngineConfig {
        mode,
        block_bytes: r.len_u64()?,
        chunk_values: r.len_u64()?,
        equi_partitions: r.len_u64()?,
        ghost_budget_frac: r.f64()?,
        delta_frac: r.f64()?,
        capacity_slack: r.f64()?,
        threads: r.len_u64()?.max(1),
        ghost_fetch_block: r.len_u64()?,
    })
}

pub(crate) fn decode_store(
    r: &mut ByteReader<'_>,
    config: &EngineConfig,
    payload_width: usize,
) -> Result<ChunkStore, StorageError> {
    let vpb = BlockLayout::new::<u64>(config.block_bytes).values_per_block();
    // Every store must carry exactly the table's payload arity — a
    // CRC-valid but inconsistent snapshot must fail typedly here, not
    // panic on the first payload projection.
    let check_width = |got: usize| -> Result<(), StorageError> {
        if got != payload_width {
            return Err(corrupt(format!(
                "store holds {got} payload columns but the table declares {payload_width}"
            )));
        }
        Ok(())
    };
    match r.u8()? {
        0 => {
            let state = decode_chunk_state(r)?;
            check_width(state.payload_cols.len())?;
            Ok(ChunkStore::Partitioned(PartitionedChunk::from_state(
                state,
            )?))
        }
        1 => {
            let (keys, cols) = decode_sorted_parts(r)?;
            check_width(cols.len())?;
            Ok(ChunkStore::Sorted(SortedColumn::build(keys, cols, vpb)))
        }
        2 => {
            let (keys, cols) = decode_sorted_parts(r)?;
            check_width(cols.len())?;
            let capacity = r.len_u64()?;
            Ok(ChunkStore::Delta(SortedDelta::build(
                keys, cols, vpb, capacity,
            )))
        }
        t => Err(corrupt(format!("bad chunk store tag {t}"))),
    }
}

fn decode_sorted_parts(r: &mut ByteReader<'_>) -> Result<(Vec<u64>, Vec<Vec<u32>>), StorageError> {
    let keys = r.vec_u64()?;
    let n_cols = r.len_u64()?;
    let mut cols = Vec::with_capacity(n_cols.min(1 << 16));
    for c in 0..n_cols {
        let col = r.vec_u32()?;
        if col.len() != keys.len() {
            return Err(corrupt(format!(
                "sorted payload column {c} has {} rows, keys have {}",
                col.len(),
                keys.len()
            )));
        }
        cols.push(col);
    }
    Ok((keys, cols))
}

fn decode_chunk_state(r: &mut ByteReader<'_>) -> Result<ChunkState<u64>, StorageError> {
    let layout = BlockLayout {
        block_bytes: r.len_u64()?,
        value_width: r.len_u64()?,
    };
    if layout.block_bytes < layout.value_width || layout.value_width == 0 {
        return Err(corrupt(format!(
            "impossible block geometry: {} byte blocks of {} byte values",
            layout.block_bytes, layout.value_width
        )));
    }
    let policy = match r.u8()? {
        0 => UpdatePolicy::Dense,
        1 => UpdatePolicy::Ghost,
        t => return Err(corrupt(format!("bad update policy tag {t}"))),
    };
    let config = ChunkConfig {
        policy,
        capacity_slack: r.f64()?,
        ghost_fetch_block: r.len_u64()?,
    };
    let live = r.len_u64()?;
    let data = r.vec_u64()?;
    let n_parts = r.len_u64()?;
    let mut parts = Vec::with_capacity(n_parts.min(1 << 20));
    for _ in 0..n_parts {
        parts.push(PartitionMeta {
            start: r.len_u64()?,
            len: r.len_u64()?,
            ghosts: r.len_u64()?,
            min: r.u64()?,
            max: r.u64()?,
        });
    }
    let mut zones = Vec::with_capacity(n_parts.min(1 << 20));
    for _ in 0..n_parts {
        zones.push(ZoneMap {
            min: r.u64()?,
            max: r.u64()?,
        });
    }
    let mut frags = Vec::with_capacity(n_parts.min(1 << 20));
    for _ in 0..n_parts {
        frags.push(decode_fragment(r)?);
    }
    let n_cols = r.len_u64()?;
    let mut payload_cols = Vec::with_capacity(n_cols.min(1 << 16));
    for _ in 0..n_cols {
        payload_cols.push(r.vec_u32()?);
    }
    Ok(ChunkState {
        data,
        parts,
        zones,
        frags,
        payload_cols,
        layout,
        config,
        live,
    })
}

fn decode_fragment(r: &mut ByteReader<'_>) -> Result<Option<Fragment<u64>>, StorageError> {
    match r.u8()? {
        0 => Ok(None),
        1 => {
            let base = r.u64()?;
            let offsets = match r.u8()? {
                1 => PackedOffsets::U8(r.vec_u8()?),
                2 => PackedOffsets::U16(r.vec_u16()?),
                4 => PackedOffsets::U32(r.vec_u32()?),
                8 => PackedOffsets::U64(r.vec_u64()?),
                w => return Err(corrupt(format!("bad FoR offset width {w}"))),
            };
            Ok(Some(Fragment::For(ForBlock::from_raw(base, offsets))))
        }
        2 => {
            let dict = r.vec_u64()?;
            let codes = match r.u8()? {
                1 => PackedCodes::U8(r.vec_u8()?),
                2 => PackedCodes::U16(r.vec_u16()?),
                4 => PackedCodes::U32(r.vec_u32()?),
                w => return Err(corrupt(format!("bad dictionary code width {w}"))),
            };
            Ok(Some(Fragment::Dict(
                Dictionary::from_raw(dict, codes)
                    .map_err(|e| corrupt(format!("dictionary fragment: {e}")))?,
            )))
        }
        3 => {
            let n_runs = r.len_u64()?;
            let mut runs = Vec::with_capacity(n_runs.min(1 << 20));
            for _ in 0..n_runs {
                runs.push((r.u64()?, r.u32()?));
            }
            Ok(Some(Fragment::Rle(
                Rle::from_runs(runs).map_err(|e| corrupt(format!("RLE fragment: {e}")))?,
            )))
        }
        t => Err(corrupt(format!("bad fragment tag {t}"))),
    }
}

fn mode_tag(mode: LayoutMode) -> u8 {
    match mode {
        LayoutMode::NoOrder => 0,
        LayoutMode::Sorted => 1,
        LayoutMode::StateOfArt => 2,
        LayoutMode::Equi => 3,
        LayoutMode::EquiGV => 4,
        LayoutMode::Casper => 5,
    }
}

fn mode_from_tag(tag: u8) -> Result<LayoutMode, StorageError> {
    Ok(match tag {
        0 => LayoutMode::NoOrder,
        1 => LayoutMode::Sorted,
        2 => LayoutMode::StateOfArt,
        3 => LayoutMode::Equi,
        4 => LayoutMode::EquiGV,
        5 => LayoutMode::Casper,
        t => return Err(corrupt(format!("bad layout mode tag {t}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use casper_workload::{KeyDist, WorkloadGenerator};

    fn table(mode: LayoutMode) -> Table {
        let gen = WorkloadGenerator::new(HapSchema::narrow(), 2000, KeyDist::Uniform);
        Table::load_from_generator(&gen, EngineConfig::small(mode))
    }

    #[test]
    fn round_trip_every_mode() {
        for mode in LayoutMode::all() {
            let t = table(mode);
            let bytes = encode_snapshot(&t, &[], 3, 17);
            let restored = decode_snapshot(&bytes).expect("decode");
            assert_eq!(restored.generation, 3);
            assert_eq!(restored.durable_lsn, 17);
            assert_eq!(restored.table.len(), t.len(), "{mode:?}");
            let (n, _) = restored.table.column().q2_count(0, u64::MAX).unwrap();
            assert_eq!(n as usize, t.len(), "{mode:?}");
        }
    }

    #[test]
    fn checksum_detects_any_flipped_bit_region() {
        let t = table(LayoutMode::Casper);
        let mut bytes = encode_snapshot(&t, &[], 1, 0);
        // Flip one bit somewhere in the body.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        assert!(matches!(
            decode_snapshot(&bytes),
            Err(StorageError::Corrupt { .. })
        ));
    }

    #[test]
    fn truncated_file_is_corrupt_not_panic() {
        let t = table(LayoutMode::Casper);
        let bytes = encode_snapshot(&t, &[], 1, 0);
        for cut in [0, 3, 7, 11, 15, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                matches!(
                    decode_snapshot(&bytes[..cut]),
                    Err(StorageError::Corrupt { .. })
                ),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn fm_state_round_trips() {
        let t = table(LayoutMode::Casper);
        let mut fm = FrequencyModel::new(4);
        fm.pq = vec![1.0, 2.5, 0.0, 4.0];
        fm.rs[1] = 3.0;
        let bytes = encode_snapshot(&t, &[fm.clone()], 1, 0);
        let restored = decode_snapshot(&bytes).expect("decode");
        assert_eq!(restored.fms, vec![fm]);
    }
}
