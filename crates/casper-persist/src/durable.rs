//! [`DurableTable`]: a [`Table`] whose layout and writes survive restarts.
//!
//! The on-disk directory holds exactly one *current generation*:
//!
//! ```text
//! CURRENT              – ASCII generation number, replaced atomically
//! manifest-<gen>.casper – chunk id → (segment, offset, len, crc) map (v2)
//! seg-<seq>.casper     – append-once segments of encoded chunk records
//! wal-<seq>.log        – append-only redo log(s) since the manifest
//! snap-<gen>.casper    – legacy v1 whole-table snapshot (still readable)
//! ```
//!
//! Writes flow WAL-first in the group-commit sense: an executed write is
//! staged into the open WAL batch and becomes durable (write + fsync) when
//! the batch seals. Recovery loads the manifest (metadata only under mmap
//! restore — chunks hydrate lazily from mapped segments, checksum-verified
//! at first touch), truncates the WAL chain's torn tail, and replays the
//! committed batches.
//!
//! A **checkpoint** is *incremental*: the engine's per-chunk modification
//! counters identify exactly the chunks dirtied since the last checkpoint,
//! and only those are re-serialized — into a fresh segment — while clean
//! chunks keep their existing records. With the **background
//! checkpointer** enabled (default), the foreground only seals + rotates
//! the WAL and clones dirty chunk state; serialization and fsyncs run on a
//! dedicated thread, so the commit path keeps nothing but its group-commit
//! fsync. Once a manifest references more than
//! [`DurableOptions::max_segments`] segments, the next checkpoint compacts
//! the chain (clean records are byte-copied, never re-encoded).
//! [`DurableTable::optimize`] still checkpoints synchronously after every
//! re-layout, so adaptive re-partitioning remains durable at return.
//!
//! ## Failure model
//!
//! All I/O flows through a [`VfsHandle`], so every failure path below is
//! exercised deterministically by the fault-injection harness
//! ([`crate::fault::FaultVfs`]).
//!
//! * A failed WAL **write** (e.g. ENOSPC before the fsync) leaves the
//!   batch staged; the seal retries on the next commit after truncating
//!   back to the durable boundary.
//! * A failed WAL **fsync** *poisons* the log (fsyncgate: a retried fsync
//!   can falsely succeed after the kernel dropped the dirty pages). The
//!   table immediately rotates to a fresh WAL and takes a synchronous
//!   *recovery checkpoint* whose watermark covers the ghost batch; only
//!   when that checkpoint commits is the write acknowledged. If it fails
//!   too, the table **degrades** instead of acknowledging a commit of
//!   unknown durability.
//! * Background checkpoint failures are retried with bounded backoff on
//!   the checkpointer thread; persistent failure (see
//!   [`DurableOptions::degrade_after`]) escalates to degraded mode.
//! * **Degraded** mode is explicit read-only: reads keep serving from
//!   memory, writes return [`PersistError::Degraded`], and
//!   [`DurableTable::reactivate`] re-proves the storage with a synchronous
//!   checkpoint before lifting the mode.
//! * The optional background **scrubber** re-reads checkpoint records at a
//!   throttled rate and verifies their CRCs; a damaged record whose chunk
//!   is resident in memory is re-marked dirty (the next checkpoint heals
//!   it), and a damaged record whose chunk was never hydrated is
//!   *quarantined* — surfaced as a typed error instead of a surprise CRC
//!   panic at first touch.

use crate::archive::{BackupJob, BackupReport, BackupVerifyReport, PointInTime};
use crate::checkpointer::{run_with_retry, Checkpointer, Completion, RetryPolicy};
use crate::incremental::{
    decode_manifest, manifest_path, numbered_file, record_loader, restore_table, CheckpointJob,
    ChunkEntry, RecordSource,
};
use crate::scrub::{ScrubFinding, ScrubReport, ScrubStats, Scrubber};
use crate::snapshot::decode_snapshot;
use crate::vfs::{Vfs, VfsHandle};
use crate::wal::{replay, scan, Wal, WalOp};
use crate::PersistError;
use casper_core::FrequencyModel;
use casper_engine::adapt::{AdaptDecision, AdaptiveController};
use casper_engine::optimize::{capture_per_chunk, optimize_table, OptimizeOptions, OptimizeReport};
use casper_engine::{
    Governor, GovernorConfig, GovernorStats, QueryCtx, QueryError, QueryOutput, Table, TableReader,
    Transaction, TxnError, TxnManager,
};
use casper_obs::{CounterDef, GaugeDef};
use casper_storage::StorageError;
use casper_workload::HapQuery;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Duration;

// Checkpoint health metrics. The counters and gauges are written from the
// exact code paths that maintain `CheckpointStats` / `TableMode`, so a
// metrics dump and the `checkpoint_stats()` / `take_checkpoint_error` API
// can never disagree about what happened.
static OBS_CHECKPOINTS_OK: CounterDef = CounterDef::new("casper_checkpoints_total{result=\"ok\"}");
static OBS_CHECKPOINTS_ERR: CounterDef =
    CounterDef::new("casper_checkpoints_total{result=\"err\"}");
static OBS_CP_RETRIES: CounterDef = CounterDef::new("casper_checkpoint_retries_total");
static OBS_CP_CONSECUTIVE: GaugeDef = GaugeDef::new("casper_checkpoint_consecutive_failures");
static OBS_CP_DIRTY_RATIO: GaugeDef = GaugeDef::new("casper_checkpoint_dirty_chunk_ratio");
static OBS_FULL_CHECKPOINTS: CounterDef = CounterDef::new("casper_full_checkpoints_total");
static OBS_SEGMENT_CHAIN: GaugeDef = GaugeDef::new("casper_segment_chain_length");
static OBS_QUARANTINED: GaugeDef = GaugeDef::new("casper_quarantined_chunks");
static OBS_DEGRADED_MODE: GaugeDef = GaugeDef::new("casper_degraded_mode");
static OBS_DEGRADED_ENTER: CounterDef =
    CounterDef::new("casper_degraded_transitions_total{edge=\"enter\"}");
static OBS_DEGRADED_EXIT: CounterDef =
    CounterDef::new("casper_degraded_transitions_total{edge=\"exit\"}");

/// Print `msg` to stderr, at most once per five seconds process-wide.
/// Degraded-mode churn (a flapping disk triggers enter/exit per write
/// attempt) must not flood an operator's console.
pub(crate) fn warn_rate_limited(msg: &str) {
    use std::time::Instant;
    static LAST: Mutex<Option<Instant>> = Mutex::new(None);
    const MIN_GAP: Duration = Duration::from_secs(5);
    let mut last = LAST.lock().unwrap_or_else(|e| e.into_inner());
    if last.is_none_or(|t| t.elapsed() >= MIN_GAP) {
        *last = Some(Instant::now());
        eprintln!("casper-persist: {msg}");
    }
}

/// Tunables of the durability layer.
#[derive(Debug, Clone, Copy)]
pub struct DurableOptions {
    /// Writes staged before the WAL batch auto-seals (1 = fsync every
    /// write; larger values trade a bounded unacknowledged window for
    /// amortized fsyncs — classic group commit).
    pub group_commit: usize,
    /// Auto-checkpoint once the sealed WAL grows past this many bytes
    /// (0 disables; checkpoints still happen on [`DurableTable::optimize`]
    /// and explicit [`DurableTable::checkpoint`] calls).
    pub wal_checkpoint_bytes: u64,
    /// Run watermark-triggered checkpoints on a dedicated thread: the
    /// foreground only rotates the WAL and clones dirty chunk state;
    /// serialization and fsyncs happen off the commit path. Explicit
    /// [`DurableTable::checkpoint`] / [`DurableTable::optimize`] calls
    /// still wait for completion (their durability guarantee is
    /// synchronous either way).
    pub background_checkpointer: bool,
    /// Compact once a manifest references more than this many segments:
    /// the next checkpoint rewrites every live record into one fresh
    /// segment (clean records byte-copied, not re-encoded).
    pub max_segments: usize,
    /// Restore through mapped segments with per-chunk lazy hydration
    /// (`open` becomes metadata-only work; each chunk decodes — checksum
    /// verified — on the first query that routes to it). Disable to decode
    /// everything eagerly at open.
    pub mmap_restore: bool,
    /// Total attempts per checkpoint job (1 = no retry). Transient I/O
    /// failures are retried with doubling backoff; whole-job retry is safe
    /// because every attempt re-creates the segment with a fresh
    /// descriptor and rewrites it end to end.
    pub checkpoint_retries: u32,
    /// Backoff before the first checkpoint retry, in milliseconds
    /// (doubles per retry, capped at 1s).
    pub checkpoint_backoff_ms: u64,
    /// Enter degraded read-only mode after this many *consecutive* failed
    /// (post-retry) checkpoints (0 disables escalation — the WAL chain
    /// then grows without bound under persistent failure).
    pub degrade_after: u32,
    /// Run a background scrub pass over the current manifest's records
    /// every this many milliseconds (0 disables the scrubber;
    /// [`DurableTable::scrub_now`] always works).
    pub scrub_interval_ms: u64,
    /// Throttle: microseconds the scrubber sleeps between records so a
    /// pass never competes with the commit path for I/O bandwidth.
    pub scrub_pause_per_record_us: u64,
    /// Resource-governor configuration (`None` = ungoverned: no memory
    /// budget, no admission control; [`DurableTable::execute_governed`]
    /// still honors deadlines/cancellation). See
    /// `docs/resource-governance.md`.
    pub governor: Option<GovernorConfig>,
    /// Archive policy (`None` = archiving off: checkpoint pruning deletes
    /// superseded files exactly as before). `Some` makes pruning *retire*
    /// them into the LSN-indexed `archive/` directory instead, enabling
    /// [`DurableTable::open_at`] point-in-time restores. See
    /// `docs/persist-format.md` ("Archive format & PITR protocol").
    pub archive: Option<crate::archive::ArchiveConfig>,
}

impl Default for DurableOptions {
    fn default() -> Self {
        Self {
            group_commit: 1,
            wal_checkpoint_bytes: 0,
            background_checkpointer: true,
            max_segments: 6,
            mmap_restore: true,
            checkpoint_retries: 3,
            checkpoint_backoff_ms: 10,
            degrade_after: 8,
            scrub_interval_ms: 0,
            scrub_pause_per_record_us: 0,
            governor: None,
            archive: None,
        }
    }
}

/// Observable durability state (tests, monitoring).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurableStats {
    /// Current durable checkpoint generation.
    pub generation: u64,
    /// Highest LSN folded into the current manifest/snapshot.
    pub durable_lsn: u64,
    /// LSN the next staged record will receive.
    pub next_lsn: u64,
    /// Sealed bytes in the live WAL file.
    pub wal_bytes: u64,
    /// Records staged but not yet sealed (not yet durable).
    pub staged_records: u64,
    /// Chunks dirtied since the last captured checkpoint — what the next
    /// incremental checkpoint would serialize.
    pub dirty_chunks: u64,
    /// Distinct segment files the current manifest references (0 for a
    /// not-yet-upgraded v1 directory).
    pub segments: u64,
    /// Whether a background checkpoint is currently in flight.
    pub checkpoint_in_flight: bool,
    /// Whether a background checkpoint has failed since the last
    /// successful one (details via [`DurableTable::take_checkpoint_error`]
    /// and [`DurableTable::checkpoint_stats`]).
    pub checkpoint_failed: bool,
    /// Whether the table is in degraded read-only mode.
    pub degraded: bool,
    /// Consecutive failed (post-retry) checkpoints; resets on success.
    pub consecutive_checkpoint_failures: u64,
    /// Damaged records found by scrub passes (background + manual),
    /// cumulative, pre-dedup.
    pub scrub_corrupt_records: u64,
    /// Chunks quarantined by the scrubber (damaged on disk, never
    /// hydrated — their data exists nowhere in memory to heal from).
    pub quarantined_chunks: u64,
}

/// One failed checkpoint, retained in [`CheckpointStats::recent_failures`].
#[derive(Debug, Clone)]
pub struct CheckpointFailure {
    /// WAL watermark the failed checkpoint tried to fold in (the "when"
    /// in log coordinates — wall-clock timestamps would not survive a
    /// restart meaningfully, LSNs do).
    pub durable_lsn: u64,
    /// Generation the failed checkpoint tried to commit.
    pub generation: u64,
    /// Attempts made (retries included).
    pub attempts: u32,
    /// The final error, rendered.
    pub error: String,
}

/// Checkpoint health counters + a ring of recent failures.
#[derive(Debug, Clone, Default)]
pub struct CheckpointStats {
    /// Consecutive failed (post-retry) checkpoints; resets on success.
    pub consecutive_failures: u64,
    /// Total failed (post-retry) checkpoints over the table's lifetime.
    pub total_failures: u64,
    /// Total retry attempts (beyond each job's first attempt).
    pub total_retries: u64,
    /// The most recent failures, oldest first (bounded ring).
    pub recent_failures: Vec<CheckpointFailure>,
}

/// Recent-failure ring capacity.
const FAILURE_RING: usize = 8;

/// Whether the table accepts writes.
#[derive(Debug, Clone)]
enum TableMode {
    Active,
    /// Read-only: persistent durability failure. Holds the reason chain.
    Degraded(String),
}

/// Capture-time bookkeeping for a submitted checkpoint: committed into
/// `clean_versions` only when the job completes.
#[derive(Debug)]
struct Inflight {
    versions: Vec<u64>,
    /// Watermark the job is folding in (failure reporting).
    durable_lsn: u64,
    /// Generation the job would commit (failure reporting).
    new_gen: u64,
}

/// A table wired to a manifest + segments + WAL persistence directory.
#[derive(Debug)]
pub struct DurableTable {
    table: Table,
    dir: PathBuf,
    vfs: VfsHandle,
    wal: Wal,
    /// Durable manifest generation (what `CURRENT` names).
    generation: u64,
    /// Live WAL file number (`>= generation`: capture rotates the WAL
    /// before its manifest commits, so an in-flight or failed checkpoint
    /// leaves a replayable chain `wal-<gen> .. wal-<wal_seq>`).
    wal_seq: u64,
    durable_lsn: u64,
    fms: Vec<FrequencyModel>,
    opts: DurableOptions,
    /// Current durable manifest entries (empty until a v1 directory takes
    /// its first — necessarily full — v2 checkpoint).
    entries: Vec<ChunkEntry>,
    /// Column version counters at the last *captured* checkpoint; a chunk
    /// is dirty iff its live counter differs. `u64::MAX` is a sentinel no
    /// live counter ever reaches: the scrubber plants it to force-dirty a
    /// chunk whose on-disk record it found damaged.
    clean_versions: Vec<u64>,
    /// Next segment sequence number to allocate.
    next_seg: u64,
    worker: Option<Checkpointer>,
    inflight: Option<Inflight>,
    /// A background (watermark) checkpoint failure, held for out-of-band
    /// reporting: the write that happened to observe it committed durably
    /// and must not be failed retroactively. Cleared by
    /// [`DurableTable::take_checkpoint_error`] or by the next successful
    /// checkpoint; until then the chunks simply stay dirty and the WAL
    /// chain keeps growing (recovery replays it — nothing is lost).
    background_error: Option<PersistError>,
    mode: TableMode,
    cp_stats: CheckpointStats,
    scrubber: Option<Scrubber>,
    /// Scrub counters from manual [`DurableTable::scrub_now`] passes
    /// (background passes accumulate in the scrubber's shared state).
    manual_scrub: ScrubStats,
    /// Chunks whose in-memory state must not be trusted or whose on-disk
    /// record is damaged: scrub-quarantined chunks (damaged record, never
    /// hydrated — hydration would fail a CRC check) and panic-quarantined
    /// chunks (a query panicked mid-mutation, leaving suspect memory).
    /// Keyed by chunk index, holding the reason. Checkpoints never
    /// `Encode` a quarantined chunk — they keep re-pointing at its last
    /// durable record.
    quarantined: BTreeMap<usize, String>,
    /// Resource governor (admission gate, memory budget, interrupt
    /// counters), shared with every [`TableReader`] this table hands out.
    governor: Option<Arc<Governor>>,
    /// Backup pins, shared with checkpoint jobs (pruning/retiring runs on
    /// the checkpointer thread) and outstanding [`BackupJob`]s: a pinned
    /// file is neither deleted nor retired until its backup finishes.
    pins: crate::archive::SharedPins,
    /// Backup directories registered via [`DurableTable::watch_backup`];
    /// the background scrubber re-verifies them after each pass.
    watched_backups: Arc<Mutex<Vec<PathBuf>>>,
}

fn corrupt(reason: impl Into<String>) -> PersistError {
    PersistError::Storage(StorageError::Corrupt {
        reason: reason.into(),
    })
}

fn snap_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("snap-{generation:06}.casper"))
}

pub(crate) fn wal_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:06}.log"))
}

pub(crate) fn current_path(dir: &Path) -> PathBuf {
    dir.join("CURRENT")
}

/// Best-effort directory fsync, for dirents whose loss costs nothing
/// acknowledged (a freshly created empty WAL, prune garbage).
pub(crate) fn sync_dir(vfs: &VfsHandle, dir: &Path) {
    let _ = vfs.fsync_dir(dir);
}

/// Write `bytes` to `path` via a temp file + atomic rename, fsyncing the
/// file and then the directory so the rename is the commit point. The
/// directory fsync is *checked*: `CURRENT` and manifest swings acknowledge
/// durability to their callers, and a lost dirent would silently roll the
/// commit back at the next crash.
pub(crate) fn write_atomic(vfs: &VfsHandle, path: &Path, bytes: &[u8]) -> Result<(), PersistError> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = vfs.create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    vfs.rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        vfs.fsync_dir(dir)?;
    }
    Ok(())
}

fn retry_policy(opts: &DurableOptions) -> RetryPolicy {
    RetryPolicy {
        attempts: opts.checkpoint_retries.max(1),
        backoff: Duration::from_millis(opts.checkpoint_backoff_ms),
    }
}

fn spawn_worker(opts: &DurableOptions) -> Result<Option<Checkpointer>, PersistError> {
    if opts.background_checkpointer {
        Ok(Some(Checkpointer::spawn(retry_policy(opts))?))
    } else {
        Ok(None)
    }
}

fn spawn_scrubber(
    opts: &DurableOptions,
    vfs: &VfsHandle,
    dir: &Path,
    watched: Arc<Mutex<Vec<PathBuf>>>,
) -> Result<Option<Scrubber>, PersistError> {
    if opts.scrub_interval_ms > 0 {
        Ok(Some(Scrubber::spawn(
            vfs.clone(),
            dir.to_path_buf(),
            Duration::from_millis(opts.scrub_interval_ms),
            Duration::from_micros(opts.scrub_pause_per_record_us),
            watched,
        )?))
    } else {
        Ok(None)
    }
}

impl DurableTable {
    /// Create a fresh durable table at `dir` (which must not already hold
    /// one): writes the generation-1 segment + manifest, an empty WAL and
    /// `CURRENT`.
    pub fn create(
        dir: &Path,
        schema: casper_workload::HapSchema,
        keys: Vec<u64>,
        payload_cols: Vec<Vec<u32>>,
        config: casper_engine::EngineConfig,
        opts: DurableOptions,
    ) -> Result<Self, PersistError> {
        Self::create_from_table(dir, Table::load(schema, keys, payload_cols, config), opts)
    }

    /// As [`DurableTable::create`], adopting an already-built table (e.g.
    /// one that was optimized before first persisting it).
    pub fn create_from_table(
        dir: &Path,
        table: Table,
        opts: DurableOptions,
    ) -> Result<Self, PersistError> {
        Self::create_from_table_with_vfs(VfsHandle::default(), dir, table, opts)
    }

    /// As [`DurableTable::create_from_table`], routing all I/O through
    /// `vfs` (the fault-injection entry point; production callers use the
    /// plain constructors, which pass the real filesystem).
    pub fn create_from_table_with_vfs(
        vfs: VfsHandle,
        dir: &Path,
        table: Table,
        opts: DurableOptions,
    ) -> Result<Self, PersistError> {
        casper_obs::enable_from_env();
        fs::create_dir_all(dir)?;
        if current_path(dir).exists() {
            return Err(corrupt(format!(
                "directory {} already holds a durable table",
                dir.display()
            )));
        }
        table.hydrate_all()?;
        let generation = 1u64;
        // A crash of a previous create between WAL creation and the
        // CURRENT write leaves a stale WAL behind (CURRENT absent, so the
        // directory never became a live table); clear it for the retry.
        let wp = wal_path(dir, generation);
        if wp.exists() {
            vfs.remove(&wp)?;
        }
        let wal = Wal::create(&vfs, &wp, 1)?;
        let chunks = table.column().chunks();
        let fresh: Vec<(usize, RecordSource)> = chunks
            .iter()
            .enumerate()
            .map(|(i, store)| (i, RecordSource::Encode(store.clone())))
            .collect();
        let pins = crate::archive::SharedPins::default();
        let watched = Arc::new(Mutex::new(Vec::new()));
        let job = CheckpointJob {
            vfs: vfs.clone(),
            dir: dir.to_path_buf(),
            new_gen: generation,
            seg_seq: 1,
            durable_lsn: 0,
            schema: table.schema(),
            config: *table.column().config(),
            fences: table.column().fences().map(<[u64]>::to_vec),
            fms: Vec::new(),
            n_chunks: chunks.len(),
            fresh,
            reused: Vec::new(),
            archive: opts.archive,
            pins: pins.clone(),
        };
        let manifest = crate::incremental::run_checkpoint(&job)?;
        let clean_versions = table.column().versions().to_vec();
        Ok(Self {
            table,
            dir: dir.to_path_buf(),
            wal,
            generation,
            wal_seq: generation,
            durable_lsn: 0,
            fms: Vec::new(),
            entries: manifest.entries,
            clean_versions,
            next_seg: 2,
            worker: spawn_worker(&opts)?,
            inflight: None,
            background_error: None,
            mode: TableMode::Active,
            cp_stats: CheckpointStats::default(),
            scrubber: spawn_scrubber(&opts, &vfs, dir, Arc::clone(&watched))?,
            manual_scrub: ScrubStats::default(),
            quarantined: BTreeMap::new(),
            governor: opts.governor.map(|cfg| Arc::new(Governor::new(cfg))),
            pins,
            watched_backups: watched,
            vfs,
            opts,
        })
    }

    /// Reopen a durable table. A v2 directory restores through mapped
    /// segments — metadata-only work; chunks hydrate (checksum-verified)
    /// on first touch — then recovers the WAL chain (torn-tail truncation
    /// on the last link) and replays its committed batches. A v1 directory
    /// decodes its whole-table snapshot exactly as before; its first
    /// checkpoint upgrades it to the v2 format.
    pub fn open(dir: &Path, opts: DurableOptions) -> Result<Self, PersistError> {
        Self::open_with_vfs(VfsHandle::default(), dir, opts)
    }

    /// As [`DurableTable::open`], routing all I/O through `vfs`.
    pub fn open_with_vfs(
        vfs: VfsHandle,
        dir: &Path,
        opts: DurableOptions,
    ) -> Result<Self, PersistError> {
        casper_obs::enable_from_env();
        let current_bytes = vfs.read(&current_path(dir))?;
        let current = String::from_utf8_lossy(&current_bytes).into_owned();
        let generation: u64 = current
            .trim()
            .parse()
            .map_err(|_| corrupt(format!("CURRENT holds {current:?}, not a generation")))?;
        if manifest_path(dir, generation).exists() {
            Self::open_v2(vfs, dir, generation, opts)
        } else {
            Self::open_v1(vfs, dir, generation, opts)
        }
    }

    fn open_v2(
        vfs: VfsHandle,
        dir: &Path,
        generation: u64,
        opts: DurableOptions,
    ) -> Result<Self, PersistError> {
        let manifest = decode_manifest(&vfs.read(&manifest_path(dir, generation))?)?;
        if manifest.generation != generation {
            return Err(corrupt(format!(
                "manifest says generation {} but CURRENT says {generation}",
                manifest.generation
            )));
        }
        let mut table = restore_table(&vfs, dir, &manifest, !opts.mmap_restore)?;
        // Versions are zero on a fresh restore; snapshotting them *before*
        // replay is what marks replayed-into chunks dirty for the next
        // incremental checkpoint.
        let clean_versions = vec![0u64; manifest.entries.len()];

        // Replay the WAL chain wal-<gen> .. wal-<highest>. Only the last
        // link can be torn (rotation seals its predecessor first), so the
        // middle links replay from a plain scan and the last one goes
        // through full recovery (truncation + writer positioning).
        let first = wal_path(dir, generation);
        if !first.exists() {
            Wal::create(&vfs, &first, manifest.durable_lsn + 1)?;
            sync_dir(&vfs, dir);
        }
        let mut seq = generation;
        let mut chain_last = manifest.durable_lsn;
        while wal_path(dir, seq + 1).exists() {
            let bytes = vfs.read(&wal_path(dir, seq))?;
            let s = scan(&bytes);
            // A middle link was fully sealed before the rotation that
            // created its successor, so it must scan to its exact end —
            // anything else is damage, and silently replaying only its
            // prefix (while later links still apply) would punch a hole
            // in the committed history.
            if s.valid_len != bytes.len() {
                return Err(corrupt(format!(
                    "WAL chain link {} is damaged: only {} of {} bytes \
                     form sealed batches, yet a successor link exists",
                    wal_path(dir, seq).display(),
                    s.valid_len,
                    bytes.len()
                )));
            }
            replay(&s, &mut table, manifest.durable_lsn)?;
            chain_last = chain_last.max(s.last_lsn);
            seq += 1;
        }
        let (mut wal, s) = Wal::recover(&vfs, &wal_path(dir, seq))?;
        replay(&s, &mut table, manifest.durable_lsn)?;
        chain_last = chain_last.max(s.last_lsn);
        wal.ensure_lsn_at_least(chain_last + 1);

        let next_seg = Self::max_segment_on_disk(dir)
            .max(manifest.referenced_segments().last().copied().unwrap_or(0))
            + 1;
        let pins = crate::archive::SharedPins::default();
        let watched = Arc::new(Mutex::new(Vec::new()));
        // Clear leftovers of interrupted checkpoints (unreferenced
        // segments, orphaned manifests) — but never the WAL chain at or
        // above the durable generation. With archiving on this also
        // completes any retire a crash interrupted (the reconcile pass).
        crate::archive::retire_stale(&vfs, dir, &manifest, opts.archive.as_ref(), &pins);
        Ok(Self {
            table,
            dir: dir.to_path_buf(),
            wal,
            generation,
            wal_seq: seq,
            durable_lsn: manifest.durable_lsn,
            fms: manifest.fms,
            entries: manifest.entries,
            clean_versions,
            next_seg,
            worker: spawn_worker(&opts)?,
            inflight: None,
            background_error: None,
            mode: TableMode::Active,
            cp_stats: CheckpointStats::default(),
            scrubber: spawn_scrubber(&opts, &vfs, dir, Arc::clone(&watched))?,
            manual_scrub: ScrubStats::default(),
            quarantined: BTreeMap::new(),
            governor: opts.governor.map(|cfg| Arc::new(Governor::new(cfg))),
            pins,
            watched_backups: watched,
            vfs,
            opts,
        })
    }

    fn open_v1(
        vfs: VfsHandle,
        dir: &Path,
        generation: u64,
        opts: DurableOptions,
    ) -> Result<Self, PersistError> {
        let snapshot_bytes = vfs.read(&snap_path(dir, generation))?;
        let restored = decode_snapshot(&snapshot_bytes)?;
        if restored.generation != generation {
            return Err(corrupt(format!(
                "snapshot says generation {} but CURRENT says {generation}",
                restored.generation
            )));
        }
        let mut table = restored.table;
        let n = table.column().chunks().len();
        let wp = wal_path(dir, generation);
        if !wp.exists() {
            // A crash can theoretically land between snapshot rename and
            // WAL creation of a checkpoint; an absent WAL simply means no
            // writes since the snapshot.
            Wal::create(&vfs, &wp, restored.durable_lsn + 1)?;
            sync_dir(&vfs, dir);
        }
        let (mut wal, s) = Wal::recover(&vfs, &wp)?;
        replay(&s, &mut table, restored.durable_lsn)?;
        // An empty post-checkpoint WAL starts numbering after the LSNs the
        // snapshot already folded in; otherwise fresh records would replay
        // as already-applied.
        wal.ensure_lsn_at_least(restored.durable_lsn.max(s.last_lsn) + 1);
        let watched = Arc::new(Mutex::new(Vec::new()));
        let this = Self {
            table,
            dir: dir.to_path_buf(),
            wal,
            generation,
            wal_seq: generation,
            durable_lsn: restored.durable_lsn,
            fms: restored.fms,
            // No manifest yet: the first checkpoint is a full one and
            // writes the v2 files (the upgrade path).
            entries: Vec::new(),
            clean_versions: vec![0; n],
            next_seg: Self::max_segment_on_disk(dir) + 1,
            worker: spawn_worker(&opts)?,
            inflight: None,
            background_error: None,
            mode: TableMode::Active,
            cp_stats: CheckpointStats::default(),
            scrubber: spawn_scrubber(&opts, &vfs, dir, Arc::clone(&watched))?,
            manual_scrub: ScrubStats::default(),
            quarantined: BTreeMap::new(),
            governor: opts.governor.map(|cfg| Arc::new(Governor::new(cfg))),
            pins: crate::archive::SharedPins::default(),
            watched_backups: watched,
            vfs,
            opts,
        };
        this.remove_stale_v1_generations();
        Ok(this)
    }

    /// Highest `seg-*.casper` number present in the directory (0 if none):
    /// fresh segments must never collide with leftovers of a checkpoint
    /// that died before its manifest committed.
    fn max_segment_on_disk(dir: &Path) -> u64 {
        let Ok(entries) = fs::read_dir(dir) else {
            return 0;
        };
        entries
            .flatten()
            .filter_map(|e| numbered_file(&e.file_name().to_string_lossy(), "seg-", ".casper"))
            .max()
            .unwrap_or(0)
    }

    /// The wrapped table (read-only; mutations must flow through
    /// [`DurableTable::execute`] so they are logged). On an mmap restore
    /// some chunks may still be unhydrated — call
    /// [`DurableTable::hydrate_all`] first if you need direct column
    /// access.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// Decode every chunk still awaiting lazy hydration. Fails with a
    /// typed [`StorageError::Quarantined`] if the scrubber found a chunk
    /// whose on-disk record is damaged and which has no in-memory copy.
    pub fn hydrate_all(&mut self) -> Result<(), PersistError> {
        self.ensure_no_quarantine()?;
        self.table.hydrate_all().map_err(PersistError::from)
    }

    /// A panic-quarantined chunk whose suspect memory holds writes newer
    /// than its durable record (its version counter moved past the clean
    /// snapshot). Checkpointing is unsound while one exists: the
    /// manifest's WAL watermark would claim those writes while the pinned
    /// record lacks them — acked-then-lost on the next reopen. Such a
    /// chunk freezes checkpoint progress instead; the WAL chain keeps
    /// growing and a reopen reconstructs the chunk from its last good
    /// record plus replay.
    fn dirty_quarantined(&self) -> Option<usize> {
        let versions = self.table.column().versions();
        if self.entries.len() != versions.len() {
            return None;
        }
        self.quarantined
            .keys()
            .copied()
            .find(|&i| i < versions.len() && versions[i] != self.clean_versions[i])
    }

    fn ensure_no_quarantine(&self) -> Result<(), PersistError> {
        if let Some((chunk, reason)) = self.quarantined.iter().next() {
            return Err(PersistError::Storage(StorageError::Quarantined {
                chunk: *chunk as u64,
                reason: reason.clone(),
            }));
        }
        Ok(())
    }

    fn ensure_active(&self) -> Result<(), PersistError> {
        match &self.mode {
            TableMode::Active => Ok(()),
            TableMode::Degraded(reason) => Err(PersistError::Degraded {
                reason: reason.clone(),
            }),
        }
    }

    /// Whether the table is in degraded read-only mode.
    pub fn is_degraded(&self) -> bool {
        matches!(self.mode, TableMode::Degraded(_))
    }

    /// Why the table degraded, if it did.
    pub fn degraded_reason(&self) -> Option<&str> {
        match &self.mode {
            TableMode::Active => None,
            TableMode::Degraded(reason) => Some(reason),
        }
    }

    /// Attempt to leave degraded mode: run a synchronous checkpoint as the
    /// health proof (it exercises segment write, fsync, manifest + CURRENT
    /// swing and the directory fsync). On success the table accepts writes
    /// again; on failure it stays degraded with the fresh reason.
    pub fn reactivate(&mut self) -> Result<u64, PersistError> {
        if !self.is_degraded() {
            return Ok(self.generation);
        }
        self.mode = TableMode::Active;
        self.cp_stats.consecutive_failures = 0;
        match self.checkpoint_sync(false) {
            Ok(gen) => {
                OBS_DEGRADED_EXIT.inc();
                self.sync_obs_gauges();
                warn_rate_limited(&format!(
                    "left degraded mode (reactivate proved storage, generation {gen})"
                ));
                Ok(gen)
            }
            Err(e) => {
                self.mode = TableMode::Degraded(format!("reactivate failed: {e}"));
                self.sync_obs_gauges();
                Err(e)
            }
        }
    }

    fn enter_degraded(&mut self, reason: String) {
        if !self.is_degraded() {
            OBS_DEGRADED_ENTER.inc();
            warn_rate_limited(&format!("entering degraded read-only mode: {reason}"));
            self.mode = TableMode::Degraded(reason);
            self.sync_obs_gauges();
        }
    }

    /// Mirror the health state the accessors report into the registry
    /// gauges. Called wherever that state changes, so a metrics dump and
    /// [`DurableTable::stats`] / [`DurableTable::checkpoint_stats`] always
    /// tell the same story.
    fn sync_obs_gauges(&self) {
        if !casper_obs::enabled() {
            return;
        }
        OBS_CP_CONSECUTIVE.set(self.cp_stats.consecutive_failures as f64);
        let segments: BTreeSet<u64> = self.entries.iter().map(|e| e.seg).collect();
        OBS_SEGMENT_CHAIN.set(segments.len() as f64);
        OBS_QUARANTINED.set(self.quarantined.len() as f64);
        OBS_DEGRADED_MODE.set(if self.is_degraded() { 1.0 } else { 0.0 });
        if let Some(g) = &self.governor {
            // Refresh the resident gauge so a metrics dump between budget
            // checks still reports current residency.
            g.set_resident_bytes(self.table.column().resident_bytes() as u64);
        }
    }

    /// Render the process-wide telemetry registry as Prometheus text
    /// exposition. Empty when telemetry was never engaged (`CASPER_OBS`
    /// unset and [`casper_obs::enable`] never called).
    pub fn metrics_text(&self) -> String {
        self.sync_obs_gauges();
        casper_obs::snapshot().map_or_else(String::new, |s| s.to_prometheus_text())
    }

    /// As [`DurableTable::metrics_text`], rendered as a JSON object.
    pub fn metrics_json(&self) -> String {
        self.sync_obs_gauges();
        casper_obs::snapshot().map_or_else(|| "{}".to_string(), |s| s.to_json())
    }

    /// Live row count.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Captured frequency-model state from the last durable optimize pass
    /// (restored from the manifest on open).
    pub fn frequency_models(&self) -> &[FrequencyModel] {
        &self.fms
    }

    /// Current durability counters.
    pub fn stats(&self) -> DurableStats {
        let versions = self.table.column().versions();
        let dirty = if self.entries.len() == versions.len() {
            versions
                .iter()
                .zip(&self.clean_versions)
                .filter(|(v, c)| v != c)
                .count()
        } else {
            versions.len() // no manifest: everything is dirty
        };
        let segments: BTreeSet<u64> = self.entries.iter().map(|e| e.seg).collect();
        let scrub = self.scrub_stats();
        DurableStats {
            generation: self.generation,
            durable_lsn: self.durable_lsn,
            next_lsn: self.wal.next_lsn(),
            wal_bytes: self.wal.durable_bytes(),
            staged_records: self.wal.staged_records(),
            dirty_chunks: dirty as u64,
            segments: segments.len() as u64,
            checkpoint_in_flight: self.inflight.is_some(),
            checkpoint_failed: self.background_error.is_some(),
            degraded: self.is_degraded(),
            consecutive_checkpoint_failures: self.cp_stats.consecutive_failures,
            scrub_corrupt_records: scrub.corrupt_records,
            quarantined_chunks: self.quarantined.len() as u64,
        }
    }

    /// Checkpoint health: failure counters and the recent-failure ring.
    pub fn checkpoint_stats(&self) -> CheckpointStats {
        self.cp_stats.clone()
    }

    /// Cumulative scrub counters (background passes + manual
    /// [`DurableTable::scrub_now`] calls).
    pub fn scrub_stats(&self) -> ScrubStats {
        let mut s = self.manual_scrub;
        if let Some(scrubber) = &self.scrubber {
            let bg = scrubber.shared.stats();
            s.passes += bg.passes;
            s.records_checked += bg.records_checked;
            s.corrupt_records += bg.corrupt_records;
            s.failed_passes += bg.failed_passes;
            s.archive_files_checked += bg.archive_files_checked;
            s.archive_corrupt_files += bg.archive_corrupt_files;
            s.backups_checked += bg.backups_checked;
            s.backup_failures += bg.backup_failures;
        }
        s
    }

    /// Chunk indexes currently quarantined (damaged on disk, no in-memory
    /// copy to heal from).
    pub fn quarantined_chunks(&self) -> Vec<usize> {
        self.quarantined.keys().copied().collect()
    }

    /// Run one synchronous scrub pass over the current manifest and apply
    /// its findings (mark damaged-but-resident chunks dirty so the next
    /// checkpoint rewrites them; quarantine damaged never-hydrated ones).
    /// The pass also re-verifies the archive behind the live chain and any
    /// backups registered via [`DurableTable::watch_backup`]; their
    /// damage is counted and reported, never escalated — archive or backup
    /// rot must not block live serving.
    pub fn scrub_now(&mut self) -> Result<ScrubReport, PersistError> {
        let report = crate::scrub::scrub_pass(&self.vfs, &self.dir, Duration::ZERO, None)?;
        self.manual_scrub.passes += 1;
        self.manual_scrub.records_checked += report.records_checked;
        self.manual_scrub.corrupt_records += report.findings.len() as u64;
        self.manual_scrub.archive_files_checked += report.archive_files_checked;
        self.manual_scrub.archive_corrupt_files += report.archive_findings.len() as u64;
        self.apply_scrub_findings(&report.findings);
        let watched: Vec<PathBuf> = self
            .watched_backups
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        for backup in watched {
            self.manual_scrub.backups_checked += 1;
            let outcome = crate::archive::verify_backup(&self.vfs, &backup, Duration::ZERO, None);
            crate::scrub::note_backup_verification(outcome.is_ok());
            if let Err(e) = outcome {
                self.manual_scrub.backup_failures += 1;
                warn_rate_limited(&format!(
                    "watched backup {} failed verification: {e}",
                    backup.display()
                ));
            }
        }
        Ok(report)
    }

    /// Drain background scrub findings (if the scrubber runs) and apply
    /// them. Called from the seal path so healing needs no extra locking:
    /// the foreground owns the table.
    fn absorb_scrub_findings(&mut self) {
        let findings = match &self.scrubber {
            Some(s) => s.shared.take_findings(),
            None => return,
        };
        if !findings.is_empty() {
            self.apply_scrub_findings(&findings);
        }
    }

    /// A damaged record whose chunk is resident: plant the dirty sentinel
    /// so the next checkpoint re-encodes the chunk from memory into a
    /// fresh segment (the heal). A damaged record whose chunk was never
    /// hydrated has no copy to heal from — quarantine it so hydration
    /// fails typed instead of tripping over the CRC mid-query.
    fn apply_scrub_findings(&mut self, findings: &[ScrubFinding]) {
        let chunks = self.table.column().chunks();
        for f in findings {
            // Findings describe the *durable* generation's records. A
            // finding raced past a checkpoint that already superseded its
            // record is stale — the damaged bytes are unreferenced (or
            // about to be pruned).
            if f.generation != self.generation || f.chunk >= self.clean_versions.len() {
                continue;
            }
            let hydrated = match chunks.get(f.chunk) {
                Some(slot) => slot.is_hydrated(),
                None => true,
            };
            if hydrated {
                self.clean_versions[f.chunk] = u64::MAX;
                if let Some(inflight) = &mut self.inflight {
                    // The in-flight job may re-point at the damaged record
                    // (the chunk looked clean at capture); keep the dirty
                    // mark alive across its completion.
                    if f.chunk < inflight.versions.len() {
                        inflight.versions[f.chunk] = u64::MAX;
                    }
                }
            } else {
                self.quarantined
                    .entry(f.chunk)
                    .or_insert_with(|| f.reason.clone());
            }
        }
        self.sync_obs_gauges();
    }

    /// Execute one query. Writes are staged into the WAL's open batch
    /// after they apply; the batch seals (one write + fsync) every
    /// `group_commit` records. Reads pass straight through (hydrating any
    /// lazily-restored chunk they route to). On a degraded table reads
    /// keep working; writes fail with [`PersistError::Degraded`].
    pub fn execute(&mut self, q: &HapQuery) -> Result<QueryOutput, PersistError> {
        let logged = WalOp::from_query(q);
        if logged.is_some() {
            self.ensure_active()?;
        }
        let out = self.table.execute(q)?;
        if let Some(op) = logged {
            self.wal.stage(&op);
            if self.wal.staged_records() >= self.opts.group_commit as u64 {
                self.seal_and_maybe_checkpoint()?;
            }
        }
        self.govern_memory();
        Ok(out)
    }

    /// Execute one query under full resource governance: admission
    /// through the table's governor (if one is configured), `ctx`
    /// deadline/cancel checks at chunk boundaries, and `catch_unwind`
    /// panic isolation. Writes still flow WAL-first exactly as in
    /// [`DurableTable::execute`]; a write's deadline is checked before
    /// dispatch only (a started point write is cheaper to finish than to
    /// abort half-applied).
    ///
    /// Panic containment: a panic attributed to a *clean, persisted*
    /// chunk **heals** — the suspect in-memory state is dropped and the
    /// chunk re-points at its last durable record, from which the next
    /// read rehydrates bit-exact (the record was byte-identical to the
    /// pre-panic memory). A panic in a *dirty* chunk **quarantines** it:
    /// its durable record plus the WAL still reconstruct a consistent
    /// table on reopen, and checkpoints never re-encode the suspect
    /// memory. Either way the serving loop — and the query slot — stay
    /// alive.
    pub fn execute_governed(
        &mut self,
        q: &HapQuery,
        ctx: &QueryCtx,
    ) -> Result<QueryOutput, PersistError> {
        let logged = WalOp::from_query(q);
        if logged.is_some() {
            self.ensure_active()?;
        }
        let out = match &self.governor {
            Some(gov) => {
                let gov = Arc::clone(gov);
                match self.table.execute_governed(q, &gov, ctx) {
                    Ok(out) => out,
                    Err(e) => {
                        if let QueryError::Panicked {
                            chunk: Some(i),
                            detail,
                        } = &e
                        {
                            self.contain_panic(*i, detail);
                        }
                        return Err(e.into());
                    }
                }
            }
            None => self
                .table
                .execute_ctx(q, ctx)
                .map_err(|e| PersistError::from(QueryError::from(e)))?,
        };
        if let Some(op) = logged {
            self.wal.stage(&op);
            if self.wal.staged_records() >= self.opts.group_commit as u64 {
                self.seal_and_maybe_checkpoint()?;
            }
        }
        self.govern_memory();
        Ok(out)
    }

    /// Contain a query panic attributed to chunk `i` (see
    /// [`DurableTable::execute_governed`] for the heal-vs-quarantine
    /// contract).
    fn contain_panic(&mut self, i: usize, detail: &str) {
        let versions = self.table.column().versions();
        let n = versions.len();
        let healable = self.entries.len() == n
            && i < n
            && versions[i] == self.clean_versions[i]
            && !self.quarantined.contains_key(&i);
        if healable {
            let entry = self.entries[i].clone();
            let live = entry.live as usize;
            let loader = self.governed_loader(entry);
            self.table.column_mut().repoint_chunk(i, live, loader);
            self.table.column().republish();
            warn_rate_limited(&format!(
                "query panicked in clean chunk {i} ({detail}); \
                 chunk re-pointed at its durable record"
            ));
        } else if i < n {
            self.quarantined
                .entry(i)
                .or_insert_with(|| format!("query panicked in this chunk: {detail}"));
            warn_rate_limited(&format!(
                "query panicked in dirty chunk {i} ({detail}); chunk quarantined \
                 (durable record + WAL reconstruct it on reopen)"
            ));
            self.sync_obs_gauges();
        }
    }

    /// Build the rehydration loader for an evicted or healed chunk: maps
    /// the record's segment on first touch and decodes through the same
    /// CRC-verified path restore-time laziness uses, counting the
    /// rehydration in the governor (when one is configured).
    fn governed_loader(&self, entry: ChunkEntry) -> casper_engine::column::ChunkLoader {
        let inner = record_loader(
            self.vfs.clone(),
            self.dir.clone(),
            entry,
            *self.table.column().config(),
            self.table.column().payload_width(),
        );
        match &self.governor {
            Some(gov) => {
                let gov = Arc::clone(gov);
                Box::new(move || {
                    let store = inner()?;
                    gov.note_rehydration();
                    Ok(store)
                })
            }
            None => inner,
        }
    }

    /// Run the memory governor's budget step if its amortization clock is
    /// due: account resident bytes, evict cold clean chunks past the
    /// budget, optionally checkpoint to make dirty chunks evictable, and
    /// escalate to degraded read-only mode after
    /// `over_budget_degrade_after` consecutive failed passes. A
    /// checkpoint failure here is stashed like any background checkpoint
    /// failure — it must not fail the (possibly read-only) query that
    /// happened to trigger the pass.
    fn govern_memory(&mut self) {
        let Some(gov) = self.governor.clone() else {
            return;
        };
        let budget = gov.config().memory_budget_bytes;
        if budget == 0 || !gov.budget_check_due() {
            return;
        }
        let mut resident = self.evict_pass(&gov, budget);
        if resident > budget
            && gov.config().governor_checkpoint
            && !self.is_degraded()
            && self.dirty_quarantined().is_none()
        {
            // Dirty chunks are ineligible for eviction (their records are
            // stale); a checkpoint refreshes the records and a second
            // sweep can then demote them.
            match self.checkpoint_sync(false) {
                Ok(_) => resident = self.evict_pass(&gov, budget),
                Err(e) => self.background_error = Some(e),
            }
        }
        let still_over = resident > budget;
        if gov.over_budget_tick(still_over) && !self.is_degraded() {
            self.enter_degraded(format!(
                "memory governor: {resident} resident bytes still exceed the \
                 {budget}-byte budget after eviction and checkpointing"
            ));
        }
    }

    /// One eviction sweep: account resident bytes and demote the coldest
    /// clean, persisted, unquarantined chunks back to lazy slots until
    /// the budget holds (or candidates run out). Publishes once per
    /// sweep; in-flight snapshot pins keep the hydrated copies alive
    /// until their readers finish. Returns resident bytes after.
    fn evict_pass(&mut self, gov: &Arc<Governor>, budget: usize) -> usize {
        let resident = self.table.column().resident_bytes();
        gov.set_resident_bytes(resident as u64);
        if resident <= budget {
            return resident;
        }
        let n = self.table.column().chunks().len();
        if self.entries.len() != n {
            // No v2 manifest yet (fresh v1 upgrade): nothing has a
            // per-chunk record to re-point at.
            return resident;
        }
        // Coldest-first victim order from the per-slot access stamps.
        let victims: Vec<(u64, usize, usize)> = {
            let versions = self.table.column().versions();
            self.table
                .column()
                .chunks()
                .iter()
                .enumerate()
                .filter(|(i, slot)| {
                    slot.is_hydrated()
                        && versions[*i] == self.clean_versions[*i]
                        && !self.quarantined.contains_key(i)
                })
                .map(|(i, slot)| (slot.last_access(), i, slot.resident_bytes()))
                .collect()
        };
        let mut victims = victims;
        victims.sort_unstable();
        let need = resident - budget;
        let mut freed = 0usize;
        let mut evicted = 0u64;
        for (_, i, bytes) in victims {
            if freed >= need {
                break;
            }
            let loader = self.governed_loader(self.entries[i].clone());
            if self.table.column_mut().evict_chunk(i, loader) {
                freed += bytes;
                evicted += 1;
            }
        }
        if evicted > 0 {
            self.table.column().republish();
            gov.note_evictions(evicted);
        }
        let after = self.table.column().resident_bytes();
        gov.set_resident_bytes(after as u64);
        after
    }

    /// The table's resource governor, when one was configured.
    pub fn governor(&self) -> Option<&Arc<Governor>> {
        self.governor.as_ref()
    }

    /// Governor counters (`None` when ungoverned).
    pub fn governor_stats(&self) -> Option<GovernorStats> {
        self.governor.as_ref().map(|g| g.stats())
    }

    /// Resident heap bytes across hydrated chunk stores (the governor's
    /// budget measure; meaningful without a governor too).
    pub fn resident_bytes(&self) -> usize {
        self.table.column().resident_bytes()
    }

    /// A cheap read-only handle over the table's published snapshot,
    /// sharing the table's governor (if any): `execute_governed` on the
    /// reader goes through the same slot gate and interrupt counters.
    pub fn reader(&self) -> TableReader {
        let r = self.table.reader();
        match &self.governor {
            Some(g) => r.with_governor(Arc::clone(g)),
            None => r,
        }
    }

    /// Test hook: replace chunk `i`'s slot with one that panics on next
    /// touch, simulating a latent in-memory fault for the
    /// panic-isolation tests.
    #[doc(hidden)]
    pub fn inject_chunk_panic(&mut self, i: usize) {
        let live = self.table.column().chunks()[i].len();
        self.table
            .column_mut()
            .repoint_chunk(i, live, Box::new(|| panic!("injected chunk fault")));
        self.table.column().republish();
    }

    /// Multi-column predicated sum (the TPC-H Q6 shape); read-only — and
    /// `&self`, since hydration goes through the shared `ChunkSlot` fill —
    /// so it works on degraded tables and shared borrows alike. Corrupt
    /// persisted chunks surface as a typed error, same as
    /// [`DurableTable::execute`].
    pub fn multi_column_sum(
        &self,
        lo: u64,
        hi: u64,
        sum_cols: &[usize],
        pred_col: usize,
        pred_lo: u32,
        pred_hi: u32,
    ) -> Result<QueryOutput, PersistError> {
        self.table
            .multi_column_sum(lo, hi, sum_cols, pred_col, pred_lo, pred_hi)
            .map_err(PersistError::from)
    }

    /// Execute a batch under one group commit: all writes seal (and fsync)
    /// together.
    pub fn execute_all(&mut self, queries: &[HapQuery]) -> Result<Vec<QueryOutput>, PersistError> {
        if queries.iter().any(|q| WalOp::from_query(q).is_some()) {
            self.ensure_active()?;
        }
        let mut outs = Vec::with_capacity(queries.len());
        for q in queries {
            let logged = WalOp::from_query(q);
            let out = self.table.execute(q)?;
            if let Some(op) = logged {
                self.wal.stage(&op);
            }
            outs.push(out);
        }
        self.seal_and_maybe_checkpoint()?;
        self.govern_memory();
        Ok(outs)
    }

    /// Commit a transaction durably: validate + apply through the
    /// [`TxnManager`], then seal the transaction's write set as one WAL
    /// batch. A validation conflict stages nothing.
    pub fn commit_txn(&mut self, mgr: &TxnManager, txn: Transaction) -> Result<u64, PersistError> {
        self.ensure_active()?;
        let queries = txn.as_queries();
        // The manager applies through the column directly; hydrate the
        // chunks its write set routes to first.
        for q in &queries {
            self.table.column_mut().hydrate_for_query(q)?;
        }
        let ts = match mgr.commit(txn, &mut self.table) {
            Ok(ts) => ts,
            Err(e @ TxnError::Conflict { .. }) => return Err(e.into()),
            Err(e) => {
                // A storage failure mid-apply leaves the manager's commit
                // partially applied — a state the WAL cannot describe op
                // by op. Checkpointing snapshots the table exactly as it
                // is, so recovery cannot diverge from what readers saw.
                // If even that fails, report both faults: the caller must
                // know durable state now lags the in-memory table.
                if let Err(cp) = self.checkpoint() {
                    return Err(corrupt(format!(
                        "transaction applied partially ({e}) and the recovery \
                         checkpoint failed ({cp}); durable state lags the \
                         in-memory table until a checkpoint succeeds"
                    )));
                }
                return Err(e.into());
            }
        };
        for q in &queries {
            if let Some(op) = WalOp::from_query(q) {
                self.wal.stage(&op);
            }
        }
        self.seal_and_maybe_checkpoint()?;
        Ok(ts)
    }

    /// Seal the open WAL batch, making every staged write durable now.
    pub fn flush(&mut self) -> Result<(), PersistError> {
        if self.wal.staged_records() > 0 {
            self.ensure_active()?;
        }
        self.seal_and_maybe_checkpoint()
    }

    fn seal_and_maybe_checkpoint(&mut self) -> Result<(), PersistError> {
        if let Err(e) = self.wal.seal() {
            if !self.wal.poisoned() {
                // A failed *write* (ENOSPC before the fsync): the batch
                // stays staged and the next seal retries from the durable
                // boundary. Nothing was acknowledged, nothing is at risk.
                return Err(e);
            }
            // A failed *fsync*: the batch's durability is unknown and this
            // fd can never prove it (fsyncgate). Rotate to a fresh WAL and
            // take a synchronous recovery checkpoint whose watermark
            // covers the ghost batch; the write is acknowledged only once
            // that checkpoint commits. `checkpoint_sync` degrades the
            // table if the recovery checkpoint fails — a commit of
            // unknown durability is never acknowledged.
            self.checkpoint_sync(false)?;
            return Ok(());
        }
        self.absorb_scrub_findings();
        // Absorb a finished background checkpoint before deciding whether
        // to start another (failures are stashed, not attributed to this
        // write — see `poll_checkpoint`).
        self.poll_checkpoint();
        if self.opts.wal_checkpoint_bytes > 0
            && self.wal.durable_bytes() >= self.opts.wal_checkpoint_bytes
            && self.inflight.is_none()
            && !self.is_degraded()
            // A dirty quarantined chunk freezes checkpoint progress (the
            // WAL keeps growing); the write that crossed the watermark
            // still sealed durably, so skipping — not failing — is right.
            && self.dirty_quarantined().is_none()
        {
            let job = self.capture(false)?;
            match (&self.worker, self.opts.background_checkpointer) {
                (Some(worker), true) => worker.submit(job)?,
                _ => {
                    let completion = run_with_retry(&job, &retry_policy(&self.opts));
                    if let Err(e) = self.apply_completion(completion) {
                        // Same contract as a background failure observed
                        // by `poll_checkpoint`: this write sealed durably;
                        // the checkpoint lag is reported out of band and
                        // recovery replays the growing WAL chain.
                        self.background_error = Some(e);
                    }
                }
            }
        }
        Ok(())
    }

    /// Incremental checkpoint, waited to completion: re-serialize exactly
    /// the chunks dirtied since the last checkpoint into a fresh segment,
    /// commit a manifest referencing old records for the clean ones, swing
    /// `CURRENT`, prune. Returns the new generation number.
    pub fn checkpoint(&mut self) -> Result<u64, PersistError> {
        self.ensure_active()?;
        self.checkpoint_sync(false)
    }

    /// Full compaction, waited to completion: rewrite every live chunk
    /// record into one fresh segment (clean records byte-copied, dirty
    /// ones re-encoded) and collapse the segment chain.
    pub fn compact(&mut self) -> Result<u64, PersistError> {
        self.ensure_active()?;
        self.checkpoint_sync(true)
    }

    /// Restore the table as it stood at `lsn`: pick the newest manifest
    /// (archived or live) whose durable LSN is at or before the target,
    /// rebuild the table from its records — **zero layout solves, zero
    /// codec re-encodes**, even when `lsn` predates an
    /// [`DurableTable::optimize`] re-layout (the archived manifest carries
    /// the old layout verbatim) — and replay the archived + live WAL chain
    /// up to the target. A target between two commit boundaries rounds
    /// *down* to the last committed batch at or below it (group commit
    /// acknowledged nothing in between); a target past the end of history
    /// clamps to everything available. A target older than the retention
    /// horizon fails with a typed error.
    ///
    /// The result is read-only and detached from the live table, which may
    /// keep serving concurrently (restore never writes to the directory).
    pub fn open_at(
        dir: &Path,
        lsn: u64,
        opts: DurableOptions,
    ) -> Result<PointInTime, PersistError> {
        Self::open_at_with_vfs(VfsHandle::default(), dir, lsn, opts)
    }

    /// As [`DurableTable::open_at`], routing all I/O through `vfs`.
    pub fn open_at_with_vfs(
        vfs: VfsHandle,
        dir: &Path,
        lsn: u64,
        opts: DurableOptions,
    ) -> Result<PointInTime, PersistError> {
        casper_obs::enable_from_env();
        crate::archive::open_at(&vfs, dir, lsn, opts)
    }

    /// Take a consistent online backup into `dest`: pin the current
    /// generation, then copy its manifest, every referenced segment, and
    /// the sealed WAL chain — CRC-verifying every byte on the way out.
    /// Equivalent to [`DurableTable::begin_backup`] followed immediately
    /// by [`BackupJob::run`] on the calling thread; use `begin_backup` to
    /// run the copy on a worker while this table keeps serving.
    pub fn backup_to(&mut self, dest: &Path) -> Result<BackupReport, PersistError> {
        self.begin_backup(dest)?.run()
    }

    /// Fence and pin a backup of the current generation. The fence is
    /// short — wait out any in-flight background checkpoint, seal the open
    /// WAL batch — and on return the backup's contents are fixed: exactly
    /// the writes acknowledged before this call. The returned job owns a
    /// pin that keeps every source file in place (not pruned, not retired)
    /// until the job is dropped; [`BackupJob::run`] may execute on any
    /// thread while this table serves reads *and writes* concurrently.
    pub fn begin_backup(&mut self, dest: &Path) -> Result<BackupJob, PersistError> {
        self.ensure_active()?;
        if self.entries.len() != self.table.column().chunks().len() {
            // A not-yet-upgraded v1 directory has no per-chunk records to
            // copy; its first v2 checkpoint creates them.
            self.checkpoint()?;
        }
        // The fence against the checkpointer's capture/execute split: a
        // job captured before this point has fully committed (or failed)
        // once finish_inflight returns, and any later capture happens on
        // this thread, after the pin below is registered.
        self.finish_inflight()?;
        if let Err(e) = self.wal.seal() {
            if !self.wal.poisoned() {
                return Err(e);
            }
            // Poisoned seal: the recovery checkpoint folds the ghost batch
            // into a fresh generation; the backup then copies that.
            self.checkpoint_sync(false)?;
        }
        let segments: BTreeSet<u64> = self.entries.iter().map(|e| e.seg).collect();
        let pin = self.pins.pin(crate::archive::BackupPin {
            generation: self.generation,
            segments,
            min_wal: self.generation,
        });
        let mut wal_specs: Vec<(u64, Option<u64>)> =
            (self.generation..self.wal_seq).map(|s| (s, None)).collect();
        // The live link keeps growing under concurrent writes; cut it at
        // the durable boundary of the fence.
        wal_specs.push((self.wal_seq, Some(self.wal.durable_bytes())));
        let backup_lsn = self.wal.next_lsn().saturating_sub(1);
        Ok(BackupJob::new(
            self.vfs.clone(),
            self.dir.clone(),
            dest.to_path_buf(),
            self.generation,
            wal_specs,
            backup_lsn,
            pin,
        ))
    }

    /// Verify a backup directory end to end: `CURRENT` → manifest checksum
    /// → every chunk record CRC → every WAL link fully sealed with gapless
    /// LSN continuity across links. Read-only; works on any self-contained
    /// table directory.
    pub fn verify_backup(dir: &Path) -> Result<BackupVerifyReport, PersistError> {
        Self::verify_backup_with_vfs(VfsHandle::default(), dir)
    }

    /// As [`DurableTable::verify_backup`], routing all I/O through `vfs`.
    pub fn verify_backup_with_vfs(
        vfs: VfsHandle,
        dir: &Path,
    ) -> Result<BackupVerifyReport, PersistError> {
        crate::archive::verify_backup(&vfs, dir, Duration::ZERO, None)
    }

    /// Register a backup directory for ongoing re-verification: the
    /// background scrubber (when enabled) and [`DurableTable::scrub_now`]
    /// walk it after each pass, counting failures in
    /// [`ScrubStats::backup_failures`] — a rotting backup is found before
    /// the day it is needed.
    pub fn watch_backup(&mut self, dir: &Path) {
        let mut watched = self
            .watched_backups
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if !watched.iter().any(|p| p == dir) {
            watched.push(dir.to_path_buf());
        }
    }

    /// The current archive index (empty when archiving is off or nothing
    /// has been retired yet).
    pub fn archive_index(&self) -> Result<crate::archive::ArchiveIndex, PersistError> {
        crate::archive::ArchiveIndex::load(&self.vfs, &self.dir)
    }

    fn checkpoint_sync(&mut self, force_full: bool) -> Result<u64, PersistError> {
        self.finish_inflight()?;
        self.absorb_scrub_findings();
        if !self.wal.poisoned() {
            if let Err(e) = self.wal.seal() {
                if !self.wal.poisoned() {
                    return Err(e);
                }
                // The seal's fsync just failed: fall through — the capture
                // below rotates the WAL and becomes the recovery
                // checkpoint covering the ghost batch.
            }
        }
        let poisoned = self.wal.poisoned();
        let job = self.capture(force_full)?;
        let new_gen = job.new_gen;
        let completion = match (&self.worker, self.opts.background_checkpointer, poisoned) {
            // Healthy path: run on the worker, wait for it.
            (Some(worker), true, false) => {
                worker.submit(job)?;
                worker.recv()
            }
            // Inline (no worker, or a poisoned WAL whose recovery must not
            // depend on a second thread being healthy).
            _ => run_with_retry(&job, &retry_policy(&self.opts)),
        };
        match self.apply_completion(completion) {
            Ok(()) => {
                // This checkpoint folded everything a previously failed
                // background attempt would have: the stale failure is moot.
                self.background_error = None;
                Ok(new_gen)
            }
            Err(e) => {
                if poisoned {
                    // The ghost batch is covered by neither a durable WAL
                    // nor a checkpoint: acknowledging anything now would
                    // risk acked-then-lost. Flip to read-only.
                    let reason = format!(
                        "WAL fsync failed (batch durability unknown) and the \
                         recovery checkpoint failed: {e}"
                    );
                    self.enter_degraded(reason.clone());
                    Err(PersistError::Degraded { reason })
                } else {
                    Err(e)
                }
            }
        }
    }

    /// Capture a checkpoint under the foreground's pause: rotate the WAL
    /// (commits continue against the new file immediately), diff the
    /// column's version counters against the last clean snapshot, and
    /// clone exactly the dirty chunks. Everything costly — encoding,
    /// segment/manifest writes, fsyncs — lives in the returned job.
    ///
    /// Callers seal first (capture never fsyncs the old WAL itself): on
    /// the healthy path the batch is already durable, and on the poisoned
    /// path the watermark below folds the ghost batch in.
    fn capture(&mut self, force_full: bool) -> Result<CheckpointJob, PersistError> {
        debug_assert!(self.inflight.is_none(), "one checkpoint at a time");
        // Checked before any side effect (notably the WAL rotation): see
        // `dirty_quarantined` for why a checkpoint must not proceed.
        if let Some(chunk) = self.dirty_quarantined() {
            return Err(PersistError::Storage(StorageError::Quarantined {
                chunk: chunk as u64,
                reason: format!(
                    "{}; the chunk holds un-checkpointed writes, so checkpointing \
                     is frozen until a reopen replays them from the WAL",
                    self.quarantined[&chunk]
                ),
            }));
        }
        let poisoned = self.wal.poisoned();
        debug_assert!(
            poisoned || self.wal.staged_records() == 0,
            "seal before capture"
        );
        let durable_lsn = if poisoned {
            // The ghost batch's commit marker would have carried
            // `next_lsn` (a failed seal advances nothing). Its effects are
            // in the table this checkpoint snapshots, so fold its LSN into
            // the watermark: if the batch *did* reach disk, replay skips
            // it (no double-apply); if it did not, nothing references it.
            self.wal.next_lsn()
        } else {
            self.wal.next_lsn() - 1
        };
        if poisoned {
            // Best-effort: scrub the possibly-ghost tail off the abandoned
            // file so a reopen before this checkpoint commits sees the
            // file end exactly at its durable boundary.
            self.wal.truncate_tail(&self.vfs);
        }
        let new_gen = self.wal_seq + 1;
        // Rotate: the old WAL file stays for recovery until the manifest
        // commits; new writes land in wal-<new_gen> with continuous LSNs.
        let wp = wal_path(&self.dir, new_gen);
        if wp.exists() {
            self.vfs.remove(&wp)?; // garbage of a checkpoint that died pre-commit
        }
        let new_wal = Wal::create(&self.vfs, &wp, durable_lsn + 1)?;
        // The dirent of the rotated WAL must be durable *before* commits
        // are acknowledged into it: with the background checkpointer the
        // next directory fsync (the job's manifest rename) may be many
        // acknowledged commits away, and losing the dirent would lose all
        // of them. Checked, not best-effort — and ordered before the
        // writer swap so a failure leaves the old WAL in place.
        self.vfs.fsync_dir(&self.dir)?;
        self.wal = new_wal;
        self.wal_seq = new_gen;

        let versions = self.table.column().versions().to_vec();
        let n = versions.len();
        let has_manifest = self.entries.len() == n;
        let mut full = force_full || !has_manifest;
        if !full {
            // Compaction trigger: would the incremental manifest reference
            // too many segments?
            let mut segs: BTreeSet<u64> = BTreeSet::new();
            let mut any_dirty = false;
            for i in 0..n {
                if versions[i] != self.clean_versions[i] {
                    any_dirty = true;
                } else {
                    segs.insert(self.entries[i].seg);
                }
            }
            if any_dirty {
                segs.insert(self.next_seg);
            }
            if segs.len() > self.opts.max_segments {
                full = true;
            }
        }

        let mut versions = versions;
        let mut fresh: Vec<(usize, RecordSource)> = Vec::new();
        let mut reused: Vec<(usize, ChunkEntry)> = Vec::new();
        for i in 0..n {
            // A quarantined chunk is never `Encode`d: scrub-quarantined
            // chunks were never hydrated (nothing in memory to encode) and
            // panic-quarantined ones hold suspect memory. Keep re-pointing
            // at the last durable record, and pin the captured version to
            // the clean snapshot so the chunk stays Encode-ineligible in
            // later captures too.
            if has_manifest && self.quarantined.contains_key(&i) {
                versions[i] = self.clean_versions[i];
                if full {
                    fresh.push((i, RecordSource::Copy(self.entries[i].clone())));
                } else {
                    reused.push((i, self.entries[i].clone()));
                }
                continue;
            }
            let version = &versions[i];
            let dirty = !has_manifest || *version != self.clean_versions[i];
            if full && !dirty {
                // Compaction of a clean chunk: byte-copy its existing
                // record — no hydration, no re-encode.
                fresh.push((i, RecordSource::Copy(self.entries[i].clone())));
            } else if dirty {
                // Dirty chunks are hydrated by definition (writes hydrate
                // before mutating, and the scrubber only force-dirties
                // resident chunks), so the clone cannot hit an unloaded
                // store.
                fresh.push((
                    i,
                    RecordSource::Encode(self.table.column().chunks()[i].clone()),
                ));
            } else {
                reused.push((i, self.entries[i].clone()));
            }
        }
        let seg_seq = self.next_seg;
        if !fresh.is_empty() {
            self.next_seg += 1;
        }
        if casper_obs::enabled() {
            let dirty = fresh
                .iter()
                .filter(|(_, s)| matches!(s, RecordSource::Encode(_)))
                .count();
            OBS_CP_DIRTY_RATIO.set(if n == 0 { 0.0 } else { dirty as f64 / n as f64 });
            if full {
                OBS_FULL_CHECKPOINTS.inc();
            }
        }
        self.inflight = Some(Inflight {
            versions,
            durable_lsn,
            new_gen,
        });
        Ok(CheckpointJob {
            vfs: self.vfs.clone(),
            dir: self.dir.clone(),
            new_gen,
            seg_seq,
            durable_lsn,
            schema: self.table.schema(),
            config: *self.table.column().config(),
            fences: self.table.column().fences().map(<[u64]>::to_vec),
            fms: self.fms.clone(),
            n_chunks: n,
            fresh,
            reused,
            archive: self.opts.archive,
            pins: self.pins.clone(),
        })
    }

    /// Absorb a finished background checkpoint if one is ready. A failed
    /// job is *stashed* (see [`DurableTable::take_checkpoint_error`]), not
    /// returned: the commit that happened to poll it succeeded and sealed
    /// durably, and failing it retroactively would make callers retry (and
    /// double-apply) a write that is already committed.
    fn poll_checkpoint(&mut self) {
        if self.inflight.is_none() {
            return;
        }
        if let Some(worker) = &self.worker {
            if let Some(completion) = worker.try_recv() {
                if let Err(e) = self.apply_completion(completion) {
                    self.background_error = Some(e);
                }
            }
        }
    }

    /// Take (and clear) the error of a failed background checkpoint, if
    /// any. Until a checkpoint succeeds, the affected chunks stay dirty
    /// and the WAL chain keeps growing — durability of acknowledged writes
    /// is never at risk, only checkpoint progress.
    pub fn take_checkpoint_error(&mut self) -> Option<PersistError> {
        self.background_error.take()
    }

    /// Block until the in-flight checkpoint (if any) finishes, and apply
    /// it.
    fn finish_inflight(&mut self) -> Result<(), PersistError> {
        if self.inflight.is_none() {
            return Ok(());
        }
        let completion = self
            .worker
            .as_ref()
            .expect("an in-flight checkpoint implies a worker")
            .recv();
        self.apply_completion(completion)
    }

    /// Commit (or discard, on error) the capture bookkeeping of a finished
    /// checkpoint, and keep the failure ledger: consecutive failures
    /// escalate to degraded mode once they pass
    /// [`DurableOptions::degrade_after`]. On failure the chunks stay dirty
    /// relative to the old clean snapshot and the WAL chain keeps growing
    /// — recovery replays it, so no acknowledged write is ever lost.
    fn apply_completion(&mut self, completion: Completion) -> Result<(), PersistError> {
        let inflight = self.inflight.take().expect("completion without capture");
        self.cp_stats.total_retries += u64::from(completion.attempts.saturating_sub(1));
        OBS_CP_RETRIES.add(u64::from(completion.attempts.saturating_sub(1)));
        match completion.result {
            Ok(manifest) => {
                self.cp_stats.consecutive_failures = 0;
                self.generation = manifest.generation;
                self.durable_lsn = manifest.durable_lsn;
                self.entries = manifest.entries;
                self.clean_versions = inflight.versions;
                OBS_CHECKPOINTS_OK.inc();
                self.sync_obs_gauges();
                Ok(())
            }
            Err(e) => {
                OBS_CHECKPOINTS_ERR.inc();
                self.cp_stats.consecutive_failures += 1;
                self.cp_stats.total_failures += 1;
                let mut ring: VecDeque<CheckpointFailure> =
                    std::mem::take(&mut self.cp_stats.recent_failures).into();
                if ring.len() >= FAILURE_RING {
                    ring.pop_front();
                }
                ring.push_back(CheckpointFailure {
                    durable_lsn: inflight.durable_lsn,
                    generation: inflight.new_gen,
                    attempts: completion.attempts,
                    error: e.to_string(),
                });
                self.cp_stats.recent_failures = ring.into();
                if self.opts.degrade_after > 0
                    && self.cp_stats.consecutive_failures >= u64::from(self.opts.degrade_after)
                {
                    self.enter_degraded(format!(
                        "{} consecutive checkpoint failures (last: {e})",
                        self.cp_stats.consecutive_failures
                    ));
                }
                self.sync_obs_gauges();
                Err(e)
            }
        }
    }

    /// Optimize the layout for a workload sample (Fig. 10 A→B→C), capture
    /// the per-chunk frequency models, and checkpoint synchronously — the
    /// re-layout and the FM state that justified it become durable
    /// together, before this returns.
    pub fn optimize(
        &mut self,
        sample: &[HapQuery],
        opts: &OptimizeOptions,
    ) -> Result<OptimizeReport, PersistError> {
        self.ensure_active()?;
        // Absorb any in-flight background checkpoint *first*: its
        // completion overwrites `entries`/`clean_versions`, which would
        // silently undo the clear below if it landed later.
        self.finish_inflight()?;
        self.hydrate_all()?;
        self.fms = capture_per_chunk(&self.table, sample);
        let report = optimize_table(&mut self.table, sample, opts);
        // Every chunk was rewritten, so the old manifest entries are all
        // stale — drop them to force a full checkpoint. Relying on the
        // version counters alone would be wrong for the NoOrder
        // conversion, which *replaces* the column (counters restart at
        // zero and can collide with the clean snapshot, silently
        // re-pointing rebuilt chunks at pre-relayout records).
        self.entries.clear();
        // The re-layout re-encoded every chunk from hydrated data; any
        // quarantined record is superseded by the full checkpoint below.
        self.quarantined.clear();
        self.checkpoint()?;
        Ok(report)
    }

    /// Run one adaptive-controller check; when it re-partitions, checkpoint
    /// so the new layout is durable.
    pub fn maybe_reoptimize(
        &mut self,
        ctl: &mut AdaptiveController,
    ) -> Result<AdaptDecision, PersistError> {
        self.ensure_active()?;
        // As in `optimize`: a pending completion must not land after the
        // re-layout clears the manifest entries.
        self.finish_inflight()?;
        self.hydrate_all()?;
        let decision = ctl.maybe_reoptimize(&mut self.table);
        if matches!(decision, AdaptDecision::Reoptimized { .. }) {
            // Same contract as `optimize`: a re-layout rewrote every
            // chunk, so the next checkpoint must be full.
            self.entries.clear();
            self.quarantined.clear();
            self.checkpoint()?;
        }
        Ok(decision)
    }

    /// Best-effort removal of files from other v1 generations (leftovers
    /// of a v1 checkpoint interrupted between the `CURRENT` swing and the
    /// cleanup).
    fn remove_stale_v1_generations(&self) {
        let keep = [
            snap_path(&self.dir, self.generation),
            wal_path(&self.dir, self.generation),
            current_path(&self.dir),
        ];
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return;
        };
        for entry in entries.flatten() {
            let p = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let ours = name.starts_with("snap-") || name.starts_with("wal-");
            if ours && !keep.contains(&p) {
                let _ = self.vfs.remove(&p);
            }
        }
    }
}

impl Drop for DurableTable {
    /// Best-effort graceful shutdown: seal the open WAL batch (so writes
    /// acknowledged under `group_commit > 1` survive a clean exit) and
    /// wait for an in-flight background checkpoint to commit or fail —
    /// its files are crash-safe either way; waiting just avoids tearing
    /// down the process mid-fsync. Errors are ignored because panicking in
    /// Drop aborts.
    fn drop(&mut self) {
        let _ = self.wal.seal();
        if self.inflight.is_some() {
            if let Some(worker) = &self.worker {
                let completion = worker.recv();
                let _ = self.apply_completion(completion);
            }
        }
    }
}
