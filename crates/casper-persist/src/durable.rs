//! [`DurableTable`]: a [`Table`] whose layout and writes survive restarts.
//!
//! The on-disk directory holds exactly one *current generation*:
//!
//! ```text
//! CURRENT            – ASCII generation number, replaced atomically
//! snap-<gen>.casper  – layout-preserving snapshot (see crate::snapshot)
//! wal-<gen>.log      – append-only redo log of writes since the snapshot
//! ```
//!
//! Writes flow WAL-first in the group-commit sense: an executed write is
//! staged into the open WAL batch and becomes durable (write + fsync) when
//! the batch seals — after every write with `group_commit == 1`, or every
//! N writes, or explicitly via [`DurableTable::flush`]. Transaction commits
//! seal their whole write set as one batch. Recovery loads the snapshot
//! (bit-exact layout, zero re-solves, zero re-encodes), truncates the WAL's
//! torn tail, and replays the committed batches.
//!
//! A **checkpoint** folds the WAL into a fresh snapshot under the next
//! generation number: snapshot written to a temp file and atomically
//! renamed, a fresh WAL created, `CURRENT` swung over (also via atomic
//! rename), and the old generation removed. The optimizer entry point
//! [`DurableTable::optimize`] checkpoints after every re-layout, so
//! adaptive re-partitioning is itself durable — a restart resumes with the
//! optimized layout instead of re-paying the solve.

use crate::snapshot::{decode_snapshot, encode_snapshot};
use crate::wal::{replay, Wal, WalOp};
use crate::PersistError;
use casper_core::FrequencyModel;
use casper_engine::adapt::{AdaptDecision, AdaptiveController};
use casper_engine::optimize::{capture_per_chunk, optimize_table, OptimizeOptions, OptimizeReport};
use casper_engine::{EngineConfig, QueryOutput, Table, Transaction, TxnError, TxnManager};
use casper_storage::StorageError;
use casper_workload::{HapQuery, HapSchema};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Tunables of the durability layer.
#[derive(Debug, Clone, Copy)]
pub struct DurableOptions {
    /// Writes staged before the WAL batch auto-seals (1 = fsync every
    /// write; larger values trade a bounded unacknowledged window for
    /// amortized fsyncs — classic group commit).
    pub group_commit: usize,
    /// Auto-checkpoint once the sealed WAL grows past this many bytes
    /// (0 disables; checkpoints still happen on [`DurableTable::optimize`]
    /// and explicit [`DurableTable::checkpoint`] calls).
    pub wal_checkpoint_bytes: u64,
}

impl Default for DurableOptions {
    fn default() -> Self {
        Self {
            group_commit: 1,
            wal_checkpoint_bytes: 0,
        }
    }
}

/// Observable durability state (tests, monitoring).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurableStats {
    /// Current checkpoint generation.
    pub generation: u64,
    /// Highest LSN folded into the current snapshot.
    pub durable_lsn: u64,
    /// LSN the next staged record will receive.
    pub next_lsn: u64,
    /// Sealed WAL bytes on disk.
    pub wal_bytes: u64,
    /// Records staged but not yet sealed (not yet durable).
    pub staged_records: u64,
}

/// A table wired to a snapshot + WAL persistence directory.
#[derive(Debug)]
pub struct DurableTable {
    table: Table,
    dir: PathBuf,
    wal: Wal,
    generation: u64,
    durable_lsn: u64,
    fms: Vec<FrequencyModel>,
    opts: DurableOptions,
}

fn corrupt(reason: impl Into<String>) -> PersistError {
    PersistError::Storage(StorageError::Corrupt {
        reason: reason.into(),
    })
}

fn snap_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("snap-{generation:06}.casper"))
}

fn wal_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("wal-{generation:06}.log"))
}

fn current_path(dir: &Path) -> PathBuf {
    dir.join("CURRENT")
}

/// Write `bytes` to `path` via a temp file + atomic rename, fsyncing the
/// file (and, best effort, the directory) so the rename is the commit
/// point.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), PersistError> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

impl DurableTable {
    /// Create a fresh durable table at `dir` (which must not already hold
    /// one): writes the generation-1 snapshot, an empty WAL and `CURRENT`.
    pub fn create(
        dir: &Path,
        schema: HapSchema,
        keys: Vec<u64>,
        payload_cols: Vec<Vec<u32>>,
        config: EngineConfig,
        opts: DurableOptions,
    ) -> Result<Self, PersistError> {
        Self::create_from_table(dir, Table::load(schema, keys, payload_cols, config), opts)
    }

    /// As [`DurableTable::create`], adopting an already-built table (e.g.
    /// one that was optimized before first persisting it).
    pub fn create_from_table(
        dir: &Path,
        table: Table,
        opts: DurableOptions,
    ) -> Result<Self, PersistError> {
        fs::create_dir_all(dir)?;
        if current_path(dir).exists() {
            return Err(corrupt(format!(
                "directory {} already holds a durable table",
                dir.display()
            )));
        }
        let generation = 1u64;
        write_atomic(
            &snap_path(dir, generation),
            &encode_snapshot(&table, &[], generation, 0),
        )?;
        // A crash of a previous create between WAL creation and the
        // CURRENT write leaves a stale WAL behind (CURRENT absent, so the
        // directory never became a live table); clear it for the retry.
        let wp = wal_path(dir, generation);
        if wp.exists() {
            fs::remove_file(&wp)?;
        }
        let wal = Wal::create(&wp, 1)?;
        write_atomic(&current_path(dir), format!("{generation}\n").as_bytes())?;
        Ok(Self {
            table,
            dir: dir.to_path_buf(),
            wal,
            generation,
            durable_lsn: 0,
            fms: Vec::new(),
            opts,
        })
    }

    /// Reopen a durable table: load the current snapshot (restoring the
    /// exact persisted layout — no solver run, no codec re-encode), recover
    /// the WAL (torn-tail truncation) and replay its committed batches.
    pub fn open(dir: &Path, opts: DurableOptions) -> Result<Self, PersistError> {
        let current = fs::read_to_string(current_path(dir))?;
        let generation: u64 = current
            .trim()
            .parse()
            .map_err(|_| corrupt(format!("CURRENT holds {current:?}, not a generation")))?;
        let snapshot_bytes = fs::read(snap_path(dir, generation))?;
        let restored = decode_snapshot(&snapshot_bytes)?;
        if restored.generation != generation {
            return Err(corrupt(format!(
                "snapshot says generation {} but CURRENT says {generation}",
                restored.generation
            )));
        }
        let mut table = restored.table;
        let wp = wal_path(dir, generation);
        if !wp.exists() {
            // A crash can theoretically land between snapshot rename and
            // WAL creation of a checkpoint; an absent WAL simply means no
            // writes since the snapshot.
            Wal::create(&wp, restored.durable_lsn + 1)?;
        }
        let (mut wal, scan) = Wal::recover(&wp)?;
        replay(&scan, &mut table, restored.durable_lsn)?;
        // An empty post-checkpoint WAL starts numbering after the LSNs the
        // snapshot already folded in; otherwise fresh records would replay
        // as already-applied.
        wal.ensure_lsn_at_least(restored.durable_lsn + 1);
        let this = Self {
            table,
            dir: dir.to_path_buf(),
            wal,
            generation,
            durable_lsn: restored.durable_lsn,
            fms: restored.fms,
            opts,
        };
        this.remove_stale_generations();
        Ok(this)
    }

    /// The wrapped table (read-only; mutations must flow through
    /// [`DurableTable::execute`] so they are logged).
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// Live row count.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Captured frequency-model state from the last durable optimize pass
    /// (restored from the snapshot on open).
    pub fn frequency_models(&self) -> &[FrequencyModel] {
        &self.fms
    }

    /// Current durability counters.
    pub fn stats(&self) -> DurableStats {
        DurableStats {
            generation: self.generation,
            durable_lsn: self.durable_lsn,
            next_lsn: self.wal.next_lsn(),
            wal_bytes: self.wal.durable_bytes(),
            staged_records: self.wal.staged_records(),
        }
    }

    /// Execute one query. Writes are staged into the WAL's open batch
    /// after they apply; the batch seals (one write + fsync) every
    /// `group_commit` records. Reads pass straight through.
    pub fn execute(&mut self, q: &HapQuery) -> Result<QueryOutput, PersistError> {
        let logged = WalOp::from_query(q);
        let out = self.table.execute(q)?;
        if let Some(op) = logged {
            self.wal.stage(&op);
            if self.wal.staged_records() >= self.opts.group_commit as u64 {
                self.seal_and_maybe_checkpoint()?;
            }
        }
        Ok(out)
    }

    /// Execute a batch under one group commit: all writes seal (and fsync)
    /// together.
    pub fn execute_all(&mut self, queries: &[HapQuery]) -> Result<Vec<QueryOutput>, PersistError> {
        let mut outs = Vec::with_capacity(queries.len());
        for q in queries {
            let logged = WalOp::from_query(q);
            let out = self.table.execute(q)?;
            if let Some(op) = logged {
                self.wal.stage(&op);
            }
            outs.push(out);
        }
        self.seal_and_maybe_checkpoint()?;
        Ok(outs)
    }

    /// Commit a transaction durably: validate + apply through the
    /// [`TxnManager`], then seal the transaction's write set as one WAL
    /// batch. A validation conflict stages nothing.
    pub fn commit_txn(&mut self, mgr: &TxnManager, txn: Transaction) -> Result<u64, PersistError> {
        let queries = txn.as_queries();
        let ts = match mgr.commit(txn, &mut self.table) {
            Ok(ts) => ts,
            Err(e @ TxnError::Conflict { .. }) => return Err(e.into()),
            Err(e) => {
                // A storage failure mid-apply leaves the manager's commit
                // partially applied — a state the WAL cannot describe op
                // by op. Checkpointing snapshots the table exactly as it
                // is, so recovery cannot diverge from what readers saw.
                // If even that fails, report both faults: the caller must
                // know durable state now lags the in-memory table.
                if let Err(cp) = self.checkpoint() {
                    return Err(corrupt(format!(
                        "transaction applied partially ({e}) and the recovery \
                         checkpoint failed ({cp}); durable state lags the \
                         in-memory table until a checkpoint succeeds"
                    )));
                }
                return Err(e.into());
            }
        };
        for q in &queries {
            if let Some(op) = WalOp::from_query(q) {
                self.wal.stage(&op);
            }
        }
        self.seal_and_maybe_checkpoint()?;
        Ok(ts)
    }

    /// Seal the open WAL batch, making every staged write durable now.
    pub fn flush(&mut self) -> Result<(), PersistError> {
        self.seal_and_maybe_checkpoint()
    }

    fn seal_and_maybe_checkpoint(&mut self) -> Result<(), PersistError> {
        self.wal.seal()?;
        if self.opts.wal_checkpoint_bytes > 0
            && self.wal.durable_bytes() >= self.opts.wal_checkpoint_bytes
        {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Fold the WAL into a fresh snapshot under the next generation:
    /// temp-file + atomic rename for the snapshot, a fresh WAL, an atomic
    /// `CURRENT` swing, then removal of the old generation. Returns the new
    /// generation number.
    pub fn checkpoint(&mut self) -> Result<u64, PersistError> {
        self.wal.seal()?;
        let old_generation = self.generation;
        let new_generation = old_generation + 1;
        let durable_lsn = self.wal.next_lsn() - 1;
        write_atomic(
            &snap_path(&self.dir, new_generation),
            &encode_snapshot(&self.table, &self.fms, new_generation, durable_lsn),
        )?;
        // A previous checkpoint attempt may have died between creating
        // this WAL and swinging CURRENT; that file is garbage (CURRENT
        // still names the old generation), so clear it for the retry.
        let new_wal_path = wal_path(&self.dir, new_generation);
        if new_wal_path.exists() {
            fs::remove_file(&new_wal_path)?;
        }
        let wal = Wal::create(&new_wal_path, durable_lsn + 1)?;
        write_atomic(
            &current_path(&self.dir),
            format!("{new_generation}\n").as_bytes(),
        )?;
        self.wal = wal;
        self.generation = new_generation;
        self.durable_lsn = durable_lsn;
        self.remove_stale_generations();
        Ok(new_generation)
    }

    /// Optimize the layout for a workload sample (Fig. 10 A→B→C), capture
    /// the per-chunk frequency models, and checkpoint — the re-layout and
    /// the FM state that justified it become durable together.
    pub fn optimize(
        &mut self,
        sample: &[HapQuery],
        opts: &OptimizeOptions,
    ) -> Result<OptimizeReport, PersistError> {
        self.fms = capture_per_chunk(&self.table, sample);
        let report = optimize_table(&mut self.table, sample, opts);
        self.checkpoint()?;
        Ok(report)
    }

    /// Run one adaptive-controller check; when it re-partitions, checkpoint
    /// so the new layout is durable.
    pub fn maybe_reoptimize(
        &mut self,
        ctl: &mut AdaptiveController,
    ) -> Result<AdaptDecision, PersistError> {
        let decision = ctl.maybe_reoptimize(&mut self.table);
        if matches!(decision, AdaptDecision::Reoptimized { .. }) {
            self.checkpoint()?;
        }
        Ok(decision)
    }

    /// Best-effort removal of files from other generations (leftovers of a
    /// checkpoint interrupted between the `CURRENT` swing and the cleanup).
    fn remove_stale_generations(&self) {
        let keep = [
            snap_path(&self.dir, self.generation),
            wal_path(&self.dir, self.generation),
            current_path(&self.dir),
        ];
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return;
        };
        for entry in entries.flatten() {
            let p = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let ours = name.starts_with("snap-") || name.starts_with("wal-");
            if ours && !keep.contains(&p) {
                let _ = fs::remove_file(&p);
            }
        }
    }
}

impl Drop for DurableTable {
    /// Best-effort seal of the open WAL batch on a *graceful* drop, so
    /// writes `execute` acknowledged under `group_commit > 1` are not
    /// silently discarded by a clean shutdown. (A crash still loses the
    /// unsealed window — that is the documented group-commit trade; errors
    /// here are ignored because panicking in Drop aborts.)
    fn drop(&mut self) {
        let _ = self.wal.seal();
    }
}
