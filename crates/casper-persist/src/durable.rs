//! [`DurableTable`]: a [`Table`] whose layout and writes survive restarts.
//!
//! The on-disk directory holds exactly one *current generation*:
//!
//! ```text
//! CURRENT              – ASCII generation number, replaced atomically
//! manifest-<gen>.casper – chunk id → (segment, offset, len, crc) map (v2)
//! seg-<seq>.casper     – append-once segments of encoded chunk records
//! wal-<seq>.log        – append-only redo log(s) since the manifest
//! snap-<gen>.casper    – legacy v1 whole-table snapshot (still readable)
//! ```
//!
//! Writes flow WAL-first in the group-commit sense: an executed write is
//! staged into the open WAL batch and becomes durable (write + fsync) when
//! the batch seals. Recovery loads the manifest (metadata only under mmap
//! restore — chunks hydrate lazily from mapped segments, checksum-verified
//! at first touch), truncates the WAL chain's torn tail, and replays the
//! committed batches.
//!
//! A **checkpoint** is *incremental*: the engine's per-chunk modification
//! counters identify exactly the chunks dirtied since the last checkpoint,
//! and only those are re-serialized — into a fresh segment — while clean
//! chunks keep their existing records. With the **background
//! checkpointer** enabled (default), the foreground only seals + rotates
//! the WAL and clones dirty chunk state; serialization and fsyncs run on a
//! dedicated thread, so the commit path keeps nothing but its group-commit
//! fsync. Once a manifest references more than
//! [`DurableOptions::max_segments`] segments, the next checkpoint compacts
//! the chain (clean records are byte-copied, never re-encoded).
//! [`DurableTable::optimize`] still checkpoints synchronously after every
//! re-layout, so adaptive re-partitioning remains durable at return.

use crate::checkpointer::Checkpointer;
use crate::incremental::{
    decode_manifest, manifest_path, numbered_file, prune_stale, restore_table, CheckpointJob,
    ChunkEntry, Manifest, RecordSource,
};
use crate::snapshot::decode_snapshot;
use crate::wal::{replay, scan, Wal, WalOp};
use crate::PersistError;
use casper_core::FrequencyModel;
use casper_engine::adapt::{AdaptDecision, AdaptiveController};
use casper_engine::optimize::{capture_per_chunk, optimize_table, OptimizeOptions, OptimizeReport};
use casper_engine::{QueryOutput, Table, Transaction, TxnError, TxnManager};
use casper_storage::StorageError;
use casper_workload::HapQuery;
use std::collections::BTreeSet;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Tunables of the durability layer.
#[derive(Debug, Clone, Copy)]
pub struct DurableOptions {
    /// Writes staged before the WAL batch auto-seals (1 = fsync every
    /// write; larger values trade a bounded unacknowledged window for
    /// amortized fsyncs — classic group commit).
    pub group_commit: usize,
    /// Auto-checkpoint once the sealed WAL grows past this many bytes
    /// (0 disables; checkpoints still happen on [`DurableTable::optimize`]
    /// and explicit [`DurableTable::checkpoint`] calls).
    pub wal_checkpoint_bytes: u64,
    /// Run watermark-triggered checkpoints on a dedicated thread: the
    /// foreground only rotates the WAL and clones dirty chunk state;
    /// serialization and fsyncs happen off the commit path. Explicit
    /// [`DurableTable::checkpoint`] / [`DurableTable::optimize`] calls
    /// still wait for completion (their durability guarantee is
    /// synchronous either way).
    pub background_checkpointer: bool,
    /// Compact once a manifest references more than this many segments:
    /// the next checkpoint rewrites every live record into one fresh
    /// segment (clean records byte-copied, not re-encoded).
    pub max_segments: usize,
    /// Restore through mapped segments with per-chunk lazy hydration
    /// (`open` becomes metadata-only work; each chunk decodes — checksum
    /// verified — on the first query that routes to it). Disable to decode
    /// everything eagerly at open.
    pub mmap_restore: bool,
}

impl Default for DurableOptions {
    fn default() -> Self {
        Self {
            group_commit: 1,
            wal_checkpoint_bytes: 0,
            background_checkpointer: true,
            max_segments: 6,
            mmap_restore: true,
        }
    }
}

/// Observable durability state (tests, monitoring).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurableStats {
    /// Current durable checkpoint generation.
    pub generation: u64,
    /// Highest LSN folded into the current manifest/snapshot.
    pub durable_lsn: u64,
    /// LSN the next staged record will receive.
    pub next_lsn: u64,
    /// Sealed bytes in the live WAL file.
    pub wal_bytes: u64,
    /// Records staged but not yet sealed (not yet durable).
    pub staged_records: u64,
    /// Chunks dirtied since the last captured checkpoint — what the next
    /// incremental checkpoint would serialize.
    pub dirty_chunks: u64,
    /// Distinct segment files the current manifest references (0 for a
    /// not-yet-upgraded v1 directory).
    pub segments: u64,
    /// Whether a background checkpoint is currently in flight.
    pub checkpoint_in_flight: bool,
    /// Whether a background checkpoint has failed since the last
    /// successful one (details via [`DurableTable::take_checkpoint_error`]).
    pub checkpoint_failed: bool,
}

/// Capture-time bookkeeping for a submitted checkpoint: committed into
/// `clean_versions` only when the job completes.
#[derive(Debug)]
struct Inflight {
    versions: Vec<u64>,
}

/// A table wired to a manifest + segments + WAL persistence directory.
#[derive(Debug)]
pub struct DurableTable {
    table: Table,
    dir: PathBuf,
    wal: Wal,
    /// Durable manifest generation (what `CURRENT` names).
    generation: u64,
    /// Live WAL file number (`>= generation`: capture rotates the WAL
    /// before its manifest commits, so an in-flight or failed checkpoint
    /// leaves a replayable chain `wal-<gen> .. wal-<wal_seq>`).
    wal_seq: u64,
    durable_lsn: u64,
    fms: Vec<FrequencyModel>,
    opts: DurableOptions,
    /// Current durable manifest entries (empty until a v1 directory takes
    /// its first — necessarily full — v2 checkpoint).
    entries: Vec<ChunkEntry>,
    /// Column version counters at the last *captured* checkpoint; a chunk
    /// is dirty iff its live counter differs.
    clean_versions: Vec<u64>,
    /// Next segment sequence number to allocate.
    next_seg: u64,
    worker: Option<Checkpointer>,
    inflight: Option<Inflight>,
    /// A background (watermark) checkpoint failure, held for out-of-band
    /// reporting: the write that happened to observe it committed durably
    /// and must not be failed retroactively. Cleared by
    /// [`DurableTable::take_checkpoint_error`] or by the next successful
    /// checkpoint; until then the chunks simply stay dirty and the WAL
    /// chain keeps growing (recovery replays it — nothing is lost).
    background_error: Option<PersistError>,
}

fn corrupt(reason: impl Into<String>) -> PersistError {
    PersistError::Storage(StorageError::Corrupt {
        reason: reason.into(),
    })
}

fn snap_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("snap-{generation:06}.casper"))
}

fn wal_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:06}.log"))
}

pub(crate) fn current_path(dir: &Path) -> PathBuf {
    dir.join("CURRENT")
}

/// Best-effort directory fsync: makes freshly created directory entries
/// (a rotated WAL file, a renamed manifest) durable on filesystems where
/// file fsync alone does not cover the dirent.
pub(crate) fn sync_dir(dir: &Path) {
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
}

/// Write `bytes` to `path` via a temp file + atomic rename, fsyncing the
/// file (and, best effort, the directory) so the rename is the commit
/// point.
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), PersistError> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        sync_dir(dir);
    }
    Ok(())
}

impl DurableTable {
    /// Create a fresh durable table at `dir` (which must not already hold
    /// one): writes the generation-1 segment + manifest, an empty WAL and
    /// `CURRENT`.
    pub fn create(
        dir: &Path,
        schema: casper_workload::HapSchema,
        keys: Vec<u64>,
        payload_cols: Vec<Vec<u32>>,
        config: casper_engine::EngineConfig,
        opts: DurableOptions,
    ) -> Result<Self, PersistError> {
        Self::create_from_table(dir, Table::load(schema, keys, payload_cols, config), opts)
    }

    /// As [`DurableTable::create`], adopting an already-built table (e.g.
    /// one that was optimized before first persisting it).
    pub fn create_from_table(
        dir: &Path,
        mut table: Table,
        opts: DurableOptions,
    ) -> Result<Self, PersistError> {
        fs::create_dir_all(dir)?;
        if current_path(dir).exists() {
            return Err(corrupt(format!(
                "directory {} already holds a durable table",
                dir.display()
            )));
        }
        table.hydrate_all()?;
        let generation = 1u64;
        // A crash of a previous create between WAL creation and the
        // CURRENT write leaves a stale WAL behind (CURRENT absent, so the
        // directory never became a live table); clear it for the retry.
        let wp = wal_path(dir, generation);
        if wp.exists() {
            fs::remove_file(&wp)?;
        }
        let wal = Wal::create(&wp, 1)?;
        let chunks = table.column().chunks();
        let fresh: Vec<(usize, RecordSource)> = chunks
            .iter()
            .enumerate()
            .map(|(i, store)| (i, RecordSource::Encode(store.clone())))
            .collect();
        let job = CheckpointJob {
            dir: dir.to_path_buf(),
            new_gen: generation,
            seg_seq: 1,
            durable_lsn: 0,
            schema: table.schema(),
            config: *table.column().config(),
            fences: table.column().fences().map(<[u64]>::to_vec),
            fms: Vec::new(),
            n_chunks: chunks.len(),
            fresh,
            reused: Vec::new(),
        };
        let manifest = crate::incremental::run_checkpoint(&job)?;
        let clean_versions = table.column().versions().to_vec();
        Ok(Self {
            table,
            dir: dir.to_path_buf(),
            wal,
            generation,
            wal_seq: generation,
            durable_lsn: 0,
            fms: Vec::new(),
            entries: manifest.entries,
            clean_versions,
            next_seg: 2,
            worker: opts.background_checkpointer.then(Checkpointer::spawn),
            inflight: None,
            background_error: None,
            opts,
        })
    }

    /// Reopen a durable table. A v2 directory restores through mapped
    /// segments — metadata-only work; chunks hydrate (checksum-verified)
    /// on first touch — then recovers the WAL chain (torn-tail truncation
    /// on the last link) and replays its committed batches. A v1 directory
    /// decodes its whole-table snapshot exactly as before; its first
    /// checkpoint upgrades it to the v2 format.
    pub fn open(dir: &Path, opts: DurableOptions) -> Result<Self, PersistError> {
        let current = fs::read_to_string(current_path(dir))?;
        let generation: u64 = current
            .trim()
            .parse()
            .map_err(|_| corrupt(format!("CURRENT holds {current:?}, not a generation")))?;
        if manifest_path(dir, generation).exists() {
            Self::open_v2(dir, generation, opts)
        } else {
            Self::open_v1(dir, generation, opts)
        }
    }

    fn open_v2(dir: &Path, generation: u64, opts: DurableOptions) -> Result<Self, PersistError> {
        let manifest = decode_manifest(&fs::read(manifest_path(dir, generation))?)?;
        if manifest.generation != generation {
            return Err(corrupt(format!(
                "manifest says generation {} but CURRENT says {generation}",
                manifest.generation
            )));
        }
        let mut table = restore_table(dir, &manifest, !opts.mmap_restore)?;
        // Versions are zero on a fresh restore; snapshotting them *before*
        // replay is what marks replayed-into chunks dirty for the next
        // incremental checkpoint.
        let clean_versions = vec![0u64; manifest.entries.len()];

        // Replay the WAL chain wal-<gen> .. wal-<highest>. Only the last
        // link can be torn (rotation seals its predecessor first), so the
        // middle links replay from a plain scan and the last one goes
        // through full recovery (truncation + writer positioning).
        let first = wal_path(dir, generation);
        if !first.exists() {
            Wal::create(&first, manifest.durable_lsn + 1)?;
            sync_dir(dir);
        }
        let mut seq = generation;
        let mut chain_last = manifest.durable_lsn;
        while wal_path(dir, seq + 1).exists() {
            let bytes = fs::read(wal_path(dir, seq))?;
            let s = scan(&bytes);
            // A middle link was fully sealed before the rotation that
            // created its successor, so it must scan to its exact end —
            // anything else is damage, and silently replaying only its
            // prefix (while later links still apply) would punch a hole
            // in the committed history.
            if s.valid_len != bytes.len() {
                return Err(corrupt(format!(
                    "WAL chain link {} is damaged: only {} of {} bytes \
                     form sealed batches, yet a successor link exists",
                    wal_path(dir, seq).display(),
                    s.valid_len,
                    bytes.len()
                )));
            }
            replay(&s, &mut table, manifest.durable_lsn)?;
            chain_last = chain_last.max(s.last_lsn);
            seq += 1;
        }
        let (mut wal, s) = Wal::recover(&wal_path(dir, seq))?;
        replay(&s, &mut table, manifest.durable_lsn)?;
        chain_last = chain_last.max(s.last_lsn);
        wal.ensure_lsn_at_least(chain_last + 1);

        let next_seg = Self::max_segment_on_disk(dir)
            .max(manifest.referenced_segments().last().copied().unwrap_or(0))
            + 1;
        // Clear leftovers of interrupted checkpoints (unreferenced
        // segments, orphaned manifests) — but never the WAL chain at or
        // above the durable generation.
        prune_stale(dir, &manifest);
        Ok(Self {
            table,
            dir: dir.to_path_buf(),
            wal,
            generation,
            wal_seq: seq,
            durable_lsn: manifest.durable_lsn,
            fms: manifest.fms,
            entries: manifest.entries,
            clean_versions,
            next_seg,
            worker: opts.background_checkpointer.then(Checkpointer::spawn),
            inflight: None,
            background_error: None,
            opts,
        })
    }

    fn open_v1(dir: &Path, generation: u64, opts: DurableOptions) -> Result<Self, PersistError> {
        let snapshot_bytes = fs::read(snap_path(dir, generation))?;
        let restored = decode_snapshot(&snapshot_bytes)?;
        if restored.generation != generation {
            return Err(corrupt(format!(
                "snapshot says generation {} but CURRENT says {generation}",
                restored.generation
            )));
        }
        let mut table = restored.table;
        let n = table.column().chunks().len();
        let wp = wal_path(dir, generation);
        if !wp.exists() {
            // A crash can theoretically land between snapshot rename and
            // WAL creation of a checkpoint; an absent WAL simply means no
            // writes since the snapshot.
            Wal::create(&wp, restored.durable_lsn + 1)?;
            sync_dir(dir);
        }
        let (mut wal, s) = Wal::recover(&wp)?;
        replay(&s, &mut table, restored.durable_lsn)?;
        // An empty post-checkpoint WAL starts numbering after the LSNs the
        // snapshot already folded in; otherwise fresh records would replay
        // as already-applied.
        wal.ensure_lsn_at_least(restored.durable_lsn.max(s.last_lsn) + 1);
        let this = Self {
            table,
            dir: dir.to_path_buf(),
            wal,
            generation,
            wal_seq: generation,
            durable_lsn: restored.durable_lsn,
            fms: restored.fms,
            // No manifest yet: the first checkpoint is a full one and
            // writes the v2 files (the upgrade path).
            entries: Vec::new(),
            clean_versions: vec![0; n],
            next_seg: Self::max_segment_on_disk(dir) + 1,
            worker: opts.background_checkpointer.then(Checkpointer::spawn),
            inflight: None,
            background_error: None,
            opts,
        };
        this.remove_stale_v1_generations();
        Ok(this)
    }

    /// Highest `seg-*.casper` number present in the directory (0 if none):
    /// fresh segments must never collide with leftovers of a checkpoint
    /// that died before its manifest committed.
    fn max_segment_on_disk(dir: &Path) -> u64 {
        let Ok(entries) = fs::read_dir(dir) else {
            return 0;
        };
        entries
            .flatten()
            .filter_map(|e| numbered_file(&e.file_name().to_string_lossy(), "seg-", ".casper"))
            .max()
            .unwrap_or(0)
    }

    /// The wrapped table (read-only; mutations must flow through
    /// [`DurableTable::execute`] so they are logged). On an mmap restore
    /// some chunks may still be unhydrated — call
    /// [`DurableTable::hydrate_all`] first if you need direct column
    /// access.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// Decode every chunk still awaiting lazy hydration.
    pub fn hydrate_all(&mut self) -> Result<(), PersistError> {
        self.table.hydrate_all().map_err(PersistError::from)
    }

    /// Live row count.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Captured frequency-model state from the last durable optimize pass
    /// (restored from the manifest on open).
    pub fn frequency_models(&self) -> &[FrequencyModel] {
        &self.fms
    }

    /// Current durability counters.
    pub fn stats(&self) -> DurableStats {
        let versions = self.table.column().versions();
        let dirty = if self.entries.len() == versions.len() {
            versions
                .iter()
                .zip(&self.clean_versions)
                .filter(|(v, c)| v != c)
                .count()
        } else {
            versions.len() // no manifest: everything is dirty
        };
        let segments: BTreeSet<u64> = self.entries.iter().map(|e| e.seg).collect();
        DurableStats {
            generation: self.generation,
            durable_lsn: self.durable_lsn,
            next_lsn: self.wal.next_lsn(),
            wal_bytes: self.wal.durable_bytes(),
            staged_records: self.wal.staged_records(),
            dirty_chunks: dirty as u64,
            segments: segments.len() as u64,
            checkpoint_in_flight: self.inflight.is_some(),
            checkpoint_failed: self.background_error.is_some(),
        }
    }

    /// Execute one query. Writes are staged into the WAL's open batch
    /// after they apply; the batch seals (one write + fsync) every
    /// `group_commit` records. Reads pass straight through (hydrating any
    /// lazily-restored chunk they route to).
    pub fn execute(&mut self, q: &HapQuery) -> Result<QueryOutput, PersistError> {
        let logged = WalOp::from_query(q);
        let out = self.table.execute(q)?;
        if let Some(op) = logged {
            self.wal.stage(&op);
            if self.wal.staged_records() >= self.opts.group_commit as u64 {
                self.seal_and_maybe_checkpoint()?;
            }
        }
        Ok(out)
    }

    /// Execute a batch under one group commit: all writes seal (and fsync)
    /// together.
    pub fn execute_all(&mut self, queries: &[HapQuery]) -> Result<Vec<QueryOutput>, PersistError> {
        let mut outs = Vec::with_capacity(queries.len());
        for q in queries {
            let logged = WalOp::from_query(q);
            let out = self.table.execute(q)?;
            if let Some(op) = logged {
                self.wal.stage(&op);
            }
            outs.push(out);
        }
        self.seal_and_maybe_checkpoint()?;
        Ok(outs)
    }

    /// Commit a transaction durably: validate + apply through the
    /// [`TxnManager`], then seal the transaction's write set as one WAL
    /// batch. A validation conflict stages nothing.
    pub fn commit_txn(&mut self, mgr: &TxnManager, txn: Transaction) -> Result<u64, PersistError> {
        let queries = txn.as_queries();
        // The manager applies through the column directly; hydrate the
        // chunks its write set routes to first.
        for q in &queries {
            self.table.column_mut().hydrate_for_query(q)?;
        }
        let ts = match mgr.commit(txn, &mut self.table) {
            Ok(ts) => ts,
            Err(e @ TxnError::Conflict { .. }) => return Err(e.into()),
            Err(e) => {
                // A storage failure mid-apply leaves the manager's commit
                // partially applied — a state the WAL cannot describe op
                // by op. Checkpointing snapshots the table exactly as it
                // is, so recovery cannot diverge from what readers saw.
                // If even that fails, report both faults: the caller must
                // know durable state now lags the in-memory table.
                if let Err(cp) = self.checkpoint() {
                    return Err(corrupt(format!(
                        "transaction applied partially ({e}) and the recovery \
                         checkpoint failed ({cp}); durable state lags the \
                         in-memory table until a checkpoint succeeds"
                    )));
                }
                return Err(e.into());
            }
        };
        for q in &queries {
            if let Some(op) = WalOp::from_query(q) {
                self.wal.stage(&op);
            }
        }
        self.seal_and_maybe_checkpoint()?;
        Ok(ts)
    }

    /// Seal the open WAL batch, making every staged write durable now.
    pub fn flush(&mut self) -> Result<(), PersistError> {
        self.seal_and_maybe_checkpoint()
    }

    fn seal_and_maybe_checkpoint(&mut self) -> Result<(), PersistError> {
        self.wal.seal()?;
        // Absorb a finished background checkpoint before deciding whether
        // to start another (failures are stashed, not attributed to this
        // write — see `poll_checkpoint`).
        self.poll_checkpoint();
        if self.opts.wal_checkpoint_bytes > 0
            && self.wal.durable_bytes() >= self.opts.wal_checkpoint_bytes
            && self.inflight.is_none()
        {
            let job = self.capture(false)?;
            match (&self.worker, self.opts.background_checkpointer) {
                (Some(worker), true) => worker.submit(job)?,
                _ => {
                    let result = crate::incremental::run_checkpoint(&job);
                    self.apply_completion(result)?;
                }
            }
        }
        Ok(())
    }

    /// Incremental checkpoint, waited to completion: re-serialize exactly
    /// the chunks dirtied since the last checkpoint into a fresh segment,
    /// commit a manifest referencing old records for the clean ones, swing
    /// `CURRENT`, prune. Returns the new generation number.
    pub fn checkpoint(&mut self) -> Result<u64, PersistError> {
        self.checkpoint_sync(false)
    }

    /// Full compaction, waited to completion: rewrite every live chunk
    /// record into one fresh segment (clean records byte-copied, dirty
    /// ones re-encoded) and collapse the segment chain.
    pub fn compact(&mut self) -> Result<u64, PersistError> {
        self.checkpoint_sync(true)
    }

    fn checkpoint_sync(&mut self, force_full: bool) -> Result<u64, PersistError> {
        self.finish_inflight()?;
        let job = self.capture(force_full)?;
        let new_gen = job.new_gen;
        match (&self.worker, self.opts.background_checkpointer) {
            (Some(worker), true) => {
                worker.submit(job)?;
                self.finish_inflight()?;
            }
            _ => {
                let result = crate::incremental::run_checkpoint(&job);
                self.apply_completion(result)?;
            }
        }
        // This checkpoint folded everything a previously failed background
        // attempt would have: the stale failure is moot.
        self.background_error = None;
        Ok(new_gen)
    }

    /// Capture a checkpoint under the foreground's pause: seal, rotate the
    /// WAL (commits continue against the new file immediately), diff the
    /// column's version counters against the last clean snapshot, and
    /// clone exactly the dirty chunks. Everything costly — encoding,
    /// segment/manifest writes, fsyncs — lives in the returned job.
    fn capture(&mut self, force_full: bool) -> Result<CheckpointJob, PersistError> {
        debug_assert!(self.inflight.is_none(), "one checkpoint at a time");
        self.wal.seal()?;
        let durable_lsn = self.wal.next_lsn() - 1;
        let new_gen = self.wal_seq + 1;
        // Rotate: the old WAL file stays for recovery until the manifest
        // commits; new writes land in wal-<new_gen> with continuous LSNs.
        let wp = wal_path(&self.dir, new_gen);
        if wp.exists() {
            fs::remove_file(&wp)?; // garbage of a checkpoint that died pre-commit
        }
        self.wal = Wal::create(&wp, durable_lsn + 1)?;
        // The dirent of the rotated WAL must be durable *before* commits
        // are acknowledged into it: with the background checkpointer the
        // next directory fsync (the job's manifest rename) may be many
        // acknowledged commits away, and losing the dirent would lose all
        // of them.
        sync_dir(&self.dir);
        self.wal_seq = new_gen;

        let versions = self.table.column().versions().to_vec();
        let n = versions.len();
        let has_manifest = self.entries.len() == n;
        let mut full = force_full || !has_manifest;
        if !full {
            // Compaction trigger: would the incremental manifest reference
            // too many segments?
            let mut segs: BTreeSet<u64> = BTreeSet::new();
            let mut any_dirty = false;
            for i in 0..n {
                if versions[i] != self.clean_versions[i] {
                    any_dirty = true;
                } else {
                    segs.insert(self.entries[i].seg);
                }
            }
            if any_dirty {
                segs.insert(self.next_seg);
            }
            if segs.len() > self.opts.max_segments {
                full = true;
            }
        }

        let mut fresh: Vec<(usize, RecordSource)> = Vec::new();
        let mut reused: Vec<(usize, ChunkEntry)> = Vec::new();
        for (i, version) in versions.iter().enumerate() {
            let dirty = !has_manifest || *version != self.clean_versions[i];
            if full && !dirty {
                // Compaction of a clean chunk: byte-copy its existing
                // record — no hydration, no re-encode.
                fresh.push((i, RecordSource::Copy(self.entries[i].clone())));
            } else if dirty {
                // Dirty chunks are hydrated by definition (writes hydrate
                // before mutating), so the clone cannot hit an unloaded
                // store.
                fresh.push((
                    i,
                    RecordSource::Encode(self.table.column().chunks()[i].clone()),
                ));
            } else {
                reused.push((i, self.entries[i].clone()));
            }
        }
        let seg_seq = self.next_seg;
        if !fresh.is_empty() {
            self.next_seg += 1;
        }
        self.inflight = Some(Inflight { versions });
        Ok(CheckpointJob {
            dir: self.dir.clone(),
            new_gen,
            seg_seq,
            durable_lsn,
            schema: self.table.schema(),
            config: *self.table.column().config(),
            fences: self.table.column().fences().map(<[u64]>::to_vec),
            fms: self.fms.clone(),
            n_chunks: n,
            fresh,
            reused,
        })
    }

    /// Absorb a finished background checkpoint if one is ready. A failed
    /// job is *stashed* (see [`DurableTable::take_checkpoint_error`]), not
    /// returned: the commit that happened to poll it succeeded and sealed
    /// durably, and failing it retroactively would make callers retry (and
    /// double-apply) a write that is already committed.
    fn poll_checkpoint(&mut self) {
        if self.inflight.is_none() {
            return;
        }
        if let Some(worker) = &self.worker {
            if let Some(result) = worker.try_recv() {
                if let Err(e) = self.apply_completion(result) {
                    self.background_error = Some(e);
                }
            }
        }
    }

    /// Take (and clear) the error of a failed background checkpoint, if
    /// any. Until a checkpoint succeeds, the affected chunks stay dirty
    /// and the WAL chain keeps growing — durability of acknowledged writes
    /// is never at risk, only checkpoint progress.
    pub fn take_checkpoint_error(&mut self) -> Option<PersistError> {
        self.background_error.take()
    }

    /// Block until the in-flight checkpoint (if any) finishes, and apply
    /// it.
    fn finish_inflight(&mut self) -> Result<(), PersistError> {
        if self.inflight.is_none() {
            return Ok(());
        }
        let result = self
            .worker
            .as_ref()
            .expect("an in-flight checkpoint implies a worker")
            .recv();
        self.apply_completion(result)
    }

    /// Commit (or discard, on error) the capture bookkeeping of a finished
    /// checkpoint. On failure the chunks stay dirty relative to the old
    /// clean snapshot and the WAL chain keeps growing — recovery replays
    /// it, so no acknowledged write is ever lost.
    fn apply_completion(
        &mut self,
        result: Result<Manifest, PersistError>,
    ) -> Result<(), PersistError> {
        let inflight = self.inflight.take().expect("completion without capture");
        let manifest = result?;
        self.generation = manifest.generation;
        self.durable_lsn = manifest.durable_lsn;
        self.entries = manifest.entries;
        self.clean_versions = inflight.versions;
        Ok(())
    }

    /// Optimize the layout for a workload sample (Fig. 10 A→B→C), capture
    /// the per-chunk frequency models, and checkpoint synchronously — the
    /// re-layout and the FM state that justified it become durable
    /// together, before this returns.
    pub fn optimize(
        &mut self,
        sample: &[HapQuery],
        opts: &OptimizeOptions,
    ) -> Result<OptimizeReport, PersistError> {
        // Absorb any in-flight background checkpoint *first*: its
        // completion overwrites `entries`/`clean_versions`, which would
        // silently undo the clear below if it landed later.
        self.finish_inflight()?;
        self.table.hydrate_all()?;
        self.fms = capture_per_chunk(&self.table, sample);
        let report = optimize_table(&mut self.table, sample, opts);
        // Every chunk was rewritten, so the old manifest entries are all
        // stale — drop them to force a full checkpoint. Relying on the
        // version counters alone would be wrong for the NoOrder
        // conversion, which *replaces* the column (counters restart at
        // zero and can collide with the clean snapshot, silently
        // re-pointing rebuilt chunks at pre-relayout records).
        self.entries.clear();
        self.checkpoint()?;
        Ok(report)
    }

    /// Run one adaptive-controller check; when it re-partitions, checkpoint
    /// so the new layout is durable.
    pub fn maybe_reoptimize(
        &mut self,
        ctl: &mut AdaptiveController,
    ) -> Result<AdaptDecision, PersistError> {
        // As in `optimize`: a pending completion must not land after the
        // re-layout clears the manifest entries.
        self.finish_inflight()?;
        self.table.hydrate_all()?;
        let decision = ctl.maybe_reoptimize(&mut self.table);
        if matches!(decision, AdaptDecision::Reoptimized { .. }) {
            // Same contract as `optimize`: a re-layout rewrote every
            // chunk, so the next checkpoint must be full.
            self.entries.clear();
            self.checkpoint()?;
        }
        Ok(decision)
    }

    /// Best-effort removal of files from other v1 generations (leftovers
    /// of a v1 checkpoint interrupted between the `CURRENT` swing and the
    /// cleanup).
    fn remove_stale_v1_generations(&self) {
        let keep = [
            snap_path(&self.dir, self.generation),
            wal_path(&self.dir, self.generation),
            current_path(&self.dir),
        ];
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return;
        };
        for entry in entries.flatten() {
            let p = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let ours = name.starts_with("snap-") || name.starts_with("wal-");
            if ours && !keep.contains(&p) {
                let _ = fs::remove_file(&p);
            }
        }
    }
}

impl Drop for DurableTable {
    /// Best-effort graceful shutdown: seal the open WAL batch (so writes
    /// acknowledged under `group_commit > 1` survive a clean exit) and
    /// wait for an in-flight background checkpoint to commit or fail —
    /// its files are crash-safe either way; waiting just avoids tearing
    /// down the process mid-fsync. Errors are ignored because panicking in
    /// Drop aborts.
    fn drop(&mut self) {
        let _ = self.wal.seal();
        if self.inflight.is_some() {
            if let Some(worker) = &self.worker {
                let result = worker.recv();
                let _ = self.apply_completion(result);
            }
        }
    }
}
