//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), hand-rolled in-repo like
//! every other third-party dependency of this workspace (the build
//! environment is offline; see `crates/shims/`).
//!
//! Uses the *slicing-by-8* table method: eight 256-entry tables let the
//! inner loop consume 8 bytes per iteration instead of 1, which matters
//! because the snapshot CRC covers the entire table image (tens of MB for
//! a 1M-row chunked column) on both the checkpoint and the recovery path.

/// `TABLES[0]` is the classic byte-at-a-time remainder table;
/// `TABLES[k][b]` advances a byte through `k` additional zero bytes.
const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

static TABLES: [[u32; 256]; 8] = build_tables();

/// CRC-32 of `bytes` (init `0xFFFFFFFF`, final xor `0xFFFFFFFF` — the
/// standard zlib/PNG/Ethernet parameterization).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes(c[..4].try_into().expect("4 bytes")) ^ crc;
        crc = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][c[4] as usize]
            ^ TABLES[2][c[5] as usize]
            ^ TABLES[1][c[6] as usize]
            ^ TABLES[0][c[7] as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference byte-at-a-time implementation.
    fn crc32_slow(bytes: &[u8]) -> u32 {
        let mut crc = 0xFFFF_FFFFu32;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLES[0][((crc ^ u32::from(b)) & 0xFF) as usize];
        }
        crc ^ 0xFFFF_FFFF
    }

    #[test]
    fn known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sliced_agrees_with_byte_at_a_time_on_all_lengths() {
        let data: Vec<u8> = (0..1024u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        for len in 0..256 {
            assert_eq!(crc32(&data[..len]), crc32_slow(&data[..len]), "len {len}");
        }
        assert_eq!(crc32(&data), crc32_slow(&data));
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let mut data = vec![0u8; 64];
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), clean, "flip at {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
