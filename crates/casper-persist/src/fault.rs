//! Deterministic fault injection for the storage VFS, SQLite-test-VFS
//! style.
//!
//! [`FaultVfs`] implements [`Vfs`] on top of the real filesystem and adds
//! two orthogonal capabilities:
//!
//! 1. **A deterministic fault schedule.** [`FaultRule`]s match an
//!    operation kind ([`VfsOp`]), optionally a path substring, and
//!    optionally the Nth matching call, and inject `EIO`/`ENOSPC`
//!    (optionally after a short write of K bytes). Rules never consult a
//!    clock or OS randomness, so a schedule replays identically run after
//!    run; [`FaultVfs::with_seed`] carries a seed plus an xorshift
//!    generator tests use to derive *varied but reproducible* schedules.
//! 2. **A crash-durability shadow model.** The harness tracks, per file,
//!    the bytes that were on disk at the last *successful* fsync, and
//!    keeps directory entries (created / renamed / removed names) in a
//!    pending log until the parent directory is fsynced.
//!    [`FaultVfs::simulate_crash`] rolls the real directory back to
//!    exactly that durable state: un-fsynced bytes vanish, un-fsynced
//!    dirents vanish (a created file disappears even if its *data* was
//!    fsynced — POSIX lets that happen), committed state survives. This
//!    is what makes "a failed fsync silently dropped dirty pages"
//!    (fsyncgate) testable: the write landed in the real file, the rule
//!    failed the fsync, and the simulated crash reverts the bytes.
//!
//! With an empty schedule the harness performs byte-for-byte the same
//! filesystem operations as [`crate::vfs::RealVfs`] (the zero-drift CI
//! check relies on this); the only intentional difference is that `mmap`
//! returns an owned copy of the file, because a later `simulate_crash`
//! rewrites files in place and a live real mapping would alias them.

use crate::mmap::Mmap;
use crate::vfs::{Vfs, VfsFile};
use casper_obs::CounterDef;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// The error an injected fault surfaces as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultErr {
    /// `EIO` — generic I/O failure (bad sector, dropped interconnect).
    Eio,
    /// `ENOSPC` — no space left on device.
    Enospc,
}

impl FaultErr {
    fn to_io(self) -> io::Error {
        // Raw OS errno values so callers observe exactly what a real
        // kernel would hand back (matchable via `io::Error::raw_os_error`).
        io::Error::from_raw_os_error(match self {
            FaultErr::Eio => 5,
            FaultErr::Enospc => 28,
        })
    }
}

/// Operation kinds a [`FaultRule`] can match.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VfsOp {
    /// Whole-file reads, positional reads, and mmap.
    Read,
    /// File writes.
    Write,
    /// File fsync (`sync_data` / `sync_all`).
    Fsync,
    /// Directory fsync.
    FsyncDir,
    /// File creation (`create` / `create_new`) and opens.
    Open,
    /// Rename.
    Rename,
    /// File removal.
    Remove,
}

/// One entry of the deterministic fault schedule.
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// Operation kind the rule intercepts.
    pub op: VfsOp,
    /// Only paths containing this substring match (`None` = every path).
    pub path_substr: Option<String>,
    /// Fire on the Nth matching call (1-based); `None` fires on every
    /// matching call (until `times` is exhausted).
    pub nth: Option<u64>,
    /// For `Write` rules: bytes actually written before the error — the
    /// short-write torn-page model. `None` writes nothing.
    pub short_bytes: Option<usize>,
    /// Error to inject.
    pub err: FaultErr,
    /// How many times the rule may fire (`u64::MAX` = persistent fault).
    pub times: u64,
}

impl FaultRule {
    /// A rule failing the Nth fsync of paths containing `substr`.
    pub fn nth_fsync(substr: &str, nth: u64, err: FaultErr) -> Self {
        Self {
            op: VfsOp::Fsync,
            path_substr: Some(substr.to_string()),
            nth: Some(nth),
            short_bytes: None,
            err,
            times: 1,
        }
    }

    /// A rule failing every operation of `op` on paths containing
    /// `substr`, forever (persistent fault).
    pub fn on_path(op: VfsOp, substr: &str, err: FaultErr) -> Self {
        Self {
            op,
            path_substr: Some(substr.to_string()),
            nth: None,
            short_bytes: None,
            err,
            times: u64::MAX,
        }
    }

    /// A rule that short-writes `short` bytes of the Nth matching write to
    /// paths containing `substr`, then fails it.
    pub fn short_write(substr: &str, nth: u64, short: usize, err: FaultErr) -> Self {
        Self {
            op: VfsOp::Write,
            path_substr: Some(substr.to_string()),
            nth: Some(nth),
            short_bytes: Some(short),
            err,
            times: 1,
        }
    }
}

/// Counters exposed by [`FaultVfs::counters`] (deterministic — they only
/// advance with VFS calls, never with wall-clock time).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// File fsync calls observed (successful or failed).
    pub fsyncs: u64,
    /// Directory fsync calls observed.
    pub dir_fsyncs: u64,
    /// Write calls observed.
    pub writes: u64,
    /// Faults injected so far.
    pub injected: u64,
}

#[derive(Debug)]
struct RuleState {
    rule: FaultRule,
    /// Matching calls seen so far (drives `nth`).
    seen: u64,
    /// Times the rule has fired.
    fired: u64,
}

/// A directory entry change not yet made durable by a parent-dir fsync.
#[derive(Debug)]
enum DirentOp {
    Create(PathBuf),
    Rename {
        from: PathBuf,
        to: PathBuf,
        /// Durable content of `from`'s inode at rename time. Carried in
        /// the op because durable content is a property of the *inode*,
        /// not the name: a later create may reuse `from` (a retried
        /// write-atomic reuses its temp name), and resolving at commit
        /// time would hand the first rename the second inode's bytes.
        content: Vec<u8>,
        /// Durable content `to` held before being replaced (`None`: `to`
        /// did not exist).
        replaced: Option<Vec<u8>>,
    },
    Remove {
        path: PathBuf,
        /// Durable content at removal time, restored if the crash beats
        /// the directory fsync.
        content: Vec<u8>,
    },
}

#[derive(Debug, Default)]
struct State {
    rules: Vec<RuleState>,
    counters: FaultCounters,
    /// Human-readable log of injected faults, for assertions and reports.
    injected_log: Vec<String>,
    /// Per-file bytes as of the last successful fsync.
    durable: HashMap<PathBuf, Vec<u8>>,
    /// Dirent changes awaiting a parent-directory fsync.
    pending: Vec<DirentOp>,
}

impl State {
    /// Whether `path`'s dirent is itself still pending (its durable
    /// content, if any, predates nothing).
    fn dirent_pending(&self, path: &Path) -> bool {
        self.pending.iter().any(|op| match op {
            DirentOp::Create(p) => p == path,
            DirentOp::Rename { to, .. } => to == path,
            DirentOp::Remove { .. } => false,
        })
    }

    /// First sight of a pre-existing file: everything on disk now is
    /// assumed durable (the harness only models what happens *after* it
    /// starts watching).
    fn track_existing(&mut self, path: &Path) {
        if path.exists() && !self.durable.contains_key(path) && !self.dirent_pending(path) {
            let bytes = std::fs::read(path).unwrap_or_default();
            self.durable.insert(path.to_path_buf(), bytes);
        }
    }

    /// Consult the schedule: does `op` on `path` fault now?
    fn arm(&mut self, op: VfsOp, path: &Path) -> Option<(FaultErr, Option<usize>)> {
        let path_str = path.to_string_lossy();
        for rs in &mut self.rules {
            if rs.rule.op != op {
                continue;
            }
            if let Some(s) = &rs.rule.path_substr {
                if !path_str.contains(s.as_str()) {
                    continue;
                }
            }
            rs.seen += 1;
            let due = match rs.rule.nth {
                Some(n) => rs.seen == n,
                None => true,
            };
            if due && rs.fired < rs.rule.times {
                static OBS_FAULTS: CounterDef = CounterDef::new("casper_fault_injections_total");
                rs.fired += 1;
                self.counters.injected += 1;
                OBS_FAULTS.inc();
                self.injected_log.push(format!(
                    "{op:?} #{} on {path_str}: injected {:?}",
                    rs.seen, rs.rule.err
                ));
                return Some((rs.rule.err, rs.rule.short_bytes));
            }
        }
        None
    }
}

/// The fault-injecting VFS. See the module docs for the model; construct
/// with [`FaultVfs::new`] (empty schedule) or [`FaultVfs::with_seed`],
/// then [`FaultVfs::inject`] rules and hand an `Arc` of it to
/// [`crate::VfsHandle::fault`].
#[derive(Debug)]
pub struct FaultVfs {
    seed: u64,
    state: Mutex<State>,
}

impl Default for FaultVfs {
    fn default() -> Self {
        Self::new()
    }
}

impl FaultVfs {
    /// Harness with an empty schedule (faults can be injected later).
    pub fn new() -> Self {
        Self::with_seed(0)
    }

    /// Harness carrying a schedule seed (see [`FaultVfs::pick`]).
    pub fn with_seed(seed: u64) -> Self {
        Self {
            seed,
            state: Mutex::new(State::default()),
        }
    }

    /// The schedule seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Deterministic value in `lo..hi` derived from the seed and `salt`
    /// (splitmix64 finalizer — tests use this to vary *which* fsync/write
    /// a seeded schedule kills without any runtime randomness).
    pub fn pick(&self, salt: u64, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        let mut z = self
            .seed
            .wrapping_add(salt)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        lo + z % (hi - lo)
    }

    /// Add a rule to the schedule.
    pub fn inject(&self, rule: FaultRule) {
        self.state.lock().unwrap().rules.push(RuleState {
            rule,
            seen: 0,
            fired: 0,
        });
    }

    /// Drop every rule (the shadow durability state is kept).
    pub fn clear_faults(&self) {
        self.state.lock().unwrap().rules.clear();
    }

    /// Deterministic operation counters.
    pub fn counters(&self) -> FaultCounters {
        self.state.lock().unwrap().counters
    }

    /// Human-readable log of every fault injected so far.
    pub fn injected_faults(&self) -> Vec<String> {
        self.state.lock().unwrap().injected_log.clone()
    }

    /// Roll the real directory tree back to the crash-durable state: undo
    /// pending dirent operations (newest first), then restore every
    /// tracked file to its last-fsynced bytes. After this returns, the
    /// on-disk state is exactly what a machine reboot after a power cut
    /// would leave, and the shadow model matches it.
    pub fn simulate_crash(&self) -> io::Result<()> {
        let mut st = self.state.lock().unwrap();
        let pending: Vec<DirentOp> = st.pending.drain(..).collect();
        for op in pending.into_iter().rev() {
            match op {
                DirentOp::Create(p) => {
                    let _ = std::fs::remove_file(&p);
                    st.durable.remove(&p);
                }
                DirentOp::Rename {
                    from, to, replaced, ..
                } => {
                    let _ = std::fs::rename(&to, &from);
                    match replaced {
                        Some(content) => std::fs::write(&to, content)?,
                        None => {
                            let _ = std::fs::remove_file(&to);
                        }
                    }
                }
                DirentOp::Remove { path, content } => {
                    std::fs::write(&path, content)?;
                }
            }
        }
        for (path, content) in &st.durable {
            std::fs::write(path, content)?;
        }
        Ok(())
    }

    // -- hooks called by `VfsFile` ------------------------------------

    pub(crate) fn file_write_all(
        &self,
        path: &Path,
        file: &mut File,
        buf: &[u8],
    ) -> io::Result<()> {
        let fault = {
            let mut st = self.state.lock().unwrap();
            st.counters.writes += 1;
            st.arm(VfsOp::Write, path)
        };
        match fault {
            None => file.write_all(buf),
            Some((err, short)) => {
                // Torn write: the first `short` bytes land for real (they
                // may even become durable if a later fsync covers them),
                // then the error surfaces.
                if let Some(k) = short {
                    let k = k.min(buf.len());
                    file.write_all(&buf[..k])?;
                }
                Err(err.to_io())
            }
        }
    }

    pub(crate) fn file_sync(&self, path: &Path, _file: &File) -> io::Result<()> {
        let mut st = self.state.lock().unwrap();
        st.counters.fsyncs += 1;
        if let Some((err, _)) = st.arm(VfsOp::Fsync, path) {
            // The failed fsync does NOT advance the durable shadow: the
            // dirty pages it covered are considered dropped, exactly the
            // fsyncgate failure mode. (The bytes stay visible in the real
            // file — the page cache reads clean — until simulate_crash.)
            return Err(err.to_io());
        }
        let bytes = std::fs::read(path)?;
        st.durable.insert(path.to_path_buf(), bytes);
        Ok(())
    }

    pub(crate) fn check_read(&self, path: &Path) -> io::Result<()> {
        let mut st = self.state.lock().unwrap();
        if let Some((err, _)) = st.arm(VfsOp::Read, path) {
            return Err(err.to_io());
        }
        Ok(())
    }
}

/// The [`Vfs`] implementation lives on `Arc<FaultVfs>` (not `FaultVfs`
/// itself) because every [`VfsFile`] it hands out keeps a reference back
/// to the harness for its per-operation hooks.
impl Vfs for Arc<FaultVfs> {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        if let Some((err, _)) = self.state.lock().unwrap().arm(VfsOp::Read, path) {
            return Err(err.to_io());
        }
        std::fs::read(path)
    }

    fn create(&self, path: &Path) -> io::Result<VfsFile> {
        {
            let mut st = self.state.lock().unwrap();
            if let Some((err, _)) = st.arm(VfsOp::Open, path) {
                return Err(err.to_io());
            }
            // Shadow bookkeeping before the truncating create: a
            // pre-existing file's durable content must be captured first.
            if path.exists() {
                st.track_existing(path);
            } else {
                st.pending.push(DirentOp::Create(path.to_path_buf()));
            }
        }
        Ok(VfsFile::faulted(
            File::create(path)?,
            path,
            Arc::clone(self),
        ))
    }

    fn create_new(&self, path: &Path) -> io::Result<VfsFile> {
        let mut st = self.state.lock().unwrap();
        if let Some((err, _)) = st.arm(VfsOp::Open, path) {
            return Err(err.to_io());
        }
        let file = OpenOptions::new().write(true).create_new(true).open(path)?;
        st.pending.push(DirentOp::Create(path.to_path_buf()));
        drop(st);
        Ok(VfsFile::faulted(file, path, Arc::clone(self)))
    }

    fn open_rw(&self, path: &Path) -> io::Result<VfsFile> {
        let mut st = self.state.lock().unwrap();
        if let Some((err, _)) = st.arm(VfsOp::Open, path) {
            return Err(err.to_io());
        }
        st.track_existing(path);
        drop(st);
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        Ok(VfsFile::faulted(file, path, Arc::clone(self)))
    }

    fn open_read(&self, path: &Path) -> io::Result<VfsFile> {
        let mut st = self.state.lock().unwrap();
        if let Some((err, _)) = st.arm(VfsOp::Open, path) {
            return Err(err.to_io());
        }
        st.track_existing(path);
        drop(st);
        Ok(VfsFile::faulted(File::open(path)?, path, Arc::clone(self)))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut st = self.state.lock().unwrap();
        if let Some((err, _)) = st.arm(VfsOp::Rename, from) {
            return Err(err.to_io());
        }
        st.track_existing(from);
        let content = st.durable.get(from).cloned().unwrap_or_default();
        let replaced = if to.exists() {
            st.track_existing(to);
            st.durable.get(to).cloned()
        } else {
            None
        };
        std::fs::rename(from, to)?;
        st.pending.push(DirentOp::Rename {
            from: from.to_path_buf(),
            to: to.to_path_buf(),
            content,
            replaced,
        });
        Ok(())
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        let mut st = self.state.lock().unwrap();
        if let Some((err, _)) = st.arm(VfsOp::Remove, path) {
            return Err(err.to_io());
        }
        st.track_existing(path);
        let content = st.durable.get(path).cloned().unwrap_or_default();
        std::fs::remove_file(path)?;
        st.pending.push(DirentOp::Remove {
            path: path.to_path_buf(),
            content,
        });
        Ok(())
    }

    fn fsync_dir(&self, dir: &Path) -> io::Result<()> {
        let mut st = self.state.lock().unwrap();
        st.counters.dir_fsyncs += 1;
        if let Some((err, _)) = st.arm(VfsOp::FsyncDir, dir) {
            return Err(err.to_io());
        }
        // Commit every pending dirent op under `dir`, in order.
        let pending = std::mem::take(&mut st.pending);
        for op in pending {
            let parent_matches = match &op {
                DirentOp::Create(p) | DirentOp::Remove { path: p, .. } => p.parent() == Some(dir),
                DirentOp::Rename { to, .. } => to.parent() == Some(dir),
            };
            if !parent_matches {
                st.pending.push(op);
                continue;
            }
            match op {
                DirentOp::Create(p) => {
                    // Dirent durable; content durable only as far as its
                    // own fsyncs got (none yet → empty file after crash).
                    st.durable.entry(p).or_default();
                }
                DirentOp::Rename {
                    from, to, content, ..
                } => {
                    // The committed name gets the inode's bytes as they
                    // were durable at rename time; the old name's shadow
                    // entry (if any) described that same inode and is
                    // gone with the dirent.
                    st.durable.remove(&from);
                    st.durable.insert(to, content);
                }
                DirentOp::Remove { path, .. } => {
                    st.durable.remove(&path);
                }
            }
        }
        File::open(dir)?.sync_all()
    }

    fn mmap(&self, path: &Path) -> io::Result<Mmap> {
        if let Some((err, _)) = self.state.lock().unwrap().arm(VfsOp::Read, path) {
            return Err(err.to_io());
        }
        // Owned, not mapped: simulate_crash rewrites files in place, which
        // would alias (and UB) a live real mapping of the same file.
        Ok(Mmap::from_owned(std::fs::read(path)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rules_fire_deterministically() {
        let vfs = Arc::new(FaultVfs::new());
        vfs.inject(FaultRule::nth_fsync("probe", 2, FaultErr::Eio));
        let dir = std::env::temp_dir().join("casper_faultvfs_rules");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("probe.bin");
        let _ = std::fs::remove_file(&path);
        let mut f = vfs.create(&path).unwrap();
        f.write_all(b"abc").unwrap();
        f.sync_data().unwrap(); // fsync #1 passes
        f.write_all(b"def").unwrap();
        let err = f.sync_data().unwrap_err(); // fsync #2 injected
        assert_eq!(err.raw_os_error(), Some(5));
        f.sync_data().unwrap(); // rule exhausted
        assert_eq!(vfs.counters().injected, 1);
    }

    #[test]
    fn crash_drops_unfsynced_bytes_and_pending_dirents() {
        let vfs = Arc::new(FaultVfs::new());
        let dir = std::env::temp_dir().join("casper_faultvfs_crash");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        // File A: created, dirent + 4 bytes durable, 4 more bytes not.
        let a = dir.join("a.bin");
        let mut fa = vfs.create(&a).unwrap();
        fa.write_all(b"AAAA").unwrap();
        fa.sync_data().unwrap();
        vfs.fsync_dir(&dir).unwrap();
        fa.write_all(b"BBBB").unwrap(); // never fsynced

        // File B: created + fsynced data, but the dirent never committed.
        let b = dir.join("b.bin");
        let mut fb = vfs.create(&b).unwrap();
        fb.write_all(b"CCCC").unwrap();
        fb.sync_data().unwrap();

        vfs.simulate_crash().unwrap();
        assert_eq!(std::fs::read(&a).unwrap(), b"AAAA");
        assert!(!b.exists(), "un-fsynced dirent must not survive the crash");
    }

    #[test]
    fn crash_reverts_uncommitted_rename() {
        let vfs = Arc::new(FaultVfs::new());
        let dir = std::env::temp_dir().join("casper_faultvfs_rename");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let dst = dir.join("CURRENT");
        std::fs::write(&dst, b"old").unwrap();
        let tmp = dir.join("CURRENT.tmp");
        let mut f = vfs.create(&tmp).unwrap();
        f.write_all(b"new").unwrap();
        f.sync_all().unwrap();
        drop(f);
        vfs.rename(&tmp, &dst).unwrap();
        assert_eq!(std::fs::read(&dst).unwrap(), b"new");
        // No directory fsync: the swing is not durable.
        vfs.simulate_crash().unwrap();
        assert_eq!(std::fs::read(&dst).unwrap(), b"old");
    }
}
