//! Little-endian byte encoding primitives shared by the snapshot format and
//! the WAL record format.
//!
//! [`ByteWriter`] appends fixed-width primitives and length-prefixed arrays
//! into a growable buffer; [`ByteReader`] mirrors it with bounds-checked
//! reads that surface [`StorageError::Corrupt`] instead of panicking — a
//! truncated or bit-flipped file must fail *typedly* (satellite requirement
//! of this subsystem). Array lengths are validated against the remaining
//! byte budget before any allocation, so a corrupt length prefix cannot
//! trigger a multi-gigabyte `Vec` reservation.

use casper_storage::StorageError;

/// Append-only little-endian encoder.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Fresh empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// One byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Four bytes, little endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Eight bytes, little endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// IEEE-754 bits of an `f64`.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Raw bytes with a `u64` length prefix.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// `u8` array with a length prefix.
    pub fn vec_u8(&mut self, v: &[u8]) {
        self.bytes(v);
    }

    /// `u16` array with a length prefix.
    pub fn vec_u16(&mut self, v: &[u16]) {
        self.u64(v.len() as u64);
        self.buf.reserve(v.len() * 2);
        for &x in v {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
    }

    /// `u32` array with a length prefix.
    pub fn vec_u32(&mut self, v: &[u32]) {
        self.u64(v.len() as u64);
        self.buf.reserve(v.len() * 4);
        for &x in v {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
    }

    /// `u64` array with a length prefix.
    pub fn vec_u64(&mut self, v: &[u64]) {
        self.u64(v.len() as u64);
        self.buf.reserve(v.len() * 8);
        for &x in v {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
    }

    /// `f64` array with a length prefix.
    pub fn vec_f64(&mut self, v: &[f64]) {
        self.u64(v.len() as u64);
        self.buf.reserve(v.len() * 8);
        for &x in v {
            self.buf.extend_from_slice(&x.to_bits().to_le_bytes());
        }
    }
}

/// Bounds-checked little-endian decoder over a byte slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

fn corrupt(reason: impl Into<String>) -> StorageError {
    StorageError::Corrupt {
        reason: reason.into(),
    }
}

impl<'a> ByteReader<'a> {
    /// Decode from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed (format sanity check: trailing
    /// garbage in a section is corruption, not slack).
    pub fn finish(&self) -> Result<(), StorageError> {
        if self.remaining() != 0 {
            return Err(corrupt(format!(
                "{} trailing bytes after the last field",
                self.remaining()
            )));
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StorageError> {
        if self.remaining() < n {
            return Err(corrupt(format!(
                "truncated: need {n} bytes, {} remain",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// One byte.
    pub fn u8(&mut self) -> Result<u8, StorageError> {
        Ok(self.take(1)?[0])
    }

    /// Four bytes, little endian.
    pub fn u32(&mut self) -> Result<u32, StorageError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Eight bytes, little endian.
    pub fn u64(&mut self) -> Result<u64, StorageError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// A `u64` validated to fit in `usize` (counts, lengths).
    pub fn len_u64(&mut self) -> Result<usize, StorageError> {
        usize::try_from(self.u64()?).map_err(|_| corrupt("length overflows usize"))
    }

    /// An `f64` from its IEEE-754 bits.
    pub fn f64(&mut self) -> Result<f64, StorageError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Length-prefixed element count, validated so that `count * width`
    /// bytes actually remain.
    fn array_len(&mut self, width: usize) -> Result<usize, StorageError> {
        let n = self.len_u64()?;
        if n.checked_mul(width).is_none_or(|b| b > self.remaining()) {
            return Err(corrupt(format!(
                "array of {n} x {width}B exceeds the {} remaining bytes",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Raw bytes with a length prefix.
    pub fn bytes(&mut self) -> Result<&'a [u8], StorageError> {
        let n = self.array_len(1)?;
        self.take(n)
    }

    /// `u8` array with a length prefix.
    pub fn vec_u8(&mut self) -> Result<Vec<u8>, StorageError> {
        Ok(self.bytes()?.to_vec())
    }

    /// `u16` array with a length prefix.
    pub fn vec_u16(&mut self) -> Result<Vec<u16>, StorageError> {
        let n = self.array_len(2)?;
        let raw = self.take(n * 2)?;
        Ok(raw
            .chunks_exact(2)
            .map(|c| u16::from_le_bytes(c.try_into().expect("2 bytes")))
            .collect())
    }

    /// `u32` array with a length prefix.
    pub fn vec_u32(&mut self) -> Result<Vec<u32>, StorageError> {
        let n = self.array_len(4)?;
        let raw = self.take(n * 4)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }

    /// `u64` array with a length prefix.
    pub fn vec_u64(&mut self) -> Result<Vec<u64>, StorageError> {
        let n = self.array_len(8)?;
        let raw = self.take(n * 8)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect())
    }

    /// `f64` array with a length prefix.
    pub fn vec_f64(&mut self) -> Result<Vec<f64>, StorageError> {
        Ok(self.vec_u64()?.into_iter().map(f64::from_bits).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.f64(0.125);
        w.bytes(b"abc");
        w.vec_u16(&[1, 2, 65535]);
        w.vec_u32(&[9, 8]);
        w.vec_u64(&[u64::MAX]);
        w.vec_f64(&[1.5, -0.0]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.f64().unwrap(), 0.125);
        assert_eq!(r.bytes().unwrap(), b"abc");
        assert_eq!(r.vec_u16().unwrap(), vec![1, 2, 65535]);
        assert_eq!(r.vec_u32().unwrap(), vec![9, 8]);
        assert_eq!(r.vec_u64().unwrap(), vec![u64::MAX]);
        let f = r.vec_f64().unwrap();
        assert_eq!(f[0], 1.5);
        assert!(f[1] == 0.0 && f[1].is_sign_negative());
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_typed_corruption() {
        let mut w = ByteWriter::new();
        w.u64(42);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..5]);
        assert!(matches!(r.u64(), Err(StorageError::Corrupt { .. })));
    }

    #[test]
    fn absurd_length_prefix_rejected_before_allocation() {
        let mut w = ByteWriter::new();
        w.u64(u64::MAX / 2); // claims ~9 EB of u64s follow
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.vec_u64(), Err(StorageError::Corrupt { .. })));
    }

    #[test]
    fn trailing_garbage_detected() {
        let mut w = ByteWriter::new();
        w.u8(1);
        w.u8(2);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        r.u8().unwrap();
        assert!(matches!(r.finish(), Err(StorageError::Corrupt { .. })));
    }
}
