//! LSN-indexed archive, point-in-time restore, and online hot backup.
//!
//! Checkpoint pruning normally *deletes* superseded files: older manifests,
//! segments no live entry references, WAL links below the durable
//! generation. With an [`ArchiveConfig`] on
//! [`crate::DurableOptions::archive`], pruning instead *retires* them into
//! `<dir>/archive/`, indexed by a CRC-guarded `archive-index.casper` that
//! maps every retired file to its LSN coordinates. Because segments are
//! append-once and manifests are layout-preserving, an archived
//! `(manifest, segments)` pair plus the archived WAL chain restores any
//! historical LSN with **zero layout solves and zero codec re-encodes** —
//! the same restore guarantee the live path has ([`open_at`]).
//!
//! ## Crash safety of retire
//!
//! Retire is two-phase and runs entirely through the [`Vfs`]:
//!
//! 1. each stale file is `rename`d into `archive/` (atomic; the bytes are
//!    read first so the index entry carries a whole-file CRC),
//! 2. `fsync_dir(archive/)` then `fsync_dir(dir)` commit the dirents,
//! 3. the index is rewritten via the temp-file + rename + checked
//!    directory-fsync path ([`crate::durable::write_atomic`]).
//!
//! A crash anywhere in between leaves either the live copy (rename not
//! yet durable — the next retire redoes it) or an archived-but-unindexed
//! file (the next retire's *reconcile* step reads it back and re-indexes
//! it). The index is therefore a rebuildable cache of the archive
//! directory, never the source of truth for what exists.
//!
//! ## Hot backup
//!
//! [`crate::DurableTable::begin_backup`] pins the current generation
//! (manifest + segments + WAL chain) against pruning *and* retiring, then
//! hands back a [`BackupJob`] that can run on any thread while the
//! foreground keeps serving: it copies the pinned manifest, every
//! referenced segment, and the sealed WAL prefix — CRC-verifying every
//! record on the way out — and writes the backup's `CURRENT` last, as the
//! commit point. The result is itself a valid durable-table directory
//! ([`verify_backup`] checks it end to end).

use crate::codec::{ByteReader, ByteWriter};
use crate::crc::crc32;
use crate::incremental::{
    decode_manifest, manifest_path, numbered_file, prune_stale, restore_table_from, segment_path,
    verify_segment_header, Manifest,
};
use crate::vfs::{Vfs, VfsHandle};
use crate::wal::{replay_upto, scan};
use crate::{DurableOptions, PersistError};
use casper_engine::Table;
use casper_obs::{CounterDef, GaugeDef, HistogramDef};
use casper_storage::StorageError;
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Magic bytes opening the archive index file.
pub const ARCHIVE_INDEX_MAGIC: [u8; 4] = *b"CSPA";
/// Archive index format version.
pub const ARCHIVE_INDEX_VERSION: u32 = 1;
/// File name of the index inside the archive directory.
pub const ARCHIVE_INDEX_NAME: &str = "archive-index.casper";

// Archive + PITR telemetry. Gauges reflect the indexed archive after every
// retire; counters accumulate across retires/backups/restores.
static OBS_ARCHIVE_BYTES: GaugeDef = GaugeDef::new("casper_archive_bytes");
static OBS_ARCHIVE_FILES: GaugeDef = GaugeDef::new("casper_archive_files");
static OBS_RETIRED_FILES: CounterDef = CounterDef::new("casper_archive_retired_files_total");
static OBS_RETENTION_PRUNED: CounterDef = CounterDef::new("casper_archive_retention_pruned_total");
static OBS_RETIRE_ERRORS: CounterDef = CounterDef::new("casper_archive_retire_errors_total");
static OBS_BACKUPS: CounterDef = CounterDef::new("casper_backups_total");
static OBS_BACKUP_BYTES: CounterDef = CounterDef::new("casper_backup_bytes_total");
static OBS_BACKUP_NS: HistogramDef = HistogramDef::new("casper_backup_duration_ns");
static OBS_RESTORES: CounterDef = CounterDef::new("casper_pitr_restores_total");
static OBS_RESTORE_NS: HistogramDef = HistogramDef::new("casper_pitr_restore_duration_ns");

fn corrupt(reason: impl Into<String>) -> PersistError {
    PersistError::Storage(StorageError::Corrupt {
        reason: reason.into(),
    })
}

/// Retention policy for the archive. Every limit is a horizon; `0` means
/// "unbounded on this axis". The default keeps everything.
///
/// Retention drops whole *generations* oldest-first: an archived manifest
/// leaves together with the segments only it references and the WAL links
/// below the oldest surviving generation, so whatever remains is always a
/// complete restore point.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArchiveConfig {
    /// Drop oldest generations once the indexed archive exceeds this many
    /// bytes (0 = unbounded).
    pub max_bytes: u64,
    /// Drop generations whose durable LSN trails the live durable LSN by
    /// more than this many LSNs (0 = unbounded).
    pub max_lsns: u64,
    /// Drop generations retired more than this many seconds ago
    /// (0 = unbounded).
    pub max_age_secs: u64,
}

/// One archived manifest: a restorable base generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchivedManifest {
    /// Checkpoint generation of the archived manifest.
    pub generation: u64,
    /// Highest WAL LSN the manifest folded in — the restore base for any
    /// target at or after it.
    pub durable_lsn: u64,
    /// Segments the manifest's entries reference (they may live in the
    /// archive or still be live, shared with newer generations).
    pub segments: Vec<u64>,
    /// Whole-file byte length at retire time.
    pub bytes: u64,
    /// Whole-file CRC32 at retire time (the scrubber re-verifies it).
    pub crc: u32,
    /// Unix seconds when the file was retired (age-based retention).
    pub retired_unix: u64,
}

/// One archived segment file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchivedSegment {
    /// Segment sequence number.
    pub seq: u64,
    /// Whole-file byte length at retire time.
    pub bytes: u64,
    /// Whole-file CRC32 at retire time.
    pub crc: u32,
    /// Unix seconds when the file was retired.
    pub retired_unix: u64,
}

/// One archived WAL link, with the LSN range its sealed batches cover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchivedWal {
    /// WAL sequence number (equals the generation whose capture created
    /// the file).
    pub seq: u64,
    /// First LSN of the first sealed batch (0 when the link is empty).
    pub first_lsn: u64,
    /// Commit LSN of the last sealed batch (0 when the link is empty).
    pub last_lsn: u64,
    /// Whole-file byte length at retire time.
    pub bytes: u64,
    /// Whole-file CRC32 at retire time.
    pub crc: u32,
    /// Unix seconds when the file was retired.
    pub retired_unix: u64,
}

/// The LSN index over `<dir>/archive/`: which retired files exist and what
/// LSN coordinates they cover. Persisted as a CRC-guarded
/// `archive-index.casper`; rebuildable from the archived files themselves
/// (retire reconciles the two on every pass), so index loss or corruption
/// never loses history.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ArchiveIndex {
    /// Archived manifests, ascending by generation.
    pub manifests: Vec<ArchivedManifest>,
    /// Archived segments, ascending by sequence.
    pub segments: Vec<ArchivedSegment>,
    /// Archived WAL links, ascending by sequence.
    pub wals: Vec<ArchivedWal>,
}

/// `<dir>/archive`.
pub fn archive_dir(dir: &Path) -> PathBuf {
    dir.join("archive")
}

fn index_path(dir: &Path) -> PathBuf {
    archive_dir(dir).join(ARCHIVE_INDEX_NAME)
}

fn manifest_name(generation: u64) -> String {
    format!("manifest-{generation:06}.casper")
}

fn segment_name(seq: u64) -> String {
    format!("seg-{seq:06}.casper")
}

fn wal_name(seq: u64) -> String {
    format!("wal-{seq:06}.log")
}

fn unix_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs())
}

impl ArchiveIndex {
    /// Serialize (header + CRC-guarded body, same shape as manifests).
    pub fn encode(&self) -> Vec<u8> {
        let mut body = ByteWriter::new();
        body.u64(self.manifests.len() as u64);
        for m in &self.manifests {
            body.u64(m.generation);
            body.u64(m.durable_lsn);
            body.vec_u64(&m.segments);
            body.u64(m.bytes);
            body.u32(m.crc);
            body.u64(m.retired_unix);
        }
        body.u64(self.segments.len() as u64);
        for s in &self.segments {
            body.u64(s.seq);
            body.u64(s.bytes);
            body.u32(s.crc);
            body.u64(s.retired_unix);
        }
        body.u64(self.wals.len() as u64);
        for w in &self.wals {
            body.u64(w.seq);
            body.u64(w.first_lsn);
            body.u64(w.last_lsn);
            body.u64(w.bytes);
            body.u32(w.crc);
            body.u64(w.retired_unix);
        }
        let body = body.into_bytes();
        let mut out = ByteWriter::new();
        for b in ARCHIVE_INDEX_MAGIC {
            out.u8(b);
        }
        out.u32(ARCHIVE_INDEX_VERSION);
        out.u64(body.len() as u64);
        out.u32(crc32(&body));
        let mut bytes = out.into_bytes();
        bytes.extend_from_slice(&body);
        bytes
    }

    /// Decode, verifying magic, version and checksum.
    pub fn decode(bytes: &[u8]) -> Result<Self, StorageError> {
        let mut header = ByteReader::new(bytes);
        let magic = [header.u8()?, header.u8()?, header.u8()?, header.u8()?];
        if magic != ARCHIVE_INDEX_MAGIC {
            return Err(StorageError::Corrupt {
                reason: format!("bad archive index magic {magic:02x?}"),
            });
        }
        let version = header.u32()?;
        if version != ARCHIVE_INDEX_VERSION {
            return Err(StorageError::Corrupt {
                reason: format!(
                    "unsupported archive index version {version} \
                     (this build reads {ARCHIVE_INDEX_VERSION})"
                ),
            });
        }
        let body_len = header.len_u64()?;
        let want_crc = header.u32()?;
        if header.remaining() != body_len {
            return Err(StorageError::Corrupt {
                reason: format!(
                    "archive index body length {body_len} but {} bytes follow the header",
                    header.remaining()
                ),
            });
        }
        let body = &bytes[bytes.len() - body_len..];
        let got_crc = crc32(body);
        if got_crc != want_crc {
            return Err(StorageError::Corrupt {
                reason: format!(
                    "archive index checksum mismatch: stored {want_crc:#010x}, \
                     computed {got_crc:#010x}"
                ),
            });
        }
        let mut r = ByteReader::new(body);
        let mut index = ArchiveIndex::default();
        let n = r.len_u64()?;
        for _ in 0..n {
            index.manifests.push(ArchivedManifest {
                generation: r.u64()?,
                durable_lsn: r.u64()?,
                segments: r.vec_u64()?,
                bytes: r.u64()?,
                crc: r.u32()?,
                retired_unix: r.u64()?,
            });
        }
        let n = r.len_u64()?;
        for _ in 0..n {
            index.segments.push(ArchivedSegment {
                seq: r.u64()?,
                bytes: r.u64()?,
                crc: r.u32()?,
                retired_unix: r.u64()?,
            });
        }
        let n = r.len_u64()?;
        for _ in 0..n {
            index.wals.push(ArchivedWal {
                seq: r.u64()?,
                first_lsn: r.u64()?,
                last_lsn: r.u64()?,
                bytes: r.u64()?,
                crc: r.u32()?,
                retired_unix: r.u64()?,
            });
        }
        r.finish()?;
        Ok(index)
    }

    /// Load the index of `dir`'s archive (`dir` is the *table* directory).
    /// A missing index file is an empty archive; a damaged one is a typed
    /// error (retire tolerates it by rebuilding — see the module docs).
    pub fn load(vfs: &VfsHandle, dir: &Path) -> Result<Self, PersistError> {
        let bytes = match vfs.read(&index_path(dir)) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Self::default()),
            Err(e) => return Err(e.into()),
        };
        Ok(Self::decode(&bytes)?)
    }

    /// Persist the index atomically (temp file + rename + checked
    /// directory fsync).
    pub(crate) fn store(&self, vfs: &VfsHandle, dir: &Path) -> Result<(), PersistError> {
        crate::durable::write_atomic(vfs, &index_path(dir), &self.encode())
    }

    /// Total bytes of the indexed files (the retention measure; the index
    /// file itself is not counted).
    pub fn total_bytes(&self) -> u64 {
        self.manifests.iter().map(|m| m.bytes).sum::<u64>()
            + self.segments.iter().map(|s| s.bytes).sum::<u64>()
            + self.wals.iter().map(|w| w.bytes).sum::<u64>()
    }

    /// Number of indexed files.
    pub fn file_count(&self) -> u64 {
        (self.manifests.len() + self.segments.len() + self.wals.len()) as u64
    }

    fn has_segment(&self, seq: u64) -> bool {
        self.segments.iter().any(|s| s.seq == seq)
    }

    fn has_wal(&self, seq: u64) -> bool {
        self.wals.iter().any(|w| w.seq == seq)
    }

    fn normalize(&mut self) {
        self.manifests.sort_by_key(|m| m.generation);
        self.segments.sort_by_key(|s| s.seq);
        self.wals.sort_by_key(|w| w.seq);
    }

    fn publish_gauges(&self) {
        if casper_obs::enabled() {
            OBS_ARCHIVE_BYTES.set(self.total_bytes() as f64);
            OBS_ARCHIVE_FILES.set(self.file_count() as f64);
        }
    }
}

// ---------------------------------------------------------------------
// Backup pins
// ---------------------------------------------------------------------

/// One in-progress backup's claim on the files it is copying.
#[derive(Debug, Clone)]
pub(crate) struct BackupPin {
    pub generation: u64,
    pub segments: BTreeSet<u64>,
    pub min_wal: u64,
}

/// Pins shared between the table, its checkpoint jobs (pruning runs on the
/// checkpointer thread) and outstanding [`BackupJob`]s. A pinned file is
/// neither deleted nor renamed into the archive until the pin drops.
#[derive(Debug, Clone, Default)]
pub(crate) struct SharedPins {
    inner: Arc<Mutex<Vec<(u64, BackupPin)>>>,
    next_id: Arc<Mutex<u64>>,
}

impl SharedPins {
    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<(u64, BackupPin)>> {
        // A panic while holding the lock cannot leave the pin list torn
        // (every op is a push/retain); recover the data instead of
        // propagating the poison into the prune path.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn pin(&self, pin: BackupPin) -> PinGuard {
        let id = {
            let mut next = self.next_id.lock().unwrap_or_else(|e| e.into_inner());
            *next += 1;
            *next
        };
        self.lock().push((id, pin));
        PinGuard {
            pins: self.clone(),
            id,
        }
    }

    pub fn keep_manifest(&self, generation: u64) -> bool {
        self.lock().iter().any(|(_, p)| p.generation == generation)
    }

    pub fn keep_segment(&self, seq: u64) -> bool {
        self.lock().iter().any(|(_, p)| p.segments.contains(&seq))
    }

    pub fn keep_wal(&self, seq: u64) -> bool {
        self.lock().iter().any(|(_, p)| seq >= p.min_wal)
    }
}

/// Releases its pin on drop.
#[derive(Debug)]
pub(crate) struct PinGuard {
    pins: SharedPins,
    id: u64,
}

impl Drop for PinGuard {
    fn drop(&mut self) {
        self.pins.lock().retain(|(id, _)| *id != self.id);
    }
}

// ---------------------------------------------------------------------
// Retire
// ---------------------------------------------------------------------

/// What `run_checkpoint` (and reopen) calls where plain pruning used to
/// be: with archiving off, prune — skipping pinned files; with archiving
/// on, retire stale files into the archive. Best-effort either way: the
/// checkpoint is already committed (`CURRENT` swung), so a retire failure
/// only leaves stale files in place for the next checkpoint to move, and
/// is reported through the obs counter + rate-limited log, never as an
/// error to the committing caller.
pub(crate) fn retire_stale(
    vfs: &VfsHandle,
    dir: &Path,
    manifest: &Manifest,
    cfg: Option<&ArchiveConfig>,
    pins: &SharedPins,
) {
    match cfg {
        None => prune_stale(vfs, dir, manifest, pins),
        Some(cfg) => {
            if let Err(e) = archive_retire(vfs, dir, manifest, cfg, pins) {
                OBS_RETIRE_ERRORS.inc();
                crate::durable::warn_rate_limited(&format!(
                    "archive retire failed (stale files stay for the next checkpoint): {e}"
                ));
            }
        }
    }
}

/// Read `path` and build its archived-WAL entry (LSN range from a scan of
/// the sealed batches).
fn wal_entry(seq: u64, bytes: &[u8], now: u64) -> ArchivedWal {
    let s = scan(bytes);
    let first_lsn = s
        .batches
        .first()
        .map_or(0, |b| b.commit_lsn - b.ops.len() as u64);
    ArchivedWal {
        seq,
        first_lsn,
        last_lsn: s.last_lsn,
        bytes: bytes.len() as u64,
        crc: crc32(bytes),
        retired_unix: now,
    }
}

/// One retire pass: reconcile the index with the archive directory,
/// rename every stale live file in, commit the dirents, apply retention,
/// rewrite the index. Per-file I/O errors skip that file (it stays live
/// and is retried by the next checkpoint's retire); the first such error
/// is returned at the end so the failure is observable.
fn archive_retire(
    vfs: &VfsHandle,
    dir: &Path,
    manifest: &Manifest,
    cfg: &ArchiveConfig,
    pins: &SharedPins,
) -> Result<(), PersistError> {
    let adir = archive_dir(dir);
    fs::create_dir_all(&adir)?;
    // A damaged index must not block retirement: rebuild from the files.
    let mut index = ArchiveIndex::load(vfs, dir).unwrap_or_default();
    reconcile(vfs, dir, &mut index);

    let referenced: BTreeSet<u64> = manifest.referenced_segments().into_iter().collect();
    let now = unix_now();
    let mut stale_manifests: Vec<(u64, PathBuf)> = Vec::new();
    let mut stale_segments: Vec<(u64, PathBuf)> = Vec::new();
    let mut stale_wals: Vec<(u64, PathBuf)> = Vec::new();
    let mut garbage: Vec<PathBuf> = Vec::new();
    let entries = fs::read_dir(dir)?;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            continue; // the archive directory itself
        }
        let name = entry.file_name();
        let name = name.to_string_lossy().into_owned();
        if let Some(g) = numbered_file(&name, "manifest-", ".casper") {
            if g == manifest.generation || pins.keep_manifest(g) {
                continue;
            }
            if g > manifest.generation {
                // A checkpoint that died after its manifest write but
                // before the CURRENT swing: never referenced, not history.
                garbage.push(path);
            } else {
                stale_manifests.push((g, path));
            }
        } else if let Some(s) = numbered_file(&name, "seg-", ".casper") {
            if !referenced.contains(&s) && !pins.keep_segment(s) {
                stale_segments.push((s, path));
            }
        } else if let Some(w) = numbered_file(&name, "wal-", ".log") {
            if w < manifest.generation && !pins.keep_wal(w) {
                stale_wals.push((w, path));
            }
        } else if name.starts_with("snap-") || name.ends_with(".tmp") {
            garbage.push(path);
        }
    }
    stale_manifests.sort_unstable_by_key(|(g, _)| *g);
    stale_segments.sort_unstable_by_key(|(s, _)| *s);
    stale_wals.sort_unstable_by_key(|(w, _)| *w);

    let mut first_err: Option<PersistError> = None;
    let note = |e: PersistError, err_slot: &mut Option<PersistError>| {
        if err_slot.is_none() {
            *err_slot = Some(e);
        }
    };
    let mut retired = 0u64;
    // Manifests first: they decide which superseded segments are history
    // (still referenced by some archived generation) vs garbage.
    for (g, path) in stale_manifests {
        if index.manifests.iter().any(|m| m.generation == g) {
            // Duplicate of an already-archived generation (a crash-restored
            // live copy): the archive copy wins.
            garbage.push(path);
            continue;
        }
        let bytes = match vfs.read(&path) {
            Ok(b) => b,
            Err(e) => {
                note(e.into(), &mut first_err);
                continue;
            }
        };
        let Ok(m) = decode_manifest(&bytes) else {
            // Undecodable: not usable history, treat as prune would.
            garbage.push(path);
            continue;
        };
        if let Err(e) = vfs.rename(&path, &adir.join(manifest_name(g))) {
            note(e.into(), &mut first_err);
            continue;
        }
        retired += 1;
        index.manifests.push(ArchivedManifest {
            generation: g,
            durable_lsn: m.durable_lsn,
            segments: m.referenced_segments(),
            bytes: bytes.len() as u64,
            crc: crc32(&bytes),
            retired_unix: now,
        });
    }
    for (w, path) in stale_wals {
        if index.has_wal(w) {
            garbage.push(path);
            continue;
        }
        let bytes = match vfs.read(&path) {
            Ok(b) => b,
            Err(e) => {
                note(e.into(), &mut first_err);
                continue;
            }
        };
        if let Err(e) = vfs.rename(&path, &adir.join(wal_name(w))) {
            note(e.into(), &mut first_err);
            continue;
        }
        retired += 1;
        index.wals.push(wal_entry(w, &bytes, now));
    }
    // A superseded segment is history iff some archived generation still
    // references it; otherwise it is garbage exactly as under pruning.
    let archive_refs: BTreeSet<u64> = index
        .manifests
        .iter()
        .flat_map(|m| m.segments.iter().copied())
        .collect();
    for (s, path) in stale_segments {
        if index.has_segment(s) {
            garbage.push(path);
            continue;
        }
        if !archive_refs.contains(&s) {
            garbage.push(path);
            continue;
        }
        let bytes = match vfs.read(&path) {
            Ok(b) => b,
            Err(e) => {
                note(e.into(), &mut first_err);
                continue;
            }
        };
        if let Err(e) = vfs.rename(&path, &adir.join(segment_name(s))) {
            note(e.into(), &mut first_err);
            continue;
        }
        retired += 1;
        index.segments.push(ArchivedSegment {
            seq: s,
            bytes: bytes.len() as u64,
            crc: crc32(&bytes),
            retired_unix: now,
        });
    }
    for path in garbage {
        let _ = vfs.remove(&path);
    }
    // Commit the renames (archive side) and the removals + departures
    // (live side) before the index claims any of it.
    vfs.fsync_dir(&adir)?;
    vfs.fsync_dir(dir)?;
    OBS_RETIRED_FILES.add(retired);

    let pruned = apply_retention(vfs, &adir, &mut index, cfg, manifest.durable_lsn, now);
    OBS_RETENTION_PRUNED.add(pruned);
    index.normalize();
    index.store(vfs, dir)?;
    index.publish_gauges();
    match first_err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Bring the index in line with what is actually on disk: drop entries
/// whose file vanished (crash between retention removals and the index
/// write) and absorb archived-but-unindexed files (crash between the
/// retire renames and the index write). Per-file read errors leave the
/// file unindexed for a later pass. This is what makes the index
/// rebuildable — even from nothing.
fn reconcile(vfs: &VfsHandle, dir: &Path, index: &mut ArchiveIndex) {
    let adir = archive_dir(dir);
    index
        .manifests
        .retain(|m| adir.join(manifest_name(m.generation)).exists());
    index
        .segments
        .retain(|s| adir.join(segment_name(s.seq)).exists());
    index.wals.retain(|w| adir.join(wal_name(w.seq)).exists());

    let Ok(entries) = fs::read_dir(&adir) else {
        return;
    };
    let now = unix_now();
    let mut orphan_segments: Vec<(u64, PathBuf)> = Vec::new();
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy().into_owned();
        if name == ARCHIVE_INDEX_NAME {
            continue;
        }
        if name.ends_with(".tmp") {
            let _ = vfs.remove(&path);
            continue;
        }
        if let Some(g) = numbered_file(&name, "manifest-", ".casper") {
            if index.manifests.iter().any(|m| m.generation == g) {
                continue;
            }
            let Ok(bytes) = vfs.read(&path) else { continue };
            match decode_manifest(&bytes) {
                Ok(m) => index.manifests.push(ArchivedManifest {
                    generation: g,
                    durable_lsn: m.durable_lsn,
                    segments: m.referenced_segments(),
                    bytes: bytes.len() as u64,
                    crc: crc32(&bytes),
                    retired_unix: now,
                }),
                // An undecodable archived manifest is not history.
                Err(_) => {
                    let _ = vfs.remove(&path);
                }
            }
        } else if let Some(s) = numbered_file(&name, "seg-", ".casper") {
            if !index.has_segment(s) {
                orphan_segments.push((s, path));
            }
        } else if let Some(w) = numbered_file(&name, "wal-", ".log") {
            if index.has_wal(w) {
                continue;
            }
            let Ok(bytes) = vfs.read(&path) else { continue };
            index.wals.push(wal_entry(w, &bytes, now));
        }
    }
    // Orphan segments are kept iff some (possibly just-reconciled)
    // archived generation references them.
    let refs: BTreeSet<u64> = index
        .manifests
        .iter()
        .flat_map(|m| m.segments.iter().copied())
        .collect();
    for (s, path) in orphan_segments {
        if !refs.contains(&s) {
            let _ = vfs.remove(&path);
            continue;
        }
        let Ok(bytes) = vfs.read(&path) else { continue };
        index.segments.push(ArchivedSegment {
            seq: s,
            bytes: bytes.len() as u64,
            crc: crc32(&bytes),
            retired_unix: now,
        });
    }
}

/// Which files survive if `drop_gens` is dropped: remaining manifests,
/// segments any of them references, WAL links at or above the oldest
/// remaining generation (none remaining → no WAL links either).
fn retained_after(
    index: &ArchiveIndex,
    drop_gens: &BTreeSet<u64>,
) -> (BTreeSet<u64>, BTreeSet<u64>, BTreeSet<u64>) {
    let keep_manifests: BTreeSet<u64> = index
        .manifests
        .iter()
        .map(|m| m.generation)
        .filter(|g| !drop_gens.contains(g))
        .collect();
    let keep_segments: BTreeSet<u64> = index
        .manifests
        .iter()
        .filter(|m| keep_manifests.contains(&m.generation))
        .flat_map(|m| m.segments.iter().copied())
        .collect();
    let keep_wals: BTreeSet<u64> = match keep_manifests.iter().next() {
        Some(&min_gen) => index
            .wals
            .iter()
            .map(|w| w.seq)
            .filter(|&s| s >= min_gen)
            .collect(),
        None => BTreeSet::new(),
    };
    (keep_manifests, keep_segments, keep_wals)
}

fn retained_bytes(index: &ArchiveIndex, drop_gens: &BTreeSet<u64>) -> u64 {
    let (km, ks, kw) = retained_after(index, drop_gens);
    index
        .manifests
        .iter()
        .filter(|m| km.contains(&m.generation))
        .map(|m| m.bytes)
        .sum::<u64>()
        + index
            .segments
            .iter()
            .filter(|s| ks.contains(&s.seq))
            .map(|s| s.bytes)
            .sum::<u64>()
        + index
            .wals
            .iter()
            .filter(|w| kw.contains(&w.seq))
            .map(|w| w.bytes)
            .sum::<u64>()
}

/// Apply the retention policy: pick the generations to drop (age, LSN
/// horizon, then oldest-first until the byte budget holds), remove their
/// files, and shrink the index. An entry leaves the index only once its
/// file is actually gone, so a failed remove is retried next pass.
/// Returns the number of files removed.
fn apply_retention(
    vfs: &VfsHandle,
    adir: &Path,
    index: &mut ArchiveIndex,
    cfg: &ArchiveConfig,
    live_lsn: u64,
    now: u64,
) -> u64 {
    let mut drop_gens: BTreeSet<u64> = BTreeSet::new();
    for m in &index.manifests {
        if cfg.max_age_secs > 0 && now.saturating_sub(m.retired_unix) > cfg.max_age_secs {
            drop_gens.insert(m.generation);
        }
        if cfg.max_lsns > 0 && m.durable_lsn.saturating_add(cfg.max_lsns) < live_lsn {
            drop_gens.insert(m.generation);
        }
    }
    if cfg.max_bytes > 0 {
        let mut gens: Vec<u64> = index.manifests.iter().map(|m| m.generation).collect();
        gens.sort_unstable();
        let mut oldest = gens.into_iter();
        while retained_bytes(index, &drop_gens) > cfg.max_bytes {
            match oldest.find(|g| !drop_gens.contains(g)) {
                Some(g) => {
                    drop_gens.insert(g);
                }
                None => break,
            }
        }
    }
    if drop_gens.is_empty() {
        return 0;
    }
    let (keep_manifests, keep_segments, keep_wals) = retained_after(index, &drop_gens);
    let mut removed = 0u64;
    let mut try_remove = |path: PathBuf| -> bool {
        match vfs.remove(&path) {
            Ok(()) => {
                removed += 1;
                true
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => true,
            Err(_) => false, // keep the entry; retried next pass
        }
    };
    index.manifests.retain(|m| {
        keep_manifests.contains(&m.generation)
            || !try_remove(adir.join(manifest_name(m.generation)))
    });
    index
        .segments
        .retain(|s| keep_segments.contains(&s.seq) || !try_remove(adir.join(segment_name(s.seq))));
    index
        .wals
        .retain(|w| keep_wals.contains(&w.seq) || !try_remove(adir.join(wal_name(w.seq))));
    removed
}

// ---------------------------------------------------------------------
// Restore to LSN
// ---------------------------------------------------------------------

/// A table restored to a historical LSN by [`crate::DurableTable::open_at`].
/// Read-only by construction: it is not wired to a WAL or a checkpoint
/// directory — export what you need, or copy it into a fresh
/// [`crate::DurableTable::create_from_table`] to serve writes from it.
#[derive(Debug)]
pub struct PointInTime {
    /// The restored table, bit-exact at [`PointInTime::restored_lsn`].
    pub table: Table,
    /// Generation of the (archived or live) base manifest used.
    pub generation: u64,
    /// The base manifest's durable LSN (replay started after it).
    pub base_lsn: u64,
    /// Commit LSN of the last batch applied: the largest committed LSN at
    /// or below the requested target (a mid-batch target rounds down to
    /// its batch boundary — group commit means nothing between boundaries
    /// was ever acknowledged).
    pub restored_lsn: u64,
    /// WAL operations replayed on top of the base manifest.
    pub ops_replayed: u64,
}

/// Restore the newest state at or before `lsn`. See
/// [`crate::DurableTable::open_at`] for the full contract.
pub(crate) fn open_at(
    vfs: &VfsHandle,
    dir: &Path,
    lsn: u64,
    opts: DurableOptions,
) -> Result<PointInTime, PersistError> {
    let start = Instant::now();
    let adir = archive_dir(dir);
    // Candidate bases: every decodable manifest, archived or live. The
    // directories — not the index — are the source of truth, so a crash
    // that left an archived manifest unindexed still restores. Newest
    // durable_lsn at or below the target wins; on a tie the *older*
    // generation wins, so a target at a re-layout boundary (the re-layout
    // checkpoint re-bases the same durable LSN under a new layout) comes
    // back under the layout that was live when the LSN committed.
    let mut best: Option<Manifest> = None;
    for d in [dir, adir.as_path()] {
        let Ok(entries) = fs::read_dir(d) else {
            continue;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy().into_owned();
            if numbered_file(&name, "manifest-", ".casper").is_none() {
                continue;
            }
            let Ok(bytes) = vfs.read(&entry.path()) else {
                continue;
            };
            let Ok(m) = decode_manifest(&bytes) else {
                continue;
            };
            if m.durable_lsn > lsn {
                continue;
            }
            let better = best.as_ref().is_none_or(|b| {
                m.durable_lsn > b.durable_lsn
                    || (m.durable_lsn == b.durable_lsn && m.generation < b.generation)
            });
            if better {
                best = Some(m);
            }
        }
    }
    let Some(manifest) = best else {
        return Err(corrupt(format!(
            "no manifest at or before LSN {lsn}: the retention horizon has \
             passed it (or the directory holds no v2 checkpoint)"
        )));
    };
    let dirs = [dir.to_path_buf(), adir.clone()];
    let mut table = restore_table_from(vfs, &dirs, &manifest, !opts.mmap_restore)?;

    // Replay the archived + live WAL chain from the base generation up to
    // the target. Chain links live wherever retire left them.
    let resolve = |seq: u64| -> Option<PathBuf> {
        let live = dir.join(wal_name(seq));
        if live.exists() {
            return Some(live);
        }
        let archived = adir.join(wal_name(seq));
        archived.exists().then_some(archived)
    };
    let mut seq = manifest.generation;
    let mut ops_replayed = 0u64;
    let mut restored_lsn = manifest.durable_lsn;
    while let Some(path) = resolve(seq) {
        let bytes = vfs.read(&path)?;
        let s = scan(&bytes);
        let has_successor = resolve(seq + 1).is_some();
        // Same rule as live recovery: a link with a successor was fully
        // sealed before rotation, so a short scan is damage, not a torn
        // tail — replaying only its prefix would punch a hole in history.
        if has_successor && s.valid_len != bytes.len() {
            return Err(corrupt(format!(
                "WAL chain link {} is damaged: only {} of {} bytes form \
                 sealed batches, yet a successor link exists",
                path.display(),
                s.valid_len,
                bytes.len()
            )));
        }
        let (n, _) = replay_upto(&s, &mut table, manifest.durable_lsn, lsn)?;
        ops_replayed += n;
        if let Some(last) = s
            .batches
            .iter()
            .map(|b| b.commit_lsn)
            .filter(|&l| l <= lsn)
            .max()
        {
            restored_lsn = restored_lsn.max(last);
        }
        if s.last_lsn >= lsn || !has_successor {
            break;
        }
        seq += 1;
    }
    OBS_RESTORES.inc();
    OBS_RESTORE_NS.record(start.elapsed().as_nanos() as u64);
    Ok(PointInTime {
        table,
        generation: manifest.generation,
        base_lsn: manifest.durable_lsn,
        restored_lsn,
        ops_replayed,
    })
}

// ---------------------------------------------------------------------
// Hot backup
// ---------------------------------------------------------------------

/// Outcome of a completed backup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackupReport {
    /// Generation the backup is based on.
    pub generation: u64,
    /// Last committed LSN the backup contains (everything acknowledged
    /// before [`crate::DurableTable::begin_backup`] returned).
    pub backup_lsn: u64,
    /// Files written into the destination (`CURRENT` included).
    pub files: u64,
    /// Total bytes written.
    pub bytes: u64,
    /// Segment files copied.
    pub segments: u64,
    /// WAL links copied.
    pub wal_links: u64,
}

/// A pinned, ready-to-run backup. Created under the foreground's brief
/// fence ([`crate::DurableTable::begin_backup`]); [`BackupJob::run`] does
/// all the copying and may run on any thread — the pin keeps every source
/// file in place (not pruned, not retired) until the job is dropped, while
/// the table keeps serving reads and writes.
#[derive(Debug)]
pub struct BackupJob {
    vfs: VfsHandle,
    src: PathBuf,
    dest: PathBuf,
    generation: u64,
    /// `(seq, byte limit)`: `None` copies the whole (sealed) link; the
    /// last link carries `Some(durable bytes at fence time)` — the live
    /// WAL keeps growing underneath, and everything past the fence was
    /// not acknowledged when the backup began.
    wal_specs: Vec<(u64, Option<u64>)>,
    backup_lsn: u64,
    _pin: PinGuard,
}

fn write_file(vfs: &VfsHandle, path: &Path, bytes: &[u8]) -> Result<(), PersistError> {
    let mut f = vfs.create(path)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    Ok(())
}

impl BackupJob {
    pub(crate) fn new(
        vfs: VfsHandle,
        src: PathBuf,
        dest: PathBuf,
        generation: u64,
        wal_specs: Vec<(u64, Option<u64>)>,
        backup_lsn: u64,
        pin: PinGuard,
    ) -> Self {
        Self {
            vfs,
            src,
            dest,
            generation,
            wal_specs,
            backup_lsn,
            _pin: pin,
        }
    }

    /// Generation the backup will be based on.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Last committed LSN the finished backup will contain.
    pub fn backup_lsn(&self) -> u64 {
        self.backup_lsn
    }

    /// Copy everything, CRC-verifying every byte on the way out (manifest
    /// checksum, every chunk record against its manifest CRC, every WAL
    /// link scanned back to sealed batches). The destination's `CURRENT`
    /// is written last, atomically — until it lands, the destination is
    /// not a table; once it lands, the backup is complete and
    /// self-contained.
    pub fn run(self) -> Result<BackupReport, PersistError> {
        let start = Instant::now();
        fs::create_dir_all(&self.dest)?;
        if crate::durable::current_path(&self.dest).exists() {
            return Err(corrupt(format!(
                "backup destination {} already holds a durable table",
                self.dest.display()
            )));
        }
        let mut files = 0u64;
        let mut bytes_total = 0u64;

        let mbytes = self.vfs.read(&manifest_path(&self.src, self.generation))?;
        let manifest = decode_manifest(&mbytes)?;
        if manifest.generation != self.generation {
            return Err(corrupt(format!(
                "pinned manifest says generation {} but the backup pinned {}",
                manifest.generation, self.generation
            )));
        }
        write_file(
            &self.vfs,
            &self.dest.join(manifest_name(self.generation)),
            &mbytes,
        )?;
        files += 1;
        bytes_total += mbytes.len() as u64;

        // Segments: read whole files, verify the header and every record
        // the manifest points at against the copied bytes (not the source
        // file — a fault between read and write must be caught here).
        let mut per_seg: BTreeMap<u64, Vec<&crate::incremental::ChunkEntry>> = BTreeMap::new();
        for e in &manifest.entries {
            per_seg.entry(e.seg).or_default().push(e);
        }
        let n_segments = per_seg.len() as u64;
        for (seg, entries) in per_seg {
            let sbytes = self.vfs.read(&segment_path(&self.src, seg))?;
            verify_segment_header(&sbytes, seg)?;
            for e in entries {
                let start = usize::try_from(e.offset)
                    .map_err(|_| corrupt("record offset overflows usize"))?;
                let len =
                    usize::try_from(e.len).map_err(|_| corrupt("record length overflows usize"))?;
                let record = sbytes.get(start..start + len).ok_or_else(|| {
                    corrupt(format!(
                        "segment {seg} is {} bytes but a record claims {start}..{}",
                        sbytes.len(),
                        start + len
                    ))
                })?;
                let got = crc32(record);
                if got != e.crc {
                    return Err(corrupt(format!(
                        "segment {seg} record at {start} fails its checksum during \
                         backup (stored {:#010x}, computed {got:#010x})",
                        e.crc
                    )));
                }
            }
            write_file(&self.vfs, &self.dest.join(segment_name(seg)), &sbytes)?;
            files += 1;
            bytes_total += sbytes.len() as u64;
        }

        let wal_links = self.wal_specs.len() as u64;
        for (seq, limit) in &self.wal_specs {
            let wbytes = self.vfs.read(&self.src.join(wal_name(*seq)))?;
            let slice = match limit {
                None => &wbytes[..],
                Some(l) => {
                    let l = usize::try_from(*l).map_err(|_| corrupt("WAL limit overflow"))?;
                    wbytes.get(..l).ok_or_else(|| {
                        corrupt(format!(
                            "live WAL link {seq} shrank below its fenced durable \
                             boundary ({} bytes on disk, fence at {l})",
                            wbytes.len()
                        ))
                    })?
                }
            };
            let s = scan(slice);
            if s.valid_len != slice.len() {
                return Err(corrupt(format!(
                    "WAL link {seq} is torn inside its sealed prefix: only {} of \
                     {} bytes form sealed batches",
                    s.valid_len,
                    slice.len()
                )));
            }
            write_file(&self.vfs, &self.dest.join(wal_name(*seq)), slice)?;
            files += 1;
            bytes_total += slice.len() as u64;
        }

        // Make the data dirents durable, then commit with CURRENT.
        self.vfs.fsync_dir(&self.dest)?;
        crate::durable::write_atomic(
            &self.vfs,
            &crate::durable::current_path(&self.dest),
            format!("{}\n", self.generation).as_bytes(),
        )?;
        files += 1;
        OBS_BACKUPS.inc();
        OBS_BACKUP_BYTES.add(bytes_total);
        OBS_BACKUP_NS.record(start.elapsed().as_nanos() as u64);
        Ok(BackupReport {
            generation: self.generation,
            backup_lsn: self.backup_lsn,
            files,
            bytes: bytes_total,
            segments: n_segments,
            wal_links,
        })
    }
}

// ---------------------------------------------------------------------
// Backup verification
// ---------------------------------------------------------------------

/// Outcome of a successful [`crate::DurableTable::verify_backup`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackupVerifyReport {
    /// Generation the backup is based on.
    pub generation: u64,
    /// The manifest's durable LSN.
    pub durable_lsn: u64,
    /// Last committed LSN across the backup's WAL chain.
    pub last_lsn: u64,
    /// Chunk records CRC-verified.
    pub records: u64,
    /// Segment files verified.
    pub segments: u64,
    /// WAL links verified.
    pub wal_links: u64,
    /// Committed batches across the chain.
    pub batches: u64,
    /// Total bytes read and verified.
    pub bytes: u64,
}

/// Verify a backup (or any self-contained table directory) end to end:
/// `CURRENT` → manifest checksum → every chunk record CRC → every WAL
/// link fully sealed with gapless LSN continuity across links. Read-only;
/// `pause` throttles between records (the scrubber reuses this) and
/// `stop` aborts early with a typed error.
pub(crate) fn verify_backup(
    vfs: &VfsHandle,
    dir: &Path,
    pause: Duration,
    stop: Option<&AtomicBool>,
) -> Result<BackupVerifyReport, PersistError> {
    let stopped = || stop.is_some_and(|s| s.load(Ordering::Relaxed));
    let current_bytes = vfs.read(&crate::durable::current_path(dir))?;
    let current = String::from_utf8_lossy(&current_bytes).into_owned();
    let generation: u64 = current
        .trim()
        .parse()
        .map_err(|_| corrupt(format!("CURRENT holds {current:?}, not a generation")))?;
    let mbytes = vfs.read(&manifest_path(dir, generation))?;
    let manifest = decode_manifest(&mbytes)?;
    if manifest.generation != generation {
        return Err(corrupt(format!(
            "manifest says generation {} but CURRENT says {generation}",
            manifest.generation
        )));
    }
    let mut bytes_total = mbytes.len() as u64;
    let mut records = 0u64;
    let mut seg_bytes: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    for seg in manifest.referenced_segments() {
        let b = vfs.read(&segment_path(dir, seg))?;
        verify_segment_header(&b, seg)?;
        bytes_total += b.len() as u64;
        seg_bytes.insert(seg, b);
    }
    for (chunk, e) in manifest.entries.iter().enumerate() {
        if stopped() {
            return Err(corrupt("backup verification interrupted"));
        }
        let b = seg_bytes
            .get(&e.seg)
            .expect("referenced segments read above");
        let start = usize::try_from(e.offset).map_err(|_| corrupt("record offset overflow"))?;
        let len = usize::try_from(e.len).map_err(|_| corrupt("record length overflow"))?;
        let record = b.get(start..start + len).ok_or_else(|| {
            corrupt(format!(
                "segment {} is {} bytes but chunk {chunk} claims {start}..{}",
                e.seg,
                b.len(),
                start + len
            ))
        })?;
        let got = crc32(record);
        if got != e.crc {
            return Err(corrupt(format!(
                "chunk {chunk} record in segment {} fails its checksum \
                 (stored {:#010x}, computed {got:#010x})",
                e.seg, e.crc
            )));
        }
        records += 1;
        if !pause.is_zero() {
            std::thread::sleep(pause);
        }
    }
    let segments = seg_bytes.len() as u64;
    drop(seg_bytes);

    let mut seq = generation;
    let mut wal_links = 0u64;
    let mut batches = 0u64;
    let mut last_lsn = manifest.durable_lsn;
    let mut expected_first = manifest.durable_lsn + 1;
    loop {
        let path = dir.join(wal_name(seq));
        if !path.exists() {
            break;
        }
        if stopped() {
            return Err(corrupt("backup verification interrupted"));
        }
        let wbytes = vfs.read(&path)?;
        let s = scan(&wbytes);
        if s.valid_len != wbytes.len() {
            return Err(corrupt(format!(
                "backup WAL link {seq} is torn: only {} of {} bytes form \
                 sealed batches",
                s.valid_len,
                wbytes.len()
            )));
        }
        if let Some(first) = s.batches.first() {
            let first_lsn = first.commit_lsn - first.ops.len() as u64;
            if first_lsn != expected_first {
                return Err(corrupt(format!(
                    "backup WAL link {seq} starts at LSN {first_lsn}, expected \
                     {expected_first}: the chain has a gap"
                )));
            }
            expected_first = s.last_lsn + 1;
            last_lsn = s.last_lsn;
        }
        batches += s.batches.len() as u64;
        bytes_total += wbytes.len() as u64;
        wal_links += 1;
        seq += 1;
    }
    if wal_links == 0 {
        return Err(corrupt(format!(
            "backup holds no WAL link for generation {generation}"
        )));
    }
    Ok(BackupVerifyReport {
        generation,
        durable_lsn: manifest.durable_lsn,
        last_lsn,
        records,
        segments,
        wal_links,
        batches,
        bytes: bytes_total,
    })
}

// ---------------------------------------------------------------------
// Archive scrub (called from scrub::scrub_pass)
// ---------------------------------------------------------------------

/// Walk the archive index behind the live chain, whole-file-CRC-verifying
/// every indexed file. Returns `(files checked, findings)`; a missing
/// archive (no index file) checks nothing. Never fails the pass: archive
/// damage is a finding, and a finding must not block live serving.
pub(crate) fn scrub_archive(
    vfs: &VfsHandle,
    dir: &Path,
    pause: Duration,
    stop: Option<&AtomicBool>,
) -> (u64, Vec<String>) {
    let index = match ArchiveIndex::load(vfs, dir) {
        Ok(i) => i,
        Err(e) => {
            return (0, vec![format!("archive index unreadable: {e}")]);
        }
    };
    let adir = archive_dir(dir);
    let mut checked = 0u64;
    let mut findings = Vec::new();
    let mut check = |name: String, want_bytes: u64, want_crc: u32| {
        match vfs.read(&adir.join(&name)) {
            Ok(bytes) => {
                if bytes.len() as u64 != want_bytes {
                    findings.push(format!(
                        "archived {name}: {} bytes on disk, index says {want_bytes}",
                        bytes.len()
                    ));
                } else {
                    let got = crc32(&bytes);
                    if got != want_crc {
                        findings.push(format!(
                            "archived {name} fails its checksum \
                             (index {want_crc:#010x}, computed {got:#010x})"
                        ));
                    }
                }
            }
            Err(e) => findings.push(format!("archived {name} unreadable: {e}")),
        }
        checked += 1;
        if !pause.is_zero() {
            std::thread::sleep(pause);
        }
    };
    for m in &index.manifests {
        if stop.is_some_and(|s| s.load(Ordering::Relaxed)) {
            return (checked, findings);
        }
        check(manifest_name(m.generation), m.bytes, m.crc);
    }
    for s in &index.segments {
        if stop.is_some_and(|st| st.load(Ordering::Relaxed)) {
            return (checked, findings);
        }
        check(segment_name(s.seq), s.bytes, s.crc);
    }
    for w in &index.wals {
        if stop.is_some_and(|s| s.load(Ordering::Relaxed)) {
            return (checked, findings);
        }
        check(wal_name(w.seq), w.bytes, w.crc);
    }
    (checked, findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> ArchiveIndex {
        ArchiveIndex {
            manifests: vec![ArchivedManifest {
                generation: 3,
                durable_lsn: 120,
                segments: vec![2, 3],
                bytes: 512,
                crc: 0xAB12_CD34,
                retired_unix: 1_700_000_000,
            }],
            segments: vec![ArchivedSegment {
                seq: 2,
                bytes: 4096,
                crc: 0x1111_2222,
                retired_unix: 1_700_000_000,
            }],
            wals: vec![ArchivedWal {
                seq: 3,
                first_lsn: 121,
                last_lsn: 200,
                bytes: 8192,
                crc: 0x3333_4444,
                retired_unix: 1_700_000_001,
            }],
        }
    }

    #[test]
    fn index_round_trips() {
        let i = index();
        let bytes = i.encode();
        let d = ArchiveIndex::decode(&bytes).expect("decode");
        assert_eq!(d, i);
        assert_eq!(d.total_bytes(), 512 + 4096 + 8192);
        assert_eq!(d.file_count(), 3);
    }

    #[test]
    fn index_flipped_bit_is_corrupt() {
        let mut bytes = index().encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        assert!(ArchiveIndex::decode(&bytes).is_err());
    }

    #[test]
    fn index_truncation_is_typed() {
        let bytes = index().encode();
        for cut in [0, 3, 11, 15, bytes.len() / 2, bytes.len() - 1] {
            assert!(ArchiveIndex::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn retention_drops_oldest_generation_first() {
        let mut idx = ArchiveIndex {
            manifests: vec![
                ArchivedManifest {
                    generation: 2,
                    durable_lsn: 10,
                    segments: vec![1],
                    bytes: 100,
                    crc: 0,
                    retired_unix: 0,
                },
                ArchivedManifest {
                    generation: 5,
                    durable_lsn: 50,
                    segments: vec![4],
                    bytes: 100,
                    crc: 0,
                    retired_unix: 0,
                },
            ],
            segments: vec![
                ArchivedSegment {
                    seq: 1,
                    bytes: 1000,
                    crc: 0,
                    retired_unix: 0,
                },
                ArchivedSegment {
                    seq: 4,
                    bytes: 1000,
                    crc: 0,
                    retired_unix: 0,
                },
            ],
            wals: vec![
                ArchivedWal {
                    seq: 2,
                    first_lsn: 11,
                    last_lsn: 50,
                    bytes: 10,
                    crc: 0,
                    retired_unix: 0,
                },
                ArchivedWal {
                    seq: 5,
                    first_lsn: 51,
                    last_lsn: 90,
                    bytes: 10,
                    crc: 0,
                    retired_unix: 0,
                },
            ],
        };
        // Dropping generation 2 must also drop segment 1 (only gen 2
        // references it) and WAL link 2 (below the oldest survivor).
        let drop: BTreeSet<u64> = [2].into_iter().collect();
        let (km, ks, kw) = retained_after(&idx, &drop);
        assert!(km.contains(&5) && !km.contains(&2));
        assert!(ks.contains(&4) && !ks.contains(&1));
        assert!(kw.contains(&5) && !kw.contains(&2));
        assert_eq!(retained_bytes(&idx, &drop), 100 + 1000 + 10);
        // And with nothing dropped, everything is retained.
        idx.normalize();
        assert_eq!(retained_bytes(&idx, &BTreeSet::new()), idx.total_bytes());
    }
}
