//! Snapshot format v2: incremental, segment-based checkpoints.
//!
//! v1 (`snapshot.rs`) re-serializes the entire table on every checkpoint.
//! v2 splits the snapshot into two pieces so a checkpoint writes only what
//! changed:
//!
//! * **Segments** (`seg-<seq>.casper`) are append-once files holding one
//!   encoded chunk record per dirty chunk (the same per-store byte layout
//!   as v1, via `snapshot::encode_store`). A segment is written, fsynced
//!   and never touched again; older segments are retained while any live
//!   manifest entry still points into them.
//! * **Manifests** (`manifest-<gen>.casper`) are small CRC-checksummed
//!   files mapping every chunk id to `(segment, offset, len, crc, live)`
//!   plus the table-level metadata (engine config, fences, FM state, WAL
//!   watermark). A checkpoint re-encodes *only dirty chunks* into a new
//!   segment and re-points the clean ones at their existing records.
//!
//! `CURRENT` still swings atomically and still holds a bare generation
//! number; recovery first looks for `manifest-<gen>` and falls back to the
//! v1 `snap-<gen>` — v1 directories stay readable, and their first v2
//! checkpoint upgrades them (all chunks dirty).
//!
//! **Compaction**: once a manifest references more than a configured
//! number of segments, the next checkpoint rewrites every live record into
//! one fresh segment (clean records are *byte-copied*, CRC-verified, never
//! re-encoded) and the chain collapses.
//!
//! **Restore** maps segments ([`crate::mmap::Mmap`]) and hands each chunk
//! to the engine as a [`LazyChunk`]: `DurableTable::open` does metadata
//! work only, and a chunk verifies its record CRC and decodes on the first
//! query that routes to it.

use crate::codec::{ByteReader, ByteWriter};
use crate::crc::crc32;
use crate::mmap::Mmap;
use crate::snapshot::{decode_config, decode_store, encode_config, encode_store};
use crate::vfs::{Vfs, VfsHandle};
use crate::PersistError;
use casper_core::FrequencyModel;
use casper_engine::column::{ChunkSlot, ChunkStore};
use casper_engine::{ChunkedColumn, EngineConfig, Table};
use casper_obs::CounterDef;
use casper_storage::StorageError;
use casper_workload::HapSchema;
use std::collections::BTreeMap;
use std::fs;
use std::io::SeekFrom;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Magic bytes opening every manifest file.
pub const MANIFEST_MAGIC: [u8; 4] = *b"CSPM";
/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: [u8; 4] = *b"CSPS";
/// Manifest format version (the v2 of the snapshot subsystem).
pub const MANIFEST_VERSION: u32 = 2;
/// Byte length of a segment file header (`magic | version | seq`).
pub const SEGMENT_HEADER_LEN: u64 = 16;

/// Record bytes written into fresh segments (headers excluded); retried
/// jobs count every attempt — the counter tracks bytes actually written.
static OBS_SEGMENT_BYTES: CounterDef = CounterDef::new("casper_checkpoint_segment_bytes_total");
/// Subset of segment bytes that were byte-copied from older segments
/// (compaction traffic, as opposed to re-encoded dirty chunks).
static OBS_COMPACTION_BYTES: CounterDef = CounterDef::new("casper_compaction_copy_bytes_total");

fn corrupt(reason: impl Into<String>) -> StorageError {
    StorageError::Corrupt {
        reason: reason.into(),
    }
}

/// Where one chunk's persisted record lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkEntry {
    /// Segment sequence number the record lives in.
    pub seg: u64,
    /// Byte offset of the record inside the segment file.
    pub offset: u64,
    /// Record length in bytes.
    pub len: u64,
    /// CRC32 of the record bytes, verified at first touch (the manifest's
    /// own checksum protects this value, so per-record integrity holds
    /// end-to-end without reading the segment at open).
    pub crc: u32,
    /// Live rows in the chunk (serves `len()` before hydration).
    pub live: u64,
    /// Checkpoint generation that wrote the record (compaction telemetry).
    pub written_gen: u64,
}

/// A decoded manifest: everything `DurableTable::open` needs before any
/// segment byte is read.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// Checkpoint generation this manifest commits.
    pub generation: u64,
    /// Highest WAL LSN folded into the chunk records.
    pub durable_lsn: u64,
    /// Table schema (payload arity).
    pub schema: HapSchema,
    /// Engine configuration of the persisted table.
    pub config: EngineConfig,
    /// Per-chunk routing fences (`None` for `NoOrder`).
    pub fences: Option<Vec<u64>>,
    /// One entry per chunk, in chunk order.
    pub entries: Vec<ChunkEntry>,
    /// Captured per-chunk frequency models.
    pub fms: Vec<FrequencyModel>,
}

impl Manifest {
    /// Distinct segments referenced by the live entries.
    pub fn referenced_segments(&self) -> Vec<u64> {
        let mut segs: Vec<u64> = self.entries.iter().map(|e| e.seg).collect();
        segs.sort_unstable();
        segs.dedup();
        segs
    }
}

// ---------------------------------------------------------------------
// Manifest encode/decode
// ---------------------------------------------------------------------

/// Serialize a manifest (header + CRC-guarded body).
pub fn encode_manifest(m: &Manifest) -> Vec<u8> {
    let mut body = ByteWriter::new();
    body.u64(m.generation);
    body.u64(m.durable_lsn);
    body.u64(m.schema.payload_cols as u64);
    encode_config(&mut body, &m.config);
    match &m.fences {
        Some(f) => {
            body.u8(1);
            body.vec_u64(f);
        }
        None => body.u8(0),
    }
    body.u64(m.entries.len() as u64);
    for e in &m.entries {
        body.u64(e.seg);
        body.u64(e.offset);
        body.u64(e.len);
        body.u32(e.crc);
        body.u64(e.live);
        body.u64(e.written_gen);
    }
    body.u64(m.fms.len() as u64);
    for fm in &m.fms {
        for (_, hist) in fm.histograms() {
            body.vec_f64(hist);
        }
    }
    let body = body.into_bytes();

    let mut out = ByteWriter::new();
    for b in MANIFEST_MAGIC {
        out.u8(b);
    }
    out.u32(MANIFEST_VERSION);
    out.u64(body.len() as u64);
    out.u32(crc32(&body));
    let mut bytes = out.into_bytes();
    bytes.extend_from_slice(&body);
    bytes
}

/// Decode a manifest, verifying magic, version and checksum.
pub fn decode_manifest(bytes: &[u8]) -> Result<Manifest, StorageError> {
    let mut header = ByteReader::new(bytes);
    let magic = [header.u8()?, header.u8()?, header.u8()?, header.u8()?];
    if magic != MANIFEST_MAGIC {
        return Err(corrupt(format!("bad manifest magic {magic:02x?}")));
    }
    let version = header.u32()?;
    if version != MANIFEST_VERSION {
        return Err(corrupt(format!(
            "unsupported manifest version {version} (this build reads {MANIFEST_VERSION})"
        )));
    }
    let body_len = header.len_u64()?;
    let want_crc = header.u32()?;
    if header.remaining() != body_len {
        return Err(corrupt(format!(
            "manifest body length {body_len} but {} bytes follow the header",
            header.remaining()
        )));
    }
    let body = &bytes[bytes.len() - body_len..];
    let got_crc = crc32(body);
    if got_crc != want_crc {
        return Err(corrupt(format!(
            "manifest checksum mismatch: stored {want_crc:#010x}, computed {got_crc:#010x}"
        )));
    }

    let mut r = ByteReader::new(body);
    let generation = r.u64()?;
    let durable_lsn = r.u64()?;
    let payload_cols = r.len_u64()?;
    let config = decode_config(&mut r)?;
    let fences = match r.u8()? {
        0 => None,
        1 => Some(r.vec_u64()?),
        t => return Err(corrupt(format!("bad fence tag {t}"))),
    };
    let n_chunks = r.len_u64()?;
    if n_chunks == 0 {
        return Err(corrupt("manifest holds zero chunks"));
    }
    let mut entries = Vec::with_capacity(n_chunks.min(1 << 20));
    for _ in 0..n_chunks {
        entries.push(ChunkEntry {
            seg: r.u64()?,
            offset: r.u64()?,
            len: r.u64()?,
            crc: r.u32()?,
            live: r.u64()?,
            written_gen: r.u64()?,
        });
    }
    if let Some(f) = &fences {
        if f.len() != entries.len() {
            return Err(corrupt(format!(
                "{} fences for {} chunks",
                f.len(),
                entries.len()
            )));
        }
    }
    let n_fms = r.len_u64()?;
    let mut fms = Vec::with_capacity(n_fms.min(1 << 20));
    for _ in 0..n_fms {
        let hists: [Vec<f64>; 10] = [
            r.vec_f64()?,
            r.vec_f64()?,
            r.vec_f64()?,
            r.vec_f64()?,
            r.vec_f64()?,
            r.vec_f64()?,
            r.vec_f64()?,
            r.vec_f64()?,
            r.vec_f64()?,
            r.vec_f64()?,
        ];
        fms.push(
            FrequencyModel::from_histograms(hists)
                .map_err(|e| corrupt(format!("frequency model: {e}")))?,
        );
    }
    r.finish()?;
    Ok(Manifest {
        generation,
        durable_lsn,
        schema: HapSchema { payload_cols },
        config,
        fences,
        entries,
        fms,
    })
}

// ---------------------------------------------------------------------
// Paths
// ---------------------------------------------------------------------

/// `manifest-<gen>.casper` under `dir`.
pub fn manifest_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("manifest-{generation:06}.casper"))
}

/// `seg-<seq>.casper` under `dir`.
pub fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("seg-{seq:06}.casper"))
}

/// Parse `<stem>-NNNNNN.casper|log` sequence numbers from a file name.
pub(crate) fn numbered_file(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

// ---------------------------------------------------------------------
// The checkpoint job: what the (possibly background) writer executes
// ---------------------------------------------------------------------

/// One chunk record heading into a new segment.
#[derive(Debug)]
pub(crate) enum RecordSource {
    /// Serialize this (hydrated, dirty) chunk. The slot is shared with the
    /// live column via `Arc` — capture is a refcount bump, and the engine
    /// copy-on-writes before its next mutation of the chunk, so the store
    /// serialized here is frozen at capture time.
    Encode(Arc<ChunkSlot>),
    /// Byte-copy an existing record (compaction of a clean chunk — the
    /// bytes are CRC-verified in flight but never decoded).
    Copy(ChunkEntry),
}

/// Everything a checkpoint writes, captured under the foreground's short
/// pause: dirty chunk clones, reused manifest entries, and the table-level
/// metadata. Serialization + fsync happen wherever the job runs (inline or
/// on the checkpointer thread).
#[derive(Debug)]
pub(crate) struct CheckpointJob {
    /// The VFS every byte of the job goes through (cloned from the owning
    /// table so fault schedules reach the background thread too).
    pub vfs: VfsHandle,
    pub dir: PathBuf,
    pub new_gen: u64,
    /// Sequence number of the segment this job may create.
    pub seg_seq: u64,
    pub durable_lsn: u64,
    pub schema: HapSchema,
    pub config: EngineConfig,
    pub fences: Option<Vec<u64>>,
    pub fms: Vec<FrequencyModel>,
    /// `(chunk index, source)` for records landing in the new segment.
    pub fresh: Vec<(usize, RecordSource)>,
    /// `(chunk index, entry)` reused from older segments untouched.
    pub reused: Vec<(usize, ChunkEntry)>,
    /// Total chunk count (`fresh.len() + reused.len()`).
    pub n_chunks: usize,
    /// Archive policy: `Some` retires stale files instead of deleting them.
    pub archive: Option<crate::archive::ArchiveConfig>,
    /// Backup pins shared with the owning table — pinned files survive
    /// both pruning and retiring while a backup copies them.
    pub pins: crate::archive::SharedPins,
}

/// Run a checkpoint job to completion: write the segment (if any records
/// are fresh), write the manifest, swing `CURRENT`, prune stale files.
/// Returns the manifest that is now durable. Crash-safe at every step:
/// until the `CURRENT` rename lands, recovery still sees the previous
/// generation plus the intact WAL chain.
///
/// Retry-safe as a whole: every attempt re-creates (truncates) the segment
/// file with a fresh descriptor and rewrites it end to end, so after a
/// failed fsync no retried sync ever runs against the old descriptor's
/// possibly-dropped dirty pages.
pub(crate) fn run_checkpoint(job: &CheckpointJob) -> Result<Manifest, PersistError> {
    let mut entries: Vec<Option<ChunkEntry>> = vec![None; job.n_chunks];
    for (idx, entry) in &job.reused {
        entries[*idx] = Some(entry.clone());
    }

    if !job.fresh.is_empty() {
        let path = segment_path(&job.dir, job.seg_seq);
        let mut file = job.vfs.create(&path)?;
        let mut header = ByteWriter::new();
        for b in SEGMENT_MAGIC {
            header.u8(b);
        }
        header.u32(MANIFEST_VERSION);
        header.u64(job.seg_seq);
        let header = header.into_bytes();
        debug_assert_eq!(header.len() as u64, SEGMENT_HEADER_LEN);
        file.write_all(&header)?;
        // Records are independent: encode (or byte-copy) and write one at
        // a time, so a full checkpoint never holds a second serialized
        // copy of the whole table in memory on top of the captured
        // clones — peak extra memory is one chunk record. After each
        // record, writeback of the bytes just written is *initiated*
        // (non-blocking, no journal commit): a concurrent group-commit
        // WAL fsync on the foreground would otherwise have to flush the
        // whole accumulated segment inside its own journal transaction,
        // stalling the commit path.
        let mut offset = SEGMENT_HEADER_LEN;
        let mut copied_bytes = 0u64;
        for (idx, source) in &job.fresh {
            let (bytes, live) = match source {
                RecordSource::Encode(slot) => {
                    // A quarantined (scrub-damaged, never hydrated) chunk
                    // must not reach capture; if one does, fail with a
                    // typed error instead of panicking inside the encoder.
                    let Some(store) = slot.store_opt() else {
                        return Err(corrupt(format!(
                            "chunk {idx} reached the checkpoint writer unhydrated \
                             (quarantined or damaged record)"
                        ))
                        .into());
                    };
                    let mut w = ByteWriter::new();
                    encode_store(&mut w, store);
                    (w.into_bytes(), store.len() as u64)
                }
                RecordSource::Copy(entry) => {
                    let bytes = read_record(&job.vfs, &job.dir, entry)?;
                    copied_bytes += bytes.len() as u64;
                    (bytes, entry.live)
                }
            };
            file.write_all(&bytes)?;
            crate::mmap::initiate_writeback(file.std_file(), offset, bytes.len() as u64);
            entries[*idx] = Some(ChunkEntry {
                seg: job.seg_seq,
                offset,
                len: bytes.len() as u64,
                crc: crc32(&bytes),
                live,
                written_gen: job.new_gen,
            });
            offset += bytes.len() as u64;
        }
        file.sync_all()?;
        OBS_SEGMENT_BYTES.add(offset - SEGMENT_HEADER_LEN);
        OBS_COMPACTION_BYTES.add(copied_bytes);
    }

    let entries: Vec<ChunkEntry> = entries
        .into_iter()
        .map(|e| e.expect("every chunk is fresh or reused"))
        .collect();
    let manifest = Manifest {
        generation: job.new_gen,
        durable_lsn: job.durable_lsn,
        schema: job.schema,
        config: job.config,
        fences: job.fences.clone(),
        entries,
        fms: job.fms.clone(),
    };
    crate::durable::write_atomic(
        &job.vfs,
        &manifest_path(&job.dir, job.new_gen),
        &encode_manifest(&manifest),
    )?;
    // The commit point: readers now resolve to the new generation.
    crate::durable::write_atomic(
        &job.vfs,
        &crate::durable::current_path(&job.dir),
        format!("{}\n", job.new_gen).as_bytes(),
    )?;
    crate::archive::retire_stale(
        &job.vfs,
        &job.dir,
        &manifest,
        job.archive.as_ref(),
        &job.pins,
    );
    Ok(manifest)
}

/// Read and CRC-verify one persisted record (compaction byte-copy path and
/// the scrubber's verification pass).
pub(crate) fn read_record(
    vfs: &VfsHandle,
    dir: &Path,
    entry: &ChunkEntry,
) -> Result<Vec<u8>, PersistError> {
    let path = segment_path(dir, entry.seg);
    let mut f = vfs.open_read(&path)?;
    f.seek(SeekFrom::Start(entry.offset))?;
    let mut bytes = vec![0u8; entry.len as usize];
    f.read_exact(&mut bytes)?;
    let got = crc32(&bytes);
    if got != entry.crc {
        return Err(corrupt(format!(
            "segment {} record at {} fails its checksum during compaction \
             (stored {:#010x}, computed {got:#010x})",
            entry.seg, entry.offset, entry.crc
        ))
        .into());
    }
    Ok(bytes)
}

/// Best-effort removal of everything the new manifest no longer needs:
/// older manifests, v1 snapshots, unreferenced segments, WAL files below
/// the new generation, and orphaned temp files. Files pinned by an
/// in-flight backup are skipped. A crash mid-prune only leaves garbage
/// for the next prune: `CURRENT` and its targets were made durable (via
/// checked directory fsyncs in [`crate::durable::write_atomic`]) *before*
/// any removal starts, so no schedule can delete a file the committed
/// generation still needs. The trailing directory fsync bounds how long
/// removed dirents linger, so a crash-reopen does not re-surface files a
/// prior incarnation already pruned.
pub(crate) fn prune_stale(
    vfs: &VfsHandle,
    dir: &Path,
    manifest: &Manifest,
    pins: &crate::archive::SharedPins,
) {
    let referenced = manifest.referenced_segments();
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        if entry.path().is_dir() {
            continue; // the archive directory, if one exists
        }
        let name = entry.file_name();
        let name = name.to_string_lossy().into_owned();
        let stale = if let Some(g) = numbered_file(&name, "manifest-", ".casper") {
            g != manifest.generation && !pins.keep_manifest(g)
        } else if let Some(s) = numbered_file(&name, "seg-", ".casper") {
            !referenced.contains(&s) && !pins.keep_segment(s)
        } else if let Some(w) = numbered_file(&name, "wal-", ".log") {
            w < manifest.generation && !pins.keep_wal(w)
        } else {
            name.starts_with("snap-") || name.ends_with(".tmp")
        };
        if stale {
            let _ = vfs.remove(&entry.path());
        }
    }
    crate::durable::sync_dir(vfs, dir);
}

// ---------------------------------------------------------------------
// Restore
// ---------------------------------------------------------------------

/// Build a table from a manifest: map every referenced segment, verify the
/// segment headers, and hand each chunk to the engine lazily (or decode
/// eagerly when `eager` is set — used by tests and as a paranoia switch).
pub(crate) fn restore_table(
    vfs: &VfsHandle,
    dir: &Path,
    manifest: &Manifest,
    eager: bool,
) -> Result<Table, PersistError> {
    restore_table_from(vfs, &[dir.to_path_buf()], manifest, eager)
}

/// [`restore_table`] over a search path: each referenced segment is taken
/// from the first directory that holds it (point-in-time restores mix live
/// and archived segments — a shared segment may still be live while the
/// base manifest is archived). A segment found nowhere resolves to the
/// primary directory so the mmap produces the usual typed error.
pub(crate) fn restore_table_from(
    vfs: &VfsHandle,
    dirs: &[PathBuf],
    manifest: &Manifest,
    eager: bool,
) -> Result<Table, PersistError> {
    let mut maps: BTreeMap<u64, Arc<Mmap>> = BTreeMap::new();
    for seg in manifest.referenced_segments() {
        let path = dirs
            .iter()
            .map(|d| segment_path(d, seg))
            .find(|p| p.exists())
            .unwrap_or_else(|| segment_path(&dirs[0], seg));
        let map = Arc::new(vfs.mmap(&path)?);
        verify_segment_header(&map, seg)?;
        maps.insert(seg, map);
    }
    let payload_width = manifest.schema.payload_cols;
    let config = manifest.config;
    let mut chunks = Vec::with_capacity(manifest.entries.len());
    for (i, entry) in manifest.entries.iter().enumerate() {
        let map = Arc::clone(maps.get(&entry.seg).expect("segment mapped above"));
        let entry = entry.clone();
        let loader = move || decode_record(&map, &entry, &config, payload_width);
        if eager {
            chunks.push(ChunkSlot::new(loader()?));
        } else {
            let live = usize::try_from(manifest.entries[i].live)
                .map_err(|_| corrupt("live count overflows usize"))?;
            chunks.push(ChunkSlot::new_lazy(live, Box::new(loader)));
        }
    }
    let column = ChunkedColumn::from_restored(
        chunks,
        manifest.fences.clone(),
        manifest.config,
        payload_width,
    );
    Ok(Table::from_restored(manifest.schema, column))
}

/// Build a lazy loader re-pointing an **evicted** chunk at its persisted
/// record: the segment is mapped on first touch (not held open — an
/// evicted chunk should cost nothing until someone reads it), its header
/// and the record CRC are verified, and the store decodes through the
/// shared decoder — the same integrity path restore-time laziness uses,
/// so rehydration is bit-exact by construction.
pub(crate) fn record_loader(
    vfs: VfsHandle,
    dir: PathBuf,
    entry: ChunkEntry,
    config: EngineConfig,
    payload_width: usize,
) -> casper_engine::column::ChunkLoader {
    Box::new(move || {
        let path = segment_path(&dir, entry.seg);
        let map = vfs.mmap(&path).map_err(|e| {
            corrupt(format!(
                "evicted chunk cannot re-map segment {}: {e}",
                entry.seg
            ))
        })?;
        verify_segment_header(&map, entry.seg)?;
        decode_record(&map, &entry, &config, payload_width)
    })
}

/// Check a segment's header (magic, version, recorded sequence).
pub(crate) fn verify_segment_header(bytes: &[u8], seq: u64) -> Result<(), StorageError> {
    let mut r = ByteReader::new(bytes);
    let magic = [r.u8()?, r.u8()?, r.u8()?, r.u8()?];
    if magic != SEGMENT_MAGIC {
        return Err(corrupt(format!("segment {seq}: bad magic {magic:02x?}")));
    }
    let version = r.u32()?;
    if version != MANIFEST_VERSION {
        return Err(corrupt(format!("segment {seq}: bad version {version}")));
    }
    let recorded = r.u64()?;
    if recorded != seq {
        return Err(corrupt(format!(
            "segment file {seq} says it is segment {recorded}"
        )));
    }
    Ok(())
}

/// Decode one chunk record out of its mapped segment: bounds check, CRC
/// verification at first touch, then the shared store decoder.
fn decode_record(
    map: &Mmap,
    entry: &ChunkEntry,
    config: &EngineConfig,
    payload_width: usize,
) -> Result<ChunkStore, StorageError> {
    let start = usize::try_from(entry.offset).map_err(|_| corrupt("record offset overflow"))?;
    let len = usize::try_from(entry.len).map_err(|_| corrupt("record length overflow"))?;
    let bytes = map.get(start..start + len).ok_or_else(|| {
        corrupt(format!(
            "segment {} is {} bytes but a record claims {start}..{}",
            entry.seg,
            map.len(),
            start + len
        ))
    })?;
    let got = crc32(bytes);
    if got != entry.crc {
        return Err(corrupt(format!(
            "chunk record in segment {} fails its checksum \
             (stored {:#010x}, computed {got:#010x})",
            entry.seg, entry.crc
        )));
    }
    let mut r = ByteReader::new(bytes);
    let store = decode_store(&mut r, config, payload_width)?;
    r.finish()?;
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest() -> Manifest {
        Manifest {
            generation: 7,
            durable_lsn: 123,
            schema: HapSchema { payload_cols: 3 },
            config: EngineConfig::small(casper_engine::LayoutMode::Casper),
            fences: Some(vec![10, 20]),
            entries: vec![
                ChunkEntry {
                    seg: 2,
                    offset: 16,
                    len: 100,
                    crc: 0xDEAD_BEEF,
                    live: 64,
                    written_gen: 3,
                },
                ChunkEntry {
                    seg: 5,
                    offset: 16,
                    len: 80,
                    crc: 0x1234_5678,
                    live: 32,
                    written_gen: 7,
                },
            ],
            fms: Vec::new(),
        }
    }

    #[test]
    fn manifest_round_trips() {
        let m = manifest();
        let bytes = encode_manifest(&m);
        let d = decode_manifest(&bytes).expect("decode");
        assert_eq!(d.generation, 7);
        assert_eq!(d.durable_lsn, 123);
        assert_eq!(d.entries, m.entries);
        assert_eq!(d.fences, m.fences);
        assert_eq!(d.referenced_segments(), vec![2, 5]);
    }

    #[test]
    fn manifest_flipped_bit_is_corrupt() {
        let mut bytes = encode_manifest(&manifest());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x04;
        assert!(matches!(
            decode_manifest(&bytes),
            Err(StorageError::Corrupt { .. })
        ));
    }

    #[test]
    fn manifest_truncation_is_typed() {
        let bytes = encode_manifest(&manifest());
        for cut in [0, 3, 11, 15, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                matches!(
                    decode_manifest(&bytes[..cut]),
                    Err(StorageError::Corrupt { .. })
                ),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn numbered_file_parses() {
        assert_eq!(
            numbered_file("seg-000012.casper", "seg-", ".casper"),
            Some(12)
        );
        assert_eq!(numbered_file("wal-000003.log", "wal-", ".log"), Some(3));
        assert_eq!(numbered_file("seg-xx.casper", "seg-", ".casper"), None);
        assert_eq!(numbered_file("CURRENT", "seg-", ".casper"), None);
    }
}
