//! # casper-persist
//!
//! Durable storage for the Casper column-layout engine: everything the
//! optimizer worked out — workload-optimal partitioning, per-partition
//! compression modes, ghost-slot placement, frequency-model state — is
//! expensive to recompute, so this crate makes it survive restarts instead
//! (§6.4 positions Casper as a storage engine "easily integrated into
//! existing systems"; such systems treat their physical design as durable
//! state).
//!
//! The pieces:
//!
//! * [`incremental`] — snapshot format **v2**: append-once *segments* of
//!   per-chunk records plus small CRC-checksummed *manifests* mapping
//!   chunk id → (segment, offset, len, crc). Checkpoints re-serialize
//!   **only the chunks dirtied since the last one** (the engine's
//!   per-chunk version counters enumerate them) and compact the segment
//!   chain periodically; restore maps segments ([`mmap`]) and hydrates
//!   chunks lazily, checksum-verified at first touch.
//! * [`snapshot`] — the original v1 whole-table format, still readable
//!   (a v1 directory upgrades on its first v2 checkpoint). Restore
//!   performs **zero layout solves and zero codec re-encodes** on either
//!   path (asserted via the solver/codec telemetry counters).
//! * [`wal`] — an append-only redo log of Q4/Q5/Q6 writes with group-commit
//!   batching, per-record CRC32, and torn-tail truncation on replay.
//! * [`checkpointer`] — the background checkpoint thread: the foreground
//!   seals + rotates the WAL and clones dirty chunk state; serialization
//!   and fsyncs run off the commit path.
//! * [`archive`] — point-in-time recovery: with archiving enabled,
//!   checkpoint pruning *retires* superseded manifests, segments, and WAL
//!   links into an LSN-indexed `archive/` instead of deleting them, so
//!   [`DurableTable::open_at`] can restore any archived LSN bit-exact
//!   (zero solves, zero re-encodes). Also home of the online hot-backup
//!   path ([`DurableTable::begin_backup`]) and backup verification.
//! * [`durable`] — [`DurableTable`], the engine wrapper tying it together:
//!   WAL staging on every write, watermark-triggered background
//!   checkpoints, synchronous checkpoints after every optimizer re-layout,
//!   mmap restore.
//!
//! Formats are hand-rolled in-repo (CRC32 and mmap included) following the
//! workspace's offline `crates/shims/` discipline; the byte layouts are
//! documented in `docs/persist-format.md`.

pub mod archive;
pub mod checkpointer;
pub mod codec;
pub mod crc;
pub mod durable;
pub mod fault;
pub mod incremental;
pub mod mmap;
pub mod scrub;
pub mod snapshot;
pub mod vfs;
pub mod wal;

pub use archive::{
    ArchiveConfig, ArchiveIndex, ArchivedManifest, ArchivedSegment, ArchivedWal, BackupJob,
    BackupReport, BackupVerifyReport, PointInTime,
};
pub use durable::{CheckpointFailure, CheckpointStats, DurableOptions, DurableStats, DurableTable};
pub use fault::{FaultCounters, FaultErr, FaultRule, FaultVfs, VfsOp};
pub use incremental::{decode_manifest, encode_manifest, ChunkEntry, Manifest};
pub use mmap::Mmap;
pub use scrub::{ScrubFinding, ScrubReport, ScrubStats};
pub use snapshot::{decode_snapshot, encode_snapshot, RestoredSnapshot};
pub use vfs::{RealVfs, Vfs, VfsFile, VfsHandle};
pub use wal::{Wal, WalBatch, WalOp, WalScan};

use casper_engine::{QueryError, TxnError};
use casper_storage::StorageError;
use std::fmt;

/// Errors surfaced by the persistence layer.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure (open, write, fsync, rename…).
    Io(std::io::Error),
    /// Corrupt or inconsistent persisted state, or a storage-layer failure
    /// while replaying.
    Storage(StorageError),
    /// A transaction failed validation during a durable commit.
    Txn(TxnError),
    /// A resource-governance outcome from governed execution: deadline
    /// expiry, cancellation, load shedding, or an isolated query panic.
    /// Strictly separated from [`PersistError::Storage`] so callers can
    /// retry/abandon without treating the table as damaged.
    Query(QueryError),
    /// The table is in degraded read-only mode: persistent durability
    /// failure (a poisoned WAL whose recovery checkpoint also failed, or
    /// too many consecutive checkpoint failures) means new writes cannot
    /// be made durable. Reads keep serving from memory; writes are
    /// rejected with this error until [`durable::DurableTable::reactivate`]
    /// proves the storage healthy again.
    Degraded {
        /// Why the table degraded (the original failure chain).
        reason: String,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Storage(e) => write!(f, "{e}"),
            PersistError::Txn(e) => write!(f, "{e}"),
            PersistError::Query(e) => write!(f, "{e}"),
            PersistError::Degraded { reason } => write!(
                f,
                "durable table is degraded (read-only): {reason}; \
                 fix the storage and call reactivate()"
            ),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Storage(e) => Some(e),
            PersistError::Txn(e) => Some(e),
            PersistError::Query(e) => Some(e),
            PersistError::Degraded { .. } => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<StorageError> for PersistError {
    fn from(e: StorageError) -> Self {
        PersistError::Storage(e)
    }
}

impl From<TxnError> for PersistError {
    fn from(e: TxnError) -> Self {
        PersistError::Txn(e)
    }
}

impl From<QueryError> for PersistError {
    fn from(e: QueryError) -> Self {
        match e {
            // A storage fault inside a governed query is still a storage
            // fault — callers match on `PersistError::Storage` for those
            // regardless of which execution path surfaced them.
            QueryError::Storage(inner) => PersistError::Storage(inner),
            other => PersistError::Query(other),
        }
    }
}
