//! Background scrubber: proactive, throttled verification of at-rest
//! checkpoint data.
//!
//! Checksums in this crate are otherwise verified *reactively* — a chunk
//! record's CRC at first hydration, a manifest's CRC at open. Latent disk
//! corruption in a cold record would therefore only surface at the worst
//! possible moment (restore after a crash, or the first query that routes
//! to the chunk). The scrubber walks the current manifest's records on a
//! schedule, re-reads every record's bytes and verifies them against the
//! manifest CRCs, so bit rot is found while the in-memory copy still
//! exists and can rewrite the damaged record (see
//! `DurableTable::absorb_scrub_findings` — a damaged-but-hydrated chunk is
//! simply marked dirty, and the next checkpoint heals it).
//!
//! A pass is read-only and throttled (an optional pause between records)
//! so it never competes with the commit path for I/O bandwidth.

use crate::incremental::{manifest_path, read_record, ChunkEntry, Manifest};
use crate::vfs::{Vfs, VfsHandle};
use crate::PersistError;
use casper_obs::CounterDef;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

// Scrub progress counters. They live in `scrub_pass` itself so both the
// background thread and manual `DurableTable::scrub_now` calls feed them.
static OBS_SCRUB_PASSES: CounterDef = CounterDef::new("casper_scrub_passes_total");
static OBS_SCRUB_RECORDS: CounterDef = CounterDef::new("casper_scrub_records_checked_total");
static OBS_SCRUB_CORRUPT: CounterDef = CounterDef::new("casper_scrub_corrupt_records_total");
static OBS_SCRUB_FAILED: CounterDef = CounterDef::new("casper_scrub_failed_passes_total");
static OBS_SCRUB_ARCHIVE_FILES: CounterDef =
    CounterDef::new("casper_scrub_archive_files_checked_total");
static OBS_SCRUB_ARCHIVE_CORRUPT: CounterDef =
    CounterDef::new("casper_scrub_archive_corrupt_total");
static OBS_SCRUB_BACKUPS_OK: CounterDef =
    CounterDef::new("casper_scrub_backup_verifications_total{result=\"ok\"}");
static OBS_SCRUB_BACKUPS_ERR: CounterDef =
    CounterDef::new("casper_scrub_backup_verifications_total{result=\"err\"}");

/// Record one backup verification outcome on the registry — shared by
/// the background scrubber and the synchronous `scrub_now` path.
pub(crate) fn note_backup_verification(ok: bool) {
    if ok {
        OBS_SCRUB_BACKUPS_OK.inc();
    } else {
        OBS_SCRUB_BACKUPS_ERR.inc();
    }
}

/// One damaged record discovered by a scrub pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrubFinding {
    /// Manifest generation the damaged record belongs to.
    pub generation: u64,
    /// Chunk index whose record is damaged.
    pub chunk: usize,
    /// Segment the record lives in.
    pub segment: u64,
    /// Byte offset of the record inside the segment.
    pub offset: u64,
    /// What failed (checksum mismatch, read error…).
    pub reason: String,
}

/// Outcome of one complete scrub pass.
#[derive(Debug, Clone, Default)]
pub struct ScrubReport {
    /// Manifest generation that was scrubbed (0 when the directory held
    /// no v2 manifest — nothing to scrub).
    pub generation: u64,
    /// Records whose bytes were read and CRC-verified.
    pub records_checked: u64,
    /// Damaged records, in chunk order.
    pub findings: Vec<ScrubFinding>,
    /// Archived files re-verified against the archive index (whole-file
    /// length + CRC). Zero when archiving is off or nothing is retired.
    pub archive_files_checked: u64,
    /// Archived files that failed verification, rendered. Archive damage
    /// is reported, never escalated: it does not block live serving.
    pub archive_findings: Vec<String>,
}

/// Cumulative scrubber counters, surfaced through `DurableTable::stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubStats {
    /// Completed passes.
    pub passes: u64,
    /// Records verified across all passes.
    pub records_checked: u64,
    /// Damaged records found across all passes (pre-dedup).
    pub corrupt_records: u64,
    /// Passes that aborted on an I/O error before completing.
    pub failed_passes: u64,
    /// Archived files re-verified against the archive index.
    pub archive_files_checked: u64,
    /// Archived files that failed verification (pre-dedup).
    pub archive_corrupt_files: u64,
    /// Watched backup directories verified end to end.
    pub backups_checked: u64,
    /// Watched backup verifications that failed.
    pub backup_failures: u64,
}

/// Verify one record's bytes against its manifest entry.
fn check_entry(
    vfs: &VfsHandle,
    dir: &Path,
    generation: u64,
    chunk: usize,
    entry: &ChunkEntry,
) -> Option<ScrubFinding> {
    match read_record(vfs, dir, entry) {
        Ok(_) => None,
        Err(e) => Some(ScrubFinding {
            generation,
            chunk,
            segment: entry.seg,
            offset: entry.offset,
            reason: e.to_string(),
        }),
    }
}

/// Run one synchronous scrub pass over `dir`'s current manifest.
///
/// Reads `CURRENT`, decodes `manifest-<gen>`, then re-reads and
/// CRC-verifies every chunk record, sleeping `pause_per_record` between
/// records (the throttle) and stopping early when `stop` flips. A v1
/// directory (no v2 manifest) yields an empty report — v1 snapshots are
/// whole-file CRC-checked at open and upgrade to v2 on their first
/// checkpoint. Damaged records are *reported*, never touched: healing is
/// the owner's job, where the in-memory table still has the data.
pub fn scrub_pass(
    vfs: &VfsHandle,
    dir: &Path,
    pause_per_record: Duration,
    stop: Option<&AtomicBool>,
) -> Result<ScrubReport, PersistError> {
    let current_bytes = vfs.read(&crate::durable::current_path(dir))?;
    let current = String::from_utf8_lossy(&current_bytes);
    let generation: u64 = current.trim().parse().map_err(|_| {
        PersistError::Storage(casper_storage::StorageError::Corrupt {
            reason: format!(
                "CURRENT holds {:?}, not a generation number",
                current.trim()
            ),
        })
    })?;
    let manifest_bytes = match vfs.read(&manifest_path(dir, generation)) {
        Ok(b) => b,
        // v1 directory: generation points at a snap- file, nothing to scrub.
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(ScrubReport::default()),
        Err(e) => return Err(e.into()),
    };
    let manifest: Manifest = crate::incremental::decode_manifest(&manifest_bytes)?;
    let mut report = ScrubReport {
        generation,
        ..Default::default()
    };
    for (chunk, entry) in manifest.entries.iter().enumerate() {
        if stop.is_some_and(|s| s.load(Ordering::Relaxed)) {
            break;
        }
        if let Some(finding) = check_entry(vfs, dir, generation, chunk, entry) {
            report.findings.push(finding);
        }
        report.records_checked += 1;
        if !pause_per_record.is_zero() {
            std::thread::sleep(pause_per_record);
        }
    }
    // Walk the archive index behind the live chain at the same throttle.
    // Archive damage never fails the pass: history rot is a finding (and
    // a counter), not an obstacle to serving the live table.
    let (archive_checked, archive_findings) =
        crate::archive::scrub_archive(vfs, dir, pause_per_record, stop);
    report.archive_files_checked = archive_checked;
    report.archive_findings = archive_findings;
    OBS_SCRUB_PASSES.inc();
    OBS_SCRUB_RECORDS.add(report.records_checked);
    OBS_SCRUB_CORRUPT.add(report.findings.len() as u64);
    OBS_SCRUB_ARCHIVE_FILES.add(report.archive_files_checked);
    OBS_SCRUB_ARCHIVE_CORRUPT.add(report.archive_findings.len() as u64);
    Ok(report)
}

/// Findings cap: dedup keeps one finding per (generation, chunk), and the
/// retained list never grows past this (damage beyond it still counts in
/// the stats).
const MAX_RETAINED_FINDINGS: usize = 64;

/// State shared between the scrubber thread and the owning table.
#[derive(Debug, Default)]
pub(crate) struct ScrubShared {
    stats: Mutex<ScrubStats>,
    findings: Mutex<Vec<ScrubFinding>>,
}

impl ScrubShared {
    // Lock recovery: the guarded data is a plain stats struct / findings
    // vec that no panic can leave torn, so a poisoned mutex (a panicking
    // scrubber thread) must not cascade panics into the owning table.
    pub fn stats(&self) -> ScrubStats {
        *self.stats.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Drain the findings accumulated since the last call (deduped by
    /// (generation, chunk), capped).
    pub fn take_findings(&self) -> Vec<ScrubFinding> {
        std::mem::take(&mut *self.findings.lock().unwrap_or_else(|e| e.into_inner()))
    }

    fn absorb(&self, report: &ScrubReport) {
        {
            let mut stats = self.stats.lock().unwrap_or_else(|e| e.into_inner());
            stats.passes += 1;
            stats.records_checked += report.records_checked;
            stats.corrupt_records += report.findings.len() as u64;
            stats.archive_files_checked += report.archive_files_checked;
            stats.archive_corrupt_files += report.archive_findings.len() as u64;
        }
        if report.findings.is_empty() {
            return;
        }
        let mut findings = self.findings.lock().unwrap_or_else(|e| e.into_inner());
        for f in &report.findings {
            if findings.len() >= MAX_RETAINED_FINDINGS {
                break;
            }
            if !findings
                .iter()
                .any(|g| g.generation == f.generation && g.chunk == f.chunk)
            {
                findings.push(f.clone());
            }
        }
    }

    fn note_backup(&self, ok: bool) {
        note_backup_verification(ok);
        let mut stats = self.stats.lock().unwrap_or_else(|e| e.into_inner());
        stats.backups_checked += 1;
        if !ok {
            stats.backup_failures += 1;
        }
    }

    fn note_failed_pass(&self) {
        OBS_SCRUB_FAILED.inc();
        self.stats
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .failed_passes += 1;
    }
}

/// The background scrubber thread: runs a pass every `interval`, absorbing
/// results into the shared state the owning table polls.
#[derive(Debug)]
pub(crate) struct Scrubber {
    pub shared: Arc<ScrubShared>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Scrubber {
    /// Spawn the thread. Fails (typed) if the OS refuses the thread.
    /// `watched` holds backup directories (shared with the owning table's
    /// `watch_backup`) that each pass re-verifies end to end after the
    /// live walk, at the same throttle.
    pub fn spawn(
        vfs: VfsHandle,
        dir: PathBuf,
        interval: Duration,
        pause_per_record: Duration,
        watched: Arc<Mutex<Vec<PathBuf>>>,
    ) -> Result<Self, PersistError> {
        let shared = Arc::new(ScrubShared::default());
        let stop = Arc::new(AtomicBool::new(false));
        let thread_shared = Arc::clone(&shared);
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("casper-scrubber".into())
            .spawn(move || loop {
                // Sleep in short slices so drop doesn't stall on a long
                // interval.
                let mut slept = Duration::ZERO;
                while slept < interval {
                    if thread_stop.load(Ordering::Relaxed) {
                        return;
                    }
                    let slice = Duration::from_millis(10).min(interval - slept);
                    std::thread::sleep(slice);
                    slept += slice;
                }
                if thread_stop.load(Ordering::Relaxed) {
                    return;
                }
                match scrub_pass(&vfs, &dir, pause_per_record, Some(&thread_stop)) {
                    Ok(report) => thread_shared.absorb(&report),
                    // A pass racing a checkpoint can lose files mid-walk;
                    // the next pass sees a consistent view. Count it, move
                    // on.
                    Err(_) => thread_shared.note_failed_pass(),
                }
                // Re-verify watched backups at the pass cadence. Failures
                // are counted and logged — a backup rotting on a shelf
                // must be discovered before the day it is needed, but it
                // must never block (or degrade) live serving.
                let dirs: Vec<PathBuf> = watched.lock().unwrap_or_else(|e| e.into_inner()).clone();
                for backup in dirs {
                    if thread_stop.load(Ordering::Relaxed) {
                        return;
                    }
                    match crate::archive::verify_backup(
                        &vfs,
                        &backup,
                        pause_per_record,
                        Some(&thread_stop),
                    ) {
                        Ok(_) => thread_shared.note_backup(true),
                        Err(e) => {
                            thread_shared.note_backup(false);
                            crate::durable::warn_rate_limited(&format!(
                                "watched backup {} failed verification: {e}",
                                backup.display()
                            ));
                        }
                    }
                }
            })?;
        Ok(Self {
            shared,
            stop,
            handle: Some(handle),
        })
    }
}

impl Drop for Scrubber {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}
