//! Read-only memory mapping for snapshot segments, with no external crate.
//!
//! The workspace is offline, so instead of `memmap2` this module declares
//! the two libc symbols it needs (`mmap`/`munmap` — std already links
//! libc on unix) and wraps them in a safe, immutable, `Deref<[u8]>` view.
//! On non-unix targets (or 32-bit unix, where `off_t` width is uncertain)
//! it degrades to reading the file into an owned buffer — the durability
//! semantics are identical, only the zero-copy property is lost.
//!
//! # Safety contract
//!
//! A mapping stays valid only while the underlying file keeps its length.
//! Snapshot segments satisfy this by construction: a segment is written
//! once, fsynced, and never modified afterwards — checkpoints append *new*
//! segments and pruning only ever unlinks whole files (an unlinked file
//! stays readable through an existing mapping on unix).

use std::fs::File;
use std::io;
use std::ops::Deref;

#[cfg(all(unix, target_pointer_width = "64"))]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

#[cfg(target_os = "linux")]
mod writeback_sys {
    use std::os::raw::{c_int, c_uint};

    pub const SYNC_FILE_RANGE_WRITE: c_uint = 2;

    extern "C" {
        pub fn sync_file_range(fd: c_int, offset: i64, nbytes: i64, flags: c_uint) -> c_int;
    }
}

/// Ask the kernel to *start* writing back `len` bytes of `file` at
/// `offset`, without blocking and — crucially — without a journal commit.
/// Best-effort, Linux-only (`sync_file_range(SYNC_FILE_RANGE_WRITE)`);
/// a no-op elsewhere.
///
/// Large sequential writers (the checkpoint segment writer) call this
/// periodically so dirty pages drain as they are produced: on
/// `data=ordered` filesystems, a later journal commit — including one
/// forced by a *concurrent* WAL fsync on the commit path — otherwise has
/// to flush the entire accumulated segment in one burst, stalling every
/// commit in flight (the same discipline as RocksDB's `bytes_per_sync`).
pub fn initiate_writeback(file: &std::fs::File, offset: u64, len: u64) {
    #[cfg(target_os = "linux")]
    {
        use std::os::unix::io::AsRawFd;
        // SAFETY: valid fd; sync_file_range has no memory-safety
        // obligations; errors (e.g. unsupported fs) are ignorable.
        unsafe {
            writeback_sys::sync_file_range(
                file.as_raw_fd(),
                offset as i64,
                len as i64,
                writeback_sys::SYNC_FILE_RANGE_WRITE,
            );
        }
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = (file, offset, len);
    }
}

/// An immutable byte view of a whole file: memory-mapped where possible,
/// heap-copied otherwise.
#[derive(Debug)]
pub struct Mmap {
    inner: Inner,
}

#[derive(Debug)]
enum Inner {
    #[cfg(all(unix, target_pointer_width = "64"))]
    Mapped {
        ptr: *const u8,
        len: usize,
    },
    Owned(Vec<u8>),
}

// SAFETY: the mapping is PROT_READ/MAP_PRIVATE and never mutated; sharing
// a raw pointer to immutable memory across threads is sound.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Wrap an owned buffer in the `Mmap` interface. Used by the
    /// fault-injecting VFS, whose `simulate_crash` rewrites files in
    /// place — a live real mapping of such a file would alias the
    /// rewrite, so under fault injection every "mapping" is a copy.
    pub fn from_owned(bytes: Vec<u8>) -> Self {
        Self {
            inner: Inner::Owned(bytes),
        }
    }

    /// Map `file` read-only (or fall back to reading it into memory).
    pub fn map(file: &File) -> io::Result<Self> {
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file exceeds usize"))?;
        #[cfg(all(unix, target_pointer_width = "64"))]
        {
            use std::os::unix::io::AsRawFd;
            if len == 0 {
                return Ok(Self {
                    inner: Inner::Owned(Vec::new()),
                });
            }
            // SAFETY: fd is a valid open file descriptor, length matches
            // the file's current size, and the mapping is read-only.
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr == sys::MAP_FAILED {
                return Err(io::Error::last_os_error());
            }
            Ok(Self {
                inner: Inner::Mapped {
                    ptr: ptr as *const u8,
                    len,
                },
            })
        }
        #[cfg(not(all(unix, target_pointer_width = "64")))]
        {
            use std::io::{Read, Seek, SeekFrom};
            let mut buf = Vec::with_capacity(len);
            let mut f = file.try_clone()?;
            // The clone shares the original handle's cursor; the view must
            // cover the whole file regardless of what the caller read.
            f.seek(SeekFrom::Start(0))?;
            f.read_to_end(&mut buf)?;
            Ok(Self {
                inner: Inner::Owned(buf),
            })
        }
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match &self.inner {
            #[cfg(all(unix, target_pointer_width = "64"))]
            // SAFETY: ptr/len came from a successful mmap that lives until
            // Drop, and segment files are never truncated or rewritten.
            Inner::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Inner::Owned(v) => v,
        }
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(all(unix, target_pointer_width = "64"))]
        if let Inner::Mapped { ptr, len } = self.inner {
            // SAFETY: exactly the region returned by mmap, unmapped once.
            unsafe {
                sys::munmap(ptr as *mut _, len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn maps_file_contents_byte_exact() {
        let dir = std::env::temp_dir().join("casper_mmap_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("probe.bin");
        let payload: Vec<u8> = (0..10_000u32).flat_map(|i| i.to_le_bytes()).collect();
        {
            let mut f = std::fs::File::create(&path).unwrap();
            f.write_all(&payload).unwrap();
        }
        let f = std::fs::File::open(&path).unwrap();
        let map = Mmap::map(&f).unwrap();
        assert_eq!(&*map, &payload[..]);
        // Unlinking must not invalidate the live mapping (unix semantics;
        // the owned fallback trivially satisfies this).
        std::fs::remove_file(&path).unwrap();
        assert_eq!(map[0..4], payload[0..4]);
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let dir = std::env::temp_dir().join("casper_mmap_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.bin");
        std::fs::File::create(&path).unwrap();
        let f = std::fs::File::open(&path).unwrap();
        let map = Mmap::map(&f).unwrap();
        assert!(map.is_empty());
    }
}
