//! End-to-end durability: save → reopen restores the optimized layout
//! bit-exactly, with zero layout solves and zero codec re-encodes on the
//! recovery path (counter-instrumented), and WAL replay after a simulated
//! crash yields query results identical to an uncrashed oracle.

use casper_engine::column::ChunkStore;
use casper_engine::optimize::OptimizeOptions;
use casper_engine::{EngineConfig, LayoutMode, Table, TxnManager};
use casper_persist::{DurableOptions, DurableTable};
use casper_storage::compress::telemetry as codec_telemetry;
use casper_workload::{HapQuery, HapSchema, KeyDist, Mix, MixKind, WorkloadGenerator};
use std::fs;
use std::path::PathBuf;

fn test_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn engine_config() -> EngineConfig {
    let mut config = EngineConfig::small(LayoutMode::Casper);
    config.chunk_values = 1024; // several chunks
    config.threads = 2;
    config
}

fn seed_table(rows: u64) -> Table {
    let gen = WorkloadGenerator::new(HapSchema::narrow(), rows, KeyDist::Uniform);
    Table::load_from_generator(&gen, engine_config())
}

/// Read-only fingerprint probes spanning point, count and sum shapes.
fn probes(rows: u64) -> Vec<HapQuery> {
    let mut qs = Vec::new();
    for v in (0..rows * 2).step_by(97) {
        qs.push(HapQuery::Q1 { v, k: 3 });
        qs.push(HapQuery::Q2 { vs: v, ve: v + 333 });
        qs.push(HapQuery::Q3 {
            vs: v,
            ve: v + 999,
            k: 2,
        });
    }
    qs
}

fn fingerprint(table: &mut Table, qs: &[HapQuery]) -> Vec<u64> {
    table
        .execute_all(qs)
        .expect("probes")
        .iter()
        .map(|o| o.result.scalar())
        .collect()
}

/// Assert two tables implement the *same physical design*: chunk for
/// chunk, partition metadata, zone maps and storage modes are bit-exact,
/// and every recovered chunk passes `validate_invariants`.
fn assert_same_layout(a: &Table, b: &Table) {
    assert_eq!(a.column().chunk_count(), b.column().chunk_count());
    assert_eq!(a.column().fences(), b.column().fences());
    for (i, (ca, cb)) in a
        .column()
        .chunks()
        .iter()
        .zip(b.column().chunks())
        .enumerate()
    {
        match (ca.store_opt(), cb.store_opt()) {
            (Some(ChunkStore::Partitioned(pa)), Some(ChunkStore::Partitioned(pb))) => {
                assert_eq!(pa.partitions(), pb.partitions(), "chunk {i} partitions");
                assert_eq!(pa.zones(), pb.zones(), "chunk {i} zones");
                assert_eq!(
                    pa.storage_modes(),
                    pb.storage_modes(),
                    "chunk {i} storage modes"
                );
                assert_eq!(pa.ghost_total(), pb.ghost_total(), "chunk {i} ghosts");
                assert_eq!(pa.live_len(), pb.live_len(), "chunk {i} live");
                pb.validate_invariants()
                    .unwrap_or_else(|e| panic!("chunk {i} invalid after restore: {e}"));
            }
            _ => panic!("chunk {i}: store kinds diverged"),
        }
    }
}

#[test]
fn reopen_restores_optimized_layout_with_zero_solves_and_zero_encodes() {
    let dir = test_dir("e2e_layout");
    let rows = 4096u64;
    // Read-heavy skew: the solver partitions finely around the hot keys
    // and the §6.2 policy finds cold read-only partitions to compress.
    let mix = Mix::new(MixKind::ReadOnlySkewed, HapSchema::narrow(), rows);
    let qs = probes(rows);

    let mut durable =
        DurableTable::create_from_table(&dir, seed_table(rows), DurableOptions::default())
            .expect("create");
    // Optimize for a skewed sample: the solver picks a non-trivial
    // partitioning and the §6.2 policy compresses cold partitions; the
    // optimize entry point checkpoints, making the re-layout durable.
    let report = durable
        .optimize(&mix.generate(800, 5), &OptimizeOptions::default())
        .expect("optimize");
    assert!(
        report.chunks.iter().any(|c| c.compressed_partitions > 0),
        "test premise: at least one partition should compress"
    );
    assert!(report.total_partitions() > durable.table().column().chunk_count());
    let mut reference = seed_table(rows);
    let want = fingerprint(&mut reference, &qs);
    // Sanity: probes on the optimized table agree with an unoptimized twin.
    let mut before: Vec<u64> = Vec::new();
    for q in &qs {
        before.push(durable.execute(q).expect("probe").result.scalar());
    }
    assert_eq!(before, want, "optimization changed logical results");
    let saved_stats = durable.stats();
    assert_eq!(saved_stats.generation, 2, "optimize must checkpoint");
    drop(durable);

    // Recovery path: counters must stay flat — the layout comes back from
    // disk, not from re-running the solver or the codec encoders. Under
    // mmap restore chunks decode lazily, so hydrate everything explicitly
    // before comparing layouts: hydration is part of the recovery path and
    // must itself be solve-free and encode-free.
    let solves_before = casper_core::solver::telemetry::solve_count();
    let encodes_before = codec_telemetry::encode_count();
    let mut reopened = DurableTable::open(&dir, DurableOptions::default()).expect("open");
    reopened.hydrate_all().expect("hydrate");
    assert_eq!(
        casper_core::solver::telemetry::solve_count(),
        solves_before,
        "recovery must not invoke the layout solver"
    );
    assert_eq!(
        codec_telemetry::encode_count(),
        encodes_before,
        "recovery must not re-encode any fragment"
    );
    assert_eq!(reopened.stats().generation, saved_stats.generation);

    // Build an in-memory twin of what was saved to compare layouts: replay
    // the same construction steps on a fresh table.
    let mut twin = seed_table(rows);
    casper_engine::optimize::optimize_table(
        &mut twin,
        &mix.generate(800, 5),
        &OptimizeOptions::default(),
    );
    assert_same_layout(&twin, reopened.table());

    // FM state round-tripped.
    assert_eq!(
        reopened.frequency_models().len(),
        reopened.table().column().chunk_count(),
        "captured per-chunk FM state must be restored"
    );
    for fm in reopened.frequency_models() {
        fm.validate().expect("restored FM valid");
        assert!(fm.total_mass() > 0.0, "restored FM carries the sample");
    }

    // Logical contents identical.
    let mut after = Vec::new();
    for q in &qs {
        after.push(reopened.execute(q).expect("probe").result.scalar());
    }
    assert_eq!(after, want, "reopened table answers diverged");
}

#[test]
fn writes_survive_reopen_without_checkpoint() {
    let dir = test_dir("e2e_wal_writes");
    let rows = 2048u64;
    let schema = HapSchema::narrow();
    let mut durable =
        DurableTable::create_from_table(&dir, seed_table(rows), DurableOptions::default())
            .expect("create");
    let mut oracle = seed_table(rows);

    // A write stream: inserts of fresh odd keys, deletes, updates.
    let mut writes = Vec::new();
    for i in 0..120u64 {
        writes.push(HapQuery::Q4 {
            key: 3 + i * 34,
            payload: schema.payload_row(3 + i * 34),
        });
        if i % 3 == 0 {
            writes.push(HapQuery::Q5 { v: i * 16 });
        }
        if i % 5 == 0 {
            writes.push(HapQuery::Q6 {
                v: i * 30 + 2,
                vnew: i * 30 + 3,
            });
        }
    }
    for q in &writes {
        durable.execute(q).expect("write");
        oracle.execute(q).expect("oracle write");
    }
    let gen_before = durable.stats().generation;
    drop(durable); // no checkpoint: recovery must come from WAL replay

    let mut reopened = DurableTable::open(&dir, DurableOptions::default()).expect("open");
    assert_eq!(reopened.stats().generation, gen_before);
    assert_eq!(reopened.len(), oracle.len());
    let qs = probes(rows);
    let mut got = Vec::new();
    for q in &qs {
        got.push(reopened.execute(q).expect("probe").result.scalar());
    }
    assert_eq!(got, fingerprint(&mut oracle, &qs));
}

#[test]
fn crash_smoke_torn_wal_tail_recovers_to_committed_prefix() {
    // The CI recovery-smoke scenario: build a table, stream writes, "kill"
    // the process mid-stream by dropping bytes off the WAL tail, reopen,
    // and assert query equality against an in-memory oracle that only saw
    // the committed prefix.
    let dir = test_dir("e2e_crash_smoke");
    let rows = 2048u64;
    let schema = HapSchema::narrow();
    let mut durable =
        DurableTable::create_from_table(&dir, seed_table(rows), DurableOptions::default())
            .expect("create");
    let inserts: Vec<HapQuery> = (0..60u64)
        .map(|i| HapQuery::Q4 {
            key: 1_000_001 + i * 2,
            payload: schema.payload_row(1_000_001 + i * 2),
        })
        .collect();
    for q in &inserts {
        durable.execute(q).expect("write");
    }
    let wal_file = dir.join("wal-000001.log");
    drop(durable);

    // Simulated crash: tear off the last 37 bytes of the log (mid-frame).
    let mut bytes = fs::read(&wal_file).expect("read wal");
    let torn = bytes.len() - 37;
    bytes.truncate(torn);
    fs::write(&wal_file, &bytes).expect("tear wal");

    let mut reopened = DurableTable::open(&dir, DurableOptions::default()).expect("open");
    // The oracle applies whole committed batches; the torn tail loses at
    // least the final record.
    let applied = (0..inserts.len())
        .rev()
        .find(|&i| {
            let HapQuery::Q4 { key, .. } = &inserts[i] else {
                unreachable!()
            };
            reopened
                .execute(&HapQuery::Q1 { v: *key, k: 1 })
                .expect("probe")
                .result
                .scalar()
                == 1
        })
        .map_or(0, |i| i + 1);
    assert!(
        applied < inserts.len(),
        "torn tail must lose the last write"
    );
    let mut oracle = seed_table(rows);
    for q in &inserts[..applied] {
        oracle.execute(q).expect("oracle");
    }
    let qs = probes(rows);
    let mut got = Vec::new();
    for q in &qs {
        got.push(reopened.execute(q).expect("probe").result.scalar());
    }
    assert_eq!(
        got,
        fingerprint(&mut oracle, &qs),
        "recovered state diverged from the committed-prefix oracle"
    );
}

#[test]
fn txn_commit_is_durable_and_conflicts_stage_nothing() {
    let dir = test_dir("e2e_txn");
    let rows = 2048u64;
    let mut durable =
        DurableTable::create_from_table(&dir, seed_table(rows), DurableOptions::default())
            .expect("create");
    let mgr = TxnManager::new();

    let mut t1 = mgr.begin();
    t1.update(300, 301);
    t1.delete(500);
    let staged_before = durable.stats().next_lsn;
    durable.commit_txn(&mgr, t1).expect("commit");
    assert!(durable.stats().next_lsn > staged_before);

    // A conflicting transaction must abort AND leave no WAL trace: both
    // `loser` and `winner` snapshot before either commits, and both write
    // key 301 — first committer wins.
    let mut loser = mgr.begin();
    loser.update(301, 303);
    let mut winner = mgr.begin();
    winner.update(301, 305);
    durable.commit_txn(&mgr, winner).expect("winner commits");
    let lsn_after_winner = durable.stats().next_lsn;
    let err = durable.commit_txn(&mgr, loser).expect_err("conflict");
    assert!(matches!(err, casper_persist::PersistError::Txn(_)));
    assert_eq!(
        durable.stats().next_lsn,
        lsn_after_winner,
        "aborted transaction must stage no WAL records"
    );
    drop(durable);

    let mut reopened = DurableTable::open(&dir, DurableOptions::default()).expect("open");
    let count = |t: &mut DurableTable, v: u64| {
        t.execute(&HapQuery::Q1 { v, k: 1 })
            .expect("probe")
            .result
            .scalar()
    };
    assert_eq!(count(&mut reopened, 300), 0, "updated away");
    assert_eq!(count(&mut reopened, 301), 0, "updated again by winner");
    assert_eq!(count(&mut reopened, 305), 1, "winner's update visible");
    assert_eq!(count(&mut reopened, 303), 0, "loser's update absent");
    assert_eq!(count(&mut reopened, 500), 0, "delete visible");
}

#[test]
fn checkpoint_rotates_generations_and_prunes_old_files() {
    let dir = test_dir("e2e_checkpoint");
    let rows = 1024u64;
    let schema = HapSchema::narrow();
    let mut durable =
        DurableTable::create_from_table(&dir, seed_table(rows), DurableOptions::default())
            .expect("create");
    for i in 0..10u64 {
        durable
            .execute(&HapQuery::Q4 {
                key: 5_000_001 + i * 2,
                payload: schema.payload_row(5_000_001 + i * 2),
            })
            .expect("write");
    }
    let g2 = durable.checkpoint().expect("checkpoint");
    assert_eq!(g2, 2);
    assert_eq!(durable.stats().wal_bytes, 0, "fresh WAL after checkpoint");
    assert_eq!(durable.stats().dirty_chunks, 0, "checkpoint cleaned chunks");
    let names: Vec<String> = fs::read_dir(&dir)
        .expect("dir")
        .flatten()
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        names.contains(&"manifest-000002.casper".to_string()),
        "{names:?}"
    );
    assert!(names.contains(&"wal-000002.log".to_string()), "{names:?}");
    // The single chunk was dirtied by the inserts, so the checkpoint wrote
    // it into a fresh segment and generation 1's files (manifest, WAL and
    // now-unreferenced segment) must all be pruned.
    assert!(
        !names.iter().any(|n| n.contains("000001")),
        "old generation must be pruned: {names:?}"
    );
    // Post-checkpoint writes land in the new WAL and survive.
    durable
        .execute(&HapQuery::Q4 {
            key: 6_000_001,
            payload: schema.payload_row(6_000_001),
        })
        .expect("write");
    drop(durable);
    let mut reopened = DurableTable::open(&dir, DurableOptions::default()).expect("open");
    assert_eq!(reopened.len(), rows as usize + 11);
    assert_eq!(
        reopened
            .execute(&HapQuery::Q1 { v: 6_000_001, k: 1 })
            .expect("probe")
            .result
            .scalar(),
        1
    );
}

#[test]
fn group_commit_defers_durability_until_seal() {
    let dir = test_dir("e2e_group_commit");
    let rows = 1024u64;
    let schema = HapSchema::narrow();
    let opts = DurableOptions {
        group_commit: 8,
        wal_checkpoint_bytes: 0,
        ..DurableOptions::default()
    };
    let mut durable =
        DurableTable::create_from_table(&dir, seed_table(rows), opts).expect("create");
    for i in 0..5u64 {
        durable
            .execute(&HapQuery::Q4 {
                key: 7_000_001 + i * 2,
                payload: schema.payload_row(7_000_001 + i * 2),
            })
            .expect("write");
    }
    let stats = durable.stats();
    assert_eq!(stats.staged_records, 5, "below the group size: unsealed");
    assert_eq!(stats.wal_bytes, 0, "nothing durable yet");
    durable.flush().expect("flush");
    let stats = durable.stats();
    assert_eq!(stats.staged_records, 0);
    assert!(stats.wal_bytes > 0, "seal made the batch durable");
    drop(durable);
    let reopened = DurableTable::open(&dir, opts).expect("open");
    assert_eq!(reopened.len(), rows as usize + 5);
}
