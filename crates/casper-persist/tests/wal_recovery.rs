//! Crash-window recovery properties of the WAL.
//!
//! * **Prefix property** (exhaustive, stronger than sampling): truncating
//!   the log at *every* byte offset recovers to a prefix of committed
//!   state, and the recovered prefix length is monotone in the offset.
//! * **Replay idempotence**: replaying the same WAL twice — either through
//!   the LSN watermark or by reopening the directory twice — is a no-op.

use casper_engine::{EngineConfig, LayoutMode, Table};
use casper_persist::wal::{replay, scan};
use casper_persist::{DurableOptions, DurableTable};
use casper_workload::{HapQuery, HapSchema, KeyDist, WorkloadGenerator};
use std::fs;
use std::path::{Path, PathBuf};

fn test_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn engine_config() -> EngineConfig {
    let mut config = EngineConfig::small(LayoutMode::Casper);
    config.threads = 1;
    config
}

fn seed_table(rows: usize) -> Table {
    let gen = WorkloadGenerator::new(HapSchema::narrow(), rows as u64, KeyDist::Uniform);
    Table::load_from_generator(&gen, engine_config())
}

/// Marker key of batch `i`: present in the recovered table iff batch `i`
/// replayed.
fn marker(i: usize) -> u64 {
    9_000_001 + 2 * i as u64
}

/// Copy `CURRENT` + the snapshot files (v2 manifest/segments, or a v1
/// snap), install `wal_bytes` as the generation-1 log.
fn install(dir: &Path, src: &Path, wal_bytes: &[u8]) {
    let _ = fs::remove_dir_all(dir);
    fs::create_dir_all(dir).expect("mkdir");
    for entry in fs::read_dir(src).expect("src dir").flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy().into_owned();
        if name == "CURRENT"
            || name.starts_with("manifest-")
            || name.starts_with("seg-")
            || name.starts_with("snap-")
        {
            fs::copy(entry.path(), dir.join(&name)).expect("copy");
        }
    }
    fs::write(dir.join("wal-000001.log"), wal_bytes).expect("write wal");
}

#[test]
fn truncation_at_every_byte_offset_recovers_a_monotone_committed_prefix() {
    let rows = 512usize;
    let schema = HapSchema::narrow();
    let src = test_dir("walprop_src");
    let mut durable = DurableTable::create_from_table(
        &src,
        seed_table(rows),
        DurableOptions::default(), // group_commit = 1: one batch per write
    )
    .expect("create");
    let n_batches = 14usize;
    for i in 0..n_batches {
        durable
            .execute(&HapQuery::Q4 {
                key: marker(i),
                payload: schema.payload_row(marker(i)),
            })
            .expect("write");
    }
    drop(durable);
    let wal_bytes = fs::read(src.join("wal-000001.log")).expect("read wal");

    let scratch = test_dir("walprop_scratch");
    let mut prev_prefix = 0usize;
    for cut in 0..=wal_bytes.len() {
        install(&scratch, &src, &wal_bytes[..cut]);
        let mut t = DurableTable::open(&scratch, DurableOptions::default())
            .unwrap_or_else(|e| panic!("open at cut {cut}: {e}"));
        // Which markers survived?
        let present: Vec<bool> = (0..n_batches)
            .map(|i| {
                t.execute(&HapQuery::Q1 { v: marker(i), k: 1 })
                    .expect("probe")
                    .result
                    .scalar()
                    == 1
            })
            .collect();
        let prefix = present.iter().take_while(|&&p| p).count();
        assert!(
            present[prefix..].iter().all(|&p| !p),
            "cut {cut}: holes in the recovered prefix: {present:?}"
        );
        assert_eq!(
            t.len(),
            rows + prefix,
            "cut {cut}: row count disagrees with the recovered prefix"
        );
        assert!(
            prefix >= prev_prefix,
            "cut {cut}: prefix shrank from {prev_prefix} to {prefix}"
        );
        prev_prefix = prefix;
    }
    assert_eq!(
        prev_prefix, n_batches,
        "the untruncated log must recover everything"
    );
}

#[test]
fn replaying_the_same_wal_twice_is_a_noop() {
    let rows = 512usize;
    let schema = HapSchema::narrow();
    let src = test_dir("walprop_idem");
    let mut durable =
        DurableTable::create_from_table(&src, seed_table(rows), DurableOptions::default())
            .expect("create");
    for i in 0..10usize {
        durable
            .execute(&HapQuery::Q4 {
                key: marker(i),
                payload: schema.payload_row(marker(i)),
            })
            .expect("write");
        if i % 2 == 0 {
            durable
                .execute(&HapQuery::Q5 { v: (i as u64) * 8 })
                .expect("delete");
        }
    }
    drop(durable);
    let wal_bytes = fs::read(src.join("wal-000001.log")).expect("read wal");
    let s = scan(&wal_bytes);
    assert!(s.batches.len() >= 10);

    // Watermark form: a second replay behind the first's high-water mark
    // applies nothing.
    let mut table = seed_table(rows);
    let (applied, _) = replay(&s, &mut table, 0).expect("first replay");
    assert_eq!(applied as usize, 15);
    let len_after_first = table.len();
    let (applied_again, _) = replay(&s, &mut table, s.last_lsn).expect("second replay");
    assert_eq!(applied_again, 0, "replay past the watermark must be empty");
    assert_eq!(table.len(), len_after_first);

    // Directory form: reopening twice (each open replays the same WAL into
    // the same snapshot) converges to identical state.
    let open_fingerprint = || {
        let mut t = DurableTable::open(&src, DurableOptions::default()).expect("open");
        let mut out = vec![t.len() as u64];
        for i in 0..10 {
            out.push(
                t.execute(&HapQuery::Q1 { v: marker(i), k: 1 })
                    .expect("probe")
                    .result
                    .scalar(),
            );
        }
        out.push(
            t.execute(&HapQuery::Q2 {
                vs: 0,
                ve: u64::MAX,
            })
            .expect("count")
            .result
            .scalar(),
        );
        out
    };
    let first = open_fingerprint();
    let second = open_fingerprint();
    assert_eq!(first, second, "double recovery diverged");
}

#[test]
fn recovered_writer_appends_cleanly_after_torn_tail() {
    // After recovery truncates a torn tail, new writes must append from
    // the sealed boundary and replay end-to-end.
    let rows = 256usize;
    let schema = HapSchema::narrow();
    let src = test_dir("walprop_append");
    let mut durable =
        DurableTable::create_from_table(&src, seed_table(rows), DurableOptions::default())
            .expect("create");
    for i in 0..6usize {
        durable
            .execute(&HapQuery::Q4 {
                key: marker(i),
                payload: schema.payload_row(marker(i)),
            })
            .expect("write");
    }
    drop(durable);
    // Tear mid-frame.
    let wal = src.join("wal-000001.log");
    let mut bytes = fs::read(&wal).expect("read");
    let torn = bytes.len() - 11;
    bytes.truncate(torn);
    fs::write(&wal, &bytes).expect("tear");

    let mut reopened = DurableTable::open(&src, DurableOptions::default()).expect("open");
    let recovered = reopened.len();
    reopened
        .execute(&HapQuery::Q4 {
            key: marker(100),
            payload: schema.payload_row(marker(100)),
        })
        .expect("post-recovery write");
    drop(reopened);
    let mut again = DurableTable::open(&src, DurableOptions::default()).expect("reopen");
    assert_eq!(again.len(), recovered + 1);
    assert_eq!(
        again
            .execute(&HapQuery::Q1 {
                v: marker(100),
                k: 1
            })
            .expect("probe")
            .result
            .scalar(),
        1
    );
}
