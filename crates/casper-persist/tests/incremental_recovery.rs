//! Crash-window properties of the incremental (v2) checkpoint chain.
//!
//! A v2 checkpoint commits in three steps — segment write, manifest write,
//! `CURRENT` swing — with the WAL rotated *before* any of them. These
//! tests kill the checkpoint between and **inside** each step (truncating
//! the in-flight file at every byte offset, extending PR 3's
//! WAL-truncation property to the snapshot chain) and assert recovery
//! always lands on exactly the pre-checkpoint state plus every sealed WAL
//! batch: no data loss past the last sealed batch, ever.
//!
//! Also here: replay idempotence across a multi-segment chain, forced
//! compaction, the v1 → v2 upgrade round trip, and typed corruption
//! surfacing for damaged segments/manifests.

use casper_engine::{EngineConfig, LayoutMode, Table};
use casper_persist::{DurableOptions, DurableTable, PersistError};
use casper_workload::{HapQuery, HapSchema};
use std::fs;
use std::path::{Path, PathBuf};

const ROWS: u64 = 192;
/// Keys are even numbers 0, 2, …, 2·(ROWS−1); three chunks of 64.
const CHUNK_VALUES: usize = 64;

fn test_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn schema() -> HapSchema {
    HapSchema { payload_cols: 2 }
}

fn engine_config() -> EngineConfig {
    let mut config = EngineConfig::small(LayoutMode::Casper);
    config.chunk_values = CHUNK_VALUES;
    config.threads = 1;
    config
}

fn payload_row(key: u64) -> Vec<u32> {
    vec![(key % 251) as u32, (key % 83) as u32]
}

fn seed_table() -> Table {
    let keys: Vec<u64> = (0..ROWS).map(|i| i * 2).collect();
    let cols: Vec<Vec<u32>> = (0..2)
        .map(|c| keys.iter().map(|&k| payload_row(k)[c]).collect())
        .collect();
    Table::load(schema(), keys, cols, engine_config())
}

/// Marker key of write `i` (odd → never collides with seeded keys).
fn marker(i: usize) -> u64 {
    1 + 2 * i as u64
}

fn markers(n: usize) -> Vec<HapQuery> {
    (0..n)
        .map(|i| HapQuery::Q4 {
            key: marker(i),
            payload: payload_row(marker(i)),
        })
        .collect()
}

/// Fingerprint: marker presence, row count, full count, a couple of sums.
fn fingerprint_durable(t: &mut DurableTable, n_markers: usize) -> Vec<u64> {
    let mut out = vec![t.len() as u64];
    for i in 0..n_markers {
        out.push(
            t.execute(&HapQuery::Q1 { v: marker(i), k: 2 })
                .expect("probe")
                .result
                .scalar(),
        );
    }
    for q in [
        HapQuery::Q2 {
            vs: 0,
            ve: u64::MAX,
        },
        HapQuery::Q3 {
            vs: 50,
            ve: 300,
            k: 2,
        },
    ] {
        out.push(t.execute(&q).expect("probe").result.scalar());
    }
    out
}

fn fingerprint_oracle(t: &mut Table, n_markers: usize) -> Vec<u64> {
    let mut out = vec![t.len() as u64];
    for i in 0..n_markers {
        out.push(
            t.execute(&HapQuery::Q1 { v: marker(i), k: 2 })
                .expect("probe")
                .result
                .scalar(),
        );
    }
    for q in [
        HapQuery::Q2 {
            vs: 0,
            ve: u64::MAX,
        },
        HapQuery::Q3 {
            vs: 50,
            ve: 300,
            k: 2,
        },
    ] {
        out.push(t.execute(&q).expect("probe").result.scalar());
    }
    out
}

fn copy_dir(from: &Path, to: &Path) {
    let _ = fs::remove_dir_all(to);
    fs::create_dir_all(to).expect("mkdir");
    for entry in fs::read_dir(from).expect("read src").flatten() {
        fs::copy(entry.path(), to.join(entry.file_name())).expect("copy");
    }
}

/// Build the crash fixture: a created table (gen 1), `n` sealed marker
/// batches in the WAL, a directory copy taken *before* the checkpoint, the
/// checkpoint's in-flight files, and the committed-state oracle.
struct Fixture {
    /// Directory state before the checkpoint (manifest-1 + wal-1 chain).
    pre: PathBuf,
    /// Directory state after the committed checkpoint.
    post: PathBuf,
    /// Bytes of the segment the checkpoint wrote.
    seg_bytes: Vec<u8>,
    /// Name of that segment file.
    seg_name: String,
    /// Bytes of the manifest the checkpoint wrote.
    manifest_bytes: Vec<u8>,
    /// The oracle holding the seeded rows plus all `n` markers.
    want: Vec<u64>,
    n_markers: usize,
}

fn build_fixture(tag: &str) -> Fixture {
    let base = test_dir(&format!("incr_{tag}_base"));
    let pre = test_dir(&format!("incr_{tag}_pre"));
    let post = test_dir(&format!("incr_{tag}_post"));
    let n_markers = 6usize;

    let mut durable =
        DurableTable::create_from_table(&base, seed_table(), DurableOptions::default())
            .expect("create");
    for q in markers(n_markers) {
        durable.execute(&q).expect("write");
    }
    copy_dir(&base, &pre);
    let g2 = durable.checkpoint().expect("checkpoint");
    assert_eq!(g2, 2);
    drop(durable);
    copy_dir(&base, &post);

    let seg_name = fs::read_dir(&post)
        .expect("post dir")
        .flatten()
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("seg-"))
        .max()
        .expect("checkpoint wrote a segment");
    let seg_bytes = fs::read(post.join(&seg_name)).expect("seg bytes");
    let manifest_bytes = fs::read(post.join("manifest-000002.casper")).expect("manifest bytes");

    let mut oracle = seed_table();
    for q in markers(n_markers) {
        oracle.execute(&q).expect("oracle");
    }
    let want = fingerprint_oracle(&mut oracle, n_markers);
    Fixture {
        pre,
        post,
        seg_bytes,
        seg_name,
        manifest_bytes,
        want,
        n_markers,
    }
}

/// Install a crash state: the pre-checkpoint files, the rotated (empty)
/// wal-000002 the capture created, plus whatever in-flight files the
/// "kill" left behind.
fn install_crash_state(fx: &Fixture, scratch: &Path, extra: &[(&str, &[u8])]) {
    copy_dir(&fx.pre, scratch);
    // The capture rotates the WAL before the checkpoint writes anything.
    fs::write(scratch.join("wal-000002.log"), b"").expect("rotated wal");
    for (name, bytes) in extra {
        fs::write(scratch.join(name), bytes).expect("install extra");
    }
}

#[test]
fn kill_during_segment_write_at_every_byte_offset() {
    let fx = build_fixture("seg");
    let scratch = test_dir("incr_seg_scratch");
    for cut in 0..=fx.seg_bytes.len() {
        install_crash_state(
            &fx,
            &scratch,
            &[(fx.seg_name.as_str(), &fx.seg_bytes[..cut])],
        );
        let mut t = DurableTable::open(&scratch, DurableOptions::default())
            .unwrap_or_else(|e| panic!("open with segment cut at {cut}: {e}"));
        assert_eq!(t.stats().generation, 1, "cut {cut}: CURRENT never swung");
        assert_eq!(
            fingerprint_durable(&mut t, fx.n_markers),
            fx.want,
            "segment cut at {cut} lost sealed data"
        );
    }
}

#[test]
fn kill_during_manifest_write_at_every_byte_offset() {
    let fx = build_fixture("mani");
    let scratch = test_dir("incr_mani_scratch");
    for cut in 0..=fx.manifest_bytes.len() {
        // Full segment on disk, manifest torn at `cut`, CURRENT still 1 —
        // the torn manifest is dead weight: recovery must resolve gen 1
        // and replay the whole WAL chain.
        install_crash_state(
            &fx,
            &scratch,
            &[
                (fx.seg_name.as_str(), &fx.seg_bytes[..]),
                ("manifest-000002.casper", &fx.manifest_bytes[..cut]),
            ],
        );
        let mut t = DurableTable::open(&scratch, DurableOptions::default())
            .unwrap_or_else(|e| panic!("open with manifest cut at {cut}: {e}"));
        assert_eq!(t.stats().generation, 1, "cut {cut}");
        assert_eq!(
            fingerprint_durable(&mut t, fx.n_markers),
            fx.want,
            "manifest cut at {cut} lost sealed data"
        );
    }
}

#[test]
fn kill_after_current_swing_resolves_the_new_generation() {
    let fx = build_fixture("swing");
    // The committed post state (kill right after the swing, before any
    // pruning finished) must open at generation 2 with identical data.
    let mut t = DurableTable::open(&fx.post, DurableOptions::default()).expect("open post");
    assert_eq!(t.stats().generation, 2);
    assert_eq!(fingerprint_durable(&mut t, fx.n_markers), fx.want);
}

#[test]
fn recovered_table_accepts_writes_after_every_kill_phase() {
    let fx = build_fixture("resume");
    let scratch = test_dir("incr_resume_scratch");
    for (phase, extra) in [
        ("no-files", Vec::new()),
        (
            "half-segment",
            vec![(
                fx.seg_name.as_str(),
                &fx.seg_bytes[..fx.seg_bytes.len() / 2],
            )],
        ),
        (
            "full-segment-half-manifest",
            vec![
                (fx.seg_name.as_str(), &fx.seg_bytes[..]),
                (
                    "manifest-000002.casper",
                    &fx.manifest_bytes[..fx.manifest_bytes.len() / 2],
                ),
            ],
        ),
    ] {
        install_crash_state(&fx, &scratch, &extra);
        let key = marker(500);
        {
            let mut t = DurableTable::open(&scratch, DurableOptions::default()).expect("open");
            t.execute(&HapQuery::Q4 {
                key,
                payload: payload_row(key),
            })
            .expect("post-recovery write");
            // And a full checkpoint cycle must succeed from the recovered
            // state (new generation > every file the crash left behind).
            t.checkpoint().expect("post-recovery checkpoint");
        }
        let mut again = DurableTable::open(&scratch, DurableOptions::default()).expect("reopen");
        assert_eq!(
            again
                .execute(&HapQuery::Q1 { v: key, k: 1 })
                .expect("probe")
                .result
                .scalar(),
            1,
            "phase {phase}: post-recovery write lost"
        );
    }
}

#[test]
fn multi_segment_chain_replays_idempotently_and_compacts() {
    let dir = test_dir("incr_chain");
    let mut durable =
        DurableTable::create_from_table(&dir, seed_table(), DurableOptions::default())
            .expect("create");
    // Three rounds, each dirtying a different chunk (keys ~0, ~128, ~256
    // route to chunks 0/1/2), each followed by an incremental checkpoint:
    // the manifest ends up referencing several segments.
    for (round, base_key) in [(0u64, 1u64), (1, 129), (2, 257)] {
        for i in 0..4u64 {
            let key = base_key + 2 * i;
            durable
                .execute(&HapQuery::Q4 {
                    key,
                    payload: payload_row(key),
                })
                .expect("write");
        }
        let generation = durable.checkpoint().expect("checkpoint");
        assert_eq!(generation, round + 2);
    }
    let segments_before = durable.stats().segments;
    assert!(
        segments_before >= 2,
        "incremental chain should span segments, got {segments_before}"
    );
    let n = 0;
    let want = fingerprint_durable(&mut durable, n);
    drop(durable);

    // Replay idempotence: two cold opens of the same chain agree.
    let first = {
        let mut t = DurableTable::open(&dir, DurableOptions::default()).expect("open 1");
        fingerprint_durable(&mut t, n)
    };
    let second = {
        let mut t = DurableTable::open(&dir, DurableOptions::default()).expect("open 2");
        fingerprint_durable(&mut t, n)
    };
    assert_eq!(first, second, "double recovery diverged");
    assert_eq!(first, want, "recovery diverged from the live table");

    // Forced compaction collapses the chain to one segment, byte-copying
    // clean records; contents must be identical afterwards.
    let mut t = DurableTable::open(&dir, DurableOptions::default()).expect("open 3");
    t.compact().expect("compact");
    assert_eq!(t.stats().segments, 1, "compaction must collapse the chain");
    assert_eq!(fingerprint_durable(&mut t, n), want);
    drop(t);
    let seg_files = fs::read_dir(&dir)
        .expect("dir")
        .flatten()
        .filter(|e| e.file_name().to_string_lossy().starts_with("seg-"))
        .count();
    assert_eq!(seg_files, 1, "stale segments must be pruned");
    let mut t = DurableTable::open(&dir, DurableOptions::default()).expect("open 4");
    assert_eq!(
        fingerprint_durable(&mut t, n),
        want,
        "post-compaction reopen"
    );
}

#[test]
fn segment_chain_grows_only_by_dirty_chunks() {
    let dir = test_dir("incr_dirty_only");
    let mut durable =
        DurableTable::create_from_table(&dir, seed_table(), DurableOptions::default())
            .expect("create");
    let full_seg = fs::metadata(dir.join("seg-000001.casper"))
        .expect("initial segment")
        .len();
    // Dirty exactly one of the three chunks.
    durable
        .execute(&HapQuery::Q4 {
            key: 7,
            payload: payload_row(7),
        })
        .expect("write");
    assert_eq!(durable.stats().dirty_chunks, 1);
    durable.checkpoint().expect("checkpoint");
    let inc_seg = fs::metadata(dir.join("seg-000002.casper"))
        .expect("incremental segment")
        .len();
    assert!(
        inc_seg * 2 < full_seg,
        "incremental segment ({inc_seg}B) should be well under half the \
         full one ({full_seg}B) when 1 of 3 chunks is dirty"
    );
    // A checkpoint with nothing dirty folds the WAL without any segment.
    let g = durable.checkpoint().expect("empty checkpoint");
    assert_eq!(durable.stats().generation, g);
    assert_eq!(durable.stats().dirty_chunks, 0);
    assert!(
        !casper_persist::incremental::segment_path(&dir, 3).exists(),
        "a pure WAL fold must not allocate a segment"
    );
}

#[test]
fn v1_snapshot_still_opens_and_upgrades_to_v2() {
    let dir = test_dir("incr_v1_upgrade");
    fs::create_dir_all(&dir).expect("mkdir");
    // Hand-build a v1-format directory: whole-table snapshot + CURRENT.
    let table = seed_table();
    let v1 = casper_persist::encode_snapshot(&table, &[], 1, 0);
    fs::write(dir.join("snap-000001.casper"), &v1).expect("v1 snapshot");
    fs::write(dir.join("CURRENT"), b"1\n").expect("current");

    let mut oracle = seed_table();
    let mut t = DurableTable::open(&dir, DurableOptions::default()).expect("open v1");
    assert_eq!(
        fingerprint_durable(&mut t, 3),
        fingerprint_oracle(&mut oracle, 3),
        "v1 restore diverged"
    );
    // Writes + the upgrade checkpoint (necessarily full: no manifest yet).
    for q in markers(4) {
        t.execute(&q).expect("write");
        oracle.execute(&q).expect("oracle");
    }
    t.checkpoint().expect("upgrade checkpoint");
    drop(t);
    assert!(
        dir.join("manifest-000002.casper").exists(),
        "upgrade must write a v2 manifest"
    );
    assert!(
        !dir.join("snap-000001.casper").exists(),
        "v1 snapshot pruned after the upgrade"
    );
    let mut t = DurableTable::open(&dir, DurableOptions::default()).expect("reopen v2");
    assert_eq!(
        fingerprint_durable(&mut t, 4),
        fingerprint_oracle(&mut oracle, 4),
        "v2 reopen after upgrade diverged"
    );
}

#[test]
fn damaged_segment_record_surfaces_typed_corruption_at_first_touch() {
    let dir = test_dir("incr_damage_seg");
    let durable = DurableTable::create_from_table(&dir, seed_table(), DurableOptions::default())
        .expect("create");
    let want_len = durable.len();
    drop(durable);
    // Flip one byte inside a chunk record (past the 16-byte header).
    let seg = dir.join("seg-000001.casper");
    let mut bytes = fs::read(&seg).expect("seg");
    let mid = 16 + (bytes.len() - 16) / 2;
    bytes[mid] ^= 0x20;
    fs::write(&seg, &bytes).expect("damage");

    // Metadata-only open still succeeds (the manifest is intact)…
    let mut t = DurableTable::open(&dir, DurableOptions::default()).expect("open");
    assert_eq!(t.len(), want_len, "live counts come from the manifest");
    // …but the first query touching the damaged chunk gets a typed error,
    // not a panic and not silent garbage.
    let err = (0..ROWS)
        .map(|i| t.execute(&HapQuery::Q1 { v: i * 2, k: 1 }))
        .find_map(Result::err)
        .expect("some chunk must fail its checksum");
    assert!(
        matches!(
            err,
            PersistError::Storage(casper_storage::StorageError::Corrupt { .. })
        ),
        "got {err}"
    );
}

#[test]
fn damaged_manifest_fails_open_typed() {
    let dir = test_dir("incr_damage_mani");
    let durable = DurableTable::create_from_table(&dir, seed_table(), DurableOptions::default())
        .expect("create");
    drop(durable);
    let path = dir.join("manifest-000001.casper");
    let mut bytes = fs::read(&path).expect("manifest");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x08;
    fs::write(&path, &bytes).expect("damage");
    let err = DurableTable::open(&dir, DurableOptions::default()).expect_err("must fail");
    assert!(
        matches!(
            err,
            PersistError::Storage(casper_storage::StorageError::Corrupt { .. })
        ),
        "got {err}"
    );
}

#[test]
fn noorder_optimize_checkpoints_fully_despite_counter_reset() {
    // The NoOrder -> Casper conversion *replaces* the column, restarting
    // the per-chunk version counters — which can collide with the clean
    // snapshot and fool an incremental checkpoint into re-pointing rebuilt
    // chunks at stale pre-relayout records. `optimize` must force a full
    // checkpoint instead.
    use casper_engine::optimize::OptimizeOptions;
    let dir = test_dir("incr_noorder_opt");
    let mut config = engine_config();
    config.mode = LayoutMode::NoOrder;
    let keys: Vec<u64> = (0..ROWS).map(|i| i * 2).collect();
    let cols: Vec<Vec<u32>> = (0..2)
        .map(|c| keys.iter().map(|&k| payload_row(k)[c]).collect())
        .collect();
    let table = Table::load(schema(), keys, cols, config);
    let mut t =
        DurableTable::create_from_table(&dir, table, DurableOptions::default()).expect("create");
    // Dirty exactly one chunk via a row-count-preserving write (a delete:
    // an insert would change the rebuilt chunk count and mask the hazard),
    // then checkpoint: the clean counter snapshot is now 1 for that chunk
    // — exactly the value every chunk of a freshly rebuilt column lands on
    // after the optimizer's one `chunks_mut` sweep.
    t.execute(&HapQuery::Q5 { v: 100 }).expect("delete");
    t.checkpoint().expect("checkpoint");

    let sample: Vec<HapQuery> = (0..40u64)
        .map(|i| HapQuery::Q2 {
            vs: i * 8,
            ve: i * 8 + 40,
        })
        .collect();
    t.optimize(&sample, &OptimizeOptions::default())
        .expect("optimize");
    let want = fingerprint_durable(&mut t, 1);
    drop(t);

    let mut reopened = DurableTable::open(&dir, DurableOptions::default()).expect("reopen");
    assert_eq!(
        fingerprint_durable(&mut reopened, 1),
        want,
        "reopen after NoOrder optimize must see the re-laid-out data, \
         not stale pre-relayout records"
    );
}

#[test]
fn damaged_middle_wal_link_fails_open_typed() {
    // A middle link of the WAL chain was fully sealed before its successor
    // was created; damage inside it must surface as typed corruption, not
    // a silent hole in the committed history (later links still replaying
    // past dropped batches).
    let dir = test_dir("incr_mid_wal");
    let mut t = DurableTable::create_from_table(&dir, seed_table(), DurableOptions::default())
        .expect("create");
    for q in markers(6) {
        t.execute(&q).expect("write");
    }
    drop(t);
    // Fabricate an in-flight-checkpoint chain: the rotated successor
    // exists, making wal-000001 a middle link.
    fs::write(dir.join("wal-000002.log"), b"").expect("successor");
    let wal1 = dir.join("wal-000001.log");
    let mut bytes = fs::read(&wal1).expect("wal");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    fs::write(&wal1, &bytes).expect("damage");
    let err = DurableTable::open(&dir, DurableOptions::default()).expect_err("must fail");
    assert!(
        matches!(
            err,
            PersistError::Storage(casper_storage::StorageError::Corrupt { .. })
        ),
        "got {err}"
    );
}

// ---------------------------------------------------------------------------
// Fault matrix: deterministic fault injection through the VFS, each case
// checked against the committed-prefix oracle. The contract under every
// fault: recovery lands on exactly the acknowledged writes, or the table
// degrades with a typed error — never a panic, never an acked-then-lost
// commit.
// ---------------------------------------------------------------------------

use casper_persist::{FaultErr, FaultRule, FaultVfs, VfsHandle, VfsOp};
use std::sync::Arc;

fn fault_handle(seed: u64) -> (Arc<FaultVfs>, VfsHandle) {
    let vfs = Arc::new(FaultVfs::with_seed(seed));
    let handle = VfsHandle::fault(Arc::clone(&vfs));
    (vfs, handle)
}

fn raw_os(err: &PersistError) -> Option<i32> {
    match err {
        PersistError::Io(e) => e.raw_os_error(),
        _ => None,
    }
}

#[test]
fn fault_enospc_during_compaction() {
    let dir = test_dir("fault_enospc_compact");
    let (vfs, handle) = fault_handle(11);
    let n = 6usize;
    let mut t = DurableTable::create_from_table_with_vfs(
        handle.clone(),
        &dir,
        seed_table(),
        DurableOptions::default(),
    )
    .expect("create");
    for q in markers(n) {
        t.execute(&q).expect("write");
    }
    let mut oracle = seed_table();
    for q in markers(n) {
        oracle.execute(&q).expect("oracle");
    }
    let want = fingerprint_oracle(&mut oracle, n);

    // The device fills up mid-compaction: every segment write fails.
    vfs.inject(FaultRule::on_path(VfsOp::Write, "seg-", FaultErr::Enospc));
    let err = t.compact().expect_err("compaction must fail under ENOSPC");
    assert_eq!(raw_os(&err), Some(28), "typed ENOSPC, got {err}");
    assert!(
        !t.is_degraded(),
        "a single checkpoint failure must not degrade the table"
    );
    assert_eq!(t.checkpoint_stats().consecutive_failures, 1);
    assert_eq!(
        fingerprint_durable(&mut t, n),
        want,
        "in-memory state untouched by the failed compaction"
    );
    drop(t);

    // Power cut while the device is still full, then recovery.
    vfs.clear_faults();
    vfs.simulate_crash().expect("crash");
    let mut t =
        DurableTable::open_with_vfs(handle.clone(), &dir, DurableOptions::default()).expect("open");
    assert_eq!(
        fingerprint_durable(&mut t, n),
        want,
        "recovery after mid-compaction ENOSPC lost sealed data"
    );
    // Space cleared: compaction now succeeds and collapses the chain.
    t.compact().expect("compact after space cleared");
    assert_eq!(t.stats().segments, 1);
    assert_eq!(fingerprint_durable(&mut t, n), want);
}

#[test]
fn fault_fsync_during_wal_rotation() {
    let dir = test_dir("fault_rotate_fsync");
    let (vfs, handle) = fault_handle(12);
    let mut t = DurableTable::create_from_table_with_vfs(
        handle.clone(),
        &dir,
        seed_table(),
        DurableOptions::default(),
    )
    .expect("create");
    for q in markers(6) {
        t.execute(&q).expect("write");
    }

    // The rotation's directory fsync fails: the capture must abort
    // *before* swapping the writer, leaving commits against the old WAL.
    vfs.inject(FaultRule {
        op: VfsOp::FsyncDir,
        path_substr: None,
        nth: Some(1),
        short_bytes: None,
        err: FaultErr::Eio,
        times: 1,
    });
    let err = t.checkpoint().expect_err("rotation dir-fsync must fail");
    assert_eq!(raw_os(&err), Some(5), "typed EIO, got {err}");
    assert!(!t.is_degraded());

    // Writes keep acknowledging into the old (still durable) WAL.
    for q in markers(8).split_off(6) {
        t.execute(&q).expect("write after failed rotation");
    }
    drop(t);

    // Crash: the rotated WAL's dirent was never durable, so it vanishes —
    // and every acknowledged write must still be there.
    vfs.simulate_crash().expect("crash");
    let mut oracle = seed_table();
    for q in markers(8) {
        oracle.execute(&q).expect("oracle");
    }
    let mut t =
        DurableTable::open_with_vfs(handle.clone(), &dir, DurableOptions::default()).expect("open");
    assert_eq!(
        fingerprint_durable(&mut t, 8),
        fingerprint_oracle(&mut oracle, 8),
        "acked writes lost across a failed WAL rotation + crash"
    );
    // And the next checkpoint (fault exhausted) completes normally.
    t.checkpoint().expect("checkpoint after fault cleared");
}

#[test]
fn fault_short_write_current_swing() {
    let dir = test_dir("fault_current_short");
    let (vfs, handle) = fault_handle(13);
    let n = 6usize;
    let mut t = DurableTable::create_from_table_with_vfs(
        handle.clone(),
        &dir,
        seed_table(),
        DurableOptions::default(),
    )
    .expect("create");
    for q in markers(n) {
        t.execute(&q).expect("write");
    }

    // Every write to CURRENT(.tmp) tears after one byte: the swing can
    // never commit, so the checkpoint must fail after its retries without
    // ever publishing a half-written pointer.
    vfs.inject(FaultRule {
        op: VfsOp::Write,
        path_substr: Some("CURRENT".into()),
        nth: None,
        short_bytes: Some(1),
        err: FaultErr::Eio,
        times: u64::MAX,
    });
    let err = t.checkpoint().expect_err("CURRENT swing must fail");
    assert_eq!(raw_os(&err), Some(5), "typed EIO, got {err}");
    let cp = t.checkpoint_stats();
    assert_eq!(cp.consecutive_failures, 1);
    assert_eq!(
        cp.recent_failures
            .last()
            .expect("failure recorded")
            .attempts,
        3,
        "default policy retries the job"
    );
    assert_eq!(t.stats().generation, 1, "generation must not advance");
    drop(t);

    vfs.clear_faults();
    vfs.simulate_crash().expect("crash");
    let mut oracle = seed_table();
    for q in markers(n) {
        oracle.execute(&q).expect("oracle");
    }
    let mut t =
        DurableTable::open_with_vfs(handle.clone(), &dir, DurableOptions::default()).expect("open");
    assert_eq!(t.stats().generation, 1, "CURRENT never swung");
    assert_eq!(
        fingerprint_durable(&mut t, n),
        fingerprint_oracle(&mut oracle, n),
        "torn CURRENT swing lost sealed data"
    );
}

#[test]
fn fault_eio_on_manifest_read() {
    let dir = test_dir("fault_manifest_read");
    let (vfs, handle) = fault_handle(14);
    let n = 4usize;
    let mut t = DurableTable::create_from_table_with_vfs(
        handle.clone(),
        &dir,
        seed_table(),
        DurableOptions::default(),
    )
    .expect("create");
    for q in markers(n) {
        t.execute(&q).expect("write");
    }
    t.checkpoint().expect("checkpoint");
    drop(t);

    // A bad sector under the manifest: open must fail typed, not panic.
    vfs.inject(FaultRule::on_path(VfsOp::Read, "manifest-", FaultErr::Eio));
    let err = DurableTable::open_with_vfs(handle.clone(), &dir, DurableOptions::default())
        .expect_err("manifest read must fail");
    assert_eq!(raw_os(&err), Some(5), "typed EIO, got {err}");

    // The sector recovers: the same directory opens to the oracle state.
    vfs.clear_faults();
    let mut oracle = seed_table();
    for q in markers(n) {
        oracle.execute(&q).expect("oracle");
    }
    let mut t =
        DurableTable::open_with_vfs(handle.clone(), &dir, DurableOptions::default()).expect("open");
    assert_eq!(
        fingerprint_durable(&mut t, n),
        fingerprint_oracle(&mut oracle, n)
    );
}

/// Drive the crash-mid-prune workload against `dir` through `handle`:
/// one pruning checkpoint already behind us, a second one about to run
/// with six writes dirty. Returns the table.
fn pruning_fixture(handle: VfsHandle, dir: &Path) -> DurableTable {
    let opts = DurableOptions {
        background_checkpointer: false, // inline: fsync order is exact
        ..DurableOptions::default()
    };
    let mut t =
        DurableTable::create_from_table_with_vfs(handle, dir, seed_table(), opts).expect("create");
    for q in markers(4) {
        t.execute(&q).expect("write");
    }
    t.checkpoint().expect("first pruning checkpoint");
    for q in markers(6).split_off(4) {
        t.execute(&q).expect("write");
    }
    t
}

/// Crash at *every* directory fsync of a pruning checkpoint (archiving
/// off): WAL rotation, the manifest and `CURRENT` swings, and the final
/// post-prune directory sync that makes stale-file removal durable.
/// Whichever one the power cut beats, recovery must resolve a complete
/// chain — `CURRENT` never points at a pruned file, a half-pruned
/// directory never orphans a WAL link — and serve every acknowledged
/// write. Stale files the crash resurrects are re-pruned next pass.
#[test]
fn fault_crash_at_every_dir_fsync_of_a_pruning_checkpoint() {
    // Prime run: count the dir fsyncs one pruning checkpoint performs
    // (the workload is deterministic, so every run repeats the count).
    let fsyncs_per_checkpoint = {
        let dir = test_dir("fault_prune_crash_prime");
        let (vfs, handle) = fault_handle(40);
        let mut t = pruning_fixture(handle, &dir);
        let before = vfs.counters().dir_fsyncs;
        t.checkpoint().expect("prime checkpoint");
        vfs.counters().dir_fsyncs - before
    };
    assert!(
        fsyncs_per_checkpoint >= 3,
        "premise: rotation + swings + post-prune sync are all dir fsyncs"
    );

    let mut oracle = seed_table();
    for q in markers(8) {
        oracle.execute(&q).expect("oracle");
    }
    for nth in 1..=fsyncs_per_checkpoint {
        let dir = test_dir(&format!("fault_prune_crash_{nth}"));
        let (vfs, handle) = fault_handle(40 + nth);
        let mut t = pruning_fixture(handle.clone(), &dir);
        vfs.inject(FaultRule {
            op: VfsOp::FsyncDir,
            path_substr: None,
            nth: Some(nth),
            short_bytes: None,
            err: FaultErr::Eio,
            times: 1,
        });
        // Early fsyncs fail the checkpoint typed; the post-prune sync is
        // best-effort (the chain is already committed) and stays Ok.
        // Either way the table must stay writable.
        let _ = t.checkpoint();
        assert_eq!(vfs.counters().injected, 1, "nth {nth}: fault never fired");
        assert!(!t.is_degraded(), "nth {nth}: one fsync failure degraded");
        for q in markers(8).split_off(6) {
            t.execute(&q)
                .unwrap_or_else(|e| panic!("nth {nth}: write after fault: {e}"));
        }
        drop(t);

        vfs.clear_faults();
        vfs.simulate_crash().expect("crash");
        let mut t = DurableTable::open_with_vfs(handle.clone(), &dir, DurableOptions::default())
            .unwrap_or_else(|e| panic!("nth {nth}: reopen found an orphaned chain: {e}"));
        assert_eq!(
            fingerprint_durable(&mut t, 8),
            fingerprint_oracle(&mut oracle, 8),
            "nth {nth}: crash mid-prune lost acknowledged writes"
        );
        // Resurrected stale files are garbage, not load-bearing: the next
        // checkpoint prunes them again and the directory stays openable.
        t.checkpoint().expect("re-pruning checkpoint");
        drop(t);
        let mut t = DurableTable::open_with_vfs(handle.clone(), &dir, DurableOptions::default())
            .expect("reopen after re-prune");
        assert_eq!(
            fingerprint_durable(&mut t, 8),
            fingerprint_oracle(&mut oracle, 8)
        );
    }
}
