//! End-to-end telemetry: one full engine cycle — reads, writes, WAL
//! flush, checkpoint, scrub — must leave a metrics dump with non-zero
//! signal from every instrumented subsystem, and the dump must be
//! structurally parseable Prometheus text.

use casper_engine::{EngineConfig, GovernorConfig, LayoutMode, QueryCtx, Table};
use casper_persist::{DurableOptions, DurableTable};
use casper_workload::{HapQuery, HapSchema, KeyDist, WorkloadGenerator};
use std::fs;
use std::path::PathBuf;

fn test_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn seed_table(rows: u64) -> Table {
    let mut config = EngineConfig::small(LayoutMode::Casper);
    config.chunk_values = 1024; // several chunks, so routing has choices
    config.threads = 2;
    let gen = WorkloadGenerator::new(HapSchema::narrow(), rows, KeyDist::Uniform);
    Table::load_from_generator(&gen, config)
}

/// Value of the series rendered exactly as `name <value>`.
fn metric(text: &str, name: &str) -> f64 {
    text.lines()
        .find_map(|l| {
            l.strip_prefix(name)
                .and_then(|rest| rest.strip_prefix(' '))
                .and_then(|v| v.trim().parse::<f64>().ok())
        })
        .unwrap_or_else(|| panic!("metric `{name}` missing from dump:\n{text}"))
}

fn assert_nonzero(text: &str, name: &str) {
    assert!(metric(text, name) > 0.0, "expected `{name}` > 0");
}

#[test]
fn full_cycle_dump_has_signal_from_every_subsystem() {
    casper_obs::enable();
    let rows = 4_000u64;
    let dir = test_dir("observability_e2e");
    let opts = DurableOptions {
        // A roomy governor: the slot gate and budget never bind, but
        // admission and residency accounting leave registry signal.
        governor: Some(GovernorConfig {
            memory_budget_bytes: 1 << 40,
            query_slots: 8,
            check_interval: 1,
            ..GovernorConfig::default()
        }),
        ..DurableOptions::default()
    };
    let mut dt = DurableTable::create_from_table(&dir, seed_table(rows), opts)
        .expect("create durable table");

    // Query path: point, range-count and range-sum shapes.
    for v in (0..rows * 2).step_by(101) {
        dt.execute(&HapQuery::Q1 { v, k: 3 }).expect("q1");
        dt.execute(&HapQuery::Q2 { vs: v, ve: v + 500 })
            .expect("q2");
        dt.execute(&HapQuery::Q3 {
            vs: v,
            ve: v + 999,
            k: 2,
        })
        .expect("q3");
    }

    // Engage snapshot mode so write batches publish to readers (the
    // publish counter is a no-op until a reader exists), and push a few
    // queries through the sampled snapshot-read path.
    let reader = dt.table().reader();
    for v in (0..rows * 2).step_by(257) {
        reader
            .execute(&HapQuery::Q2 { vs: v, ve: v + 300 })
            .expect("snapshot q2");
    }

    // Write path: inserts through the WAL, then force them all the way
    // down (flush seals the group commit, checkpoint applies + persists).
    let payload_arity = HapSchema::narrow().payload_cols;
    for i in 0..200u64 {
        dt.execute(&HapQuery::Q4 {
            key: rows * 2 + 1 + i * 2,
            payload: vec![7u32; payload_arity],
        })
        .expect("q4 insert");
    }
    dt.flush().expect("flush");
    dt.checkpoint().expect("checkpoint");
    dt.scrub_now().expect("scrub");

    // Chunk-parallel batched writes live on the plain engine surface
    // (`Table::execute_batch`); drive them directly — the registry is
    // process-global, so their signal lands in the same dump.
    let mut batch_table = seed_table(1_000);
    let batch: Vec<HapQuery> = (0..64u64)
        .map(|i| HapQuery::Q4 {
            key: 10_000 + i * 2,
            payload: vec![3u32; payload_arity],
        })
        .collect();
    batch_table.execute_batch(&batch).expect("batched inserts");

    // Governed execution: admission through the (roomy) slot gate plus
    // residency accounting on the main table; a second table under a
    // deliberately tiny budget adds eviction/rehydration churn (reads
    // only — its chunks stay clean, so every pass ends under budget and
    // never escalates).
    let ctx = QueryCtx::unbounded();
    for v in (0..rows * 2).step_by(513) {
        dt.execute_governed(&HapQuery::Q2 { vs: v, ve: v + 200 }, &ctx)
            .expect("governed q2");
    }
    let tiny_dir = test_dir("observability_e2e_evict");
    let tiny_opts = DurableOptions {
        governor: Some(GovernorConfig {
            memory_budget_bytes: 1, // every hydrated chunk is over budget
            check_interval: 1,
            governor_checkpoint: false,
            ..GovernorConfig::default()
        }),
        ..DurableOptions::default()
    };
    let mut tiny =
        DurableTable::create_from_table(&tiny_dir, seed_table(1_000), tiny_opts).expect("create");
    for v in (0..2_000).step_by(401) {
        tiny.execute_governed(&HapQuery::Q1 { v, k: 1 }, &ctx)
            .expect("governed q1");
    }

    let text = dt.metrics_text();

    // Query-path signal.
    assert_nonzero(&text, "casper_query_latency_ns_count{class=\"q1\"}");
    assert_nonzero(&text, "casper_query_latency_ns_count{class=\"q2\"}");
    assert_nonzero(&text, "casper_query_rows_scanned_total{class=\"q2\"}");
    assert_nonzero(&text, "casper_query_rows_scanned_total{class=\"q3\"}");
    assert_nonzero(&text, "casper_query_chunks_routed_total");
    assert_nonzero(&text, "casper_scan_partitions_total{path=\"plain\"}");

    // Write-path signal.
    assert_nonzero(&text, "casper_query_latency_ns_count{class=\"q4\"}");
    assert_nonzero(&text, "casper_wal_fsyncs_total");
    assert_nonzero(&text, "casper_snapshot_publishes_total");
    assert_nonzero(&text, "casper_write_batch_ops_count");

    // Persistence signal.
    assert_nonzero(&text, "casper_checkpoints_total{result=\"ok\"}");
    assert_nonzero(&text, "casper_checkpoint_duration_ns_count");
    assert_nonzero(&text, "casper_checkpoint_segment_bytes_total");

    // Scrub signal.
    assert_nonzero(&text, "casper_scrub_passes_total");
    assert_nonzero(&text, "casper_scrub_records_checked_total");

    // Governor signal: admission waits recorded, resident bytes
    // accounted, and the tiny-budget table's eviction/rehydration churn.
    assert_nonzero(&text, "casper_governor_admit_wait_ns_count");
    assert_nonzero(&text, "casper_governor_resident_bytes");
    assert_nonzero(&text, "casper_governor_evictions_total");
    assert_nonzero(&text, "casper_governor_rehydrations_total");

    // FM drift signal: at least one chunk with observed accesses.
    let drift_signal = text.lines().any(|l| {
        l.strip_prefix("casper_fm_observed_accesses{")
            .and_then(|rest| rest.split_once("} "))
            .is_some_and(|(_, v)| v.trim().parse::<f64>().is_ok_and(|x| x > 0.0))
    });
    assert!(drift_signal, "no chunk reported observed accesses:\n{text}");

    // Structural parse: every non-comment line is `series value`.
    for line in text
        .lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
    {
        let (_, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("unparseable line: {line}"));
        value
            .parse::<f64>()
            .unwrap_or_else(|e| panic!("bad value in `{line}`: {e}"));
    }

    // The JSON rendering must exist and carry the same engagement.
    let json = dt.metrics_json();
    assert!(json.starts_with('{'), "metrics_json: {json}");
    assert!(json.contains("casper_checkpoints_total"));
}

/// A full PITR cycle — archiving checkpoints, a hot backup, a watched
/// re-verification, a restore-to-LSN, a scrub over the archive — leaves
/// non-zero signal on every archive/backup metric.
#[test]
fn pitr_cycle_dump_has_archive_and_backup_signal() {
    casper_obs::enable();
    let dir = test_dir("observability_pitr");
    let backup_dir = test_dir("observability_pitr_backup");
    let opts = DurableOptions {
        background_checkpointer: false,
        archive: Some(casper_persist::ArchiveConfig::default()),
        ..DurableOptions::default()
    };
    let mut dt = DurableTable::create_from_table(&dir, seed_table(2_000), opts).expect("create");
    let payload_arity = HapSchema::narrow().payload_cols;
    // Three checkpointed rounds: each retires the superseded generation
    // (manifest + WAL links, eventually segments) into the archive.
    for round in 0..3u64 {
        for i in 0..40u64 {
            dt.execute(&HapQuery::Q4 {
                key: 100_001 + round * 1_000 + i * 2,
                payload: vec![5u32; payload_arity],
            })
            .expect("q4");
        }
        dt.checkpoint().expect("checkpoint");
    }
    let target = dt.stats().durable_lsn;

    dt.backup_to(&backup_dir).expect("backup");
    dt.watch_backup(&backup_dir);
    dt.scrub_now().expect("scrub"); // archive walk + backup re-verify
    let pit = DurableTable::open_at(&dir, target, opts).expect("open_at");
    assert!(pit.restored_lsn <= target);

    let text = dt.metrics_text();
    // Archive retire signal.
    assert_nonzero(&text, "casper_archive_retired_files_total");
    assert_nonzero(&text, "casper_archive_bytes");
    assert_nonzero(&text, "casper_archive_files");
    // Hot-backup signal.
    assert_nonzero(&text, "casper_backups_total");
    assert_nonzero(&text, "casper_backup_bytes_total");
    assert_nonzero(&text, "casper_backup_duration_ns_count");
    // Restore-to-LSN signal.
    assert_nonzero(&text, "casper_pitr_restores_total");
    assert_nonzero(&text, "casper_pitr_restore_duration_ns_count");
    // Scrub coverage of the archive and the watched backup.
    assert_nonzero(&text, "casper_scrub_archive_files_checked_total");
    assert_nonzero(
        &text,
        "casper_scrub_backup_verifications_total{result=\"ok\"}",
    );
}
