//! The fault-injection matrix: deterministic storage-fault schedules
//! driven through [`FaultVfs`], each checked against an oracle holding
//! exactly the *acknowledged* writes.
//!
//! The robustness contract these tests pin down:
//!
//! * **Zero-fault transparency** — a `FaultVfs` with an empty schedule
//!   produces bit-identical files to the real filesystem (the harness
//!   cannot perturb what it measures).
//! * **No acked-then-lost** — under any injected schedule (failed WAL
//!   fsyncs, torn writes, ENOSPC) plus a simulated power cut, recovery
//!   serves every write that was acknowledged. Un-acknowledged writes may
//!   vanish; acknowledged ones may not.
//! * **Typed degradation** — when durability cannot be re-proven (a
//!   poisoned WAL whose recovery checkpoint also fails, or persistent
//!   background-checkpoint failure), the table flips to explicit
//!   read-only: reads serve, writes fail with [`PersistError::Degraded`],
//!   and `reactivate()` is the way back.
//! * **Scrub** — latent corruption in at-rest records is detected by a
//!   scrub pass; damaged-but-resident chunks heal on the next checkpoint,
//!   damaged never-hydrated chunks are quarantined behind a typed error.

use casper_engine::{EngineConfig, LayoutMode, Table};
use casper_persist::{
    DurableOptions, DurableTable, FaultErr, FaultRule, FaultVfs, PersistError, VfsHandle, VfsOp,
};
use casper_storage::StorageError;
use casper_workload::{HapQuery, HapSchema};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const ROWS: u64 = 192;
/// Keys are even numbers 0, 2, …, 2·(ROWS−1); three chunks of 64.
const CHUNK_VALUES: usize = 64;

fn test_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn schema() -> HapSchema {
    HapSchema { payload_cols: 2 }
}

fn engine_config() -> EngineConfig {
    let mut config = EngineConfig::small(LayoutMode::Casper);
    config.chunk_values = CHUNK_VALUES;
    config.threads = 1;
    config
}

fn payload_row(key: u64) -> Vec<u32> {
    vec![(key % 251) as u32, (key % 83) as u32]
}

fn seed_table() -> Table {
    let keys: Vec<u64> = (0..ROWS).map(|i| i * 2).collect();
    let cols: Vec<Vec<u32>> = (0..2)
        .map(|c| keys.iter().map(|&k| payload_row(k)[c]).collect())
        .collect();
    Table::load(schema(), keys, cols, engine_config())
}

/// Marker key of write `i` (odd → never collides with seeded keys).
fn marker(i: usize) -> u64 {
    1 + 2 * i as u64
}

fn marker_write(i: usize) -> HapQuery {
    HapQuery::Q4 {
        key: marker(i),
        payload: payload_row(marker(i)),
    }
}

/// Fingerprint: row count, marker presence probes, full count, range sum.
fn fingerprint_durable(t: &mut DurableTable, n_markers: usize) -> Vec<u64> {
    let mut out = vec![t.len() as u64];
    for i in 0..n_markers {
        out.push(
            t.execute(&HapQuery::Q1 { v: marker(i), k: 2 })
                .expect("probe")
                .result
                .scalar(),
        );
    }
    for q in [
        HapQuery::Q2 {
            vs: 0,
            ve: u64::MAX,
        },
        HapQuery::Q3 {
            vs: 50,
            ve: 300,
            k: 2,
        },
    ] {
        out.push(t.execute(&q).expect("probe").result.scalar());
    }
    out
}

fn fingerprint_oracle(t: &mut Table, n_markers: usize) -> Vec<u64> {
    let mut out = vec![t.len() as u64];
    for i in 0..n_markers {
        out.push(
            t.execute(&HapQuery::Q1 { v: marker(i), k: 2 })
                .expect("probe")
                .result
                .scalar(),
        );
    }
    for q in [
        HapQuery::Q2 {
            vs: 0,
            ve: u64::MAX,
        },
        HapQuery::Q3 {
            vs: 50,
            ve: 300,
            k: 2,
        },
    ] {
        out.push(t.execute(&q).expect("probe").result.scalar());
    }
    out
}

fn fault_handle(seed: u64) -> (Arc<FaultVfs>, VfsHandle) {
    let vfs = Arc::new(FaultVfs::with_seed(seed));
    let handle = VfsHandle::fault(Arc::clone(&vfs));
    (vfs, handle)
}

/// Synchronous options: no background threads, so runs are deterministic
/// down to the byte and failures surface on the call that caused them.
fn sync_opts() -> DurableOptions {
    DurableOptions {
        background_checkpointer: false,
        ..DurableOptions::default()
    }
}

// ---------------------------------------------------------------------------
// Zero-fault transparency
// ---------------------------------------------------------------------------

/// Run the reference workload against `dir` through `handle`.
fn reference_workload(handle: VfsHandle, dir: &Path) {
    let mut t = DurableTable::create_from_table_with_vfs(handle, dir, seed_table(), sync_opts())
        .expect("create");
    for i in 0..6 {
        t.execute(&marker_write(i)).expect("write");
    }
    t.checkpoint().expect("checkpoint");
    for i in 6..9 {
        t.execute(&marker_write(i)).expect("write");
    }
    t.flush().expect("flush");
}

fn dir_contents(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = fs::read_dir(dir)
        .expect("read dir")
        .flatten()
        .map(|e| {
            (
                e.file_name().to_string_lossy().into_owned(),
                fs::read(e.path()).expect("read file"),
            )
        })
        .collect();
    files.sort();
    files
}

#[test]
fn zero_fault_vfs_is_bit_identical_to_real_vfs() {
    let dir_real = test_dir("fm_ident_real");
    let dir_fault = test_dir("fm_ident_fault");
    reference_workload(VfsHandle::default(), &dir_real);
    let (_vfs, handle) = fault_handle(0);
    reference_workload(handle, &dir_fault);

    let real = dir_contents(&dir_real);
    let fault = dir_contents(&dir_fault);
    let names = |v: &[(String, Vec<u8>)]| v.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>();
    assert_eq!(
        names(&real),
        names(&fault),
        "FaultVfs with an empty schedule must create the same files"
    );
    for ((name, a), (_, b)) in real.iter().zip(&fault) {
        assert_eq!(
            a, b,
            "{name} differs between RealVfs and zero-fault FaultVfs"
        );
    }
}

// ---------------------------------------------------------------------------
// Seeded fsync-failure schedules
// ---------------------------------------------------------------------------

fn matrix_seeds() -> Vec<u64> {
    if let Ok(s) = std::env::var("CASPER_FAULT_SEEDS") {
        let seeds: Vec<u64> = s.split(',').filter_map(|x| x.trim().parse().ok()).collect();
        if !seeds.is_empty() {
            return seeds;
        }
    }
    vec![1, 2, 3, 4]
}

/// For each seed, derive a fault schedule (which WAL fsync dies, which
/// checkpoint write hiccups) from the seed itself, stream writes, crash,
/// recover — and require every acknowledged write back. A single WAL-fsync
/// failure is *absorbed*: the seal poisons the log, the table rotates and
/// takes a recovery checkpoint, and only then acknowledges the write.
#[test]
fn seeded_fsync_schedules_never_lose_acked_writes() {
    let n = 12usize;
    for seed in matrix_seeds() {
        let dir = test_dir(&format!("fm_seed_{seed}"));
        let (vfs, handle) = fault_handle(seed);
        let mut t = DurableTable::create_from_table_with_vfs(
            handle.clone(),
            &dir,
            seed_table(),
            DurableOptions::default(),
        )
        .expect("create");

        // The seed decides which WAL fsync fails and which segment write
        // transiently hiccups (absorbed by the retry policy).
        vfs.inject(FaultRule::nth_fsync(
            "wal-",
            vfs.pick(0, 1, n as u64),
            FaultErr::Eio,
        ));
        vfs.inject(FaultRule {
            op: VfsOp::Write,
            path_substr: Some("seg-".into()),
            nth: Some(vfs.pick(1, 1, 3)),
            short_bytes: None,
            err: FaultErr::Enospc,
            times: 1,
        });

        let mut oracle = seed_table();
        for i in 0..n {
            t.execute(&marker_write(i))
                .unwrap_or_else(|e| panic!("seed {seed}: write {i} not absorbed: {e}"));
            oracle.execute(&marker_write(i)).expect("oracle");
        }
        assert!(!t.is_degraded(), "seed {seed}: transient faults degraded");
        assert!(
            vfs.counters().injected >= 1,
            "seed {seed}: schedule never fired"
        );
        drop(t);

        vfs.clear_faults();
        vfs.simulate_crash().expect("crash");
        let mut t = DurableTable::open_with_vfs(handle.clone(), &dir, DurableOptions::default())
            .unwrap_or_else(|e| panic!("seed {seed}: reopen failed: {e}"));
        assert_eq!(
            fingerprint_durable(&mut t, n),
            fingerprint_oracle(&mut oracle, n),
            "seed {seed} (faults: {:?}) lost acknowledged writes",
            vfs.injected_faults()
        );
    }
}

// ---------------------------------------------------------------------------
// Crash semantics of the group-commit window
// ---------------------------------------------------------------------------

#[test]
fn crash_drops_staged_but_never_sealed_writes() {
    let dir = test_dir("fm_staged_crash");
    let (vfs, handle) = fault_handle(21);
    let opts = DurableOptions {
        group_commit: 100, // nothing auto-seals
        ..sync_opts()
    };
    let mut t = DurableTable::create_from_table_with_vfs(handle.clone(), &dir, seed_table(), opts)
        .expect("create");
    for i in 0..4 {
        t.execute(&marker_write(i)).expect("write");
    }
    t.flush().expect("seal first four"); // markers 0..4 acknowledged durable
    for i in 4..6 {
        t.execute(&marker_write(i)).expect("write"); // staged, NOT durable
    }
    assert_eq!(t.stats().staged_records, 2);
    // Process kill: Drop never runs, the open batch never seals. (The
    // leaked table memory is irrelevant to the test process.)
    std::mem::forget(t);

    vfs.simulate_crash().expect("crash");
    let mut oracle = seed_table();
    for i in 0..4 {
        oracle.execute(&marker_write(i)).expect("oracle");
    }
    let mut t =
        DurableTable::open_with_vfs(handle.clone(), &dir, DurableOptions::default()).expect("open");
    assert_eq!(
        fingerprint_durable(&mut t, 6),
        fingerprint_oracle(&mut oracle, 6),
        "crash must land on exactly the sealed prefix (markers 4,5 were \
         never acknowledged durable and must probe as absent)"
    );
}

// ---------------------------------------------------------------------------
// Poisoned WAL: recovery checkpoint, and degradation when it fails too
// ---------------------------------------------------------------------------

#[test]
fn poisoned_wal_acks_via_recovery_checkpoint() {
    let dir = test_dir("fm_poison_recover");
    let (vfs, handle) = fault_handle(31);
    let mut t = DurableTable::create_from_table_with_vfs(
        handle.clone(),
        &dir,
        seed_table(),
        DurableOptions::default(),
    )
    .expect("create");
    for i in 0..3 {
        t.execute(&marker_write(i)).expect("write");
    }

    // The next WAL fsync fails: the batch's durability is unknown, the
    // log is poisoned — the write must still come back Ok, acknowledged
    // through the synchronous recovery checkpoint instead of the WAL.
    vfs.inject(FaultRule::nth_fsync("wal-", 1, FaultErr::Eio));
    let gen_before = t.stats().generation;
    t.execute(&marker_write(3))
        .expect("write acked via recovery checkpoint");
    assert_eq!(vfs.counters().injected, 1, "the fsync fault fired");
    assert!(t.stats().generation > gen_before, "recovery checkpointed");
    assert!(!t.is_degraded());
    drop(t);

    vfs.simulate_crash().expect("crash");
    let mut oracle = seed_table();
    for i in 0..4 {
        oracle.execute(&marker_write(i)).expect("oracle");
    }
    let mut t =
        DurableTable::open_with_vfs(handle.clone(), &dir, DurableOptions::default()).expect("open");
    assert_eq!(
        fingerprint_durable(&mut t, 4),
        fingerprint_oracle(&mut oracle, 4),
        "write acknowledged through the recovery checkpoint was lost"
    );
}

#[test]
fn poisoned_wal_with_failed_recovery_checkpoint_degrades() {
    let dir = test_dir("fm_poison_degrade");
    let (vfs, handle) = fault_handle(32);
    let mut t = DurableTable::create_from_table_with_vfs(
        handle.clone(),
        &dir,
        seed_table(),
        DurableOptions::default(),
    )
    .expect("create");
    for i in 0..2 {
        t.execute(&marker_write(i)).expect("write");
    }

    // The WAL fsync fails AND the device refuses all checkpoint writes:
    // durability of the batch can not be re-proven anywhere. The write
    // must fail typed (never a false acknowledgement) and the table must
    // flip to explicit read-only.
    vfs.inject(FaultRule::nth_fsync("wal-", 1, FaultErr::Eio));
    vfs.inject(FaultRule::on_path(VfsOp::Write, "seg-", FaultErr::Enospc));
    vfs.inject(FaultRule::on_path(
        VfsOp::Write,
        "manifest-",
        FaultErr::Enospc,
    ));
    let err = t.execute(&marker_write(2)).expect_err("must not ack");
    assert!(
        matches!(err, PersistError::Degraded { .. }),
        "typed degradation, got {err}"
    );
    assert!(t.is_degraded());
    assert!(
        t.degraded_reason()
            .expect("reason")
            .contains("durability unknown"),
        "reason names the cause: {:?}",
        t.degraded_reason()
    );
    assert!(t.stats().degraded);

    // Reads keep serving from memory (including the partially-applied
    // marker 2 — applied in memory, never acknowledged durable)…
    t.execute(&HapQuery::Q2 {
        vs: 0,
        ve: u64::MAX,
    })
    .expect("reads serve on a degraded table");
    // …while writes stay rejected with the typed error.
    let err = t.execute(&marker_write(3)).expect_err("writes rejected");
    assert!(matches!(err, PersistError::Degraded { .. }), "got {err}");
    drop(t);

    // Crash while degraded: recovery must land on exactly the
    // acknowledged prefix — marker 2 (failed) and 3 (rejected) absent.
    vfs.clear_faults();
    vfs.simulate_crash().expect("crash");
    let mut oracle = seed_table();
    for i in 0..2 {
        oracle.execute(&marker_write(i)).expect("oracle");
    }
    let mut t =
        DurableTable::open_with_vfs(handle.clone(), &dir, DurableOptions::default()).expect("open");
    assert_eq!(
        fingerprint_durable(&mut t, 4),
        fingerprint_oracle(&mut oracle, 4),
        "degraded crash state must hold exactly the acked writes"
    );
}

#[test]
fn reactivate_recovers_a_degraded_table() {
    let dir = test_dir("fm_reactivate");
    let (vfs, handle) = fault_handle(33);
    let mut t = DurableTable::create_from_table_with_vfs(
        handle.clone(),
        &dir,
        seed_table(),
        DurableOptions::default(),
    )
    .expect("create");
    for i in 0..2 {
        t.execute(&marker_write(i)).expect("write");
    }
    vfs.inject(FaultRule::nth_fsync("wal-", 1, FaultErr::Eio));
    vfs.inject(FaultRule::on_path(VfsOp::Write, "seg-", FaultErr::Enospc));
    vfs.inject(FaultRule::on_path(
        VfsOp::Write,
        "manifest-",
        FaultErr::Enospc,
    ));
    t.execute(&marker_write(2)).expect_err("degrades");
    assert!(t.is_degraded());

    // While the storage is still broken, reactivation must fail — and
    // leave the table degraded rather than half-open.
    t.reactivate().expect_err("storage still broken");
    assert!(t.is_degraded());

    // Operator fixes the device: reactivate re-proves the storage with a
    // synchronous checkpoint and lifts the mode.
    vfs.clear_faults();
    t.reactivate().expect("reactivate after repair");
    assert!(!t.is_degraded());
    assert_eq!(t.stats().consecutive_checkpoint_failures, 0);
    t.execute(&marker_write(3)).expect("writes resume");
    drop(t);

    // Marker 2 was applied in memory before its acknowledgement failed;
    // the reactivation checkpoint snapshots the table as-is, so after a
    // clean close all four markers are durable.
    let mut oracle = seed_table();
    for i in 0..4 {
        oracle.execute(&marker_write(i)).expect("oracle");
    }
    let mut t =
        DurableTable::open_with_vfs(handle.clone(), &dir, DurableOptions::default()).expect("open");
    assert_eq!(
        fingerprint_durable(&mut t, 4),
        fingerprint_oracle(&mut oracle, 4)
    );
}

// ---------------------------------------------------------------------------
// Background-checkpointer failure escalation
// ---------------------------------------------------------------------------

#[test]
fn background_failures_escalate_to_degraded_then_reactivate() {
    let dir = test_dir("fm_bg_escalate");
    let (vfs, handle) = fault_handle(41);
    let opts = DurableOptions {
        group_commit: 1,
        wal_checkpoint_bytes: 1, // checkpoint after every sealed batch
        background_checkpointer: true,
        checkpoint_retries: 1,
        degrade_after: 2,
        ..DurableOptions::default()
    };
    let mut t = DurableTable::create_from_table_with_vfs(handle.clone(), &dir, seed_table(), opts)
        .expect("create");

    // Manifests can never commit: every background checkpoint fails.
    vfs.inject(FaultRule::on_path(
        VfsOp::Write,
        "manifest-",
        FaultErr::Enospc,
    ));
    let mut oracle = seed_table();
    let mut acked = 0usize;
    for i in 0..200 {
        match t.execute(&marker_write(i)) {
            Ok(_) => {
                oracle.execute(&marker_write(i)).expect("oracle");
                acked += 1;
            }
            Err(e) => {
                assert!(
                    matches!(e, PersistError::Degraded { .. }),
                    "escalation must surface typed, got {e}"
                );
                break;
            }
        }
    }
    assert!(
        t.is_degraded(),
        "2 consecutive background failures must degrade (acked {acked})"
    );
    let cp = t.checkpoint_stats();
    assert!(cp.consecutive_failures >= 2, "stats: {cp:?}");
    assert!(!cp.recent_failures.is_empty());
    let last = cp.recent_failures.last().expect("ring entry");
    assert!(last.generation > 1, "failure carries its LSN coordinates");
    assert!(last.error.contains("28") || !last.error.is_empty());
    assert!(t.take_checkpoint_error().is_some());

    // Every write acknowledged before the flip must survive a crash even
    // though no checkpoint ever committed: the WAL chain carries them.
    vfs.clear_faults();
    t.reactivate().expect("reactivate after repair");
    assert!(!t.is_degraded());
    t.execute(&marker_write(acked)).expect("writes resume");
    oracle.execute(&marker_write(acked)).expect("oracle");
    drop(t);
    vfs.simulate_crash().expect("crash");
    let mut t =
        DurableTable::open_with_vfs(handle.clone(), &dir, DurableOptions::default()).expect("open");
    assert_eq!(
        fingerprint_durable(&mut t, acked + 1),
        fingerprint_oracle(&mut oracle, acked + 1),
        "acked writes lost across background-failure escalation"
    );
}

// ---------------------------------------------------------------------------
// Scrubber: detect, heal, quarantine
// ---------------------------------------------------------------------------

/// Flip one byte near the end of the newest segment file — inside some
/// chunk's record — and return the damaged file's path.
fn damage_newest_segment(dir: &Path) -> PathBuf {
    let seg = fs::read_dir(dir)
        .expect("dir")
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .is_some_and(|n| n.to_string_lossy().starts_with("seg-"))
        })
        .max()
        .expect("a segment exists");
    let mut bytes = fs::read(&seg).expect("segment bytes");
    let off = bytes.len() - 16;
    bytes[off] ^= 0x40;
    fs::write(&seg, &bytes).expect("damage");
    seg
}

#[test]
fn scrub_detects_and_checkpoint_heals_hydrated_damage() {
    let dir = test_dir("fm_scrub_heal");
    let mut t = DurableTable::create_from_table(&dir, seed_table(), sync_opts()).expect("create");
    let want = fingerprint_durable(&mut t, 0);
    assert_eq!(t.stats().dirty_chunks, 0);
    damage_newest_segment(&dir);

    // Detection: the pass re-reads every record and fails the damaged
    // one's CRC; the chunk is resident, so it is re-marked dirty.
    let report = t.scrub_now().expect("scrub pass");
    assert_eq!(report.findings.len(), 1, "one damaged record");
    assert_eq!(t.stats().scrub_corrupt_records, 1);
    assert!(t.stats().dirty_chunks >= 1, "damaged chunk marked dirty");
    assert!(
        t.quarantined_chunks().is_empty(),
        "resident → no quarantine"
    );

    // Heal: the next checkpoint re-encodes the damaged chunk from memory
    // into a fresh segment; a second pass comes back clean.
    t.checkpoint().expect("healing checkpoint");
    let report = t.scrub_now().expect("verify pass");
    assert!(report.findings.is_empty(), "damage must be healed");
    drop(t);

    let mut t = DurableTable::open(&dir, DurableOptions::default()).expect("reopen");
    t.hydrate_all().expect("hydrate");
    assert_eq!(fingerprint_durable(&mut t, 0), want);
}

#[test]
fn scrub_quarantines_unhydrated_damage() {
    let dir = test_dir("fm_scrub_quarantine");
    drop(DurableTable::create_from_table(&dir, seed_table(), sync_opts()).expect("create"));
    damage_newest_segment(&dir);

    // Lazy (mmap) reopen: no chunk is hydrated, so the damaged record has
    // no in-memory copy to heal from.
    let mut t = DurableTable::open(&dir, DurableOptions::default()).expect("open");
    let report = t.scrub_now().expect("scrub pass");
    assert_eq!(report.findings.len(), 1);
    let damaged = report.findings[0].chunk;
    assert_eq!(t.quarantined_chunks(), vec![damaged]);
    assert_eq!(t.stats().quarantined_chunks, 1);

    // Hydration is refused typed — not a CRC panic mid-query.
    let err = t.hydrate_all().expect_err("quarantine blocks hydration");
    match err {
        PersistError::Storage(StorageError::Quarantined { chunk, .. }) => {
            assert_eq!(chunk, damaged as u64);
        }
        other => panic!("expected Quarantined, got {other}"),
    }

    // Healthy chunks keep serving (each chunk holds 64 even keys starting
    // at 128·chunk; probe one from a chunk that is not the damaged one).
    let healthy = (damaged + 1) % 3;
    let probe = 128 * healthy as u64 + 2;
    let hit = t
        .execute(&HapQuery::Q1 { v: probe, k: 2 })
        .expect("healthy chunk serves")
        .result
        .scalar();
    assert_eq!(hit, 1, "probe key {probe} must be present");

    // A query routed to the damaged chunk fails typed (corrupt record),
    // never panics.
    let probe = 128 * damaged as u64 + 2;
    let err = t
        .execute(&HapQuery::Q1 { v: probe, k: 2 })
        .expect_err("damaged chunk must fail typed");
    assert!(
        matches!(
            err,
            PersistError::Storage(StorageError::Corrupt { .. })
                | PersistError::Storage(StorageError::Quarantined { .. })
        ),
        "got {err}"
    );
}
