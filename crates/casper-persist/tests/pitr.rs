//! Point-in-time recovery: the archive, `open_at`, and hot backup.
//!
//! The contract these tests pin down:
//!
//! * **Bit-exact restore** — with archiving on, `open_at(lsn)` restores
//!   exactly the state whose last committed LSN is the largest commit
//!   boundary at or below `lsn`, across all six layout modes, compared
//!   against an in-memory oracle fingerprinted after every acknowledged
//!   write. Mid-batch targets round down to their commit boundary.
//! * **Re-layout boundary** — an LSN strictly before an `optimize()`
//!   re-layout restores the *old* physical layout with zero layout
//!   solves and zero codec re-encodes; at the shared boundary LSN the
//!   lower generation (the pre-re-layout layout) wins.
//! * **Retire crash safety** — faults and power cuts at any point of the
//!   archive retire (rename, index write, directory fsync) never cost an
//!   acknowledged write, never degrade the live table, and the index
//!   reconciles itself on the next checkpoint.
//! * **Hot backup** — `begin_backup` fences at a committed LSN; the copy
//!   runs while the source keeps absorbing writes; the restored backup
//!   equals the oracle at the fence, and `verify_backup` proves every
//!   byte. Faults during the copy surface as typed errors, leave the
//!   live table untouched, and release the pin for a clean retry.
//! * **Retention** — LSNs behind the retention horizon fail with a typed
//!   error, never a panic; newer LSNs stay restorable.
//! * **Scrub** — corrupted archive files become findings + counters;
//!   serving is never blocked by archive damage.

use casper_engine::optimize::OptimizeOptions;
use casper_engine::{EngineConfig, LayoutMode, Table};
use casper_persist::{
    ArchiveConfig, DurableOptions, DurableTable, FaultErr, FaultRule, FaultVfs, PersistError,
    VfsHandle, VfsOp,
};
use casper_workload::{HapQuery, HapSchema};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const ROWS: u64 = 192;
/// Keys are even numbers 0, 2, …, 2·(ROWS−1); three chunks of 64.
const CHUNK_VALUES: usize = 64;
/// Writes per history; small so the whole matrix stays debug-fast.
const WRITES: usize = 8;
/// Checkpoints after these writes: each one retires the superseded
/// manifest, its newly-unreferenced segments, and the rotated-out WAL.
const CHECKPOINT_AFTER: [usize; 3] = [1, 4, 6];

fn test_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn schema() -> HapSchema {
    HapSchema { payload_cols: 2 }
}

fn engine_config(mode: LayoutMode) -> EngineConfig {
    let mut config = EngineConfig::small(mode);
    config.chunk_values = CHUNK_VALUES;
    config.threads = 1;
    config
}

fn payload_row(key: u64) -> Vec<u32> {
    vec![(key % 251) as u32, (key % 83) as u32]
}

fn seed_table(mode: LayoutMode) -> Table {
    let keys: Vec<u64> = (0..ROWS).map(|i| i * 2).collect();
    let cols: Vec<Vec<u32>> = (0..2)
        .map(|c| keys.iter().map(|&k| payload_row(k)[c]).collect())
        .collect();
    Table::load(schema(), keys, cols, engine_config(mode))
}

/// Marker key of write `i` (odd → never collides with seeded keys).
fn marker(i: usize) -> u64 {
    1 + 2 * i as u64
}

fn marker_write(i: usize) -> HapQuery {
    HapQuery::Q4 {
        key: marker(i),
        payload: payload_row(marker(i)),
    }
}

/// Fingerprint: row count, marker presence probes, full count, range sum.
fn fingerprint_oracle(t: &mut Table, n_markers: usize) -> Vec<u64> {
    let mut out = vec![t.len() as u64];
    for i in 0..n_markers {
        out.push(
            t.execute(&HapQuery::Q1 { v: marker(i), k: 2 })
                .expect("probe")
                .result
                .scalar(),
        );
    }
    for q in [
        HapQuery::Q2 {
            vs: 0,
            ve: u64::MAX,
        },
        HapQuery::Q3 {
            vs: 50,
            ve: 300,
            k: 2,
        },
    ] {
        out.push(t.execute(&q).expect("probe").result.scalar());
    }
    out
}

fn fingerprint_durable(t: &mut DurableTable, n_markers: usize) -> Vec<u64> {
    let mut out = vec![t.len() as u64];
    for i in 0..n_markers {
        out.push(
            t.execute(&HapQuery::Q1 { v: marker(i), k: 2 })
                .expect("probe")
                .result
                .scalar(),
        );
    }
    for q in [
        HapQuery::Q2 {
            vs: 0,
            ve: u64::MAX,
        },
        HapQuery::Q3 {
            vs: 50,
            ve: 300,
            k: 2,
        },
    ] {
        out.push(t.execute(&q).expect("probe").result.scalar());
    }
    out
}

fn fault_handle(seed: u64) -> (Arc<FaultVfs>, VfsHandle) {
    let vfs = Arc::new(FaultVfs::with_seed(seed));
    let handle = VfsHandle::fault(Arc::clone(&vfs));
    (vfs, handle)
}

/// Synchronous options with archiving on: no background threads, every
/// checkpoint (and its retire pass) runs inline on the calling thread.
fn archive_opts() -> DurableOptions {
    DurableOptions {
        background_checkpointer: false,
        archive: Some(ArchiveConfig::default()),
        ..DurableOptions::default()
    }
}

/// One committed point of a history: the batch's commit LSN and the
/// oracle fingerprint immediately after it was acknowledged.
struct Point {
    lsn: u64,
    fingerprint: Vec<u64>,
}

/// Drive the reference workload with archiving on: `WRITES` marker
/// writes (group commit = 1, so each is its own sealed batch) with
/// checkpoints interleaved so superseded generations actually retire.
/// Returns one `Point` per acknowledged write.
fn build_history(handle: VfsHandle, dir: &Path, mode: LayoutMode) -> Vec<Point> {
    let mut t =
        DurableTable::create_from_table_with_vfs(handle, dir, seed_table(mode), archive_opts())
            .expect("create");
    let mut oracle = seed_table(mode);
    let mut points = Vec::new();
    for i in 0..WRITES {
        t.execute(&marker_write(i)).expect("write");
        oracle.execute(&marker_write(i)).expect("oracle");
        points.push(Point {
            lsn: t.stats().next_lsn - 1,
            fingerprint: fingerprint_oracle(&mut oracle, WRITES),
        });
        if CHECKPOINT_AFTER.contains(&i) {
            t.checkpoint().expect("checkpoint");
        }
    }
    points
}

// ---------------------------------------------------------------------------
// open_at: bit-exact restore across every mode
// ---------------------------------------------------------------------------

/// Property: for every layout mode and every acknowledged commit LSN in
/// an archived history, `open_at(lsn)` equals the in-memory oracle at
/// that write — even for LSNs whose generation was long superseded.
#[test]
fn open_at_matches_oracle_across_modes() {
    for mode in LayoutMode::all() {
        let dir = test_dir(&format!("pitr_modes_{mode:?}"));
        let points = build_history(VfsHandle::default(), &dir, mode);
        for (i, p) in points.iter().enumerate() {
            let mut pit = DurableTable::open_at(&dir, p.lsn, archive_opts())
                .unwrap_or_else(|e| panic!("{mode:?}: open_at({}) failed: {e}", p.lsn));
            assert_eq!(
                pit.restored_lsn, p.lsn,
                "{mode:?}: write {i} targeted a commit boundary"
            );
            assert_eq!(
                fingerprint_oracle(&mut pit.table, WRITES),
                p.fingerprint,
                "{mode:?}: open_at({}) diverged from the oracle at write {i}",
                p.lsn
            );
        }
    }
}

/// A target between two commit boundaries rounds *down*: nothing between
/// boundaries was ever acknowledged, so nothing newer may appear.
#[test]
fn open_at_mid_batch_rounds_down_to_commit_boundary() {
    let dir = test_dir("pitr_mid_batch");
    let points = build_history(VfsHandle::default(), &dir, LayoutMode::Casper);
    // With group commit = 1 each batch spans two LSNs (op, commit
    // marker), so `commit + 1` lands strictly inside the next batch.
    let p = &points[2];
    let mut pit = DurableTable::open_at(&dir, p.lsn + 1, archive_opts()).expect("open_at");
    assert_eq!(pit.restored_lsn, p.lsn, "mid-batch target must round down");
    assert_eq!(fingerprint_oracle(&mut pit.table, WRITES), p.fingerprint);
}

// ---------------------------------------------------------------------------
// open_at across a re-layout boundary
// ---------------------------------------------------------------------------

/// An LSN from before an `optimize()` re-layout restores the *old*
/// layout — with zero layout solves and zero codec re-encodes — and at
/// the boundary LSN shared by the pre- and post-re-layout manifests the
/// lower generation (the old layout) wins.
#[test]
fn open_at_before_relayout_restores_old_layout_without_solving() {
    let dir = test_dir("pitr_relayout");
    let mut t =
        DurableTable::create_from_table(&dir, seed_table(LayoutMode::Casper), archive_opts())
            .expect("create");
    let mut oracle = seed_table(LayoutMode::Casper);
    for i in 0..3 {
        t.execute(&marker_write(i)).expect("write");
        oracle.execute(&marker_write(i)).expect("oracle");
    }
    t.checkpoint().expect("pre-relayout checkpoint");
    let pre_lsn = t.stats().durable_lsn;
    let pre_gen = t.stats().generation;
    let pre_fingerprint = fingerprint_oracle(&mut oracle, 6);

    // Re-layout for a skewed sample; optimize() checkpoints the new
    // layout into a fresh generation at the *same* durable LSN.
    let sample: Vec<HapQuery> = (0..40u64)
        .map(|i| HapQuery::Q2 {
            vs: i * 8,
            ve: i * 8 + 40,
        })
        .collect();
    t.optimize(&sample, &OptimizeOptions::default())
        .expect("optimize");
    assert!(t.stats().generation > pre_gen, "re-layout checkpointed");
    for i in 3..6 {
        t.execute(&marker_write(i)).expect("write");
    }
    t.checkpoint().expect("post-relayout checkpoint");
    drop(t);

    // Eager restore (mmap_restore: false) so every chunk decodes inside
    // open_at — the telemetry deltas then cover the full restore, not
    // just the chunks the fingerprint happens to touch.
    let opts = DurableOptions {
        mmap_restore: false,
        ..archive_opts()
    };
    let solves_before = casper_core::solver::telemetry::solve_count();
    let encodes_before = casper_storage::compress::telemetry::encode_count();
    let mut pit = DurableTable::open_at(&dir, pre_lsn, opts).expect("open_at before re-layout");
    assert_eq!(
        casper_core::solver::telemetry::solve_count(),
        solves_before,
        "restoring an archived layout must not invoke the solver"
    );
    assert_eq!(
        casper_storage::compress::telemetry::encode_count(),
        encodes_before,
        "restoring an archived layout must not re-encode any fragment"
    );
    assert_eq!(
        pit.generation, pre_gen,
        "the boundary LSN is shared by both manifests; the lower \
         generation (the old layout) must win"
    );
    assert_eq!(pit.restored_lsn, pre_lsn);
    assert_eq!(
        fingerprint_oracle(&mut pit.table, 6),
        pre_fingerprint,
        "pre-re-layout state diverged"
    );
}

// ---------------------------------------------------------------------------
// Retire crash safety
// ---------------------------------------------------------------------------

/// Faults at every phase of the archive retire — the rename into
/// `archive/`, the index rewrite (torn at assorted byte offsets), the
/// directory fsyncs — followed by a power cut. Retire is best-effort
/// post-commit: the fault must never fail a write, never degrade the
/// table, and recovery + the reconciled index must still serve both the
/// live state and the archived history.
#[test]
fn archive_retire_fault_matrix() {
    let schedules: Vec<(&str, FaultRule)> = vec![
        (
            "rename-into-archive",
            FaultRule {
                op: VfsOp::Rename,
                path_substr: Some("archive".into()),
                nth: Some(1),
                short_bytes: None,
                err: FaultErr::Eio,
                times: 1,
            },
        ),
        (
            "second-rename",
            FaultRule {
                op: VfsOp::Rename,
                path_substr: Some("archive".into()),
                nth: Some(2),
                short_bytes: None,
                err: FaultErr::Eio,
                times: 1,
            },
        ),
        (
            "index-write-torn-start",
            FaultRule::short_write("archive-index", 1, 0, FaultErr::Eio),
        ),
        (
            "index-write-torn-mid",
            FaultRule::short_write("archive-index", 1, 9, FaultErr::Enospc),
        ),
        (
            "index-write-torn-late",
            FaultRule::short_write("archive-index", 2, 33, FaultErr::Eio),
        ),
        (
            "archive-dir-fsync",
            FaultRule {
                op: VfsOp::FsyncDir,
                path_substr: Some("archive".into()),
                nth: Some(1),
                short_bytes: None,
                err: FaultErr::Eio,
                times: 1,
            },
        ),
        (
            "archived-file-read",
            FaultRule {
                op: VfsOp::Read,
                path_substr: Some("wal-".into()),
                nth: Some(1),
                short_bytes: None,
                err: FaultErr::Eio,
                times: 1,
            },
        ),
    ];
    for (seed, (name, rule)) in schedules.into_iter().enumerate() {
        let (vfs, handle) = fault_handle(seed as u64);
        let dir = test_dir(&format!("pitr_retire_fault_{seed}"));
        vfs.inject(rule);
        let mut t = DurableTable::create_from_table_with_vfs(
            handle.clone(),
            &dir,
            seed_table(LayoutMode::Casper),
            archive_opts(),
        )
        .expect("create");
        let mut oracle = seed_table(LayoutMode::Casper);
        let mut last_lsn = 0;
        for i in 0..WRITES {
            t.execute(&marker_write(i))
                .unwrap_or_else(|e| panic!("{name}: write {i} failed: {e}"));
            oracle.execute(&marker_write(i)).expect("oracle");
            last_lsn = t.stats().next_lsn - 1;
            if CHECKPOINT_AFTER.contains(&i) {
                t.checkpoint()
                    .unwrap_or_else(|e| panic!("{name}: retire fault leaked into checkpoint: {e}"));
            }
        }
        assert!(!t.is_degraded(), "{name}: retire fault degraded the table");
        assert!(vfs.counters().injected >= 1, "{name}: schedule never fired");
        drop(t);

        vfs.clear_faults();
        vfs.simulate_crash().expect("crash");
        let mut t = DurableTable::open_with_vfs(handle.clone(), &dir, archive_opts())
            .unwrap_or_else(|e| panic!("{name}: reopen after crash failed: {e}"));
        assert_eq!(
            fingerprint_durable(&mut t, WRITES),
            fingerprint_oracle(&mut oracle, WRITES),
            "{name} (faults: {:?}): lost acknowledged writes",
            vfs.injected_faults()
        );
        // The next checkpoint reconciles the index against the directory;
        // afterwards the archived history must be fully restorable again.
        t.execute(&marker_write(WRITES)).expect("post-crash write");
        t.checkpoint().expect("reconciling checkpoint");
        t.archive_index()
            .expect("index loads clean after reconcile");
        let mut pit =
            DurableTable::open_at_with_vfs(handle.clone(), &dir, last_lsn, archive_opts())
                .unwrap_or_else(|e| panic!("{name}: open_at({last_lsn}) after crash failed: {e}"));
        assert_eq!(
            fingerprint_oracle(&mut pit.table, WRITES),
            fingerprint_oracle(&mut oracle, WRITES),
            "{name}: archived history diverged after crash + reconcile"
        );
    }
}

// ---------------------------------------------------------------------------
// Hot backup
// ---------------------------------------------------------------------------

/// The online backup contract: `begin_backup` fences at a committed LSN,
/// the copy runs on another thread while the source keeps absorbing
/// writes, and the finished backup (a) verifies clean, (b) opens as a
/// table bit-identical to the oracle at the fence, and (c) never
/// perturbed the live table, which kept moving during the copy.
#[test]
fn hot_backup_is_consistent_under_concurrent_writes() {
    let dir = test_dir("pitr_hot_backup");
    let backup_dir = test_dir("pitr_hot_backup_dest");
    let mut t =
        DurableTable::create_from_table(&dir, seed_table(LayoutMode::Casper), archive_opts())
            .expect("create");
    let mut oracle = seed_table(LayoutMode::Casper);
    for i in 0..4 {
        t.execute(&marker_write(i)).expect("write");
        oracle.execute(&marker_write(i)).expect("oracle");
    }
    t.checkpoint().expect("checkpoint");

    let job = t.begin_backup(&backup_dir).expect("begin_backup");
    let fence_lsn = job.backup_lsn();
    assert_eq!(fence_lsn, t.stats().next_lsn - 1, "fence = last ack'd LSN");
    let at_fence = fingerprint_oracle(&mut oracle, WRITES);
    let copier = std::thread::spawn(move || job.run());

    // The source keeps serving and absorbing writes while the copy runs.
    for i in 4..WRITES {
        t.execute(&marker_write(i)).expect("write during backup");
        oracle.execute(&marker_write(i)).expect("oracle");
    }
    let report = copier.join().expect("copier").expect("backup");
    assert_eq!(report.backup_lsn, fence_lsn);
    assert!(report.files > 0 && report.bytes > 0);

    // Every byte of the backup proves out, and its WAL chain ends at the
    // fence: the writes that raced the copy are not in it.
    let verify = DurableTable::verify_backup(&backup_dir).expect("verify_backup");
    assert_eq!(verify.last_lsn, fence_lsn);
    let mut restored =
        DurableTable::open(&backup_dir, archive_opts()).expect("open backup as a table");
    assert_eq!(
        fingerprint_durable(&mut restored, WRITES),
        at_fence,
        "backup diverged from the oracle at the fence LSN"
    );
    // The live table saw all eight writes.
    assert_eq!(
        fingerprint_durable(&mut t, WRITES),
        fingerprint_oracle(&mut oracle, WRITES),
        "the backup perturbed the live table"
    );
}

/// Faults during the backup copy (torn writes, failed fsyncs, failed
/// renames in the destination) surface as typed errors, leave the live
/// table untouched, and release the source pin so an immediate retry
/// succeeds once the fault clears.
#[test]
fn backup_copy_fault_matrix() {
    let schedules: Vec<(&str, FaultRule)> = vec![
        (
            "dest-manifest-torn",
            FaultRule::short_write("bkup", 1, 7, FaultErr::Eio),
        ),
        (
            "dest-enospc",
            FaultRule::short_write("bkup", 2, 0, FaultErr::Enospc),
        ),
        ("dest-fsync", FaultRule::nth_fsync("bkup", 1, FaultErr::Eio)),
        (
            "dest-current-rename",
            FaultRule {
                op: VfsOp::Rename,
                path_substr: Some("bkup".into()),
                nth: Some(1),
                short_bytes: None,
                err: FaultErr::Eio,
                times: 1,
            },
        ),
        (
            "source-read",
            FaultRule {
                op: VfsOp::Read,
                path_substr: Some("seg-".into()),
                nth: Some(1),
                short_bytes: None,
                err: FaultErr::Eio,
                times: 1,
            },
        ),
    ];
    for (seed, (name, rule)) in schedules.into_iter().enumerate() {
        let (vfs, handle) = fault_handle(100 + seed as u64);
        let dir = test_dir(&format!("pitr_backup_fault_{seed}"));
        let backup_dir = test_dir(&format!("pitr_backup_fault_{seed}_bkup"));
        let mut t = DurableTable::create_from_table_with_vfs(
            handle.clone(),
            &dir,
            seed_table(LayoutMode::Casper),
            archive_opts(),
        )
        .expect("create");
        let mut oracle = seed_table(LayoutMode::Casper);
        for i in 0..3 {
            t.execute(&marker_write(i)).expect("write");
            oracle.execute(&marker_write(i)).expect("oracle");
        }
        t.checkpoint().expect("checkpoint");
        vfs.inject(rule);
        let err = t
            .backup_to(&backup_dir)
            .expect_err("faulted backup must fail");
        assert!(
            matches!(err, PersistError::Io(_) | PersistError::Storage(_)),
            "{name}: backup failure must be typed, got {err}"
        );
        assert!(vfs.counters().injected >= 1, "{name}: fault never fired");
        assert!(!t.is_degraded(), "{name}: backup fault degraded the source");

        // The live table is untouched and still writable…
        t.execute(&marker_write(3))
            .expect("write after failed backup");
        oracle.execute(&marker_write(3)).expect("oracle");
        // …and the failed job's pin released on drop: a checkpoint (with
        // its retire pass) and a clean retry both go through.
        vfs.clear_faults();
        t.checkpoint().expect("checkpoint after failed backup");
        let _ = fs::remove_dir_all(&backup_dir);
        t.backup_to(&backup_dir)
            .expect("retry after clearing fault");
        let verify = DurableTable::verify_backup_with_vfs(handle.clone(), &backup_dir)
            .expect("retried backup verifies");
        assert_eq!(verify.last_lsn, t.stats().next_lsn - 1);
        let mut restored =
            DurableTable::open(&backup_dir, archive_opts()).expect("open retried backup");
        assert_eq!(
            fingerprint_durable(&mut restored, 4),
            fingerprint_oracle(&mut oracle, 4),
            "{name}: retried backup diverged"
        );
    }
}

/// A half-written backup directory (no `CURRENT` yet — the copy died
/// before its commit point) is typed-rejected by verification, not
/// misread as an empty table.
#[test]
fn verify_backup_rejects_incomplete_directory() {
    let dir = test_dir("pitr_verify_incomplete");
    fs::create_dir_all(&dir).expect("mkdir");
    fs::write(dir.join("manifest-000001.casper"), b"half").expect("write");
    let err = DurableTable::verify_backup(&dir).expect_err("no CURRENT");
    assert!(
        matches!(err, PersistError::Io(_) | PersistError::Storage(_)),
        "got {err}"
    );
}

// ---------------------------------------------------------------------------
// Retention
// ---------------------------------------------------------------------------

/// LSNs behind the retention horizon fail with a typed error; everything
/// at or past the oldest surviving generation stays restorable.
#[test]
fn retention_horizon_is_a_typed_error() {
    let dir = test_dir("pitr_retention");
    let opts = DurableOptions {
        background_checkpointer: false,
        archive: Some(ArchiveConfig {
            max_lsns: 4,
            ..ArchiveConfig::default()
        }),
        ..DurableOptions::default()
    };
    let mut t = DurableTable::create_from_table(&dir, seed_table(LayoutMode::Casper), opts)
        .expect("create");
    for i in 0..WRITES {
        t.execute(&marker_write(i)).expect("write");
        if i % 2 == 1 {
            t.checkpoint().expect("checkpoint");
        }
    }
    let last_lsn = t.stats().next_lsn - 1;
    drop(t);

    // LSN 1 (the very first write) is far behind `max_lsns = 4` by now.
    let err = DurableTable::open_at(&dir, 1, archive_opts())
        .expect_err("pre-horizon LSN must be unrestorable");
    assert!(
        matches!(err, PersistError::Storage(_)),
        "horizon miss must be typed, got {err}"
    );
    // The newest state is still there.
    let pit = DurableTable::open_at(&dir, last_lsn, archive_opts()).expect("open_at newest");
    assert_eq!(pit.restored_lsn, last_lsn);
}

// ---------------------------------------------------------------------------
// Scrub over the archive
// ---------------------------------------------------------------------------

/// A flipped bit in an archived file is detected by the scrubber as a
/// finding + counter — and never blocks the live table from serving.
#[test]
fn scrub_surfaces_archive_corruption_without_blocking_serving() {
    let dir = test_dir("pitr_scrub_archive");
    let mut t =
        DurableTable::create_from_table(&dir, seed_table(LayoutMode::Casper), archive_opts())
            .expect("create");
    for i in 0..WRITES {
        t.execute(&marker_write(i)).expect("write");
        if CHECKPOINT_AFTER.contains(&i) {
            t.checkpoint().expect("checkpoint");
        }
    }
    t.checkpoint().expect("final checkpoint");

    // Baseline: a clean pass checks archived files and finds nothing.
    let clean = t.scrub_now().expect("clean scrub");
    assert!(clean.archive_files_checked > 0, "archive was never scanned");
    assert!(
        clean.archive_findings.is_empty(),
        "{:?}",
        clean.archive_findings
    );

    // Flip one byte mid-file in an archived (non-index) file.
    let adir = dir.join("archive");
    let victim = fs::read_dir(&adir)
        .expect("read archive dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n != "archive-index.casper")
        })
        .expect("archive holds at least one retired file");
    let mut bytes = fs::read(&victim).expect("read victim");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    fs::write(&victim, &bytes).expect("corrupt victim");

    let report = t.scrub_now().expect("scrub over damaged archive");
    assert!(
        !report.archive_findings.is_empty(),
        "flipped bit in {victim:?} went undetected"
    );
    assert!(report.findings.is_empty(), "live files were not touched");
    assert!(t.scrub_stats().archive_corrupt_files >= 1);

    // Archive damage never blocks serving: reads and writes both work.
    let mut oracle = seed_table(LayoutMode::Casper);
    for i in 0..=WRITES {
        if i < WRITES {
            oracle.execute(&marker_write(i)).expect("oracle");
        } else {
            t.execute(&marker_write(i))
                .expect("write with damaged archive");
            oracle.execute(&marker_write(i)).expect("oracle");
        }
    }
    assert_eq!(
        fingerprint_durable(&mut t, WRITES + 1),
        fingerprint_oracle(&mut oracle, WRITES + 1)
    );
}
