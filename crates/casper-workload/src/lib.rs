//! # casper-workload
//!
//! The **HAP (Hybrid Access Patterns)** benchmark of §7.1 and the workload
//! generators behind every experiment in the paper's evaluation.
//!
//! HAP is a "physical" benchmark for storage-engine access paths, based on
//! the ADAPT benchmark: two tables (narrow, 16 columns; wide, 160 columns)
//! with an 8-byte integer key `a0` and 4-byte payload columns, and six
//! query templates [`hap::HapQuery`] (point select, count range, sum range,
//! insert, delete, key-fixing update).
//!
//! [`mix`] assembles the named workload mixes of Figs. 12–15 (hybrid,
//! read-only, update-only × uniform/skewed, plus UDI1/UDI2/YCSB-A2), and
//! [`zipf`] provides the key-access distributions (uniform, Zipf,
//! latest-skew, hot-range).

pub mod generator;
pub mod hap;
pub mod mix;
pub mod zipf;

pub use generator::{KeyDist, WorkloadGenerator};
pub use hap::{HapQuery, HapSchema};
pub use mix::{Mix, MixKind};
