//! Key-access distributions, implemented in-repo (no `rand_distr`
//! dependency; see DESIGN.md dependency notes).
//!
//! [`Zipf`] is the classic YCSB-style Zipfian generator (Gray et al.'s
//! rejection-free inversion), producing ranks in `[0, n)` where rank 0 is
//! hottest. Combined with rank→key mappings it yields the paper's "skewed
//! accesses to more recent data" (§7.2) and the hot-range skews of the
//! update-intensive workloads.

use rand::Rng;

/// YCSB-style Zipfian rank generator over `[0, n)`.
///
/// `theta` is the skew (YCSB default 0.99; 0 degenerates to uniform).
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipf {
    /// Build a generator for `n` items with skew `theta` in `[0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "need at least one item");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0, 1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Self {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct sum for small n; Euler–Maclaurin style approximation for
        // large n keeps construction O(1)-ish without visible error for
        // sampling purposes.
        if n <= 10_000 {
            (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
        } else {
            let head: f64 = (1..=10_000u64).map(|i| 1.0 / (i as f64).powf(theta)).sum();
            // ∫_{10000}^{n} x^{-theta} dx
            let a = 10_000f64;
            let b = n as f64;
            head + (b.powf(1.0 - theta) - a.powf(1.0 - theta)) / (1.0 - theta)
        }
    }

    /// Sample a rank in `[0, n)`; rank 0 is the hottest.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) && self.n >= 2 {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// Number of items.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Probability of the hottest rank (rank 0): `1/zeta(n, theta)`.
    pub fn p_hottest(&self) -> f64 {
        1.0 / self.zetan
    }

    /// Internal consistency helper exposed for tests.
    #[doc(hidden)]
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

/// A hot-range distribution: a fraction `hot_frac` of the key space
/// receives `hot_prob` of the accesses (uniform within each region) —
/// YCSB's "hotspot" distribution, used for the skewed HAP variants.
#[derive(Debug, Clone, Copy)]
pub struct HotRange {
    /// Fraction of the domain that is hot, in `(0, 1]`.
    pub hot_frac: f64,
    /// Probability an access goes to the hot region, in `[0, 1]`.
    pub hot_prob: f64,
    /// Whether the hot region sits at the end of the domain ("more recent
    /// data", §7.2) or the beginning.
    pub hot_at_end: bool,
}

impl HotRange {
    /// The paper's skewed profile: accesses concentrate on recent (high)
    /// keys — 20% of the domain receives 80% of the accesses.
    pub fn recent() -> Self {
        Self {
            hot_frac: 0.2,
            hot_prob: 0.8,
            hot_at_end: true,
        }
    }

    /// Sample a fraction of the domain in `[0, 1)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let hot = rng.gen_bool(self.hot_prob.clamp(0.0, 1.0));
        let within: f64 = rng.gen();
        let f = self.hot_frac.clamp(f64::MIN_POSITIVE, 1.0);
        if hot {
            if self.hot_at_end {
                1.0 - f + within * f
            } else {
                within * f
            }
        } else if self.hot_at_end {
            within * (1.0 - f)
        } else {
            f + within * (1.0 - f)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn zipf_ranks_in_range() {
        let z = Zipf::new(100, 0.99);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn zipf_skew_concentrates_on_low_ranks() {
        let z = Zipf::new(1000, 0.99);
        let mut rng = StdRng::seed_from_u64(2);
        let mut top10 = 0usize;
        let total = 20_000;
        for _ in 0..total {
            if z.sample(&mut rng) < 10 {
                top10 += 1;
            }
        }
        // With theta=0.99 over 1000 items, the top-10 ranks carry a large
        // share of the mass (analytically ~40%).
        assert!(
            top10 as f64 / total as f64 > 0.25,
            "top-10 share was {}",
            top10 as f64 / total as f64
        );
    }

    #[test]
    fn zipf_low_theta_is_near_uniform() {
        let z = Zipf::new(100, 0.01);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 4];
        let total = 40_000;
        for _ in 0..total {
            counts[(z.sample(&mut rng) / 25) as usize] += 1;
        }
        for c in counts {
            let share = c as f64 / total as f64;
            assert!((share - 0.25).abs() < 0.05, "quartile share {share}");
        }
    }

    #[test]
    fn zipf_empirical_hottest_matches_analytic() {
        let z = Zipf::new(50, 0.8);
        let mut rng = StdRng::seed_from_u64(4);
        let total = 100_000;
        let hot = (0..total).filter(|_| z.sample(&mut rng) == 0).count();
        let got = hot as f64 / total as f64;
        let want = z.p_hottest();
        assert!(
            (got - want).abs() < 0.02,
            "hottest rank frequency {got} vs analytic {want}"
        );
    }

    #[test]
    fn zeta_approximation_continuous() {
        // The large-n approximation should be close to the direct sum just
        // above the cutoff.
        let direct: f64 = (1..=12_000u64).map(|i| 1.0 / (i as f64).powf(0.9)).sum();
        let approx = Zipf::new(12_000, 0.9).p_hottest().recip();
        assert!(
            (direct - approx).abs() / direct < 0.01,
            "direct {direct} vs approx {approx}"
        );
    }

    #[test]
    fn hot_range_respects_probabilities() {
        let h = HotRange::recent();
        let mut rng = StdRng::seed_from_u64(5);
        let total = 50_000;
        let hot_hits = (0..total).filter(|_| h.sample(&mut rng) >= 0.8).count();
        let share = hot_hits as f64 / total as f64;
        assert!((share - 0.8).abs() < 0.02, "hot share {share}");
    }

    #[test]
    fn hot_range_at_start() {
        let h = HotRange {
            hot_frac: 0.1,
            hot_prob: 0.9,
            hot_at_end: false,
        };
        let mut rng = StdRng::seed_from_u64(6);
        let share = (0..20_000).filter(|_| h.sample(&mut rng) < 0.1).count() as f64 / 20_000.0;
        assert!((share - 0.9).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn zipf_rejects_theta_one() {
        let _ = Zipf::new(10, 1.0);
    }
}
