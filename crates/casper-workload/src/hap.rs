//! The HAP benchmark schema and query templates (§7.1).
//!
//! Two tables: *narrow* (16 columns) and *wide* (160 columns), each with an
//! 8-byte integer primary key `a0` and 4-byte payload columns
//! `a1..ap`. Six queries:
//!
//! ```sql
//! Q1: SELECT a1,...,ak FROM R WHERE a0 = v
//! Q2: SELECT count(*) FROM R WHERE a0 ∈ [vs, ve)
//! Q3: SELECT a1+...+ak FROM R WHERE a0 ∈ [vs, ve)
//! Q4: INSERT INTO R VALUES (a0, a1, ..., ap)
//! Q5: DELETE FROM R WHERE a0 = v
//! Q6: UPDATE R SET a0 = vnew WHERE a0 = v
//! ```

use casper_core::Op;

/// Table schema: a key column plus `payload_cols` 4-byte attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HapSchema {
    /// Number of payload columns (`p`).
    pub payload_cols: usize,
}

impl HapSchema {
    /// The narrow table: 16 columns total (key + 15 payloads).
    pub fn narrow() -> Self {
        Self { payload_cols: 15 }
    }

    /// The wide table: 160 columns total (key + 159 payloads).
    pub fn wide() -> Self {
        Self { payload_cols: 159 }
    }

    /// Total column count including the key.
    pub fn total_cols(&self) -> usize {
        self.payload_cols + 1
    }

    /// Bytes per row (8-byte key + 4-byte payloads).
    pub fn row_bytes(&self) -> usize {
        8 + 4 * self.payload_cols
    }

    /// Deterministic payload row for a key (generators use this so inserts
    /// are self-describing and tests can verify payload integrity).
    pub fn payload_row(&self, key: u64) -> Vec<u32> {
        (0..self.payload_cols)
            .map(|c| (key.wrapping_mul(2654435761).wrapping_add(c as u64) & 0xFFFF) as u32)
            .collect()
    }
}

/// One HAP query instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HapQuery {
    /// Q1: point select of `k` payload attributes.
    Q1 {
        /// Key to look up.
        v: u64,
        /// Projectivity: number of payload columns fetched.
        k: usize,
    },
    /// Q2: count rows with key in `[vs, ve)`.
    Q2 {
        /// Range start (inclusive).
        vs: u64,
        /// Range end (exclusive).
        ve: u64,
    },
    /// Q3: sum `k` payload attributes over rows with key in `[vs, ve)`.
    Q3 {
        /// Range start (inclusive).
        vs: u64,
        /// Range end (exclusive).
        ve: u64,
        /// Projectivity.
        k: usize,
    },
    /// Q4: insert a full row.
    Q4 {
        /// New key.
        key: u64,
        /// Payload values (arity = schema payload columns).
        payload: Vec<u32>,
    },
    /// Q5: delete by key.
    Q5 {
        /// Key to delete.
        v: u64,
    },
    /// Q6: fix a key error (`UPDATE R SET a0 = vnew WHERE a0 = v`).
    Q6 {
        /// Old (erroneous) key.
        v: u64,
        /// Corrected key.
        vnew: u64,
    },
}

impl HapQuery {
    /// The key-column access pattern of this query, for Frequency Model
    /// capture (payload columns ride along with the key's partitioning).
    pub fn key_op(&self) -> Op<u64> {
        match self {
            HapQuery::Q1 { v, .. } => Op::Point(*v),
            HapQuery::Q2 { vs, ve } => Op::Range(*vs, *ve),
            HapQuery::Q3 { vs, ve, .. } => Op::Range(*vs, *ve),
            HapQuery::Q4 { key, .. } => Op::Insert(*key),
            HapQuery::Q5 { v } => Op::Delete(*v),
            HapQuery::Q6 { v, vnew } => Op::Update(*v, *vnew),
        }
    }

    /// Whether this query only reads.
    pub fn is_read(&self) -> bool {
        matches!(
            self,
            HapQuery::Q1 { .. } | HapQuery::Q2 { .. } | HapQuery::Q3 { .. }
        )
    }

    /// Short name ("Q1".."Q6") for reporting.
    pub fn name(&self) -> &'static str {
        match self {
            HapQuery::Q1 { .. } => "Q1",
            HapQuery::Q2 { .. } => "Q2",
            HapQuery::Q3 { .. } => "Q3",
            HapQuery::Q4 { .. } => "Q4",
            HapQuery::Q5 { .. } => "Q5",
            HapQuery::Q6 { .. } => "Q6",
        }
    }

    /// Index 0..6 for metric arrays.
    pub fn index(&self) -> usize {
        match self {
            HapQuery::Q1 { .. } => 0,
            HapQuery::Q2 { .. } => 1,
            HapQuery::Q3 { .. } => 2,
            HapQuery::Q4 { .. } => 3,
            HapQuery::Q5 { .. } => 4,
            HapQuery::Q6 { .. } => 5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schemas_match_paper() {
        assert_eq!(HapSchema::narrow().total_cols(), 16);
        assert_eq!(HapSchema::wide().total_cols(), 160);
        assert_eq!(HapSchema::narrow().row_bytes(), 8 + 60);
    }

    #[test]
    fn payload_row_is_deterministic() {
        let s = HapSchema::narrow();
        assert_eq!(s.payload_row(42), s.payload_row(42));
        assert_ne!(s.payload_row(42), s.payload_row(43));
        assert_eq!(s.payload_row(42).len(), 15);
    }

    #[test]
    fn key_ops_map_to_core_ops() {
        assert_eq!(HapQuery::Q1 { v: 5, k: 3 }.key_op(), Op::Point(5));
        assert_eq!(HapQuery::Q2 { vs: 1, ve: 9 }.key_op(), Op::Range(1, 9));
        assert_eq!(
            HapQuery::Q3 { vs: 1, ve: 9, k: 2 }.key_op(),
            Op::Range(1, 9)
        );
        assert_eq!(
            HapQuery::Q4 {
                key: 7,
                payload: vec![]
            }
            .key_op(),
            Op::Insert(7)
        );
        assert_eq!(HapQuery::Q5 { v: 7 }.key_op(), Op::Delete(7));
        assert_eq!(HapQuery::Q6 { v: 7, vnew: 8 }.key_op(), Op::Update(7, 8));
    }

    #[test]
    fn read_write_classification() {
        assert!(HapQuery::Q1 { v: 1, k: 1 }.is_read());
        assert!(HapQuery::Q2 { vs: 0, ve: 1 }.is_read());
        assert!(!HapQuery::Q5 { v: 1 }.is_read());
        assert!(!HapQuery::Q6 { v: 1, vnew: 2 }.is_read());
    }

    #[test]
    fn names_and_indexes_align() {
        let qs = [
            HapQuery::Q1 { v: 0, k: 1 },
            HapQuery::Q2 { vs: 0, ve: 1 },
            HapQuery::Q3 { vs: 0, ve: 1, k: 1 },
            HapQuery::Q4 {
                key: 0,
                payload: vec![],
            },
            HapQuery::Q5 { v: 0 },
            HapQuery::Q6 { v: 0, vnew: 1 },
        ];
        for (i, q) in qs.iter().enumerate() {
            assert_eq!(q.index(), i);
            assert_eq!(q.name(), format!("Q{}", i + 1));
        }
    }
}
