//! Workload generation: keys, ranges, and query streams.
//!
//! The key domain uses an even/odd scheme: the initial load consists of
//! even keys `0, 2, 4, …`, so inserts can draw *fresh* odd keys at any
//! domain position without colliding, while point reads, deletes, and
//! updates target the (even) loaded domain. This keeps generated workloads
//! meaningful after arbitrarily many mutations without tracking engine
//! state.

use crate::hap::{HapQuery, HapSchema};
use crate::zipf::{HotRange, Zipf};
use rand::Rng;

/// Distribution of key accesses over the domain.
#[derive(Debug, Clone)]
pub enum KeyDist {
    /// Uniform over the domain.
    Uniform,
    /// Zipf over positions, hottest at the *start* of the domain.
    ZipfFront {
        /// Skew exponent in `[0, 1)`.
        theta: f64,
    },
    /// Zipf over positions, hottest at the *end* ("more recent data").
    ZipfRecent {
        /// Skew exponent in `[0, 1)`.
        theta: f64,
    },
    /// Hot-range (hotspot) skew.
    Hot(HotRange),
}

impl KeyDist {
    /// The paper's skewed profile (recent data hot): 90% of accesses hit
    /// the newest 10% of the domain.
    pub fn skewed_recent() -> Self {
        KeyDist::Hot(HotRange {
            hot_frac: 0.1,
            hot_prob: 0.9,
            hot_at_end: true,
        })
    }

    /// Sample a domain position as a fraction in `[0, 1)`.
    fn sample_frac<R: Rng + ?Sized>(&self, zipf: &Zipf, rng: &mut R) -> f64 {
        match self {
            KeyDist::Uniform => rng.gen(),
            KeyDist::ZipfFront { .. } => zipf.sample(rng) as f64 / zipf.n() as f64,
            KeyDist::ZipfRecent { .. } => {
                1.0 - (zipf.sample(rng) + 1) as f64 / (zipf.n() + 1) as f64
            }
            KeyDist::Hot(h) => h.sample(rng),
        }
    }

    fn theta(&self) -> f64 {
        match self {
            KeyDist::ZipfFront { theta } | KeyDist::ZipfRecent { theta } => *theta,
            _ => 0.5,
        }
    }
}

/// Generates HAP query streams over a loaded table.
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    schema: HapSchema,
    /// Rows in the initial load.
    rows: u64,
    key_dist: KeyDist,
    /// Range query selectivity as a fraction of the domain.
    pub range_selectivity: f64,
    /// Projectivity `k` for Q1/Q3.
    pub projectivity: usize,
    /// Maximum distance (in key units) a Q6 "correction" moves a key.
    pub update_reach: u64,
    zipf: Zipf,
}

impl WorkloadGenerator {
    /// Create a generator for `rows` initially loaded rows.
    pub fn new(schema: HapSchema, rows: u64, key_dist: KeyDist) -> Self {
        assert!(rows >= 2);
        let zipf = Zipf::new(rows, key_dist.theta());
        Self {
            schema,
            rows,
            key_dist,
            range_selectivity: 0.01,
            projectivity: 4.min(schema.payload_cols),
            update_reach: (rows / 50).max(2),
            zipf,
        }
    }

    /// The initial load: even keys `0, 2, …, 2(rows−1)` with deterministic
    /// payloads.
    pub fn initial_keys(&self) -> Vec<u64> {
        (0..self.rows).map(|i| i * 2).collect()
    }

    /// Payload columns for the initial load (column-major).
    pub fn initial_payload_columns(&self) -> Vec<Vec<u32>> {
        let keys = self.initial_keys();
        (0..self.schema.payload_cols)
            .map(|c| {
                keys.iter()
                    .map(|&k| (k.wrapping_mul(2654435761).wrapping_add(c as u64) & 0xFFFF) as u32)
                    .collect()
            })
            .collect()
    }

    /// Domain span (largest loaded key + 2).
    pub fn domain(&self) -> u64 {
        self.rows * 2
    }

    /// The schema in use.
    pub fn schema(&self) -> HapSchema {
        self.schema
    }

    /// An existing (even) key at a distribution-chosen position.
    pub fn existing_key<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let frac = self.key_dist.sample_frac(&self.zipf, rng);
        let idx = ((frac * self.rows as f64) as u64).min(self.rows - 1);
        idx * 2
    }

    /// A fresh (odd) key at a distribution-chosen position.
    pub fn fresh_key<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let frac = self.key_dist.sample_frac(&self.zipf, rng);
        let idx = ((frac * self.rows as f64) as u64).min(self.rows - 1);
        idx * 2 + 1
    }

    /// Generate one query of the given template index (0-based: Q1..Q6).
    pub fn query<R: Rng + ?Sized>(&self, template: usize, rng: &mut R) -> HapQuery {
        match template {
            0 => HapQuery::Q1 {
                v: self.existing_key(rng),
                k: self.projectivity,
            },
            1 => {
                let (vs, ve) = self.range(rng);
                HapQuery::Q2 { vs, ve }
            }
            2 => {
                let (vs, ve) = self.range(rng);
                HapQuery::Q3 {
                    vs,
                    ve,
                    k: self.projectivity,
                }
            }
            3 => {
                let key = self.fresh_key(rng);
                HapQuery::Q4 {
                    payload: self.schema.payload_row(key),
                    key,
                }
            }
            4 => HapQuery::Q5 {
                v: self.existing_key(rng),
            },
            5 => {
                // Q6 corrections are uniformly spread over the domain
                // (§7.1) and move the key by a small amount.
                let v = (rng.gen_range(0..self.rows)) * 2;
                let delta = rng.gen_range(1..=self.update_reach);
                let vnew = if rng.gen_bool(0.5) {
                    v.saturating_add(delta * 2 + 1)
                } else {
                    v.saturating_sub((delta * 2).min(v)).saturating_add(1)
                };
                HapQuery::Q6 { v, vnew }
            }
            t => panic!("unknown query template {t}"),
        }
    }

    fn range<R: Rng + ?Sized>(&self, rng: &mut R) -> (u64, u64) {
        let span = ((self.domain() as f64 * self.range_selectivity) as u64).max(2);
        let vs = self.existing_key(rng);
        let ve = (vs + span).min(self.domain() + span);
        (vs, ve)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn generator(dist: KeyDist) -> WorkloadGenerator {
        WorkloadGenerator::new(HapSchema::narrow(), 1000, dist)
    }

    #[test]
    fn initial_load_is_even_keys() {
        let g = generator(KeyDist::Uniform);
        let keys = g.initial_keys();
        assert_eq!(keys.len(), 1000);
        assert!(keys.iter().all(|k| k % 2 == 0));
        assert_eq!(keys[999], 1998);
        let cols = g.initial_payload_columns();
        assert_eq!(cols.len(), 15);
        assert!(cols.iter().all(|c| c.len() == 1000));
    }

    #[test]
    fn existing_keys_even_fresh_keys_odd() {
        let g = generator(KeyDist::skewed_recent());
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert_eq!(g.existing_key(&mut rng) % 2, 0);
            assert_eq!(g.fresh_key(&mut rng) % 2, 1);
        }
    }

    #[test]
    fn recent_skew_targets_high_keys() {
        let g = generator(KeyDist::ZipfRecent { theta: 0.9 });
        let mut rng = StdRng::seed_from_u64(2);
        let high = (0..10_000)
            .filter(|_| g.existing_key(&mut rng) >= g.domain() * 4 / 5)
            .count();
        assert!(
            high > 5_000,
            "recent-skew should hit the top 20% of keys most of the time, got {high}/10000"
        );
    }

    #[test]
    fn ranges_respect_selectivity() {
        let mut g = generator(KeyDist::Uniform);
        g.range_selectivity = 0.05;
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            if let HapQuery::Q2 { vs, ve } = g.query(1, &mut rng) {
                assert!(ve > vs);
                assert!((ve - vs) as f64 <= 0.06 * g.domain() as f64);
            } else {
                panic!("wrong template");
            }
        }
    }

    #[test]
    fn q6_moves_keys_a_bounded_distance() {
        let g = generator(KeyDist::Uniform);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..500 {
            if let HapQuery::Q6 { v, vnew } = g.query(5, &mut rng) {
                assert_eq!(v % 2, 0);
                assert_eq!(vnew % 2, 1, "corrections produce fresh odd keys");
                assert!(v.abs_diff(vnew) <= 2 * g.update_reach * 2 + 1);
            } else {
                panic!("wrong template");
            }
        }
    }

    #[test]
    fn q4_payload_matches_schema() {
        let g = generator(KeyDist::Uniform);
        let mut rng = StdRng::seed_from_u64(5);
        if let HapQuery::Q4 { key, payload } = g.query(3, &mut rng) {
            assert_eq!(payload.len(), 15);
            assert_eq!(payload, HapSchema::narrow().payload_row(key));
        } else {
            panic!("wrong template");
        }
    }

    #[test]
    #[should_panic(expected = "unknown query template")]
    fn unknown_template_panics() {
        let g = generator(KeyDist::Uniform);
        let mut rng = StdRng::seed_from_u64(6);
        let _ = g.query(6, &mut rng);
    }
}
